/**
 * @file
 * Quickstart: simulate the paper's 16-processor target running the
 * OLTP workload, five runs with distinct perturbation seeds, and
 * print the mean cycles-per-transaction with a 95% confidence
 * interval — the paper's core methodology in ~30 lines.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/varsim.hh"

int
main()
{
    using namespace varsim;

    core::SystemConfig sys = core::SystemConfig::paperDefault();
    workload::WorkloadParams wl; // OLTP, 8 users per processor

    core::RunConfig run;
    run.warmupTxns = 100;
    run.measureTxns = 200;

    core::ExperimentConfig exp;
    exp.numRuns = 5;

    std::printf("running %zu simulations of %s on %zu CPUs...\n",
                exp.numRuns, workload::kindName(wl.kind),
                sys.numCpus());

    auto results = core::runMany(sys, wl, run, exp);

    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("  run %zu: %.0f cycles/txn (%llu txns, "
                    "%.2f ms simulated)\n",
                    i, results[i].cyclesPerTxn,
                    static_cast<unsigned long long>(results[i].txns),
                    results[i].runtimeTicks / 1e6);
    }

    const auto report = core::analyze(results);
    const auto ci = stats::meanConfidenceInterval(
        core::metricOf(results), 0.95);

    std::printf("\n%s\n", report.toString().c_str());
    std::printf("95%% CI for the mean: [%.0f, %.0f] cycles/txn\n",
                ci.lo, ci.hi);
    return 0;
}
