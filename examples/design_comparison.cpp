/**
 * @file
 * The paper's headline use case (Sections 4.1 and 5.1): comparing two
 * system designs the WRONG way (one simulation each) and the RIGHT
 * way (multiple perturbed simulations + statistics).
 *
 * We compare a direct-mapped against a 4-way set-associative 4MB L2
 * on OLTP. The wrong way draws a conclusion from a single run pair —
 * and is shown to contradict itself across seed choices. The right
 * way runs N simulations per configuration, reports the wrong
 * conclusion ratio, confidence intervals, and a hypothesis test, and
 * only concludes when the statistics allow it.
 */

#include <cstdio>

#include "core/varsim.hh"

using namespace varsim;

int
main()
{
    core::SystemConfig directMapped;
    directMapped.mem.l2Assoc = 1;
    core::SystemConfig fourWay;
    fourWay.mem.l2Assoc = 4;
    workload::WorkloadParams wl;

    core::RunConfig rc;
    rc.warmupTxns = 100;
    rc.measureTxns = 200;

    // ----- The wrong way: one simulation per configuration -----
    std::printf("== single-simulation comparisons (the wrong way) "
                "==\n");
    int dmWins = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        core::RunConfig r = rc;
        r.perturbSeed = seed;
        const double dm =
            core::runOnce(directMapped, wl, r).cyclesPerTxn;
        r.perturbSeed = seed + 100;
        const double fw =
            core::runOnce(fourWay, wl, r).cyclesPerTxn;
        const bool dmWon = dm < fw;
        dmWins += dmWon;
        std::printf("  seed pair %llu: DM=%.0f  4-way=%.0f  -> "
                    "\"%s is faster\"\n",
                    static_cast<unsigned long long>(seed), dm, fw,
                    dmWon ? "direct-mapped" : "4-way");
    }
    if (dmWins > 0 && dmWins < 6) {
        std::printf("single runs voted %d-%d: the conclusion "
                    "depends on which runs you happened to pick!"
                    "\n\n", 6 - dmWins, dmWins);
    } else {
        std::printf("single runs voted %d-%d this time — but with "
                    "a nonzero wrong-conclusion ratio, that "
                    "unanimity is luck, not evidence (see "
                    "below)\n\n", 6 - dmWins, dmWins);
    }

    // ----- The right way: the paper's methodology -----
    std::printf("== multiple simulations + statistics (the right "
                "way) ==\n");
    core::ExperimentConfig exp;
    exp.numRuns = 15;
    const auto dmRuns = core::runMany(directMapped, wl, rc, exp);
    exp.baseSeed = 5000;
    const auto fwRuns = core::runMany(fourWay, wl, rc, exp);

    const auto report = core::compare(dmRuns, fwRuns, 0.95);
    std::printf("%s\n\n", report.toString().c_str());

    std::printf("methodology verdict: %s\n",
                report.verdict().c_str());
    std::printf("single-run experiments would conclude wrongly "
                "%.0f%% of the time\n",
                report.wrongConclusionRatio);

    const std::size_t needed =
        core::recommendRuns(core::metricOf(dmRuns),
                            core::metricOf(fwRuns), 0.05);
    std::printf("runs needed to bound the wrong-conclusion "
                "probability at 5%%: %zu per configuration\n",
                needed);
    return 0;
}
