/**
 * @file
 * Time-variability workflow (paper Section 5.2): checkpoint a
 * workload at several points in its lifetime, run perturbed samples
 * from each, and let one-way ANOVA decide whether a single starting
 * point is representative or whether the experiment must sample from
 * multiple checkpoints.
 */

#include <cstdio>

#include "core/varsim.hh"

using namespace varsim;

namespace
{

void
study(workload::WorkloadKind kind, std::uint64_t step,
      std::uint64_t measure)
{
    const core::SystemConfig sys;
    workload::WorkloadParams wl;
    wl.kind = kind;

    std::printf("\n--- %s ---\n", workload::kindName(kind));

    // Warm one simulation, snapshotting as it ages.
    core::Simulation warmer(sys, wl);
    warmer.seedPerturbation(42);
    std::vector<core::Checkpoint> checkpoints;
    for (int c = 0; c < 4; ++c) {
        warmer.runTransactions(step);
        checkpoints.push_back(warmer.checkpoint());
        std::printf("  checkpoint %d at %llu transactions "
                    "(%zu bytes)\n",
                    c,
                    static_cast<unsigned long long>(
                        warmer.totalTxns()),
                    checkpoints.back().size());
    }

    // Sample each starting point with distinct perturbation seeds.
    std::vector<std::vector<double>> groups;
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        core::RunConfig rc;
        rc.measureTxns = measure;
        core::ExperimentConfig exp;
        exp.numRuns = 6;
        exp.baseSeed = 900 + 50 * c;
        const auto runs = core::runManyFromCheckpoint(
            sys, wl, checkpoints[c], rc, exp);
        groups.push_back(core::metricOf(runs));
        const auto s = stats::summarize(groups.back());
        std::printf("  from checkpoint %zu: mean=%.0f sd=%.0f\n", c,
                    s.mean, s.stddev);
    }

    const auto verdict = core::checkpointAnova(groups, 0.05);
    std::printf("  %s\n", verdict.toString().c_str());
}

} // anonymous namespace

int
main()
{
    std::printf("Should this experiment sample from multiple "
                "starting points?\n");
    study(workload::WorkloadKind::Oltp, 500, 150);
    study(workload::WorkloadKind::SpecJbb, 1200, 600);
    return 0;
}
