/**
 * @file
 * Defining a new multi-threaded workload against the public
 * workload-builder API and measuring its variability profile.
 *
 * The example models a tiny message broker: producer threads append
 * to topic queues under per-topic locks; consumer threads drain
 * them. The methodology then characterizes how much space
 * variability the design exhibits — the first thing one should know
 * about a workload before simulating it (Table 3's exercise).
 *
 * This example builds its system by hand (event queue, memory
 * system, CPUs, kernel) to show the full wiring; applications that
 * only need the stock workloads can use core::Simulation directly.
 */

#include <cstdio>

#include "core/varsim.hh"
#include "cpu/simple_cpu.hh"

using namespace varsim;

namespace
{

/** One broker transaction: publish or consume a batch. */
class BrokerGenerator : public workload::TxnGenerator
{
  public:
    BrokerGenerator(os::Kernel &kernel, std::size_t num_threads)
        : numThreads(num_threads)
    {
        workload::AddressSpace as;
        codeBase = as.alloc(128 * 1024);
        for (std::size_t t = 0; t < numTopics; ++t) {
            queueBase[t] = as.alloc(queueBlocks * 64);
            lockWord[t] = as.alloc(64);
            lockId[t] = kernel.createMutex(lockWord[t]);
        }
    }

    sim::Addr codeRegion() const { return codeBase; }

    void
    generate(int tid, std::uint64_t txn_index, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        namespace emit = workload::emit;
        const bool producer =
            static_cast<std::size_t>(tid) < numThreads / 2;
        const std::size_t topic =
            rng.uniformInt(0, numTopics - 1);
        const std::size_t slot =
            (txn_index * 3) % (queueBlocks - batch);

        emit::call(out, codeBase + 0x10);
        emit::loop(out, codeBase + 0x20, 6, 40);
        emit::lock(out, lockId[topic], lockWord[topic]);
        // Producers write a batch of messages; consumers read one.
        for (std::size_t b = 0; b < batch; ++b) {
            const sim::Addr a =
                queueBase[topic] + (slot + b) * 64;
            if (producer)
                emit::store(out, a);
            else
                emit::load(out, a);
            emit::compute(out, 30);
        }
        emit::unlock(out, lockId[topic], lockWord[topic]);
        emit::compute(out, producer ? 150 : 400); // consume work
        emit::ret(out, codeBase + 0x10);
        emit::txnEnd(out, producer ? 0 : 1);
    }

  private:
    static constexpr std::size_t numTopics = 8;
    static constexpr std::size_t queueBlocks = 4096;
    static constexpr std::size_t batch = 4;

    std::size_t numThreads;
    sim::Addr codeBase = 0;
    sim::Addr queueBase[numTopics] = {};
    sim::Addr lockWord[numTopics] = {};
    int lockId[numTopics] = {};
};

/** A hand-built simulation hosting the custom workload. */
struct BrokerSim : os::TxnSink
{
    explicit BrokerSim(std::uint64_t perturb_seed)
    {
        ms = std::make_unique<mem::MemSystem>("sys.mem", eq,
                                              mem::MemConfig{});
        ms->seedPerturbation(perturb_seed);
        std::vector<cpu::BaseCpu *> ptrs;
        for (std::size_t i = 0; i < 16; ++i) {
            cpus.push_back(std::make_unique<cpu::SimpleCpu>(
                sim::format("sys.cpu%zu", i), eq, ccfg,
                ms->icache(i), ms->dcache(i),
                static_cast<sim::CpuId>(i)));
            ptrs.push_back(cpus.back().get());
        }
        kernel = std::make_unique<os::Kernel>("sys.kernel", eq,
                                              os::OsConfig{}, ptrs);
        kernel->setTxnSink(this);

        const std::size_t threads = 16 * 4;
        gen = std::make_shared<BrokerGenerator>(*kernel, threads);
        sim::SplitMix64 seeder(99);
        for (std::size_t i = 0; i < threads; ++i) {
            programs.push_back(
                std::make_unique<workload::SyntheticProgram>(
                    gen, static_cast<int>(i), seeder.next()));
            auto t = std::make_unique<os::Thread>(
                static_cast<sim::ThreadId>(i),
                programs.back().get());
            t->fetch.codeBase = gen->codeRegion();
            t->fetch.codeBlocks = 48;
            kernel->addThread(std::move(t));
        }
        kernel->start();
    }

    void
    transactionCompleted(sim::ThreadId, int, sim::Tick) override
    {
        if (++txns >= target)
            eq.requestStop();
    }

    /** Cycles/txn for `n` transactions after `warmup`. */
    double
    measure(std::uint64_t warmup, std::uint64_t n)
    {
        target = warmup;
        txns = 0;
        eq.clearStop();
        eq.run();
        const sim::Tick start = eq.curTick();
        target = txns + n;
        eq.clearStop();
        eq.run();
        return static_cast<double>(eq.curTick() - start) * 16.0 /
               static_cast<double>(n);
    }

    sim::EventQueue eq;
    cpu::CpuConfig ccfg;
    std::unique_ptr<mem::MemSystem> ms;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus;
    std::unique_ptr<os::Kernel> kernel;
    std::shared_ptr<BrokerGenerator> gen;
    std::vector<std::unique_ptr<workload::SyntheticProgram>> programs;
    std::uint64_t txns = 0;
    std::uint64_t target = 0;
};

} // anonymous namespace

int
main()
{
    std::printf("message-broker workload: variability profile\n");
    std::vector<double> runs;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        BrokerSim simn(seed);
        runs.push_back(simn.measure(100, 300));
        std::printf("  seed %2llu: %.0f cycles/txn\n",
                    static_cast<unsigned long long>(seed),
                    runs.back());
    }
    const auto rep = core::analyze(runs);
    std::printf("\n%s\n", rep.toString().c_str());
    std::printf("\nrule of thumb from the paper: with CoV %.1f%%, "
                "bounding the relative error at 2%% with 95%% "
                "confidence needs ~%zu runs\n",
                rep.coefficientOfVariation,
                stats::meanPrecisionSampleSize(
                    rep.coefficientOfVariation / 100.0, 0.02,
                    0.95));
    return 0;
}
