#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the tier-1 test suite under it. A clean pass means the suite
# is free of heap errors, leaks-at-exit in test paths, and UB that the
# instrumented build can detect — run this before merging changes that
# touch memory handling or concurrency.
#
# Usage: tools/run_tier1_sanitized.sh [build-dir]
#   build-dir defaults to build-san (kept separate from the normal
#   build/ so the two configurations never share object files).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-san}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARSIM_SANITIZE=address,undefined
cmake --build "$build" -j "$jobs"

# halt_on_error makes UBSan failures fatal instead of log-and-continue,
# so ctest actually reports them.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$build" --output-on-failure -j "$jobs"
echo "tier-1 suite clean under address,undefined sanitizers"
