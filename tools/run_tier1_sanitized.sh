#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the tier-1 test suite under it, then build the domained-engine
# tests with ThreadSanitizer and run them with real worker threads. A
# clean pass means the suite is free of heap errors, leaks-at-exit in
# test paths, UB that the instrumented build can detect, and data races
# on the intra-run parallel engine — run this before merging changes
# that touch memory handling or concurrency.
#
# Usage: tools/run_tier1_sanitized.sh [build-dir] [tsan-build-dir]
#   build-dir defaults to build-san, tsan-build-dir to build-tsan
#   (kept separate from the normal build/ so configurations never
#   share object files).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-san}"
tsan_build="${2:-$repo/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARSIM_SANITIZE=address,undefined
cmake --build "$build" -j "$jobs"

# ctest discovers suites from the build, so a CMake wiring mistake
# would silently drop one; assert the binaries this gate exists to
# run (serialization, the persistent checkpoint library, the
# statistics paths — the histogram NaN/inf regression in test_stats
# only proves anything under UBSan — and the sampling engine) are
# actually present.
for t in test_sim test_stats test_core test_campaign test_ckpt \
         test_sample; do
    [ -x "$build/tests/$t" ] || {
        echo "error: $build/tests/$t was not built" >&2
        exit 1
    }
done

# halt_on_error makes UBSan failures fatal instead of log-and-continue,
# so ctest actually reports them.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$build" --output-on-failure -j "$jobs"

# One full-trace smoke run under the sanitizers: VARSIM_DEBUG=All
# drives every DPRINTF format/argument pair and the run-scoped trace
# sink, paths the unit tests only sample. Output goes to a log; only
# the tail is interesting, and only on failure.
tracelog="$build/trace_smoke.log"
if ! VARSIM_DEBUG=All "$build/tools/varsim" run --workload oltp \
    --cpus 2 --runs 2 --warmup 5 --txns 20 >"$tracelog" 2>&1; then
    echo "error: VARSIM_DEBUG=All smoke run failed; log tail:" >&2
    tail -n 40 "$tracelog" >&2
    exit 1
fi

# The sampling determinism pin, explicitly: compiled-in-but-disabled
# sampling must reproduce the legacy goldens bit for bit, and this is
# the one place that claim runs under instrumented memory checking
# (the ctest sweep above runs it too; a named rerun keeps the gate
# obvious if the suite's test list ever changes).
"$build/tests/test_sample" \
    --gtest_filter='SampledDisabledGolden.*' >/dev/null || {
    echo "error: disabled-sampling golden failed under asan/ubsan" >&2
    exit 1
}

# The segment store's corruption claims, explicitly under instrumented
# memory checking: the truncation/bit-flip sweeps hand the parser every
# malformed frame a torn disk could produce, and ASan is what proves
# the rejects happen without reading past a mapping (named rerun for
# the same reason as the golden above).
"$build/tests/test_campaign" \
    --gtest_filter='SegmentFormat.*:StoreCompaction*' >/dev/null || {
    echo "error: segment-store suites failed under asan/ubsan" >&2
    exit 1
}

# ---- Out-of-process compaction kill-9: the crash-ordering claim ----
# VARSIM_STORE_CRASH_COMPACT kills `varsim campaign compact` after the
# segment file lands but before the manifest points at it — the
# worst-ordered crash. A reopen must see the pure-JSONL store exactly
# as it was (the orphan segment is invisible), and a real compaction
# afterwards must leave the report byte-identical. The in-process
# death test covers the library path; this drives the actual CLI.
camp_dir="$build/compact-soak.camp"
rm -rf "$camp_dir"
"$build/tools/varsim" campaign run --dir "$camp_dir" \
    --workload oltp --cpus 2 --runs 4 --warmup 5 --txns 20 \
    >/dev/null
"$build/tools/varsim" campaign report --dir "$camp_dir" \
    >"$build/compact-before.txt"
if VARSIM_STORE_CRASH_COMPACT=1 "$build/tools/varsim" campaign \
    compact --dir "$camp_dir" >/dev/null 2>&1; then
    echo "error: compaction crash hook did not kill the process" >&2
    exit 1
fi
"$build/tools/varsim" campaign status --dir "$camp_dir" \
    | grep -Fq "4 run(s) recorded" || {
    echo "error: store damaged by a compaction killed mid-swap" >&2
    exit 1
}
"$build/tools/varsim" campaign compact --dir "$camp_dir" >/dev/null
"$build/tools/varsim" campaign report --dir "$camp_dir" \
    >"$build/compact-after.txt"
cmp -s "$build/compact-before.txt" "$build/compact-after.txt" || {
    echo "error: report changed across kill-9 + real compaction" >&2
    diff "$build/compact-before.txt" "$build/compact-after.txt" >&2 \
        || true
    exit 1
}

echo "tier-1 suite clean under address,undefined sanitizers;" \
    "compaction kill-9 left the store intact"

# ---- ThreadSanitizer flavor: the domained engine's data-race gate ----
# TSan is incompatible with ASan, so it gets its own tree. Only the
# suites that exercise the barrier/mailbox machinery with real worker
# threads are run: the DomainScheduler/DomainRouter/InlineFn units,
# the randomized ParallelStress storms (random topologies, message
# storms, mid-run serial-round flips), and the ParallelGolden
# end-to-end matrix (threads 1, 2, 4 and 8, including the
# ParallelGoldenSampled sampling-under-parallelism pin). The
# engine's claim is that workers synchronize exclusively through the
# round barrier — TSan proves the absence of any side channel.
cmake -S "$repo" -B "$tsan_build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARSIM_SANITIZE=thread
# varsim_cli is the CLI binary target (output name "varsim"); the
# bare name is the header-only INTERFACE library, which Makefile
# generators have no build rule for.
cmake --build "$tsan_build" -j "$jobs" \
    --target test_sim test_core test_serve varsim_cli

for t in test_sim test_core test_serve; do
    [ -x "$tsan_build/tests/$t" ] || {
        echo "error: $tsan_build/tests/$t was not built" >&2
        exit 1
    }
done

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "$tsan_build" --output-on-failure -j "$jobs" \
    -R 'InlineFn|DomainRouter|DomainScheduler|ParallelGolden|ParallelStress'

echo "domained engine clean under thread sanitizer"

# ---- Service soak: the serve daemon's data-race + crash gate ----
# Phase 1, in-process under TSan: the scheduler/daemon suites plus
# the e2e soak scaled up to its CI size — 8 concurrent client
# threads pushing 200 campaigns through one daemon (ctest runs the
# same test at a 24-campaign smoke size; this is the real load).
# The daemon's claim is that worker threads, watch streams, and the
# acceptor share state only under the scheduler mutex — TSan holds
# it to that across hundreds of concurrent campaigns.
VARSIM_SOAK_CAMPAIGNS=200 "$tsan_build/tests/test_serve" \
    --gtest_filter='ServeScheduler.*:ServeE2e.*' || {
    echo "error: serve soak failed under thread sanitizer" >&2
    exit 1
}

# Phase 2, out-of-process: the kill-safety claim with a real kill.
# Submit campaigns to a real daemon, SIGKILL it mid-flight (no
# drain, no signal handler — nothing runs), restart on the same
# root, and require that every campaign is resumed and runs to
# completion. This is the one path gtest cannot exercise honestly
# (fork/exec under TSan inside a test binary is off the table).
soak_root="$tsan_build/serve-soak"
rm -rf "$soak_root"
mkdir -p "$soak_root"
"$tsan_build/tools/varsim" serve --root "$soak_root" --workers 2 \
    >"$soak_root/daemon1.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "$soak_root/serve.sock" ] && break
    sleep 0.1
done
[ -S "$soak_root/serve.sock" ] || {
    echo "error: daemon never created its socket; log:" >&2
    cat "$soak_root/daemon1.log" >&2
    exit 1
}

# 6 campaigns x 40 runs each: far more work than the daemon can
# finish before the kill below lands mid-flight.
for i in $(seq 1 6); do
    "$tsan_build/tools/varsim" client submit \
        --root "$soak_root" --tenant "soak$((i % 2))" \
        --name "camp$i" --workload oltp --cpus 2 \
        --warmup 5 --txns 20 --runs 40 --seed "$((400 + i))" \
        >/dev/null
done

kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

# The stale socket file from the killed daemon still exists, so
# readiness here is the startup line, not the socket.
"$tsan_build/tools/varsim" serve --root "$soak_root" --workers 2 \
    >"$soak_root/daemon2.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
    grep -q "campaign(s) resumed" "$soak_root/daemon2.log" && break
    sleep 0.1
done
grep -q "6 campaign(s) resumed" "$soak_root/daemon2.log" || {
    echo "error: restarted daemon did not resume all 6; log:" >&2
    cat "$soak_root/daemon2.log" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
}

"$tsan_build/tools/varsim" client drain --root "$soak_root" || {
    echo "error: drain after restart failed" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
}
wait "$daemon_pid"

# Every campaign's store must hold exactly its 40 runs — the
# resumed daemon finished the interrupted work without duplicating
# any record the first daemon had already appended.
for i in $(seq 1 6); do
    store="$soak_root/tenants/soak$((i % 2))/camp$i/store"
    runs=$(grep -c '"type":"run"' "$store/manifest.jsonl")
    [ "$runs" -eq 40 ] || {
        echo "error: camp$i has $runs/40 runs after resume" >&2
        exit 1
    }
done

echo "serve daemon clean under thread sanitizer (200-campaign" \
    "soak) and kill-9/restart resumed all campaigns"
