#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the tier-1 test suite under it, then build the domained-engine
# tests with ThreadSanitizer and run them with real worker threads. A
# clean pass means the suite is free of heap errors, leaks-at-exit in
# test paths, UB that the instrumented build can detect, and data races
# on the intra-run parallel engine — run this before merging changes
# that touch memory handling or concurrency.
#
# Usage: tools/run_tier1_sanitized.sh [build-dir] [tsan-build-dir]
#   build-dir defaults to build-san, tsan-build-dir to build-tsan
#   (kept separate from the normal build/ so configurations never
#   share object files).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-san}"
tsan_build="${2:-$repo/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARSIM_SANITIZE=address,undefined
cmake --build "$build" -j "$jobs"

# ctest discovers suites from the build, so a CMake wiring mistake
# would silently drop one; assert the binaries this gate exists to
# run (serialization, the persistent checkpoint library, the
# statistics paths — the histogram NaN/inf regression in test_stats
# only proves anything under UBSan — and the sampling engine) are
# actually present.
for t in test_sim test_stats test_core test_campaign test_ckpt \
         test_sample; do
    [ -x "$build/tests/$t" ] || {
        echo "error: $build/tests/$t was not built" >&2
        exit 1
    }
done

# halt_on_error makes UBSan failures fatal instead of log-and-continue,
# so ctest actually reports them.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$build" --output-on-failure -j "$jobs"

# One full-trace smoke run under the sanitizers: VARSIM_DEBUG=All
# drives every DPRINTF format/argument pair and the run-scoped trace
# sink, paths the unit tests only sample. Output goes to a log; only
# the tail is interesting, and only on failure.
tracelog="$build/trace_smoke.log"
if ! VARSIM_DEBUG=All "$build/tools/varsim" run --workload oltp \
    --cpus 2 --runs 2 --warmup 5 --txns 20 >"$tracelog" 2>&1; then
    echo "error: VARSIM_DEBUG=All smoke run failed; log tail:" >&2
    tail -n 40 "$tracelog" >&2
    exit 1
fi

# The sampling determinism pin, explicitly: compiled-in-but-disabled
# sampling must reproduce the legacy goldens bit for bit, and this is
# the one place that claim runs under instrumented memory checking
# (the ctest sweep above runs it too; a named rerun keeps the gate
# obvious if the suite's test list ever changes).
"$build/tests/test_sample" \
    --gtest_filter='SampledDisabledGolden.*' >/dev/null || {
    echo "error: disabled-sampling golden failed under asan/ubsan" >&2
    exit 1
}

echo "tier-1 suite clean under address,undefined sanitizers"

# ---- ThreadSanitizer flavor: the domained engine's data-race gate ----
# TSan is incompatible with ASan, so it gets its own tree. Only the
# suites that exercise the barrier/mailbox machinery with real worker
# threads are run: the DomainScheduler/DomainRouter/InlineFn units and
# the ParallelGolden end-to-end matrix (threads 1, 2 and 4, including
# the ParallelGoldenSampled sampling-under-parallelism pin). The
# engine's claim is that workers synchronize exclusively through the
# round barrier — TSan proves the absence of any side channel.
cmake -S "$repo" -B "$tsan_build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARSIM_SANITIZE=thread
cmake --build "$tsan_build" -j "$jobs" --target test_sim test_core

for t in test_sim test_core; do
    [ -x "$tsan_build/tests/$t" ] || {
        echo "error: $tsan_build/tests/$t was not built" >&2
        exit 1
    }
done

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "$tsan_build" --output-on-failure -j "$jobs" \
    -R 'InlineFn|DomainRouter|DomainScheduler|ParallelGolden'

echo "domained engine clean under thread sanitizer"
