#!/usr/bin/env bash
# Build the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and run the tier-1 test suite under it. A clean pass means the suite
# is free of heap errors, leaks-at-exit in test paths, and UB that the
# instrumented build can detect — run this before merging changes that
# touch memory handling or concurrency.
#
# Usage: tools/run_tier1_sanitized.sh [build-dir]
#   build-dir defaults to build-san (kept separate from the normal
#   build/ so the two configurations never share object files).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-san}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVARSIM_SANITIZE=address,undefined
cmake --build "$build" -j "$jobs"

# ctest discovers suites from the build, so a CMake wiring mistake
# would silently drop one; assert the binaries this gate exists to
# run (serialization, the persistent checkpoint library, and the
# statistics paths — the histogram NaN/inf regression in test_stats
# only proves anything under UBSan) are actually present.
for t in test_sim test_stats test_core test_campaign test_ckpt; do
    [ -x "$build/tests/$t" ] || {
        echo "error: $build/tests/$t was not built" >&2
        exit 1
    }
done

# halt_on_error makes UBSan failures fatal instead of log-and-continue,
# so ctest actually reports them.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$build" --output-on-failure -j "$jobs"

# One full-trace smoke run under the sanitizers: VARSIM_DEBUG=All
# drives every DPRINTF format/argument pair and the run-scoped trace
# sink, paths the unit tests only sample. Output goes to a log; only
# the tail is interesting, and only on failure.
tracelog="$build/trace_smoke.log"
if ! VARSIM_DEBUG=All "$build/tools/varsim" run --workload oltp \
    --cpus 2 --runs 2 --warmup 5 --txns 20 >"$tracelog" 2>&1; then
    echo "error: VARSIM_DEBUG=All smoke run failed; log tail:" >&2
    tail -n 40 "$tracelog" >&2
    exit 1
fi

echo "tier-1 suite clean under address,undefined sanitizers"
