/**
 * @file
 * varsim — command-line front end for the variability methodology.
 *
 * Subcommands:
 *   list                      show available workloads
 *   run      [options]        N perturbed runs of one configuration,
 *                             with a variability report
 *   compare  [options]        the full Section 5 comparison of two
 *                             configurations (WCR, CIs, t-test)
 *   anova    [options]        the Section 5.2 time-variability study
 *                             over checkpoints
 *   plan     [options]        fixed-budget run-length/run-count
 *                             advice from self-measured pilots
 *   campaign <run|resume|status|report|compact|export> --dir <path>
 *                             [options]
 *                             durable, resumable, adaptively-stopped
 *                             experiment orchestration (see below)
 *   ckpt <create|ls|verify|gc> --dir <path> [options]
 *                             the persistent warm-up checkpoint
 *                             library campaigns restore from
 *   serve --root <dir> [--listen <addr>] [--workers <n>]
 *                             resident multi-tenant campaign
 *                             daemon: durable submissions, shared
 *                             checkpoint library, fair-share
 *                             scheduling, streaming progress;
 *                             SIGTERM drains, kill -9 + restart
 *                             resumes every in-flight campaign
 *   client <ping|submit|status|watch|cancel|report|drain>
 *                             talk to a serve daemon
 *                             (--connect unix:<path>|tcp:[h:]<p>,
 *                             or --root <dir> for the default
 *                             socket). submit takes the campaign
 *                             flags below plus --tenant/--name/
 *                             --priority (and --watch yes to stay
 *                             attached); watch/cancel/report take
 *                             --id <tenant>/<name>
 *
 * Common options:
 *   --workload <name>      oltp|apache|specjbb|slashcode|ecperf|
 *                          barnes|ocean            (default oltp)
 *   --runs <n>             runs per configuration  (default 10)
 *   --warmup <txns>        warmup transactions     (default 100)
 *   --txns <txns>          measured transactions   (default: the
 *                          workload's Table 3 count)
 *   --seed <s>             base perturbation seed  (default 1000)
 *   --cpus <n>             processors              (default 16)
 *   --threads-per-cpu <n>  software threads/CPU    (workload default)
 *   --stats <file|->       (run) write each run's full metrics-
 *                          registry dump as one JSONL line, and
 *                          print host-throughput profiling
 *   --threads <n>          intra-run parallelism: run each
 *                          simulation on the domained engine with n
 *                          worker threads (default 0 = the legacy
 *                          serial engine). Results are bitwise
 *                          identical for every n >= 1; the domained
 *                          engine itself is a slightly different
 *                          timing model than the serial one (see
 *                          DESIGN.md), so 0 vs >=1 is a modelling
 *                          choice, not just a speed knob
 *   --lookahead <ticks>    conservative lookahead for --threads
 *                          (default: derived from the L2 hit
 *                          latency; 0 forces the serial engine)
 *   --sample <d:U:W:M[:c]> intra-run statistical sampling: per
 *                          period of U transactions, fast-forward
 *                          under functional warming, then run W
 *                          detailed warm-up and M measured
 *                          transactions; report each metric as a
 *                          point estimate with a confidence-c CI
 *                          (default c = 0.95). Designs: systematic
 *                          (fixed window phase), stratified (random
 *                          offset per period, re-drawn per seed),
 *                          matched (random offset, identical across
 *                          perturbation seeds). Applies to run and
 *                          campaign run/resume
 *   --sample-offset-seed <s>  seed of the window-placement stream
 *                          (default 12345)
 *
 * Configuration knobs (for run; suffix A/B for compare):
 *   --l2-assoc <w>  --l2-size <bytes>  --dram <ns>  --perturb <ns>
 *   --model simple|ooo  --rob <entries>  --quantum <ns>
 *   --protocol snooping|directory  --prefetch on|off
 *
 * anova options:  --checkpoints <n> --step <txns>
 *                 --strategy systematic|random|stratified
 * plan options:   --budget <txns> [--pilot <len>]...
 *
 * campaign options (run/resume; status/report need only --dir):
 *   --dir <path>           the durable result store (required)
 *   --vary <knob>=<v,...>  one configuration per value; repeatable
 *                          flags form a cartesian grid. Knobs:
 *                          l2-assoc l2-size dram perturb rob quantum
 *                          model protocol prefetch
 *   --runs <n>             fixed K per group (disables adaptation)
 *   --pilot-runs <n>       pilot batch size        (default 6)
 *   --max-runs <n>         adaptive per-group cap  (default 32)
 *   --rel-err <frac>       target CI half-width    (default 0.02)
 *   --alpha <frac>         comparison significance (default 0.05
 *                          when >= 2 configs)
 *   --budget <txns>        fixed budget: planBudget picks the
 *                          run-length/run-count split
 *   --checkpoints <n> --step <txns> --strategy <s>
 *                          multi-starting-point sampling (§5.2)
 *   --shard <i>/<N>        execute only this process's cell stripe
 *   --host-threads <n>     worker threads (0 = hardware)
 *   --intra-threads <n>    domained-engine workers inside each run
 *                          (default 0 = serial engine). Campaigns
 *                          parallelize across runs first — prefer
 *                          --host-threads when runs outnumber cores,
 *                          and split so that host-threads x
 *                          intra-threads <= hardware cores when a
 *                          few long runs dominate. Recorded results
 *                          are identical for every value
 *   --interrupt-after <n>  stop as if killed after n new runs
 *                          (resume walkthroughs, tests)
 *   --ckpt-dir <path>      persistent checkpoint library: warm-ups
 *                          are restored from it when present and
 *                          published to it when rebuilt (results are
 *                          bit-identical either way)
 *
 * report options:
 *   --metric <name>        per-group variability of one recorded
 *                          metric: a built-in (cycles_per_txn,
 *                          runtime_ticks, txns) or any registry name
 *                          (e.g. system.mem.bus.l2_misses); "list"
 *                          enumerates the recorded names
 *
 * compact: fold the store's records into one checksummed binary
 *          segment so status/report/resume open in time proportional
 *          to the appends since the last compaction, not the
 *          campaign's size. Observationally a no-op (same reports,
 *          same resume decisions); also triggered automatically when
 *          the journal tail passes VARSIM_STORE_COMPACT_TAIL runs
 *          (default 8192, 0 disables).
 * export:  re-emit any store (compacted or not) as pure version-1
 *          JSONL on stdout or --out <file> — the interchange format
 *          for external tooling.
 *
 * ckpt options:
 *   create: --dir <library> plus the campaign flags above (the same
 *           grid/seed/checkpoint flags the campaign will use; needs
 *           --checkpoints >= 1) — pre-warms every snapshot
 *   ls:     --dir <library>            list stored checkpoints
 *   verify: --dir <library>            integrity-check every object,
 *                                      re-index strays; exit 1 on
 *                                      damage
 *   gc:     --dir <library> [--max-bytes <n>]
 *                                      sweep debris/corruption and
 *                                      evict oldest over the cap
 *
 * Examples:
 *   varsim run --workload slashcode --runs 20
 *   varsim run --workload oltp --txns 2000 \
 *          --sample stratified:200:20:40
 *   varsim compare --l2-assoc-a 1 --l2-assoc-b 4 --runs 15
 *   varsim anova --workload specjbb --checkpoints 5 --step 800
 *   varsim plan --budget 20000
 *   varsim campaign run --dir assoc.camp --vary l2-assoc=1,2,4
 *   varsim campaign status --dir assoc.camp
 *   varsim campaign report --dir assoc.camp
 *   varsim campaign report --dir assoc.camp --metric \
 *          system.mem.l1_miss_ratio
 *   varsim ckpt create --dir ckpts --checkpoints 4 --step 300 \
 *          --vary l2-assoc=2,4
 *   varsim campaign run --dir a.camp --ckpt-dir ckpts \
 *          --checkpoints 4 --step 300 --vary l2-assoc=2,4
 *   varsim ckpt verify --dir ckpts
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "campaign/campaign.hh"
#include "campaign/knobs.hh"
#include "ckpt/library.hh"
#include "core/varsim.hh"
#include "sample/runner.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"

using namespace varsim;

namespace
{

/** Minimal deterministic flag parser: --key value pairs. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                sim::fatal("unexpected argument '%s' (flags are "
                           "--key value)", key.c_str());
            }
            key = key.substr(2);
            if (i + 1 >= argc) {
                sim::fatal("flag --%s needs a value", key.c_str());
            }
            values.emplace(key, argv[++i]);
        }
    }

    bool has(const std::string &key) const
    {
        return values.count(key) > 0;
    }

    std::string
    str(const std::string &key, const std::string &dflt) const
    {
        auto range = values.equal_range(key);
        return range.first != range.second ? range.first->second
                                           : dflt;
    }

    std::uint64_t
    num(const std::string &key, std::uint64_t dflt) const
    {
        if (!has(key))
            return dflt;
        return std::strtoull(str(key, "").c_str(), nullptr, 10);
    }

    double
    real(const std::string &key, double dflt) const
    {
        if (!has(key))
            return dflt;
        return std::strtod(str(key, "").c_str(), nullptr);
    }

    /** All values given for a repeatable flag. */
    std::vector<std::uint64_t>
    all(const std::string &key) const
    {
        std::vector<std::uint64_t> out;
        auto range = values.equal_range(key);
        for (auto it = range.first; it != range.second; ++it)
            out.push_back(
                std::strtoull(it->second.c_str(), nullptr, 10));
        return out;
    }

    /** All string values given for a repeatable flag, in order. */
    std::vector<std::string>
    allStr(const std::string &key) const
    {
        std::vector<std::string> out;
        auto range = values.equal_range(key);
        for (auto it = range.first; it != range.second; ++it)
            out.push_back(it->second);
        return out;
    }

  private:
    std::multimap<std::string, std::string> values;
};

core::SystemConfig
systemFromArgs(const Args &args, const std::string &suffix)
{
    core::SystemConfig sys;
    auto knob = [&](const char *name) {
        return std::string(name) + suffix;
    };
    sys.mem.numNodes = args.num("cpus", sys.mem.numNodes);
    sys.mem.l2Assoc = args.num(knob("l2-assoc"), sys.mem.l2Assoc);
    sys.mem.l2Size = args.num(knob("l2-size"), sys.mem.l2Size);
    sys.mem.dramLatency =
        args.num(knob("dram"), sys.mem.dramLatency);
    sys.mem.perturbMaxNs =
        args.num(knob("perturb"), sys.mem.perturbMaxNs);
    sys.os.quantum = args.num(knob("quantum"), sys.os.quantum);
    const std::string proto =
        args.str(knob("protocol"), "snooping");
    if (proto == "directory") {
        sys.mem.protocol = mem::CoherenceProtocol::Directory;
    } else if (proto != "snooping") {
        sim::fatal("unknown protocol '%s'", proto.c_str());
    }
    if (args.str(knob("prefetch"), "off") == "on")
        sys.mem.l2NextLinePrefetch = true;
    const std::string model = args.str(knob("model"), "simple");
    if (model == "ooo") {
        sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
    } else if (model != "simple") {
        sim::fatal("unknown CPU model '%s'", model.c_str());
    }
    sys.cpu.robEntries = static_cast<std::uint32_t>(
        args.num(knob("rob"), sys.cpu.robEntries));
    return sys;
}

workload::WorkloadParams
workloadFromArgs(const Args &args)
{
    workload::WorkloadParams wl;
    wl.kind = workload::kindFromName(args.str("workload", "oltp"));
    wl.threadsPerCpu = args.num("threads-per-cpu", 0);
    wl.seed = args.num("workload-seed", wl.seed);
    return wl;
}

core::RunConfig
runFromArgs(const Args &args)
{
    core::RunConfig rc;
    rc.warmupTxns = args.num("warmup", 100);
    rc.measureTxns = args.num("txns", 0); // 0 = workload default
    rc.par.threads = args.num("threads", 0);
    if (args.has("lookahead"))
        rc.par.lookahead = args.num("lookahead", 0);
    const std::string sample = args.str("sample", "");
    if (!sample.empty() &&
        !core::SampleConfig::parse(sample, rc.sample))
        sim::fatal("bad --sample '%s' (want design:U:W:M[:conf] "
                   "with design systematic|stratified|matched)",
                   sample.c_str());
    if (args.has("sample-offset-seed"))
        rc.sample.offsetSeed =
            args.num("sample-offset-seed", rc.sample.offsetSeed);
    return rc;
}

int
cmdList()
{
    std::printf("workload     default txns  threads/cpu\n");
    std::printf("oltp         200           8   TPC-C-like DB2 "
                "transaction mix\n");
    std::printf("apache       1000          8   static web "
                "serving\n");
    std::printf("specjbb      3000          8   Java server, "
                "per-warehouse + GC\n");
    std::printf("slashcode    30            2   dynamic web, hot "
                "DB lock\n");
    std::printf("ecperf       5             4   3-tier driver "
                "cycles\n");
    std::printf("barnes       1             1   SPLASH-2 N-body\n");
    std::printf("ocean        1             1   SPLASH-2 stencil\n");
    return 0;
}

int
cmdRun(const Args &args)
{
    const auto sys = systemFromArgs(args, "");
    const auto wl = workloadFromArgs(args);
    const auto rc = runFromArgs(args);
    core::ExperimentConfig exp;
    exp.numRuns = args.num("runs", 10);
    exp.baseSeed = args.num("seed", 1000);

    std::printf("running %zu x %s on %zu CPUs...\n", exp.numRuns,
                workload::kindName(wl.kind), sys.numCpus());
    if (rc.sample.enabled())
        std::printf("sampling: %s\n", rc.sample.toString().c_str());
    const auto results = sample::runMany(sys, wl, rc, exp);
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("  run %2zu: %10.0f cycles/txn  (%llu txns)\n",
                    i, results[i].cyclesPerTxn,
                    static_cast<unsigned long long>(
                        results[i].txns));
    }

    // Sampled runs: per-run point estimates with their within-run
    // confidence intervals for the headline rates.
    if (rc.sample.enabled()) {
        std::printf("\nsampled estimates (per run, %0.f%% CI):\n",
                    100.0 * rc.sample.confidence);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const core::SampledStats &s = results[i].sampled;
            std::printf(
                "  run %2zu: IPC %.4f [%.4f, %.4f]  "
                "L2 miss %.4f [%.4f, %.4f]  "
                "(%llu window(s), %llu/%llu txns detailed%s)\n",
                i, s.ipcMean, s.ipcLo, s.ipcHi, s.l2MissMean,
                s.l2MissLo, s.l2MissHi,
                static_cast<unsigned long long>(s.windows),
                static_cast<unsigned long long>(s.measuredTxns +
                                                s.warmTxns),
                static_cast<unsigned long long>(
                    s.measuredTxns + s.warmTxns + s.fastTxns),
                s.fullDetailFallback ? ", full-detail fallback"
                                     : "");
        }
    }
    const auto rep = core::analyze(results);
    std::printf("\n%s\n", rep.toString().c_str());
    // Across-run inference needs at least two runs; --runs 1 is a
    // legitimate invocation (e.g. a single sampled run, which
    // carries its own within-run CI above).
    if (results.size() >= 2) {
        const auto ci = stats::meanConfidenceInterval(
            core::metricOf(results), 0.95);
        std::printf("95%% CI for the mean: [%.0f, %.0f]\n", ci.lo,
                    ci.hi);
        std::printf("runs for a 2%% error bound at 95%%: %zu\n",
                    stats::meanPrecisionSampleSize(
                        rep.coefficientOfVariation / 100.0, 0.02,
                        0.95));
    }

    // --stats <file|->: one schema-stable JSONL line per run (the
    // full metrics-registry dump), plus a host-throughput summary.
    const std::string statsPath = args.str("stats", "");
    if (!statsPath.empty()) {
        std::FILE *out = statsPath == "-"
                             ? stdout
                             : std::fopen(statsPath.c_str(), "w");
        if (out == nullptr)
            sim::fatal("cannot write %s", statsPath.c_str());
        for (const auto &r : results)
            std::fprintf(out, "%s\n", r.statsJsonl().c_str());
        if (out != stdout)
            std::fclose(out);
        double wall = 0.0, mips = 0.0;
        std::uint64_t events = 0;
        for (const auto &r : results) {
            wall += r.host.warmupWallSec + r.host.measureWallSec;
            events += r.host.eventsDispatched;
            mips += r.host.hostMips;
        }
        std::printf("host: %.2fs total wall, %llu events "
                    "dispatched, %.1f MIPS mean per run\n",
                    wall,
                    static_cast<unsigned long long>(events),
                    results.empty()
                        ? 0.0
                        : mips / static_cast<double>(
                                     results.size()));
    }
    return 0;
}

int
cmdCompare(const Args &args)
{
    const auto sysA = systemFromArgs(args, "-a");
    const auto sysB = systemFromArgs(args, "-b");
    const auto wl = workloadFromArgs(args);
    const auto rc = runFromArgs(args);
    core::ExperimentConfig exp;
    exp.numRuns = args.num("runs", 10);
    exp.baseSeed = args.num("seed", 1000);

    std::printf("comparing A vs B on %s, %zu runs each...\n",
                workload::kindName(wl.kind), exp.numRuns);
    core::ExperimentConfig expB = exp;
    expB.baseSeed = exp.baseSeed + 7919;
    // One interleaved batch: B's runs backfill host threads as A's
    // drain instead of idling at a join barrier between the two.
    const auto both = core::runManyBatch(
        {{sysA, wl, rc, exp}, {sysB, wl, rc, expB}});
    const auto &a = both[0];
    const auto &b = both[1];

    const auto rep = core::compare(a, b, 0.95);
    std::printf("\n%s\n", rep.toString().c_str());

    const auto diff = stats::differenceConfidenceInterval(
        core::metricOf(a), core::metricOf(b), 0.95);
    std::printf("95%% CI on the difference (A - B): "
                "[%.0f, %.0f] cycles/txn\n", diff.lo, diff.hi);
    std::printf("runs to bound the wrong-conclusion probability "
                "at 5%%: %zu per configuration\n",
                core::recommendRuns(core::metricOf(a),
                                    core::metricOf(b), 0.05));
    return 0;
}

int
cmdAnova(const Args &args)
{
    const auto sys = systemFromArgs(args, "");
    const auto wl = workloadFromArgs(args);
    const std::size_t numCkpts = args.num("checkpoints", 5);
    const std::uint64_t step = args.num("step", 400);
    const std::size_t runs = args.num("runs", 6);
    const std::string stratName =
        args.str("strategy", "systematic");
    core::SamplingStrategy strategy =
        core::SamplingStrategy::Systematic;
    if (stratName == "random")
        strategy = core::SamplingStrategy::Random;
    else if (stratName == "stratified")
        strategy = core::SamplingStrategy::Stratified;
    else if (stratName != "systematic")
        sim::fatal("unknown strategy '%s'", stratName.c_str());

    const auto positions = core::planCheckpoints(
        strategy, step * numCkpts, numCkpts,
        args.num("seed", 1000));

    std::printf("%s: %zu %s checkpoints over %llu txns, %zu runs "
                "each\n",
                workload::kindName(wl.kind), numCkpts,
                stratName.c_str(),
                static_cast<unsigned long long>(step * numCkpts),
                runs);

    core::Simulation warmer(sys, wl);
    warmer.seedPerturbation(args.num("seed", 1000));
    std::vector<std::vector<double>> groups;
    std::uint64_t done = 0;
    for (std::size_t c = 0; c < positions.size(); ++c) {
        warmer.runTransactions(positions[c] - done);
        done = positions[c];
        const core::Checkpoint cp = warmer.checkpoint();
        core::RunConfig rc;
        rc.measureTxns = args.num("txns", 200);
        core::ExperimentConfig exp;
        exp.numRuns = runs;
        exp.baseSeed = 20000 + 100 * c;
        groups.push_back(core::metricOf(core::runManyFromCheckpoint(
            sys, wl, cp, rc, exp)));
        const auto s = stats::summarize(groups.back());
        std::printf("  checkpoint @%llu txns: mean=%.0f sd=%.0f\n",
                    static_cast<unsigned long long>(positions[c]),
                    s.mean, s.stddev);
    }
    const auto verdict = core::checkpointAnova(groups, 0.05);
    std::printf("\n%s\n", verdict.toString().c_str());
    return 0;
}

int
cmdPlan(const Args &args)
{
    const auto sys = systemFromArgs(args, "");
    const auto wl = workloadFromArgs(args);
    const std::uint64_t budget = args.num("budget", 20000);
    std::vector<std::uint64_t> lengths = args.all("pilot");
    if (lengths.empty())
        lengths = {50, 150, 400};
    const std::size_t pilotRuns = args.num("runs", 6);

    std::printf("measuring pilots for the budget planner...\n");
    std::vector<std::pair<std::uint64_t, double>> pilots;
    for (std::uint64_t len : lengths) {
        core::RunConfig rc;
        rc.warmupTxns = args.num("warmup", 100);
        rc.measureTxns = len;
        core::ExperimentConfig exp;
        exp.numRuns = pilotRuns;
        const auto rep =
            core::analyze(core::runMany(sys, wl, rc, exp));
        pilots.emplace_back(len, rep.coefficientOfVariation);
        std::printf("  pilot %llu txns: CoV %.2f%%\n",
                    static_cast<unsigned long long>(len),
                    rep.coefficientOfVariation);
    }
    const auto plan = core::planBudget(pilots, budget, 3, 0.95);
    std::printf("\nbudget of %llu measured transactions:\n  %s\n",
                static_cast<unsigned long long>(budget),
                plan.toString().c_str());
    return 0;
}

/**
 * Collect the campaign-spec fields these flags carry. Translation
 * into a validated CampaignSpec lives in campaign::buildSpec — the
 * same path `varsim client submit` and the serve daemon use, which
 * is what keeps all three front ends agreeing on what a campaign
 * submission means.
 */
campaign::SpecFields
specFieldsFromArgs(const Args &args)
{
    campaign::SpecFields f;
    static const char *const kBaseKnobs[] = {
        "cpus",    "l2-assoc", "l2-size",  "dram",    "perturb",
        "rob",     "quantum",  "model",    "protocol", "prefetch"};
    for (const char *knob : kBaseKnobs)
        if (args.has(knob))
            f.base[knob] = args.str(knob, "");
    f.vary = args.allStr("vary");
    f.workload = args.str("workload", f.workload);
    f.workloadSeed = args.num("workload-seed", f.workloadSeed);
    f.threadsPerCpu =
        args.num("threads-per-cpu", f.threadsPerCpu);
    f.warmupTxns = args.num("warmup", f.warmupTxns);
    f.measureTxns = args.num("txns", f.measureTxns);
    // Campaigns use --intra-threads (--threads would collide with
    // the cross-run --host-threads split users already know).
    f.intraThreads = args.num("intra-threads", f.intraThreads);
    if (args.has("lookahead"))
        f.lookahead =
            static_cast<std::int64_t>(args.num("lookahead", 0));
    f.sample = args.str("sample", f.sample);
    f.sampleOffsetSeed =
        args.num("sample-offset-seed", f.sampleOffsetSeed);
    f.baseSeed = args.num("seed", f.baseSeed);
    f.numCheckpoints = args.num("checkpoints", f.numCheckpoints);
    f.checkpointStep = args.num("step", f.checkpointStep);
    f.strategy = args.str("strategy", f.strategy);
    f.fixedRuns = args.num("runs", f.fixedRuns);
    f.pilotRuns = args.num("pilot-runs", f.pilotRuns);
    f.maxRuns = args.num("max-runs", f.maxRuns);
    f.relativeError = args.real("rel-err", f.relativeError);
    if (args.has("alpha"))
        f.alpha = args.real("alpha", 0.0);
    f.budgetTxns = args.num("budget", f.budgetTxns);
    return f;
}

campaign::CampaignSpec
campaignSpecFromArgs(const Args &args)
{
    campaign::CampaignSpec spec;
    std::string err;
    if (!campaign::buildSpec(specFieldsFromArgs(args), spec, &err))
        sim::fatal("%s", err.c_str());
    return spec;
}

int
cmdCampaign(const std::string &action, const Args &args)
{
    if (action == "status" || action == "report") {
        const std::string dir = args.str("dir", "");
        if (dir.empty())
            sim::fatal("campaign %s needs --dir", action.c_str());
        if (action == "status") {
            std::printf("%s",
                        campaign::campaignStatus(dir)
                            .toString()
                            .c_str());
            return 0;
        }
        // report: default is the cycles/txn methodology report;
        // --metric <name> reports any recorded registry metric, and
        // --metric list enumerates the available names.
        const std::string metric = args.str("metric", "");
        if (metric.empty())
            std::printf("%s\n",
                        campaign::campaignReport(dir).text.c_str());
        else
            std::printf(
                "%s\n",
                campaign::campaignMetricReport(dir, metric)
                    .text.c_str());
        return 0;
    }
    if (action == "compact") {
        const std::string dir = args.str("dir", "");
        if (dir.empty())
            sim::fatal("campaign compact needs --dir");
        auto store = campaign::ResultStore::open(dir);
        const auto res = store->compact();
        if (!res.performed)
            std::printf("%s is already compact (%zu run(s))\n",
                        dir.c_str(), store->totalRuns());
        else
            std::printf("compacted %zu run(s) into %s/%s\n",
                        res.runs, dir.c_str(),
                        res.segmentFile.c_str());
        return 0;
    }
    if (action == "export") {
        // Interchange escape hatch: re-emit any store — compacted
        // or not — as the pure JSONL any version-1 reader replays.
        const std::string dir = args.str("dir", "");
        if (dir.empty())
            sim::fatal("campaign export needs --dir");
        auto store = campaign::ResultStore::openReadOnly(dir);
        const std::string out = args.str("out", "");
        if (out.empty()) {
            store->exportJsonl(std::cout);
        } else {
            std::ofstream os(out, std::ios::binary);
            if (!os)
                sim::fatal("cannot write %s", out.c_str());
            store->exportJsonl(os);
        }
        return 0;
    }
    if (action != "run" && action != "resume") {
        sim::fatal("unknown campaign action '%s' (run, resume, "
                   "status, report, compact, export)",
                   action.c_str());
    }

    const std::string dir = args.str("dir", "");
    if (dir.empty())
        sim::fatal("campaign %s needs --dir", action.c_str());

    const auto spec = campaignSpecFromArgs(args);

    campaign::CampaignOptions opt;
    opt.hostThreads = args.num("host-threads", 0);
    opt.interruptAfter = args.num("interrupt-after", 0);
    opt.ckptDir = args.str("ckpt-dir", "");
    opt.verbose = true;
    const std::string shard = args.str("shard", "1/1");
    if (std::sscanf(shard.c_str(), "%zu/%zu", &opt.shardIndex,
                    &opt.shardCount) != 2 ||
        opt.shardCount == 0 || opt.shardIndex < 1 ||
        opt.shardIndex > opt.shardCount)
        sim::fatal("--shard wants i/N with 1 <= i <= N (got "
                   "'%s')", shard.c_str());
    opt.shardIndex -= 1; // user-facing shards are 1-based

    const auto outcome = campaign::runCampaign(spec, dir, opt);
    std::printf("\n%s", campaign::campaignStatus(dir)
                            .toString()
                            .c_str());
    if (outcome.interrupted) {
        std::printf("interrupted after %zu new run(s); resume "
                    "with: varsim campaign resume --dir %s ...\n",
                    outcome.runsExecuted, dir.c_str());
        return 0;
    }
    std::printf("executed %zu new run(s); campaign is %s\n",
                outcome.runsExecuted,
                outcome.complete ? "complete"
                                 : "waiting on other shards");
    if (outcome.complete)
        std::printf("\n%s\n",
                    campaign::campaignReport(dir).text.c_str());
    return 0;
}

int
cmdCkpt(const std::string &action, const Args &args)
{
    const std::string dir = args.str("dir", "");
    if (dir.empty())
        sim::fatal("ckpt %s needs --dir", action.c_str());

    if (action == "create") {
        const auto spec = campaignSpecFromArgs(args);
        if (!spec.numCheckpoints)
            sim::fatal("ckpt create needs --checkpoints >= 1 (the "
                       "same value the campaign will use)");
        campaign::CampaignOptions opt;
        opt.ckptDir = dir;
        opt.hostThreads = args.num("host-threads", 0);
        opt.verbose = true;
        const auto r =
            campaign::warmCampaignCheckpoints(spec, opt);
        std::printf("library %s: %zu checkpoint(s) warmed, %zu "
                    "already present; %zu entr%s, %llu byte(s)\n",
                    dir.c_str(), r.warmed, r.restored,
                    r.libraryEntries,
                    r.libraryEntries == 1 ? "y" : "ies",
                    static_cast<unsigned long long>(r.libraryBytes));
        return 0;
    }

    auto lib = ckpt::CheckpointLibrary::open(dir);
    if (action == "ls") {
        const auto entries = lib->entries();
        std::printf("%zu checkpoint(s) in %s\n", entries.size(),
                    dir.c_str());
        for (const auto &e : entries)
            std::printf("  %s  pos %-8llu seed %-12llu %llu "
                        "byte(s)\n",
                        e.digestHex.c_str(),
                        static_cast<unsigned long long>(e.position),
                        static_cast<unsigned long long>(
                            e.warmupSeed),
                        static_cast<unsigned long long>(e.bytes));
        return 0;
    }
    if (action == "verify") {
        const auto rep = lib->verify();
        std::printf("%s", rep.toString().c_str());
        return rep.clean() ? 0 : 1;
    }
    if (action == "gc") {
        const auto rep = lib->gc(args.num("max-bytes", 0));
        std::printf("%s", rep.toString().c_str());
        return 0;
    }
    sim::fatal("unknown ckpt action '%s' (create, ls, verify, gc)",
               action.c_str());
    return 1;
}

volatile std::sig_atomic_t gSignals = 0;

void
onStopSignal(int)
{
    gSignals = gSignals + 1;
}

/** Resolve the daemon address from --connect or --root. */
serve::Address
addressFromArgs(const Args &args, const char *what)
{
    std::string text = args.str("connect", "");
    if (text.empty()) {
        const std::string root = args.str("root", "");
        if (root.empty())
            sim::fatal("%s needs --connect <addr> or --root <dir> "
                       "(default socket is <root>/serve.sock)",
                       what);
        text = "unix:" + root + "/serve.sock";
    }
    serve::Address addr;
    std::string err;
    if (!serve::Address::parse(text, addr, &err))
        sim::fatal("%s", err.c_str());
    return addr;
}

int
cmdServe(const Args &args)
{
    const std::string root = args.str("root", "");
    if (root.empty())
        sim::fatal("serve needs --root <dir> (durable daemon "
                   "state: tenants/, ckpts/, serve.sock)");

    serve::DaemonConfig cfg;
    cfg.root = root;
    std::string aerr;
    if (!serve::Address::parse(
            args.str("listen", "unix:" + root + "/serve.sock"),
            cfg.addr, &aerr))
        sim::fatal("%s", aerr.c_str());
    cfg.workers = args.num("workers", 0);

    serve::Daemon daemon(cfg);
    std::string err;
    if (!daemon.start(&err))
        sim::fatal("%s", err.c_str());
    std::printf("varsim serve: listening on %s, root %s, "
                "%zu campaign(s) resumed\n",
                cfg.addr.toString().c_str(), root.c_str(),
                daemon.resumedCount());
    std::fflush(stdout);

    // First SIGTERM/SIGINT drains (finish every campaign, then
    // exit); a second one stops now — durable state re-runs
    // whatever was in flight on the next start.
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);
    std::thread drainer;
    bool draining = false;
    std::thread poller([&] {
        for (;;) {
            if (gSignals > 0 && !draining) {
                draining = true;
                std::printf("varsim serve: draining (signal "
                            "again to stop now)\n");
                std::fflush(stdout);
                drainer = std::thread([&daemon] {
                    daemon.scheduler().drain();
                    daemon.requestStop();
                });
            }
            if (gSignals > 1) {
                daemon.requestStop();
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    });
    poller.detach(); // exits with the process on clean stop

    daemon.wait();
    daemon.shutdown();
    if (drainer.joinable())
        drainer.join();
    std::printf("varsim serve: stopped\n");
    return 0;
}

int
cmdClient(std::string action, const Args &args)
{
    serve::Client client(addressFromArgs(args, "client"));
    std::string err;

    auto campaignId = [&]() -> std::string {
        std::string id = args.str("id", "");
        if (id.empty()) {
            const std::string name = args.str("name", "");
            if (name.empty())
                sim::fatal("client %s needs --id <tenant>/<name> "
                           "(or --tenant/--name)", action.c_str());
            id = args.str("tenant", "default") + "/" + name;
        }
        return id;
    };
    auto printEvent = [](const serve::Event &ev) {
        if (ev.kind == "run")
            std::printf("  %s g%llu.r%llu  %10.0f cycles/txn  "
                        "(%llu/%llu)\n",
                        ev.campaignId.c_str(),
                        static_cast<unsigned long long>(ev.group),
                        static_cast<unsigned long long>(ev.runIdx),
                        ev.value,
                        static_cast<unsigned long long>(
                            ev.recorded),
                        static_cast<unsigned long long>(
                            ev.target));
        else if (ev.kind == "round")
            std::printf("  %s round: %llu/%llu run(s)\n",
                        ev.campaignId.c_str(),
                        static_cast<unsigned long long>(
                            ev.recorded),
                        static_cast<unsigned long long>(
                            ev.target));
        else
            std::printf("  %s %s%s%s\n", ev.campaignId.c_str(),
                        ev.kind.c_str(),
                        ev.message.empty() ? "" : ": ",
                        ev.message.c_str());
    };

    if (action == "ping") {
        if (!client.ping(&err))
            sim::fatal("%s", err.c_str());
        std::printf("ok: daemon speaks submission schema %d\n",
                    serve::kSchemaVersion);
        return 0;
    }
    if (action == "submit") {
        serve::Submission sub;
        sub.tenant = args.str("tenant", "default");
        sub.name = args.str("name", "");
        if (sub.name.empty())
            sim::fatal("client submit needs --name (and usually "
                       "--tenant)");
        sub.priority = static_cast<int>(std::strtol(
            args.str("priority", "0").c_str(), nullptr, 10));
        sub.fields = specFieldsFromArgs(args);
        if (!client.submit(sub, &err))
            sim::fatal("%s", err.c_str());
        std::printf("submitted %s (fingerprint %s)\n",
                    sub.id().c_str(), sub.fingerprintHex.c_str());
        if (args.str("watch", "") != "yes")
            return 0;
        action = "watch"; // fall through into the watch loop
    }
    if (action == "watch") {
        const std::string id = campaignId();
        if (!client.watch(id, args.num("after", 0), printEvent,
                          &err))
            sim::fatal("%s", err.c_str());
        return 0;
    }
    if (action == "status") {
        std::vector<serve::CampaignInfo> infos;
        if (!client.status(args.str("tenant", ""), infos, &err))
            sim::fatal("%s", err.c_str());
        if (infos.empty()) {
            std::printf("no campaigns\n");
            return 0;
        }
        std::printf("%-32s %-10s %4s %14s %8s\n", "campaign",
                    "state", "prio", "runs", "inflight");
        for (const auto &info : infos) {
            std::printf("%-32s %-10s %4d %6llu/%-7llu %8llu%s%s\n",
                        info.id.c_str(), info.state.c_str(),
                        info.priority,
                        static_cast<unsigned long long>(
                            info.recorded),
                        static_cast<unsigned long long>(
                            info.target),
                        static_cast<unsigned long long>(
                            info.inFlight),
                        info.error.empty() ? "" : "  ",
                        info.error.c_str());
        }
        return 0;
    }
    if (action == "cancel") {
        if (!client.cancel(campaignId(), &err))
            sim::fatal("%s", err.c_str());
        std::printf("cancelled %s\n", campaignId().c_str());
        return 0;
    }
    if (action == "report") {
        std::string text;
        if (!client.report(campaignId(),
                           args.real("confidence", 0.95),
                           args.str("metric", ""), text, &err))
            sim::fatal("%s", err.c_str());
        std::printf("%s\n", text.c_str());
        return 0;
    }
    if (action == "drain") {
        if (!client.drain(&err))
            sim::fatal("%s", err.c_str());
        std::printf("daemon drained and stopping\n");
        return 0;
    }
    sim::fatal("unknown client action '%s' (ping, submit, status, "
               "watch, cancel, report, drain)", action.c_str());
    return 1;
}

void
usage()
{
    std::printf("usage: varsim "
                "<list|run|compare|anova|plan|campaign|ckpt|"
                "serve|client> [--flag value]...\n"
                "       varsim campaign <run|resume|status|report> "
                "--dir DIR [--flag value]...\n"
                "       varsim ckpt <create|ls|verify|gc> "
                "--dir DIR [--flag value]...\n"
                "       varsim serve --root DIR "
                "[--listen unix:PATH|tcp:PORT] [--workers N]\n"
                "       varsim client <ping|submit|status|watch|"
                "cancel|report|drain>\n"
                "              [--connect ADDR | --root DIR] "
                "[--tenant T --name N | --id T/N]...\n"
                "see the header of tools/varsim_cli.cc or "
                "README.md for the full flag list\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "campaign") {
        if (argc < 3) {
            usage();
            return 1;
        }
        // Flags start after the action word, so hand the parser a
        // view of argv shifted by one.
        return cmdCampaign(argv[2], Args(argc - 1, argv + 1));
    }
    if (cmd == "ckpt") {
        if (argc < 3) {
            usage();
            return 1;
        }
        return cmdCkpt(argv[2], Args(argc - 1, argv + 1));
    }
    if (cmd == "serve")
        return cmdServe(Args(argc, argv));
    if (cmd == "client") {
        if (argc < 3) {
            usage();
            return 1;
        }
        return cmdClient(argv[2], Args(argc - 1, argv + 1));
    }
    Args args(argc, argv);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "anova")
        return cmdAnova(args);
    if (cmd == "plan")
        return cmdPlan(args);
    usage();
    return 1;
}
