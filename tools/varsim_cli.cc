/**
 * @file
 * varsim — command-line front end for the variability methodology.
 *
 * Subcommands:
 *   list                      show available workloads
 *   run      [options]        N perturbed runs of one configuration,
 *                             with a variability report
 *   compare  [options]        the full Section 5 comparison of two
 *                             configurations (WCR, CIs, t-test)
 *   anova    [options]        the Section 5.2 time-variability study
 *                             over checkpoints
 *   plan     [options]        fixed-budget run-length/run-count
 *                             advice from self-measured pilots
 *
 * Common options:
 *   --workload <name>      oltp|apache|specjbb|slashcode|ecperf|
 *                          barnes|ocean            (default oltp)
 *   --runs <n>             runs per configuration  (default 10)
 *   --warmup <txns>        warmup transactions     (default 100)
 *   --txns <txns>          measured transactions   (default: the
 *                          workload's Table 3 count)
 *   --seed <s>             base perturbation seed  (default 1000)
 *   --cpus <n>             processors              (default 16)
 *   --threads-per-cpu <n>  software threads/CPU    (workload default)
 *
 * Configuration knobs (for run; suffix A/B for compare):
 *   --l2-assoc <w>  --l2-size <bytes>  --dram <ns>  --perturb <ns>
 *   --model simple|ooo  --rob <entries>  --quantum <ns>
 *   --protocol snooping|directory  --prefetch on|off
 *
 * anova options:  --checkpoints <n> --step <txns>
 *                 --strategy systematic|random|stratified
 * plan options:   --budget <txns> [--pilot <len>]...
 *
 * Examples:
 *   varsim run --workload slashcode --runs 20
 *   varsim compare --l2-assoc-a 1 --l2-assoc-b 4 --runs 15
 *   varsim anova --workload specjbb --checkpoints 5 --step 800
 *   varsim plan --budget 20000
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/varsim.hh"

using namespace varsim;

namespace
{

/** Minimal deterministic flag parser: --key value pairs. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                sim::fatal("unexpected argument '%s' (flags are "
                           "--key value)", key.c_str());
            }
            key = key.substr(2);
            if (i + 1 >= argc) {
                sim::fatal("flag --%s needs a value", key.c_str());
            }
            values.emplace(key, argv[++i]);
        }
    }

    bool has(const std::string &key) const
    {
        return values.count(key) > 0;
    }

    std::string
    str(const std::string &key, const std::string &dflt) const
    {
        auto range = values.equal_range(key);
        return range.first != range.second ? range.first->second
                                           : dflt;
    }

    std::uint64_t
    num(const std::string &key, std::uint64_t dflt) const
    {
        if (!has(key))
            return dflt;
        return std::strtoull(str(key, "").c_str(), nullptr, 10);
    }

    /** All values given for a repeatable flag. */
    std::vector<std::uint64_t>
    all(const std::string &key) const
    {
        std::vector<std::uint64_t> out;
        auto range = values.equal_range(key);
        for (auto it = range.first; it != range.second; ++it)
            out.push_back(
                std::strtoull(it->second.c_str(), nullptr, 10));
        return out;
    }

  private:
    std::multimap<std::string, std::string> values;
};

core::SystemConfig
systemFromArgs(const Args &args, const std::string &suffix)
{
    core::SystemConfig sys;
    auto knob = [&](const char *name) {
        return std::string(name) + suffix;
    };
    sys.mem.numNodes = args.num("cpus", sys.mem.numNodes);
    sys.mem.l2Assoc = args.num(knob("l2-assoc"), sys.mem.l2Assoc);
    sys.mem.l2Size = args.num(knob("l2-size"), sys.mem.l2Size);
    sys.mem.dramLatency =
        args.num(knob("dram"), sys.mem.dramLatency);
    sys.mem.perturbMaxNs =
        args.num(knob("perturb"), sys.mem.perturbMaxNs);
    sys.os.quantum = args.num(knob("quantum"), sys.os.quantum);
    const std::string proto =
        args.str(knob("protocol"), "snooping");
    if (proto == "directory") {
        sys.mem.protocol = mem::CoherenceProtocol::Directory;
    } else if (proto != "snooping") {
        sim::fatal("unknown protocol '%s'", proto.c_str());
    }
    if (args.str(knob("prefetch"), "off") == "on")
        sys.mem.l2NextLinePrefetch = true;
    const std::string model = args.str(knob("model"), "simple");
    if (model == "ooo") {
        sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
    } else if (model != "simple") {
        sim::fatal("unknown CPU model '%s'", model.c_str());
    }
    sys.cpu.robEntries = static_cast<std::uint32_t>(
        args.num(knob("rob"), sys.cpu.robEntries));
    return sys;
}

workload::WorkloadParams
workloadFromArgs(const Args &args)
{
    workload::WorkloadParams wl;
    wl.kind = workload::kindFromName(args.str("workload", "oltp"));
    wl.threadsPerCpu = args.num("threads-per-cpu", 0);
    wl.seed = args.num("workload-seed", wl.seed);
    return wl;
}

core::RunConfig
runFromArgs(const Args &args)
{
    core::RunConfig rc;
    rc.warmupTxns = args.num("warmup", 100);
    rc.measureTxns = args.num("txns", 0); // 0 = workload default
    return rc;
}

int
cmdList()
{
    std::printf("workload     default txns  threads/cpu\n");
    std::printf("oltp         200           8   TPC-C-like DB2 "
                "transaction mix\n");
    std::printf("apache       1000          8   static web "
                "serving\n");
    std::printf("specjbb      3000          8   Java server, "
                "per-warehouse + GC\n");
    std::printf("slashcode    30            2   dynamic web, hot "
                "DB lock\n");
    std::printf("ecperf       5             4   3-tier driver "
                "cycles\n");
    std::printf("barnes       1             1   SPLASH-2 N-body\n");
    std::printf("ocean        1             1   SPLASH-2 stencil\n");
    return 0;
}

int
cmdRun(const Args &args)
{
    const auto sys = systemFromArgs(args, "");
    const auto wl = workloadFromArgs(args);
    const auto rc = runFromArgs(args);
    core::ExperimentConfig exp;
    exp.numRuns = args.num("runs", 10);
    exp.baseSeed = args.num("seed", 1000);

    std::printf("running %zu x %s on %zu CPUs...\n", exp.numRuns,
                workload::kindName(wl.kind), sys.numCpus());
    const auto results = core::runMany(sys, wl, rc, exp);
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("  run %2zu: %10.0f cycles/txn  (%llu txns)\n",
                    i, results[i].cyclesPerTxn,
                    static_cast<unsigned long long>(
                        results[i].txns));
    }
    const auto rep = core::analyze(results);
    std::printf("\n%s\n", rep.toString().c_str());
    const auto ci = stats::meanConfidenceInterval(
        core::metricOf(results), 0.95);
    std::printf("95%% CI for the mean: [%.0f, %.0f]\n", ci.lo,
                ci.hi);
    std::printf("runs for a 2%% error bound at 95%%: %zu\n",
                stats::meanPrecisionSampleSize(
                    rep.coefficientOfVariation / 100.0, 0.02,
                    0.95));
    return 0;
}

int
cmdCompare(const Args &args)
{
    const auto sysA = systemFromArgs(args, "-a");
    const auto sysB = systemFromArgs(args, "-b");
    const auto wl = workloadFromArgs(args);
    const auto rc = runFromArgs(args);
    core::ExperimentConfig exp;
    exp.numRuns = args.num("runs", 10);
    exp.baseSeed = args.num("seed", 1000);

    std::printf("comparing A vs B on %s, %zu runs each...\n",
                workload::kindName(wl.kind), exp.numRuns);
    core::ExperimentConfig expB = exp;
    expB.baseSeed = exp.baseSeed + 7919;
    // One interleaved batch: B's runs backfill host threads as A's
    // drain instead of idling at a join barrier between the two.
    const auto both = core::runManyBatch(
        {{sysA, wl, rc, exp}, {sysB, wl, rc, expB}});
    const auto &a = both[0];
    const auto &b = both[1];

    const auto rep = core::compare(a, b, 0.95);
    std::printf("\n%s\n", rep.toString().c_str());

    const auto diff = stats::differenceConfidenceInterval(
        core::metricOf(a), core::metricOf(b), 0.95);
    std::printf("95%% CI on the difference (A - B): "
                "[%.0f, %.0f] cycles/txn\n", diff.lo, diff.hi);
    std::printf("runs to bound the wrong-conclusion probability "
                "at 5%%: %zu per configuration\n",
                core::recommendRuns(core::metricOf(a),
                                    core::metricOf(b), 0.05));
    return 0;
}

int
cmdAnova(const Args &args)
{
    const auto sys = systemFromArgs(args, "");
    const auto wl = workloadFromArgs(args);
    const std::size_t numCkpts = args.num("checkpoints", 5);
    const std::uint64_t step = args.num("step", 400);
    const std::size_t runs = args.num("runs", 6);
    const std::string stratName =
        args.str("strategy", "systematic");
    core::SamplingStrategy strategy =
        core::SamplingStrategy::Systematic;
    if (stratName == "random")
        strategy = core::SamplingStrategy::Random;
    else if (stratName == "stratified")
        strategy = core::SamplingStrategy::Stratified;
    else if (stratName != "systematic")
        sim::fatal("unknown strategy '%s'", stratName.c_str());

    const auto positions = core::planCheckpoints(
        strategy, step * numCkpts, numCkpts,
        args.num("seed", 1000));

    std::printf("%s: %zu %s checkpoints over %llu txns, %zu runs "
                "each\n",
                workload::kindName(wl.kind), numCkpts,
                stratName.c_str(),
                static_cast<unsigned long long>(step * numCkpts),
                runs);

    core::Simulation warmer(sys, wl);
    warmer.seedPerturbation(args.num("seed", 1000));
    std::vector<std::vector<double>> groups;
    std::uint64_t done = 0;
    for (std::size_t c = 0; c < positions.size(); ++c) {
        warmer.runTransactions(positions[c] - done);
        done = positions[c];
        const core::Checkpoint cp = warmer.checkpoint();
        core::RunConfig rc;
        rc.measureTxns = args.num("txns", 200);
        core::ExperimentConfig exp;
        exp.numRuns = runs;
        exp.baseSeed = 20000 + 100 * c;
        groups.push_back(core::metricOf(core::runManyFromCheckpoint(
            sys, wl, cp, rc, exp)));
        const auto s = stats::summarize(groups.back());
        std::printf("  checkpoint @%llu txns: mean=%.0f sd=%.0f\n",
                    static_cast<unsigned long long>(positions[c]),
                    s.mean, s.stddev);
    }
    const auto verdict = core::checkpointAnova(groups, 0.05);
    std::printf("\n%s\n", verdict.toString().c_str());
    return 0;
}

int
cmdPlan(const Args &args)
{
    const auto sys = systemFromArgs(args, "");
    const auto wl = workloadFromArgs(args);
    const std::uint64_t budget = args.num("budget", 20000);
    std::vector<std::uint64_t> lengths = args.all("pilot");
    if (lengths.empty())
        lengths = {50, 150, 400};
    const std::size_t pilotRuns = args.num("runs", 6);

    std::printf("measuring pilots for the budget planner...\n");
    std::vector<std::pair<std::uint64_t, double>> pilots;
    for (std::uint64_t len : lengths) {
        core::RunConfig rc;
        rc.warmupTxns = args.num("warmup", 100);
        rc.measureTxns = len;
        core::ExperimentConfig exp;
        exp.numRuns = pilotRuns;
        const auto rep =
            core::analyze(core::runMany(sys, wl, rc, exp));
        pilots.emplace_back(len, rep.coefficientOfVariation);
        std::printf("  pilot %llu txns: CoV %.2f%%\n",
                    static_cast<unsigned long long>(len),
                    rep.coefficientOfVariation);
    }
    const auto plan = core::planBudget(pilots, budget, 3, 0.95);
    std::printf("\nbudget of %llu measured transactions:\n  %s\n",
                static_cast<unsigned long long>(budget),
                plan.toString().c_str());
    return 0;
}

void
usage()
{
    std::printf("usage: varsim <list|run|compare|anova|plan> "
                "[--flag value]...\n"
                "see the header of tools/varsim_cli.cc or "
                "README.md for the full flag list\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    Args args(argc, argv);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "anova")
        return cmdAnova(args);
    if (cmd == "plan")
        return cmdPlan(args);
    usage();
    return 1;
}
