#!/usr/bin/env python3
"""Compare two benchmark JSON emissions of the same kind.

Usage:
    tools/perfcmp.py BASELINE.json CANDIDATE.json [--min-speedup X]

Accepts any emitter that follows the bench_sim_throughput schema
(bench_sim_throughput, bench_ckpt_restore, bench_serve_throughput,
...); both files must come from the same emitter ("bench" fields
must match). serve_throughput emissions additionally get a service
report comparing submit / time-to-first-result latency percentiles.

Prints a per-row table of ticks/host-second speedups (candidate over
baseline) and the geometric-mean speedup. Rows are matched on
(workload, mode); rows present in only one file are reported and
skipped. With --min-speedup, exits nonzero if any matched row's
speedup falls below X — usable as a CI regression gate.

Independently of the cross-file comparison, any candidate par2+ mode
slower than the same workload's "single" row fails the run (for
worker counts the emitting host could run, per the file's
host_concurrency): a parallel mode losing to its serial baseline is
a regression even when both files agree on it.
"""

import argparse
import json
import math
import re
import sys


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: {path}: no such file (generate it with "
                 f"build/bench/bench_<name> --json {path})")
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {path}: {e}")
    if not isinstance(data, dict) or \
            not isinstance(data.get("bench"), str) or \
            not data["bench"]:
        sys.exit(f"error: {path}: not a benchmark emission "
                 '(expected a JSON object with a "bench" name)')
    results = data.get("results")
    if not isinstance(results, list) or not results:
        sys.exit(f"error: {path}: no \"results\" rows; the file "
                 "looks truncated or came from an older emitter")
    rows = {}
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            sys.exit(f"error: {path}: results[{i}] is not an "
                     "object")
        for field in ("workload", "mode", "ticks_per_sec"):
            if field not in row:
                sys.exit(f"error: {path}: results[{i}] lacks "
                         f'"{field}"')
        rows[(row["workload"], row["mode"])] = row
    meta = {"quick": bool(data.get("quick", False)),
            "bench": data["bench"],
            # Older emissions predate the field; None means unknown
            # and disables host-aware judgements.
            "host_concurrency": data.get("host_concurrency")}
    return rows, meta


def scaling_report(rows, label, host_concurrency):
    """Intra-run scaling: parN rows against the serial single row.

    The parN modes run ONE simulation on the domained engine with N
    worker threads; single runs the legacy serial engine. Printed
    whenever a file contains any par* mode. The scaling column is
    ticks/s relative to the same file's single row (throughput
    speedup from intra-run parallelism, including the domained
    engine's own overhead), so par1-vs-parN differences and
    engine-swap overhead both show up honestly.

    Returns the mode-vs-baseline-mode regressions: parN rows slower
    than the same workload's single row, for worker counts the
    emitting host could actually run. These shipped silently once;
    now they fail the comparison.
    """
    by_wl = {}
    for (workload, mode), row in rows.items():
        m = re.fullmatch(r"par(\d+)", mode)
        if m:
            by_wl.setdefault(workload, []).append(
                (int(m.group(1)), row["ticks_per_sec"]))
    if not by_wl:
        return []
    regressions = []
    print(f"\nintra-run scaling ({label}):")
    print(f"{'workload':<12} {'threads':>8} {'Mt/s':>10} "
          f"{'vs single':>10}")
    for workload in sorted(by_wl):
        single = rows.get((workload, "single"))
        base = single["ticks_per_sec"] if single else None
        for threads, tps in sorted(by_wl[workload]):
            rel = f"{tps / base:>9.2f}x" if base else f"{'n/a':>10}"
            print(f"{workload:<12} {threads:>8} {tps / 1e6:>10.3f} "
                  f"{rel}")
            # par1 measures the domained engine's serial overhead
            # and is allowed to trail the legacy engine; par2+ on a
            # host that can actually run the workers must not.
            measurable = host_concurrency is None or \
                threads <= host_concurrency
            if base and tps < base and threads >= 2 and measurable:
                regressions.append(
                    (workload, f"par{threads}", tps / base))
    return regressions


def service_report(base, cand, matched):
    """Service-bench latencies: printed for serve_throughput rows.

    The throughput table above already compares ticks/s; a campaign
    service is additionally judged on its tail latency, so for every
    matched row that carries the serve_throughput latency fields
    this prints submit and time-to-first-result percentiles side by
    side (candidate/baseline ratio; below 1.0 is faster).
    """
    fields = (("submit_p50_ms", "submit p50"),
              ("submit_p99_ms", "submit p99"),
              ("first_result_p50_ms", "first-result p50"),
              ("first_result_p99_ms", "first-result p99"))
    rows = [key for key in matched
            if all(f in base[key] and f in cand[key]
                   for f, _ in fields)]
    if not rows:
        return
    print("\nservice latencies (ms, candidate vs baseline; "
          "<1.00x is faster):")
    print(f"{'clients':<8} {'metric':<18} {'base':>9} "
          f"{'cand':>9} {'ratio':>8}")
    for key in rows:
        for field, label in fields:
            b, c = base[key][field], cand[key][field]
            ratio = f"{c / b:>7.2f}x" if b else f"{'n/a':>8}"
            print(f"{key[1]:<8} {label:<18} {b:>9.2f} "
                  f"{c:>9.2f} {ratio}")
        camp_b = base[key].get("campaigns_per_sec")
        camp_c = cand[key].get("campaigns_per_sec")
        if camp_b and camp_c:
            print(f"{key[1]:<8} {'campaigns/sec':<18} "
                  f"{camp_b:>9.2f} {camp_c:>9.2f} "
                  f"{camp_c / camp_b:>7.2f}x")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail if any row is below this speedup")
    args = ap.parse_args()

    base, base_meta = load_rows(args.baseline)
    cand, cand_meta = load_rows(args.candidate)
    if base_meta["bench"] != cand_meta["bench"]:
        sys.exit(f"error: benchmark kinds differ: {args.baseline} "
                 f"is \"{base_meta['bench']}\", {args.candidate} is "
                 f"\"{cand_meta['bench']}\" - their rows measure "
                 "different things and cannot be compared")
    if base_meta["quick"] != cand_meta["quick"]:
        print("warning: comparing a quick run against a full run",
              file=sys.stderr)

    matched = sorted(base.keys() & cand.keys())
    for key in sorted(base.keys() - cand.keys()):
        print(f"note: {key} only in baseline, skipped")
    for key in sorted(cand.keys() - base.keys()):
        print(f"note: {key} only in candidate, skipped")
    if not matched:
        sys.exit(f"error: {args.baseline} and {args.candidate} "
                 "have no (workload, mode) rows in common - they "
                 "measure disjoint sets and cannot be compared")

    print(f"{'workload':<12} {'mode':<8} {'base Mt/s':>10} "
          f"{'cand Mt/s':>10} {'speedup':>8}")
    failed = []
    log_sum = 0.0
    for key in matched:
        b = base[key]["ticks_per_sec"]
        c = cand[key]["ticks_per_sec"]
        if not b:
            sys.exit(f"error: baseline row {key} has zero "
                     "ticks_per_sec; cannot compute a speedup")
        speedup = c / b
        log_sum += math.log(speedup)
        print(f"{key[0]:<12} {key[1]:<8} {b / 1e6:>10.3f} "
              f"{c / 1e6:>10.3f} {speedup:>7.2f}x")
        if args.min_speedup is not None and \
                speedup < args.min_speedup:
            failed.append(key)

    geomean = math.exp(log_sum / len(matched))
    print(f"{'geomean':<21} {'':>21} {geomean:>7.2f}x")

    scaling_report(base, "baseline", base_meta["host_concurrency"])
    mode_regr = scaling_report(cand, "candidate",
                               cand_meta["host_concurrency"])
    service_report(base, cand, matched)

    status = 0
    if mode_regr:
        print(f"FAIL: {len(mode_regr)} candidate mode(s) slower "
              "than their single baseline mode: "
              + ", ".join(f"{w}/{m} ({r:.2f}x)"
                          for w, m, r in mode_regr))
        status = 1
    if failed:
        print(f"FAIL: {len(failed)} row(s) below "
              f"{args.min_speedup:.2f}x: "
              + ", ".join(f"{w}/{m}" for w, m in failed))
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
