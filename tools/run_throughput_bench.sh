#!/bin/sh
# Build (if needed) and run the simulator-throughput benchmark,
# leaving a machine-readable record in BENCH_throughput.json at the
# repository root. Compare two records with tools/perfcmp.py.
#
# Usage:
#   tools/run_throughput_bench.sh [output.json] [extra bench args...]
#
# Environment:
#   BUILD_DIR     build tree (default: build)
#   VARSIM_QUICK  =1 scales run lengths down ~4x
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${BUILD_DIR:-"$repo/build"}
out=${1:-"$repo/BENCH_throughput.json"}
[ $# -gt 0 ] && shift

if [ ! -f "$build/CMakeCache.txt" ]; then
    cmake -B "$build" -S "$repo"
fi
cmake --build "$build" --target bench_sim_throughput -j

# Best-of-3 timing: the default run lasts a few seconds and is
# dominated by scheduler noise otherwise.
"$build/bench/bench_sim_throughput" --json "$out" --repeat 3 "$@"
echo "throughput record: $out"
