#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace varsim
{
namespace stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts(bins, 0)
{
    VARSIM_ASSERT(hi > lo, "Histogram: hi (%f) <= lo (%f)", hi, lo);
    VARSIM_ASSERT(bins >= 1, "Histogram: needs >= 1 bin");
}

void
Histogram::add(double x)
{
    // Casting floor(NaN)/floor(±inf) to an integer is undefined
    // behavior, so non-finite samples never reach the bin
    // arithmetic: they land in the explicit invalid bucket.
    if (!std::isfinite(x)) {
        ++numInvalid;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    const double scaled = frac * static_cast<double>(counts.size());
    // Clamp in floating point *before* the integer cast: a huge
    // finite sample (|scaled| > 2^63) would otherwise overflow the
    // cast itself.
    std::size_t idx;
    if (scaled >= static_cast<double>(counts.size()))
        idx = counts.size() - 1;
    else if (scaled > 0.0)
        idx = static_cast<std::size_t>(scaled);
    else
        idx = 0;
    ++counts[idx];
    ++n;
}

void
Histogram::add(std::span<const double> xs)
{
    for (double x : xs)
        add(x);
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts.size());
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i + 1);
}

std::string
Histogram::render(std::size_t width) const
{
    const std::size_t peak =
        *std::max_element(counts.begin(), counts.end());
    std::ostringstream out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::size_t bar =
            peak ? counts[i] * width / peak : 0;
        out << sim::format("[%12.4g, %12.4g) %8zu  ", binLo(i),
                           binHi(i), counts[i]);
        out << std::string(bar, '#') << "\n";
    }
    if (numInvalid)
        out << sim::format("invalid (nan/inf)            %8zu\n",
                           numInvalid);
    return out.str();
}

} // namespace stats
} // namespace varsim
