#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace varsim
{
namespace stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts(bins, 0)
{
    VARSIM_ASSERT(hi > lo, "Histogram: hi (%f) <= lo (%f)", hi, lo);
    VARSIM_ASSERT(bins >= 1, "Histogram: needs >= 1 bin");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(
        std::floor(frac * static_cast<double>(counts.size())));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
    ++n;
}

void
Histogram::add(std::span<const double> xs)
{
    for (double x : xs)
        add(x);
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts.size());
}

double
Histogram::binHi(std::size_t i) const
{
    return binLo(i + 1);
}

std::string
Histogram::render(std::size_t width) const
{
    const std::size_t peak =
        *std::max_element(counts.begin(), counts.end());
    std::ostringstream out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::size_t bar =
            peak ? counts[i] * width / peak : 0;
        out << sim::format("[%12.4g, %12.4g) %8zu  ", binLo(i),
                           binHi(i), counts[i]);
        out << std::string(bar, '#') << "\n";
    }
    return out.str();
}

} // namespace stats
} // namespace varsim
