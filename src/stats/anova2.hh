/**
 * @file
 * Two-way analysis of variance with replication.
 *
 * The paper's future-work list (Section 5.2) proposes extending the
 * ANOVA analysis to "different workload/system configuration
 * combinations": a two-factor design where factor A is, e.g., the
 * starting checkpoint (time variability) and factor B the system
 * configuration, with each cell holding perturbed replicate runs
 * (space variability). The interaction term answers a question the
 * one-way analysis cannot: does the *effect of the configuration*
 * depend on where in the workload's lifetime you measure?
 */

#ifndef VARSIM_STATS_ANOVA2_HH
#define VARSIM_STATS_ANOVA2_HH

#include <string>
#include <vector>

namespace varsim
{
namespace stats
{

/** Result of a two-way ANOVA with replication. */
struct TwoWayAnovaResult
{
    /** Factor A main effect (e.g. checkpoint / time). */
    double fA = 0.0;
    double dfA = 0.0;
    double pA = 1.0;

    /** Factor B main effect (e.g. system configuration). */
    double fB = 0.0;
    double dfB = 0.0;
    double pB = 1.0;

    /** A x B interaction. */
    double fAB = 0.0;
    double dfAB = 0.0;
    double pAB = 1.0;

    /** Within-cell (replication/space) variance. */
    double dfWithin = 0.0;
    double meanSquareWithin = 0.0;

    bool aSignificantAt(double alpha) const { return pA < alpha; }
    bool bSignificantAt(double alpha) const { return pB < alpha; }
    bool
    interactionSignificantAt(double alpha) const
    {
        return pAB < alpha;
    }

    std::string toString() const;
};

/**
 * Two-way ANOVA over @p cells, indexed cells[a][b] = replicate
 * observations for factor-A level a and factor-B level b. Every cell
 * must hold the same number (>= 2) of observations (a balanced
 * design — the natural shape of a seeded multi-run experiment).
 */
TwoWayAnovaResult
twoWayAnova(const std::vector<std::vector<std::vector<double>>>
                &cells);

} // namespace stats
} // namespace varsim

#endif // VARSIM_STATS_ANOVA2_HH
