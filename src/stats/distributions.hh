/**
 * @file
 * Probability distributions needed by the paper's statistical
 * machinery: the standard normal, Student's t (confidence intervals
 * and two-sample hypothesis tests, Section 5.1), and Fisher's F
 * (one-way ANOVA, Section 5.2).
 *
 * Everything is computed from first principles (regularized incomplete
 * beta/gamma functions via continued fractions) so the library has no
 * external numerical dependencies. Unit tests validate the results
 * against standard statistical-table values.
 */

#ifndef VARSIM_STATS_DISTRIBUTIONS_HH
#define VARSIM_STATS_DISTRIBUTIONS_HH

namespace varsim
{
namespace stats
{

/**
 * Regularized incomplete beta function I_x(a, b), for a,b > 0 and
 * x in [0,1]. Continued-fraction evaluation (Lentz's method).
 */
double incompleteBeta(double a, double b, double x);

/** Standard normal CDF. */
double normalCdf(double z);

/**
 * Standard normal quantile (inverse CDF).
 * @param p probability in (0, 1).
 */
double normalQuantile(double p);

/** CDF of Student's t distribution with @p df degrees of freedom. */
double studentTCdf(double t, double df);

/**
 * Quantile of Student's t distribution.
 * @param p probability in (0, 1).
 * @param df degrees of freedom (> 0).
 */
double studentTQuantile(double p, double df);

/**
 * Two-sided critical value used for confidence intervals: the t such
 * that P(|T| <= t) == @p confidence.
 *
 * Following the paper (Section 5.1.1), uses the Student's t
 * distribution for sample sizes below 50 and the normal distribution
 * otherwise; pass df >= 49 to get the normal behaviour automatically
 * (they coincide to three digits there anyway).
 */
double tCriticalTwoSided(double confidence, double df);

/** One-sided critical value: the t with P(T <= t) == 1 - alpha. */
double tCriticalOneSided(double alpha, double df);

/** CDF of the F distribution with (d1, d2) degrees of freedom. */
double fCdf(double f, double d1, double d2);

/** Quantile of the F distribution. */
double fQuantile(double p, double d1, double d2);

} // namespace stats
} // namespace varsim

#endif // VARSIM_STATS_DISTRIBUTIONS_HH
