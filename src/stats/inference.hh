/**
 * @file
 * Statistical inference for simulation experiments (paper Section 5).
 *
 * Implements exactly the techniques the paper applies:
 *
 *  - confidence intervals on the mean (Section 5.1.1), using
 *    Student's t below n=50 and the normal distribution above;
 *  - the two-sample hypothesis test of Section 5.1.2 with the paper's
 *    equal-sample-size pooled statistic
 *        t = (y1 - y2) / sqrt((s1^2 + s2^2) / n),  df = 2n - 2,
 *    plus a Welch variant for unequal sizes/variances;
 *  - wrong conclusion ratio (Section 4.1): the fraction of all
 *    single-run comparison pairs that reach the wrong conclusion;
 *  - sample-size estimation (Sections 5.1.1 and 5.1.2): the
 *    mean-precision formula n = (t*S / (r*Y))^2 and the iterative
 *    runs-needed-for-significance search behind Table 5;
 *  - one-way ANOVA (Section 5.2) to decide whether between-checkpoint
 *    (time) variability exceeds within-checkpoint (space) variability.
 */

#ifndef VARSIM_STATS_INFERENCE_HH
#define VARSIM_STATS_INFERENCE_HH

#include <cstddef>
#include <span>
#include <vector>

namespace varsim
{
namespace stats
{

/** A two-sided confidence interval on a population mean. */
struct ConfidenceInterval
{
    double mean = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double confidence = 0.0;  ///< e.g. 0.95

    /** Half-width of the interval. */
    double halfWidth() const { return 0.5 * (hi - lo); }

    /** True if this interval and @p other share any point. */
    bool overlaps(const ConfidenceInterval &other) const;
};

/**
 * Confidence interval for the mean of @p xs at level @p confidence
 * (paper equation in Section 5.1.1: ybar +/- t*s/sqrt(n)).
 */
ConfidenceInterval meanConfidenceInterval(std::span<const double> xs,
                                          double confidence);

/**
 * Confidence interval on mean(a) - mean(b): bounds the *magnitude*
 * of a configuration difference, the complement to the direction
 * question the paper focuses on ("errors related to the magnitude
 * of the difference", Section 5.1). Uses the pooled estimator for
 * equal sample sizes and Welch's otherwise.
 */
ConfidenceInterval
differenceConfidenceInterval(std::span<const double> a,
                             std::span<const double> b,
                             double confidence);

/** Result of a two-sample test of H0: mu_a == mu_b. */
struct TTestResult
{
    double statistic = 0.0;      ///< the t statistic
    double degreesOfFreedom = 0; ///< df used
    double pValueOneSided = 1.0; ///< P(T >= t) under H0
    double pValueTwoSided = 1.0; ///< P(|T| >= |t|) under H0

    /**
     * True if H0 is rejected in favour of mu_a > mu_b at
     * significance level @p alpha (one-sided).
     */
    bool rejectsAtLevel(double alpha) const;
};

/**
 * The paper's pooled two-sample t test (Section 5.1.2), requiring
 * equal sample sizes: statistic (ya - yb)/sqrt((sa^2+sb^2)/n) with
 * 2n-2 degrees of freedom. The alternative hypothesis is
 * mu_a > mu_b (one-sided upper tail).
 */
TTestResult pooledTTest(std::span<const double> a,
                        std::span<const double> b);

/**
 * Welch's two-sample t test: no equal-size or equal-variance
 * assumption. Alternative hypothesis mu_a > mu_b.
 */
TTestResult welchTTest(std::span<const double> a,
                       std::span<const double> b);

/**
 * Wrong conclusion ratio (Section 4.1): given per-run results for a
 * configuration expected to be slower (@p slower) and one expected to
 * be faster (@p faster) — "faster" meaning smaller metric, e.g. cycles
 * per transaction — enumerate all |slower| x |faster| single-run
 * pairs and return the fraction in which the supposedly faster
 * configuration produced the larger value, i.e. the experimenter
 * would conclude the wrong direction. Ties count as wrong (no
 * difference observed where one exists).
 *
 * The "expected" direction is conventionally taken from the sample
 * means, matching the paper: "the correct conclusion is the
 * relationship between the averages of the N runs".
 */
double wrongConclusionRatio(std::span<const double> slower,
                            std::span<const double> faster);

/**
 * As above but determines the direction from the two sample means
 * itself and returns the fraction of pairs contradicting it.
 */
double wrongConclusionRatioAuto(std::span<const double> a,
                                std::span<const double> b);

/**
 * Mean-precision sample-size estimate (Section 5.1.1):
 *    n = (t * S / (r * Y))^2
 * where S/Y is the coefficient of variation (as a fraction, not a
 * percent), r the allowed relative error, and t the two-sided
 * Student-t critical value of the chosen confidence probability at
 * df = n-1. Because t depends on n, the formula is iterated to a
 * fixed point from the normal-deviate seed; at small n the t tail is
 * fatter than the normal's, so the honest answer is a few runs
 * larger than the z-based closed form. Returns 0 for a
 * zero-variability sample (one run already has the exact mean).
 *
 * The paper's worked example: r=0.04, confidence 95%, S/Y = 0.09.
 * The normal deviate (t ~= 2) gives the paper's n ~= 20; the t
 * iteration converges to 22.
 */
std::size_t meanPrecisionSampleSize(double cov, double relativeError,
                                    double confidence);

/**
 * Runs needed for significance (Section 5.1.2, Table 5): given pilot
 * estimates of the two configurations' means and standard deviations,
 * find the smallest per-configuration sample size n >= 2 such that
 * the pooled t statistic exceeds the one-sided critical value at
 * significance level @p alpha with 2n-2 degrees of freedom.
 *
 * @param meanDiff     |mu_a - mu_b| estimate (must be > 0)
 * @param varA, varB   variance estimates for the two configurations
 * @param alpha        significance level (wrong-conclusion bound)
 * @param maxN         search cap; returns maxN if not reached
 */
std::size_t runsNeededForSignificance(double meanDiff, double varA,
                                      double varB, double alpha,
                                      std::size_t maxN = 10000);

/** Result of a one-way analysis of variance. */
struct AnovaResult
{
    double fStatistic = 0.0;
    double dfBetween = 0.0;
    double dfWithin = 0.0;
    double pValue = 1.0;
    double meanSquareBetween = 0.0;
    double meanSquareWithin = 0.0;

    /** True if between-group variability is significant at alpha. */
    bool significantAt(double alpha) const { return pValue < alpha; }
};

/**
 * One-way ANOVA over @p groups (each group = runs from one
 * checkpoint/starting point, Section 5.2). A significant result
 * means time variability cannot be attributed to space variability
 * and the sample must include runs from multiple starting points.
 */
AnovaResult oneWayAnova(const std::vector<std::vector<double>> &groups);

} // namespace stats
} // namespace varsim

#endif // VARSIM_STATS_INFERENCE_HH
