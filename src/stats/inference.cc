#include "stats/inference.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "stats/distributions.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace stats
{

bool
ConfidenceInterval::overlaps(const ConfidenceInterval &other) const
{
    return lo <= other.hi && other.lo <= hi;
}

ConfidenceInterval
meanConfidenceInterval(std::span<const double> xs, double confidence)
{
    VARSIM_ASSERT(xs.size() >= 2,
                  "confidence interval needs >= 2 samples, got %zu",
                  xs.size());
    const Summary s = summarize(xs);
    const double df = static_cast<double>(xs.size() - 1);
    const double t = tCriticalTwoSided(confidence, df);
    const double half =
        t * s.stddev / std::sqrt(static_cast<double>(xs.size()));
    return {s.mean, s.mean - half, s.mean + half, confidence};
}

ConfidenceInterval
differenceConfidenceInterval(std::span<const double> a,
                             std::span<const double> b,
                             double confidence)
{
    VARSIM_ASSERT(a.size() >= 2 && b.size() >= 2,
                  "difference CI needs >= 2 samples per side");
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    const double diff = sa.mean - sb.mean;

    double se, df;
    if (a.size() == b.size()) {
        // Pooled, equal n (the paper's experiment shape).
        const double va = sa.stddev * sa.stddev;
        const double vb = sb.stddev * sb.stddev;
        se = std::sqrt((va + vb) / na);
        df = 2.0 * na - 2.0;
    } else {
        const double va = sa.stddev * sa.stddev / na;
        const double vb = sb.stddev * sb.stddev / nb;
        se = std::sqrt(va + vb);
        const double num = (va + vb) * (va + vb);
        const double den =
            va * va / (na - 1.0) + vb * vb / (nb - 1.0);
        df = den > 0.0 ? num / den : na + nb - 2.0;
    }
    const double t = tCriticalTwoSided(confidence, df);
    return {diff, diff - t * se, diff + t * se, confidence};
}

bool
TTestResult::rejectsAtLevel(double alpha) const
{
    return pValueOneSided < alpha;
}

TTestResult
pooledTTest(std::span<const double> a, std::span<const double> b)
{
    VARSIM_ASSERT(a.size() == b.size(),
                  "pooledTTest requires equal sample sizes "
                  "(%zu vs %zu); use welchTTest otherwise",
                  a.size(), b.size());
    VARSIM_ASSERT(a.size() >= 2, "pooledTTest needs n >= 2");

    const double n = static_cast<double>(a.size());
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    const double va = sa.stddev * sa.stddev;
    const double vb = sb.stddev * sb.stddev;

    TTestResult r;
    r.degreesOfFreedom = 2.0 * n - 2.0;
    const double denom = std::sqrt((va + vb) / n);
    if (denom == 0.0) {
        r.statistic = sa.mean == sb.mean
                          ? 0.0
                          : (sa.mean > sb.mean ? 1e12 : -1e12);
    } else {
        r.statistic = (sa.mean - sb.mean) / denom;
    }
    r.pValueOneSided =
        1.0 - studentTCdf(r.statistic, r.degreesOfFreedom);
    const double tail =
        1.0 - studentTCdf(std::fabs(r.statistic), r.degreesOfFreedom);
    r.pValueTwoSided = std::min(1.0, 2.0 * tail);
    return r;
}

TTestResult
welchTTest(std::span<const double> a, std::span<const double> b)
{
    VARSIM_ASSERT(a.size() >= 2 && b.size() >= 2,
                  "welchTTest needs n >= 2 in both samples");
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    const double va = sa.stddev * sa.stddev / na;
    const double vb = sb.stddev * sb.stddev / nb;

    TTestResult r;
    const double denom = std::sqrt(va + vb);
    if (denom == 0.0) {
        r.statistic = sa.mean == sb.mean
                          ? 0.0
                          : (sa.mean > sb.mean ? 1e12 : -1e12);
        r.degreesOfFreedom = na + nb - 2.0;
    } else {
        r.statistic = (sa.mean - sb.mean) / denom;
        const double num = (va + vb) * (va + vb);
        const double den = va * va / (na - 1.0) + vb * vb / (nb - 1.0);
        r.degreesOfFreedom = den > 0.0 ? num / den : na + nb - 2.0;
    }
    r.pValueOneSided =
        1.0 - studentTCdf(r.statistic, r.degreesOfFreedom);
    const double tail =
        1.0 - studentTCdf(std::fabs(r.statistic), r.degreesOfFreedom);
    r.pValueTwoSided = std::min(1.0, 2.0 * tail);
    return r;
}

double
wrongConclusionRatio(std::span<const double> slower,
                     std::span<const double> faster)
{
    VARSIM_ASSERT(!slower.empty() && !faster.empty(),
                  "wrongConclusionRatio on empty sample");
    // Counting pairs with f >= s naively is O(|slower| x |faster|),
    // which dominates campaign reports once groups reach tens of
    // thousands of runs. Sorting the finite "faster" values lets each
    // s count its pairs with one binary search, for the exact same
    // integer count: a NaN on either side never satisfies f >= s, so
    // NaNs are dropped from the sorted copy (they would also break
    // the comparator's strict weak ordering) and contribute nothing,
    // while the denominator keeps every pair.
    std::vector<double> sorted;
    sorted.reserve(faster.size());
    for (double f : faster)
        if (!std::isnan(f))
            sorted.push_back(f);
    std::sort(sorted.begin(), sorted.end());
    std::size_t wrong = 0;
    for (double s : slower) {
        if (std::isnan(s))
            continue;
        wrong += static_cast<std::size_t>(
            sorted.end() -
            std::lower_bound(sorted.begin(), sorted.end(), s));
    }
    return static_cast<double>(wrong) /
           static_cast<double>(slower.size() * faster.size());
}

double
wrongConclusionRatioAuto(std::span<const double> a,
                         std::span<const double> b)
{
    const double ma = mean(a);
    const double mb = mean(b);
    // The configuration with the larger mean metric is the "slower"
    // one; pairs where the other configuration's single run is not
    // strictly smaller contradict the mean-based conclusion.
    if (ma >= mb)
        return wrongConclusionRatio(a, b);
    return wrongConclusionRatio(b, a);
}

std::size_t
meanPrecisionSampleSize(double cov, double relativeError,
                        double confidence)
{
    VARSIM_ASSERT(cov >= 0.0, "negative coefficient of variation");
    VARSIM_ASSERT(relativeError > 0.0, "relativeError must be > 0");
    if (cov == 0.0)
        return 0;

    // Section 5.1.1 builds the interval from Student's t, whose
    // quantile depends on n itself (df = n-1) — the normal deviate
    // underestimates n at small samples. Seed with the normal
    // approximation and iterate n -> ceil((t(n-1) * cov / r)^2) to
    // a fixed point; t shrinks as n grows, so the iteration settles
    // in a few steps (an adjacent 2-cycle resolves to the larger,
    // conservative value).
    auto needed = [&](double t) {
        const double n = std::pow(t * cov / relativeError, 2.0);
        return std::max<std::size_t>(
            2, static_cast<std::size_t>(std::ceil(n)));
    };
    std::size_t n =
        needed(normalQuantile(0.5 * (1.0 + confidence)));
    std::size_t prev = 0;
    for (int iter = 0; iter < 64; ++iter) {
        const std::size_t next = needed(tCriticalTwoSided(
            confidence, static_cast<double>(n - 1)));
        if (next == n)
            return n;
        if (next == prev)
            return std::max(n, next);
        prev = n;
        n = next;
    }
    return n;
}

std::size_t
runsNeededForSignificance(double meanDiff, double varA, double varB,
                          double alpha, std::size_t maxN)
{
    VARSIM_ASSERT(meanDiff > 0.0,
                  "runsNeededForSignificance: meanDiff must be > 0");
    VARSIM_ASSERT(alpha > 0.0 && alpha < 1.0, "bad alpha %f", alpha);
    for (std::size_t n = 2; n <= maxN; ++n) {
        const double dn = static_cast<double>(n);
        const double t = meanDiff / std::sqrt((varA + varB) / dn);
        const double crit = tCriticalOneSided(alpha, 2.0 * dn - 2.0);
        if (t >= crit)
            return n;
    }
    return maxN;
}

AnovaResult
oneWayAnova(const std::vector<std::vector<double>> &groups)
{
    VARSIM_ASSERT(groups.size() >= 2, "ANOVA needs >= 2 groups");

    std::size_t total_n = 0;
    RunningStat grand;
    for (const auto &g : groups) {
        VARSIM_ASSERT(g.size() >= 2,
                      "ANOVA group needs >= 2 observations");
        total_n += g.size();
        for (double x : g)
            grand.add(x);
    }
    const double grandMean = grand.mean();

    double ssBetween = 0.0;
    double ssWithin = 0.0;
    for (const auto &g : groups) {
        const Summary s = summarize(g);
        const double ng = static_cast<double>(g.size());
        ssBetween += ng * (s.mean - grandMean) * (s.mean - grandMean);
        ssWithin += (ng - 1.0) * s.stddev * s.stddev;
    }

    AnovaResult r;
    r.dfBetween = static_cast<double>(groups.size() - 1);
    r.dfWithin = static_cast<double>(total_n - groups.size());
    r.meanSquareBetween = ssBetween / r.dfBetween;
    r.meanSquareWithin =
        r.dfWithin > 0.0 ? ssWithin / r.dfWithin : 0.0;
    if (r.meanSquareWithin <= 0.0) {
        // Degenerate: zero within-group variance. Any between-group
        // difference is then infinitely significant.
        r.fStatistic = ssBetween > 0.0 ? 1e12 : 0.0;
        r.pValue = ssBetween > 0.0 ? 0.0 : 1.0;
        return r;
    }
    r.fStatistic = r.meanSquareBetween / r.meanSquareWithin;
    r.pValue = 1.0 - fCdf(r.fStatistic, r.dfBetween, r.dfWithin);
    return r;
}

} // namespace stats
} // namespace varsim
