#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace varsim
{
namespace stats
{

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mu - mu;
    const double total = na + nb;
    mu += delta * nb / total;
    m2 += other.m2 + delta * delta * na * nb / total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    n += other.n;
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::coefficientOfVariation() const
{
    if (mean == 0.0) {
        // Relative variability of a zero-mean sample is undefined;
        // returning 0 here would falsely report "no variability"
        // even when the sample visibly scatters.
        if (stddev == 0.0)
            return 0.0;
        return std::numeric_limits<double>::quiet_NaN();
    }
    return 100.0 * stddev / mean;
}

double
Summary::rangeOfVariability() const
{
    if (mean == 0.0) {
        if (max - min == 0.0)
            return 0.0;
        return std::numeric_limits<double>::quiet_NaN();
    }
    return 100.0 * (max - min) / mean;
}

Summary
summarize(std::span<const double> xs)
{
    RunningStat rs;
    for (double x : xs)
        rs.add(x);
    Summary s;
    s.n = rs.count();
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = rs.count() ? rs.min() : 0.0;
    s.max = rs.count() ? rs.max() : 0.0;
    return s;
}

Summary
summarize(const std::vector<double> &xs)
{
    return summarize(std::span<const double>(xs.data(), xs.size()));
}

double
mean(std::span<const double> xs)
{
    RunningStat rs;
    for (double x : xs)
        rs.add(x);
    return rs.mean();
}

double
variance(std::span<const double> xs)
{
    RunningStat rs;
    for (double x : xs)
        rs.add(x);
    return rs.variance();
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

} // namespace stats
} // namespace varsim
