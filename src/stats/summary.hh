/**
 * @file
 * Descriptive statistics used throughout the paper's methodology.
 *
 * Two paper-specific metrics live here:
 *
 *  - coefficient of variation (Section 3.3): 100 * stddev / mean,
 *    the paper's estimate of space-variability magnitude;
 *  - range of variability (Section 4.2): (max - min) / mean as a
 *    percentage — "the higher the range of variability, the more
 *    likely one is to make an incorrect conclusion."
 */

#ifndef VARSIM_STATS_SUMMARY_HH
#define VARSIM_STATS_SUMMARY_HH

#include <cstddef>
#include <span>
#include <vector>

namespace varsim
{
namespace stats
{

/**
 * Numerically stable running mean/variance accumulator (Welford).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (Chan's algorithm). */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of observations. */
    std::size_t count() const { return n; }

    /** Sample mean. Zero if empty. */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance (n-1 denominator). Zero if n < 2. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest observation seen. */
    double min() const { return lo; }

    /** Largest observation seen. */
    double max() const { return hi; }

    /** Sum of all observations. */
    double sum() const { return mu * static_cast<double>(n); }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Full descriptive summary of a set of observations.
 */
struct Summary
{
    std::size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< unbiased (n-1)
    double min = 0.0;
    double max = 0.0;

    /**
     * Coefficient of variation in percent: 100 * stddev / mean.
     * NaN when the mean is zero but the sample scatters (relative
     * variability is undefined there, not zero); 0 for a constant
     * all-zero sample.
     */
    double coefficientOfVariation() const;

    /**
     * Range of variability in percent: 100 * (max - min) / mean.
     * NaN when the mean is zero but max > min, as above.
     */
    double rangeOfVariability() const;
};

/** Compute a Summary over @p xs. */
Summary summarize(std::span<const double> xs);

/** Convenience overload. */
Summary summarize(const std::vector<double> &xs);

/** Sample mean of @p xs (0 if empty). */
double mean(std::span<const double> xs);

/** Unbiased sample variance of @p xs (0 if n < 2). */
double variance(std::span<const double> xs);

/** Unbiased sample standard deviation of @p xs. */
double stddev(std::span<const double> xs);

/** Median (average of middle two for even n; 0 if empty). */
double median(std::vector<double> xs);

} // namespace stats
} // namespace varsim

#endif // VARSIM_STATS_SUMMARY_HH
