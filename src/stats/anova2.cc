#include "stats/anova2.hh"

#include "sim/logging.hh"
#include "stats/distributions.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace stats
{

std::string
TwoWayAnovaResult::toString() const
{
    return sim::format(
        "two-way ANOVA: A: F=%.3f (df %g) p=%.4g | B: F=%.3f "
        "(df %g) p=%.4g | AxB: F=%.3f (df %g) p=%.4g | "
        "MSwithin=%.4g (df %g)",
        fA, dfA, pA, fB, dfB, pB, fAB, dfAB, pAB,
        meanSquareWithin, dfWithin);
}

TwoWayAnovaResult
twoWayAnova(
    const std::vector<std::vector<std::vector<double>>> &cells)
{
    const std::size_t a = cells.size();
    VARSIM_ASSERT(a >= 2, "two-way ANOVA needs >= 2 A-levels");
    const std::size_t b = cells.front().size();
    VARSIM_ASSERT(b >= 2, "two-way ANOVA needs >= 2 B-levels");
    const std::size_t n = cells.front().front().size();
    VARSIM_ASSERT(n >= 2,
                  "two-way ANOVA needs >= 2 replicates per cell");
    for (const auto &row : cells) {
        VARSIM_ASSERT(row.size() == b, "ragged A-level");
        for (const auto &cell : row)
            VARSIM_ASSERT(cell.size() == n,
                          "unbalanced design: every cell needs "
                          "exactly %zu replicates", n);
    }

    // Means.
    RunningStat grand;
    std::vector<double> meanA(a, 0.0), meanB(b, 0.0);
    std::vector<std::vector<double>> meanCell(
        a, std::vector<double>(b, 0.0));
    for (std::size_t i = 0; i < a; ++i) {
        for (std::size_t j = 0; j < b; ++j) {
            RunningStat cell;
            for (double x : cells[i][j]) {
                cell.add(x);
                grand.add(x);
            }
            meanCell[i][j] = cell.mean();
        }
    }
    const double gm = grand.mean();
    for (std::size_t i = 0; i < a; ++i) {
        RunningStat r;
        for (std::size_t j = 0; j < b; ++j)
            r.add(meanCell[i][j]);
        meanA[i] = r.mean();
    }
    for (std::size_t j = 0; j < b; ++j) {
        RunningStat r;
        for (std::size_t i = 0; i < a; ++i)
            r.add(meanCell[i][j]);
        meanB[j] = r.mean();
    }

    // Sums of squares.
    const double da = static_cast<double>(a);
    const double db = static_cast<double>(b);
    const double dn = static_cast<double>(n);

    double ssA = 0.0;
    for (std::size_t i = 0; i < a; ++i)
        ssA += db * dn * (meanA[i] - gm) * (meanA[i] - gm);
    double ssB = 0.0;
    for (std::size_t j = 0; j < b; ++j)
        ssB += da * dn * (meanB[j] - gm) * (meanB[j] - gm);
    double ssAB = 0.0;
    double ssWithin = 0.0;
    for (std::size_t i = 0; i < a; ++i) {
        for (std::size_t j = 0; j < b; ++j) {
            const double dev =
                meanCell[i][j] - meanA[i] - meanB[j] + gm;
            ssAB += dn * dev * dev;
            for (double x : cells[i][j]) {
                ssWithin += (x - meanCell[i][j]) *
                            (x - meanCell[i][j]);
            }
        }
    }

    TwoWayAnovaResult r;
    r.dfA = da - 1.0;
    r.dfB = db - 1.0;
    r.dfAB = (da - 1.0) * (db - 1.0);
    r.dfWithin = da * db * (dn - 1.0);
    r.meanSquareWithin =
        r.dfWithin > 0.0 ? ssWithin / r.dfWithin : 0.0;

    auto fAndP = [&](double ss, double df, double &f, double &p) {
        const double ms = df > 0.0 ? ss / df : 0.0;
        if (r.meanSquareWithin <= 0.0) {
            f = ms > 0.0 ? 1e12 : 0.0;
            p = ms > 0.0 ? 0.0 : 1.0;
            return;
        }
        f = ms / r.meanSquareWithin;
        p = 1.0 - fCdf(f, df, r.dfWithin);
    };
    fAndP(ssA, r.dfA, r.fA, r.pA);
    fAndP(ssB, r.dfB, r.fB, r.pB);
    fAndP(ssAB, r.dfAB, r.fAB, r.pAB);
    return r;
}

} // namespace stats
} // namespace varsim
