/**
 * @file
 * Fixed-bin histogram with an ASCII renderer, used by the benchmark
 * harness to visualize figure-style distributions in a terminal.
 */

#ifndef VARSIM_STATS_HISTOGRAM_HH
#define VARSIM_STATS_HISTOGRAM_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace varsim
{
namespace stats
{

/** Equal-width binned histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo    lower edge of the first bin
     * @param hi    upper edge of the last bin (must be > lo)
     * @param bins  number of bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /**
     * Add one observation (clamped into the edge bins). Non-finite
     * samples (NaN, ±inf) cannot be binned; they are counted in the
     * invalid bucket instead and do not contribute to total().
     */
    void add(double x);

    /** Add many observations. */
    void add(std::span<const double> xs);

    /** Count in bin @p i. */
    std::size_t count(std::size_t i) const { return counts.at(i); }

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Total binned observations (excludes the invalid bucket). */
    std::size_t total() const { return n; }

    /** Non-finite samples rejected into the invalid bucket. */
    std::size_t invalid() const { return numInvalid; }

    /** Lower edge of bin @p i. */
    double binLo(std::size_t i) const;

    /** Upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /**
     * Render as ASCII rows:  "[lo, hi)  count  ####".
     * @param width  maximum bar width in characters.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts;
    std::size_t n = 0;
    std::size_t numInvalid = 0;
};

} // namespace stats
} // namespace varsim

#endif // VARSIM_STATS_HISTOGRAM_HH
