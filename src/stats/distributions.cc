#include "stats/distributions.hh"

#include <cmath>

#include "sim/logging.hh"

namespace varsim
{
namespace stats
{

namespace
{

/**
 * Continued-fraction kernel for the incomplete beta function
 * (Numerical Recipes style, modified Lentz algorithm).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int maxIter = 300;
    constexpr double eps = 3e-14;
    constexpr double fpmin = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= maxIter; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

/**
 * Generic monotone-CDF inversion by bisection on [lo, hi].
 */
template <typename Cdf>
double
invertCdf(Cdf cdf, double p, double lo, double hi)
{
    // Expand the bracket if needed.
    for (int i = 0; i < 200 && cdf(lo) > p; ++i)
        lo *= 2.0;
    for (int i = 0; i < 200 && cdf(hi) < p; ++i)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + std::fabs(hi)))
            break;
    }
    return 0.5 * (lo + hi);
}

} // anonymous namespace

double
incompleteBeta(double a, double b, double x)
{
    VARSIM_ASSERT(a > 0.0 && b > 0.0, "incompleteBeta: bad shape");
    VARSIM_ASSERT(x >= 0.0 && x <= 1.0, "incompleteBeta: x=%f", x);
    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;
    const double lbeta = std::lgamma(a + b) - std::lgamma(a) -
                         std::lgamma(b) + a * std::log(x) +
                         b * std::log1p(-x);
    const double front = std::exp(lbeta);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    VARSIM_ASSERT(p > 0.0 && p < 1.0, "normalQuantile: p=%f", p);
    return invertCdf(normalCdf, p, -1.0, 1.0);
}

double
studentTCdf(double t, double df)
{
    VARSIM_ASSERT(df > 0.0, "studentTCdf: df=%f", df);
    const double x = df / (df + t * t);
    const double tail = 0.5 * incompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
studentTQuantile(double p, double df)
{
    VARSIM_ASSERT(p > 0.0 && p < 1.0, "studentTQuantile: p=%f", p);
    auto cdf = [df](double t) { return studentTCdf(t, df); };
    return invertCdf(cdf, p, -1.0, 1.0);
}

double
tCriticalTwoSided(double confidence, double df)
{
    VARSIM_ASSERT(confidence > 0.0 && confidence < 1.0,
                  "confidence=%f out of (0,1)", confidence);
    const double p = 0.5 * (1.0 + confidence);
    if (df >= 49.0)
        return normalQuantile(p);
    return studentTQuantile(p, df);
}

double
tCriticalOneSided(double alpha, double df)
{
    VARSIM_ASSERT(alpha > 0.0 && alpha < 1.0, "alpha=%f", alpha);
    if (df >= 49.0)
        return normalQuantile(1.0 - alpha);
    return studentTQuantile(1.0 - alpha, df);
}

double
fCdf(double f, double d1, double d2)
{
    VARSIM_ASSERT(d1 > 0.0 && d2 > 0.0, "fCdf: bad df");
    if (f <= 0.0)
        return 0.0;
    const double x = d1 * f / (d1 * f + d2);
    return incompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double
fQuantile(double p, double d1, double d2)
{
    VARSIM_ASSERT(p > 0.0 && p < 1.0, "fQuantile: p=%f", p);
    auto cdf = [d1, d2](double f) { return fCdf(f, d1, d2); };
    return invertCdf(cdf, p, 1e-9, 10.0);
}

} // namespace stats
} // namespace varsim
