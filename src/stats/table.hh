/**
 * @file
 * ASCII table formatter used by the benchmark harness to print
 * paper-style tables (Tables 1-5) and figure series.
 */

#ifndef VARSIM_STATS_TABLE_HH
#define VARSIM_STATS_TABLE_HH

#include <string>
#include <vector>

namespace varsim
{
namespace stats
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Config", "Mean", "CoV (%)"});
 *   t.addRow({"2-way", "4.61e6", "3.27"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule row. */
    void addRule();

    /** Render with padded, right-aligned numeric-looking columns. */
    std::string render() const;

    /** Number of data rows so far. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with %.*f. */
std::string fmtF(double v, int digits = 2);

/** Format a double with %.*g. */
std::string fmtG(double v, int digits = 4);

/** Format "mean +/- sd". */
std::string fmtMeanSd(double mean, double sd, int digits = 3);

} // namespace stats
} // namespace varsim

#endif // VARSIM_STATS_TABLE_HH
