#include "stats/table.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace varsim
{
namespace stats
{

namespace
{
const std::string ruleMarker = "\x01rule";
} // anonymous namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    VARSIM_ASSERT(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    VARSIM_ASSERT(cells.size() == headers_.size(),
                  "row has %zu cells, table has %zu columns",
                  cells.size(), headers_.size());
    body.push_back(std::move(cells));
}

void
Table::addRule()
{
    body.push_back({ruleMarker});
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : body) {
        if (row.size() == 1 && row[0] == ruleMarker)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            s += " " + cells[c] +
                 std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        return s + "\n";
    };

    std::ostringstream out;
    out << rule() << line(headers_) << rule();
    for (const auto &row : body) {
        if (row.size() == 1 && row[0] == ruleMarker)
            out << rule();
        else
            out << line(row);
    }
    out << rule();
    return out.str();
}

std::string
fmtF(double v, int digits)
{
    return sim::format("%.*f", digits, v);
}

std::string
fmtG(double v, int digits)
{
    return sim::format("%.*g", digits, v);
}

std::string
fmtMeanSd(double mean, double sd, int digits)
{
    return sim::format("%.*g +/- %.*g", digits, mean, digits, sd);
}

} // namespace stats
} // namespace varsim
