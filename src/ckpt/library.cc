#include "ckpt/library.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "ckpt/archive.hh"
#include "sim/jsonl.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace ckpt
{

namespace fs = std::filesystem;

namespace
{

std::string
entryLine(const LibraryEntry &e)
{
    sim::JsonWriter w;
    w.field("type", std::string("ckpt"));
    w.field("digest", e.digestHex);
    w.field("bytes", e.bytes);
    w.field("position", e.position);
    w.field("seed", e.warmupSeed);
    w.field("key", e.key);
    return w.str();
}

} // anonymous namespace

std::string
VerifyReport::toString() const
{
    std::string s = sim::format(
        "checked %zu object(s): %zu ok, %zu corrupt, %zu missing "
        "from disk, %zu re-indexed\n",
        checked, ok, corrupt, missing, reindexed);
    for (const std::string &p : problems)
        s += "  " + p + "\n";
    return s;
}

std::string
GcReport::toString() const
{
    return sim::format(
        "removed %zu temp file(s), %zu corrupt object(s); evicted "
        "%zu entr%s; freed %llu byte(s), kept %llu\n",
        removedTmp, removedCorrupt, evicted,
        evicted == 1 ? "y" : "ies",
        static_cast<unsigned long long>(bytesFreed),
        static_cast<unsigned long long>(bytesKept));
}

std::unique_ptr<CheckpointLibrary>
CheckpointLibrary::open(const std::string &dir)
{
    std::unique_ptr<CheckpointLibrary> lib(new CheckpointLibrary);
    lib->dir_ = dir;
    std::error_code ec;
    fs::create_directories(lib->objectsDir(), ec);
    if (ec)
        sim::fatal("cannot create checkpoint library %s: %s",
                   dir.c_str(), ec.message().c_str());

    // Reader/writer coexistence is by design (atomic objects,
    // append-only index); the shared lock only excludes gc, whose
    // deletions are the one operation that is NOT safe under a
    // concurrent fetch from another process.
    const std::string lockPath = dir + "/.lock";
    lib->lockFd = ::open(lockPath.c_str(), O_RDWR | O_CREAT, 0644);
    if (lib->lockFd < 0)
        sim::fatal("cannot open %s: %s", lockPath.c_str(),
                   std::strerror(errno));
    if (::flock(lib->lockFd, LOCK_SH | LOCK_NB) != 0) {
        if (errno == EWOULDBLOCK)
            sim::fatal(
                "checkpoint library %s is locked exclusively "
                "(a gc sweep in progress?); retry when it "
                "finishes", dir.c_str());
        sim::fatal("cannot lock checkpoint library %s: %s",
                   dir.c_str(), std::strerror(errno));
    }

    lib->indexFd = ::open(lib->indexPath().c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (lib->indexFd < 0)
        sim::fatal("cannot open %s: %s", lib->indexPath().c_str(),
                   std::strerror(errno));
    lib->replayIndex();
    return lib;
}

std::string
CheckpointLibrary::objectPath(const std::string &digestHex) const
{
    return objectsDir() + "/" + digestHex + ".vckpt";
}

void
CheckpointLibrary::replayIndex()
{
    std::ifstream in(indexPath(), std::ios::binary);
    if (!in)
        return; // fresh library
    const std::string data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos) {
            // A torn final line may be a *live* append from a
            // concurrent shard, not necessarily crash debris —
            // unlike the campaign store we must not truncate it,
            // just ignore it for this replay.
            break;
        }
        const std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        sim::JsonLine obj;
        if (!obj.parse(line) || obj.str("type") != "ckpt")
            continue;
        LibraryEntry e;
        e.digestHex = obj.str("digest");
        e.bytes = obj.num("bytes");
        e.position = obj.num("position");
        e.warmupSeed = obj.num("seed");
        e.key = obj.str("key");
        if (!e.digestHex.empty())
            remember(e);
    }
}

bool
CheckpointLibrary::remember(const LibraryEntry &e)
{
    if (byDigest.count(e.digestHex))
        return false;
    byDigest.emplace(e.digestHex, entries_.size());
    entries_.push_back(e);
    return true;
}

void
CheckpointLibrary::appendIndexLine(const LibraryEntry &e)
{
    // One write(2) per line over O_APPEND: concurrent shards'
    // appends interleave at line granularity, and replay dedups the
    // occasional double entry for the same digest.
    const std::string out = entryLine(e) + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n = ::write(indexFd, out.data() + off,
                                  out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            sim::fatal("write to checkpoint index failed: %s",
                       std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(indexFd) != 0)
        sim::fatal("fsync of checkpoint index failed: %s",
                   std::strerror(errno));
}

bool
CheckpointLibrary::fetch(const CheckpointKey &key,
                         core::Checkpoint &cp)
{
    const std::string hex = key.digestHex();
    const std::string path = objectPath(hex);
    std::lock_guard<std::mutex> lock(mu);
    if (!fs::exists(path)) {
        ++misses;
        return false;
    }
    LoadResult r = loadArchiveFile(path);
    if (!r.ok) {
        sim::warn("checkpoint library: %s — re-warming instead",
                  r.error.c_str());
        ++misses;
        return false;
    }
    if (r.meta.keyCanonical != key.canonical()) {
        // Digest collision or a foreign file at our address: never
        // restore a snapshot warmed under different conditions.
        sim::warn("checkpoint library: %s holds a different key — "
                  "re-warming instead", path.c_str());
        ++misses;
        return false;
    }
    cp.bytes = std::move(r.payload);
    ++hits;
    return true;
}

bool
CheckpointLibrary::publish(const CheckpointKey &key,
                           const core::Checkpoint &cp)
{
    const std::string hex = key.digestHex();
    LibraryEntry e;
    e.digestHex = hex;
    e.position = key.position;
    e.warmupSeed = key.warmupSeed;
    e.key = key.canonical();

    std::lock_guard<std::mutex> lock(mu);
    if (fs::exists(objectPath(hex))) {
        // Already on disk (an earlier run, or another shard won the
        // race with identical bytes). Make sure the index knows.
        std::error_code ec;
        e.bytes = static_cast<std::uint64_t>(
            fs::file_size(objectPath(hex), ec));
        if (remember(e))
            appendIndexLine(e);
        return false;
    }

    ArchiveMeta meta;
    meta.keyCanonical = e.key;
    meta.digest = key.digest();
    meta.position = key.position;
    meta.warmupSeed = key.warmupSeed;
    const auto bytes = buildArchive(meta, cp.bytes);
    e.bytes = bytes.size();

    std::string error;
    if (!writeFileAtomic(objectsDir(), hex + ".vckpt", bytes,
                         &error))
        sim::fatal("checkpoint library publish failed: %s",
                   error.c_str());
    if (remember(e))
        appendIndexLine(e);
    ++published;
    return true;
}

std::vector<LibraryEntry>
CheckpointLibrary::entries() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries_;
}

LibraryStats
CheckpointLibrary::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    LibraryStats st;
    st.entries = entries_.size();
    for (const LibraryEntry &e : entries_)
        st.bytes += e.bytes;
    st.hits = hits;
    st.misses = misses;
    st.published = published;
    return st;
}

VerifyReport
CheckpointLibrary::verify()
{
    std::lock_guard<std::mutex> lock(mu);
    VerifyReport rep;

    for (const auto &de : fs::directory_iterator(objectsDir())) {
        const std::string name = de.path().filename().string();
        if (name.size() < 6 ||
            name.substr(name.size() - 6) != ".vckpt")
            continue; // temp debris is gc's business
        ++rep.checked;
        LoadResult r = loadArchiveFile(de.path().string());
        if (!r.ok) {
            ++rep.corrupt;
            rep.problems.push_back(r.error);
            continue;
        }
        ++rep.ok;
        const std::string hex = name.substr(0, name.size() - 6);
        if (!byDigest.count(hex)) {
            // Valid object the index never heard of: the writer died
            // between rename and index append. Adopt it.
            LibraryEntry e;
            e.digestHex = hex;
            e.position = r.meta.position;
            e.warmupSeed = r.meta.warmupSeed;
            e.key = r.meta.keyCanonical;
            std::error_code ec;
            e.bytes = static_cast<std::uint64_t>(
                fs::file_size(de.path(), ec));
            remember(e);
            appendIndexLine(e);
            ++rep.reindexed;
        }
    }

    for (const LibraryEntry &e : entries_) {
        if (!fs::exists(objectPath(e.digestHex))) {
            ++rep.missing;
            rep.problems.push_back(sim::format(
                "index entry %s has no object file",
                e.digestHex.c_str()));
        }
    }
    return rep;
}

void
CheckpointLibrary::pin(const std::string &digestHex)
{
    std::lock_guard<std::mutex> lock(mu);
    ++pins[digestHex];
}

void
CheckpointLibrary::unpin(const std::string &digestHex)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = pins.find(digestHex);
    VARSIM_ASSERT(it != pins.end(),
                  "unpin of %s without a matching pin",
                  digestHex.c_str());
    if (--it->second == 0)
        pins.erase(it);
}

bool
CheckpointLibrary::pinned(const std::string &digestHex) const
{
    std::lock_guard<std::mutex> lock(mu);
    return pins.count(digestHex) > 0;
}

GcReport
CheckpointLibrary::gc(std::uint64_t maxBytes)
{
    std::lock_guard<std::mutex> lock(mu);

    // Upgrade to the exclusive library lock for the sweep. Any other
    // open of this library — another process's fetch/publish, or a
    // second in-process open — holds the shared lock and blocks the
    // upgrade, which is exactly the protection: gc deletes files.
    if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) {
        if (errno == EWOULDBLOCK)
            sim::fatal(
                "checkpoint library %s is in use by another "
                "process; gc needs exclusive access — stop the "
                "daemon or campaign first", dir_.c_str());
        sim::fatal("cannot lock checkpoint library %s for gc: %s",
                   dir_.c_str(), std::strerror(errno));
    }

    GcReport rep;

    // 1. Temporary debris from killed writers.
    std::vector<fs::path> doomed;
    for (const auto &de : fs::directory_iterator(objectsDir())) {
        const std::string name = de.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            doomed.push_back(de.path());
    }
    for (const fs::path &p : doomed) {
        std::error_code ec;
        rep.bytesFreed +=
            static_cast<std::uint64_t>(fs::file_size(p, ec));
        fs::remove(p, ec);
        ++rep.removedTmp;
    }

    // 2. Corrupt objects (and index entries whose object vanished).
    std::vector<LibraryEntry> kept;
    for (const LibraryEntry &e : entries_) {
        const std::string path = objectPath(e.digestHex);
        if (!fs::exists(path))
            continue; // drop the dangling index entry
        LoadResult r = loadArchiveFile(path);
        if (!r.ok) {
            std::error_code ec;
            rep.bytesFreed += static_cast<std::uint64_t>(
                fs::file_size(path, ec));
            fs::remove(path, ec);
            ++rep.removedCorrupt;
            continue;
        }
        kept.push_back(e);
    }

    // 3. Size cap: evict oldest publications first, but never an
    // object some in-process user has pinned (a restore in flight,
    // a warmer about to fetch) — eviction moves on to the next
    // oldest instead.
    std::uint64_t total = 0;
    for (const LibraryEntry &e : kept)
        total += e.bytes;
    std::vector<char> evict(kept.size(), 0);
    if (maxBytes) {
        for (std::size_t i = 0;
             total > maxBytes && i < kept.size(); ++i) {
            if (pins.count(kept[i].digestHex))
                continue;
            evict[i] = 1;
            total -= kept[i].bytes;
        }
    }
    std::vector<LibraryEntry> survivors;
    for (std::size_t i = 0; i < kept.size(); ++i) {
        if (!evict[i]) {
            survivors.push_back(kept[i]);
            continue;
        }
        std::error_code ec;
        rep.bytesFreed += kept[i].bytes;
        fs::remove(objectPath(kept[i].digestHex), ec);
        ++rep.evicted;
    }

    entries_ = std::move(survivors);
    byDigest.clear();
    for (std::size_t i = 0; i < entries_.size(); ++i)
        byDigest.emplace(entries_[i].digestHex, i);
    rep.bytesKept = total;
    rewriteIndex();

    // Back to the shared lock: normal operation may resume.
    if (::flock(lockFd, LOCK_SH) != 0)
        sim::fatal("cannot restore shared library lock on %s: %s",
                   dir_.c_str(), std::strerror(errno));
    return rep;
}

void
CheckpointLibrary::rewriteIndex()
{
    std::string body;
    for (const LibraryEntry &e : entries_)
        body += entryLine(e) + "\n";
    std::vector<std::uint8_t> bytes(body.begin(), body.end());
    std::string error;
    if (!writeFileAtomic(dir_, "index.jsonl", bytes, &error))
        sim::fatal("cannot rewrite checkpoint index: %s",
                   error.c_str());
    // The append fd still points at the replaced inode; reopen so
    // future appends land in the new index.
    ::close(indexFd);
    indexFd = ::open(indexPath().c_str(),
                     O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (indexFd < 0)
        sim::fatal("cannot reopen %s: %s", indexPath().c_str(),
                   std::strerror(errno));
}

CheckpointLibrary::~CheckpointLibrary()
{
    if (indexFd >= 0)
        ::close(indexFd);
    if (lockFd >= 0)
        ::close(lockFd); // releases the advisory lock
}

} // namespace ckpt
} // namespace varsim
