/**
 * @file
 * Content-addressed persistent library of warm-up checkpoints.
 *
 * Layout of a library directory:
 *
 *     <dir>/objects/<digest>.vckpt   one archive per checkpoint
 *     <dir>/index.jsonl              append-only entry manifest
 *
 * The object file name is the key digest, so a fetch never needs the
 * index: it stats the object directly, which is what makes the
 * library safe to share between concurrent `--shard i/N` processes
 * without locks. Publication is atomic (temp + rename, see
 * writeFileAtomic); two shards warming the same configuration race
 * benignly because identical keys produce byte-identical archives.
 * The index exists for enumeration (ls, gc, stats); a crash between
 * rename and index append leaves a valid but unindexed object that
 * verify() re-indexes.
 *
 * The paper's methodology (Section 3.2.2) restores one Simics
 * checkpoint many times with different perturbation seeds; this
 * library is that facility made durable: `campaign run` consults it
 * before re-simulating any warm-up, so the grid's warming cost is
 * paid once per (config, position), not once per process invocation.
 */

#ifndef VARSIM_CKPT_LIBRARY_HH
#define VARSIM_CKPT_LIBRARY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/key.hh"
#include "core/simulation.hh"

namespace varsim
{
namespace ckpt
{

/** One indexed checkpoint, as `ls` shows it. */
struct LibraryEntry
{
    std::string digestHex;
    std::uint64_t position = 0;
    std::uint64_t warmupSeed = 0;
    std::uint64_t bytes = 0;

    /** The key's canonical string (what the digest hashes). */
    std::string key;
};

/** Aggregate counters: persistent size plus this-session traffic. */
struct LibraryStats
{
    std::size_t entries = 0;
    std::uint64_t bytes = 0;

    /** fetch() calls served from disk this session. */
    std::size_t hits = 0;

    /** fetch() calls that found nothing usable this session. */
    std::size_t misses = 0;

    /** publish() calls that wrote a new object this session. */
    std::size_t published = 0;
};

/** What verify() found (and repaired). */
struct VerifyReport
{
    std::size_t checked = 0;
    std::size_t ok = 0;
    std::size_t corrupt = 0;

    /** Valid objects that were missing from the index (repaired). */
    std::size_t reindexed = 0;

    /** Index entries whose object file has disappeared. */
    std::size_t missing = 0;

    std::vector<std::string> problems;

    /** True when every object is intact and indexed. */
    bool clean() const { return corrupt == 0 && missing == 0; }

    std::string toString() const;
};

/** What gc() removed. */
struct GcReport
{
    std::size_t removedTmp = 0;
    std::size_t removedCorrupt = 0;
    std::size_t evicted = 0;
    std::uint64_t bytesFreed = 0;
    std::uint64_t bytesKept = 0;

    std::string toString() const;
};

class CheckpointLibrary
{
  public:
    /**
     * Open @p dir, creating the layout on first use.
     *
     * Every open holds a shared advisory flock(2) on `<dir>/.lock`
     * for the library's lifetime (a dedicated file, not the index
     * fd: rewriteIndex() replaces the index inode, which would drop
     * a lock held there). gc() needs the exclusive lock, so a
     * maintenance sweep cannot run while any process — a serve
     * daemon, a campaign shard — has the library open, and vice
     * versa; both sides fail fast with a clear message instead of
     * deleting objects out from under a restore.
     */
    static std::unique_ptr<CheckpointLibrary>
    open(const std::string &dir);

    const std::string &directory() const { return dir_; }

    /**
     * Look up @p key; on a hit, fill @p cp with the stored snapshot
     * and return true. A corrupt or mismatched object is a miss
     * (with a warning), never an abort: the caller re-warms.
     */
    bool fetch(const CheckpointKey &key, core::Checkpoint &cp);

    /**
     * Store @p cp under @p key. Returns true when a new object was
     * written, false when the object already existed (another shard
     * won the race, or a re-run republished).
     */
    bool publish(const CheckpointKey &key, const core::Checkpoint &cp);

    /** Indexed entries in publication order. */
    std::vector<LibraryEntry> entries() const;

    LibraryStats stats() const;

    /**
     * Re-parse every object on disk: counts intact and corrupt
     * archives, repairs index entries for unindexed valid objects,
     * reports index entries whose object vanished.
     */
    VerifyReport verify();

    /**
     * Pin @p digestHex: gc() will not evict the object while any
     * pin is outstanding. Pins nest (a count per digest) and are
     * in-process only — cross-process protection is the `.lock`
     * flock, which excludes gc entirely while the library is open
     * elsewhere. Pinning an unknown digest is fine (it protects a
     * concurrent publication about to be indexed).
     */
    void pin(const std::string &digestHex);

    /** Release one pin of @p digestHex. */
    void unpin(const std::string &digestHex);

    /** True while @p digestHex has outstanding pins. */
    bool pinned(const std::string &digestHex) const;

    /**
     * Sweep temporary debris from killed writers and corrupt
     * objects; when @p maxBytes is nonzero, evict oldest-published
     * entries until the library fits, skipping pinned objects.
     * Rewrites a compacted index. Fatal when another process holds
     * the library open (needs the exclusive `.lock`).
     */
    GcReport gc(std::uint64_t maxBytes = 0);

    ~CheckpointLibrary();

    CheckpointLibrary(const CheckpointLibrary &) = delete;
    CheckpointLibrary &operator=(const CheckpointLibrary &) = delete;

  private:
    CheckpointLibrary() = default;

    std::string objectsDir() const { return dir_ + "/objects"; }
    std::string indexPath() const { return dir_ + "/index.jsonl"; }
    std::string objectPath(const std::string &digestHex) const;

    /** Load index.jsonl into the entry list (dedup on digest). */
    void replayIndex();

    /** Append one entry line to the index (requires mu held). */
    void appendIndexLine(const LibraryEntry &e);

    /** Record @p e in memory unless already present (mu held). */
    bool remember(const LibraryEntry &e);

    /** Atomically rewrite the whole index from entries_ (mu held). */
    void rewriteIndex();

    std::string dir_;
    int indexFd = -1;
    int lockFd = -1; ///< shared flock on <dir>/.lock while open

    mutable std::mutex mu;
    std::vector<LibraryEntry> entries_;
    std::map<std::string, std::size_t> byDigest;
    std::map<std::string, std::size_t> pins; ///< digest -> count
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t published = 0;
};

} // namespace ckpt
} // namespace varsim

#endif // VARSIM_CKPT_LIBRARY_HH
