/**
 * @file
 * Identity of a warm-up checkpoint in the persistent library.
 *
 * A stored snapshot is only reusable when *everything* that shaped
 * the warmer's trajectory matches: the system configuration, the
 * workload (kind, op-stream seed, threads, scale), the perturbation
 * seed the warmer ran under, and the transaction position at which
 * the snapshot was taken. The key canonicalizes those knobs into a
 * "k=v;" string and content-addresses it with FNV-1a, the same hash
 * family the campaign spec fingerprint uses.
 */

#ifndef VARSIM_CKPT_KEY_HH
#define VARSIM_CKPT_KEY_HH

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "workload/workload.hh"

namespace varsim
{
namespace ckpt
{

/** FNV-1a offset basis (64-bit). */
constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

/** Continue an FNV-1a 64-bit hash over the bytes of @p s. */
std::uint64_t fnv1a64(std::uint64_t h, const std::string &s);

/** Append one "key=value;" token to a canonical string. */
void appendField(std::string &out, const char *key,
                 const std::string &value);

/**
 * Canonical "k=v;" rendering of the system knobs experiments vary.
 * Shared with CampaignSpec::fingerprint(): the output format is part
 * of every existing store's identity and must never change shape.
 */
void appendSystemFields(std::string &out,
                        const core::SystemConfig &sys);

/** Everything that determines a warm-up checkpoint's bytes. */
struct CheckpointKey
{
    core::SystemConfig sys;
    workload::WorkloadParams wl;

    /** Perturbation seed the warming simulation ran under. */
    std::uint64_t warmupSeed = 0;

    /** Transaction count at which the snapshot was taken. */
    std::uint64_t position = 0;

    /** The full "k=v;" identity string. */
    std::string canonical() const;

    /** FNV-1a digest of canonical(). */
    std::uint64_t digest() const;

    /** digest() as 16 lowercase hex digits (the object file name). */
    std::string digestHex() const;
};

} // namespace ckpt
} // namespace varsim

#endif // VARSIM_CKPT_KEY_HH
