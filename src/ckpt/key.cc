#include "ckpt/key.hh"

#include "sim/logging.hh"

namespace varsim
{
namespace ckpt
{

std::uint64_t
fnv1a64(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

void
appendField(std::string &out, const char *key,
            const std::string &value)
{
    out += key;
    out += '=';
    out += value;
    out += ';';
}

namespace
{

template <typename T>
void
field(std::string &out, const char *key, T value)
{
    appendField(out, key, std::to_string(value));
}

} // anonymous namespace

void
appendSystemFields(std::string &out, const core::SystemConfig &sys)
{
    field(out, "nodes", sys.mem.numNodes);
    field(out, "block", sys.mem.blockBytes);
    field(out, "l1", sys.mem.l1Size);
    field(out, "l1w", sys.mem.l1Assoc);
    field(out, "l2", sys.mem.l2Size);
    field(out, "l2w", sys.mem.l2Assoc);
    field(out, "dram", static_cast<unsigned long long>(
                           sys.mem.dramLatency));
    field(out, "perturb", static_cast<unsigned long long>(
                              sys.mem.perturbMaxNs));
    field(out, "proto", static_cast<int>(sys.mem.protocol));
    field(out, "prefetch", sys.mem.l2NextLinePrefetch ? 1 : 0);
    field(out, "model", static_cast<int>(sys.cpu.model));
    field(out, "rob", sys.cpu.robEntries);
    field(out, "quantum",
          static_cast<unsigned long long>(sys.os.quantum));
}

std::string
CheckpointKey::canonical() const
{
    std::string out;
    out.reserve(256);
    appendSystemFields(out, sys);
    field(out, "wl", static_cast<int>(wl.kind));
    field(out, "wlseed", static_cast<unsigned long long>(wl.seed));
    field(out, "tpc", wl.threadsPerCpu);
    appendField(out, "scale", sim::format("%.17g", wl.scale));
    field(out, "warmseed",
          static_cast<unsigned long long>(warmupSeed));
    field(out, "pos", static_cast<unsigned long long>(position));
    return out;
}

std::uint64_t
CheckpointKey::digest() const
{
    return fnv1a64(kFnvOffsetBasis, canonical());
}

std::string
CheckpointKey::digestHex() const
{
    return sim::format("%016llx",
                       static_cast<unsigned long long>(digest()));
}

} // namespace ckpt
} // namespace varsim
