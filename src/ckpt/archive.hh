/**
 * @file
 * The on-disk checkpoint archive format.
 *
 * Layout (all integers little-endian, fixed width):
 *
 *     offset  size  field
 *     0       8     magic "VSIMCKPT"
 *     8       4     format version (currently 1)
 *     12      4     section count S
 *     16      12*S  section table: {u32 id, u64 length} per section
 *     ...           section payloads, in table order
 *     end-8   8     FNV-1a 64 checksum over every preceding byte
 *
 * Section 1 is the metadata (a sim::CheckpointOut archive holding the
 * key's canonical string, digest, position, and warm-up seed);
 * section 2 is the raw core::Checkpoint payload. The section table's
 * lengths must exactly tile the file and the trailing checksum must
 * match, so a truncated or bit-flipped file is rejected with a
 * description instead of being misdeserialized. Parsing never
 * aborts the process: verify/gc want to report damage, not die on it.
 *
 * Archives are fully deterministic — no timestamps or host identity —
 * so the same key and payload always produce the same bytes, which is
 * what lets concurrent shard processes publish the same object
 * without coordination.
 */

#ifndef VARSIM_CKPT_ARCHIVE_HH
#define VARSIM_CKPT_ARCHIVE_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace varsim
{
namespace ckpt
{

constexpr std::uint32_t kArchiveVersion = 1;

/**
 * FNV-1a 64 over raw bytes: the whole-file checksum primitive every
 * binary container in this tree trails its bytes with (checkpoint
 * archives, campaign result segments).
 */
std::uint64_t fnvBytes(const std::uint8_t *p, std::size_t n);

/** Append @p v to @p out little-endian, fixed width. */
template <typename T>
void
putLe(std::vector<std::uint8_t> &out, T v)
{
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Read a little-endian fixed-width T at @p p. */
template <typename T>
T
getLe(const std::uint8_t *p)
{
    static_assert(std::is_unsigned_v<T>);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(p[i]) << (8 * i);
    return v;
}

/** Metadata stored alongside the snapshot payload. */
struct ArchiveMeta
{
    /** The checkpoint key's canonical "k=v;" string. */
    std::string keyCanonical;

    /** FNV-1a digest of keyCanonical (the content address). */
    std::uint64_t digest = 0;

    /** Transaction position of the snapshot. */
    std::uint64_t position = 0;

    /** Perturbation seed of the warming run. */
    std::uint64_t warmupSeed = 0;
};

/** Serialize metadata + checkpoint payload into archive bytes. */
std::vector<std::uint8_t>
buildArchive(const ArchiveMeta &meta,
             const std::vector<std::uint8_t> &payload);

/** Outcome of parsing an archive; never aborts on damage. */
struct LoadResult
{
    bool ok = false;

    /** Human-readable reason when !ok. */
    std::string error;

    ArchiveMeta meta;
    std::vector<std::uint8_t> payload;
};

/** Validate and unpack archive bytes. */
LoadResult parseArchive(const std::vector<std::uint8_t> &bytes);

/** Read @p path and parse it; I/O errors land in LoadResult. */
LoadResult loadArchiveFile(const std::string &path);

/**
 * Durably write @p bytes as @p dir/@p name: write to a unique
 * temporary in the same directory, fsync, rename(2) over the final
 * name, fsync the directory. Readers see either nothing or the whole
 * file; a killed writer leaves only a ".tmp." file that gc sweeps.
 * Returns false (with @p error set) on failure.
 */
bool writeFileAtomic(const std::string &dir, const std::string &name,
                     const std::vector<std::uint8_t> &bytes,
                     std::string *error);

} // namespace ckpt
} // namespace varsim

#endif // VARSIM_CKPT_ARCHIVE_HH
