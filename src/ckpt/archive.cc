#include "ckpt/archive.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <type_traits>

#include "ckpt/key.hh"
#include "sim/jsonl.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace ckpt
{

namespace
{

constexpr char kMagic[8] = {'V', 'S', 'I', 'M', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kSectionMeta = 1;
constexpr std::uint32_t kSectionPayload = 2;
constexpr std::size_t kMaxSections = 16;

/** The metadata section: one JSON line, parseable without aborting. */
std::string
metaJson(const ArchiveMeta &meta)
{
    sim::JsonWriter w;
    w.field("key", meta.keyCanonical);
    w.field("digest",
            sim::format("%016llx", static_cast<unsigned long long>(
                                       meta.digest)));
    w.field("position", meta.position);
    w.field("seed", meta.warmupSeed);
    return w.str();
}

LoadResult
failure(const std::string &why)
{
    LoadResult r;
    r.error = why;
    return r;
}

} // anonymous namespace

std::uint64_t
fnvBytes(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = kFnvOffsetBasis;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::vector<std::uint8_t>
buildArchive(const ArchiveMeta &meta,
             const std::vector<std::uint8_t> &payload)
{
    const std::string mj = metaJson(meta);

    std::vector<std::uint8_t> out;
    out.reserve(24 + 24 + mj.size() + payload.size() + 8);
    for (char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    putLe<std::uint32_t>(out, kArchiveVersion);
    putLe<std::uint32_t>(out, 2); // section count
    putLe<std::uint32_t>(out, kSectionMeta);
    putLe<std::uint64_t>(out, mj.size());
    putLe<std::uint32_t>(out, kSectionPayload);
    putLe<std::uint64_t>(out, payload.size());
    out.insert(out.end(), mj.begin(), mj.end());
    out.insert(out.end(), payload.begin(), payload.end());
    putLe<std::uint64_t>(out, fnvBytes(out.data(), out.size()));
    return out;
}

LoadResult
parseArchive(const std::vector<std::uint8_t> &bytes)
{
    // Fixed header: magic + version + section count.
    if (bytes.size() < 16 + 8)
        return failure(sim::format("file too small (%zu bytes)",
                                   bytes.size()));
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return failure("bad magic (not a varsim checkpoint archive)");
    const auto version = getLe<std::uint32_t>(bytes.data() + 8);
    if (version != kArchiveVersion)
        return failure(sim::format(
            "unsupported format version %u (this build reads %u)",
            version, kArchiveVersion));
    const auto sections = getLe<std::uint32_t>(bytes.data() + 12);
    if (sections == 0 || sections > kMaxSections)
        return failure(sim::format("implausible section count %u",
                                   sections));

    // Section table must fit, and the declared lengths must exactly
    // tile the bytes between the table and the trailing checksum.
    const std::size_t tableEnd =
        16 + static_cast<std::size_t>(sections) * 12;
    if (tableEnd + 8 > bytes.size())
        return failure("truncated inside the section table");
    std::size_t bodyRemaining = bytes.size() - tableEnd - 8;

    struct Section
    {
        std::uint32_t id;
        std::size_t offset;
        std::size_t length;
    };
    std::vector<Section> table;
    std::size_t offset = tableEnd;
    for (std::uint32_t s = 0; s < sections; ++s) {
        const std::uint8_t *ent = bytes.data() + 16 + s * 12;
        const auto id = getLe<std::uint32_t>(ent);
        const auto len = getLe<std::uint64_t>(ent + 4);
        if (len > bodyRemaining)
            return failure(sim::format(
                "section %u declares %llu bytes but only %zu remain",
                id, static_cast<unsigned long long>(len),
                bodyRemaining));
        table.push_back({id, offset, static_cast<std::size_t>(len)});
        offset += static_cast<std::size_t>(len);
        bodyRemaining -= static_cast<std::size_t>(len);
    }
    if (bodyRemaining != 0)
        return failure(sim::format(
            "%zu byte(s) not covered by any section", bodyRemaining));

    // Whole-archive checksum: catches any bit flip or truncation the
    // structural checks above happened to leave consistent.
    const std::uint64_t want =
        getLe<std::uint64_t>(bytes.data() + bytes.size() - 8);
    const std::uint64_t got =
        fnvBytes(bytes.data(), bytes.size() - 8);
    if (want != got)
        return failure(sim::format(
            "checksum mismatch (stored %016llx, computed %016llx)",
            static_cast<unsigned long long>(want),
            static_cast<unsigned long long>(got)));

    const Section *metaSec = nullptr;
    const Section *paySec = nullptr;
    for (const Section &s : table) {
        if (s.id == kSectionMeta)
            metaSec = metaSec ? metaSec : &s;
        else if (s.id == kSectionPayload)
            paySec = paySec ? paySec : &s;
    }
    if (!metaSec || !paySec)
        return failure("missing metadata or payload section");

    sim::JsonLine obj;
    if (!obj.parse(std::string(
            reinterpret_cast<const char *>(bytes.data()) +
                metaSec->offset,
            metaSec->length)))
        return failure("metadata section is not a JSON object");

    LoadResult r;
    r.meta.keyCanonical = obj.str("key");
    r.meta.digest =
        std::strtoull(obj.str("digest").c_str(), nullptr, 16);
    r.meta.position = obj.num("position");
    r.meta.warmupSeed = obj.num("seed");
    if (r.meta.digest !=
        fnv1a64(kFnvOffsetBasis, r.meta.keyCanonical))
        return failure("metadata digest does not match its key");

    r.payload.assign(bytes.begin() + paySec->offset,
                     bytes.begin() + paySec->offset + paySec->length);
    r.ok = true;
    return r;
}

LoadResult
loadArchiveFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return failure(sim::format("cannot read %s", path.c_str()));
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    LoadResult r = parseArchive(bytes);
    if (!r.ok)
        r.error = path + ": " + r.error;
    return r;
}

bool
writeFileAtomic(const std::string &dir, const std::string &name,
                const std::vector<std::uint8_t> &bytes,
                std::string *error)
{
    // Unique per process and per call: concurrent shards writing the
    // same object never collide on the temporary, and rename(2) makes
    // whichever finishes last win with identical bytes.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp = sim::format(
        "%s/%s.tmp.%d.%llu", dir.c_str(), name.c_str(),
        static_cast<int>(::getpid()),
        static_cast<unsigned long long>(counter.fetch_add(1)));
    const std::string final = dir + "/" + name;

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (error)
            *error = sim::format("cannot create %s: %s", tmp.c_str(),
                                 std::strerror(errno));
        return false;
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = sim::format("write to %s failed: %s",
                                     tmp.c_str(),
                                     std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        if (error)
            *error = sim::format("fsync of %s failed: %s",
                                 tmp.c_str(), std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), final.c_str()) != 0) {
        if (error)
            *error = sim::format("rename %s -> %s failed: %s",
                                 tmp.c_str(), final.c_str(),
                                 std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd); // best effort, as the campaign store does
        ::close(dfd);
    }
    return true;
}

} // namespace ckpt
} // namespace varsim
