#include "serve/protocol.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace varsim
{
namespace serve
{

FrameIo::~FrameIo()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
FrameIo::writeAll(const char *buf, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd_, buf + off, n - off,
                                 MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            error_ = sim::format("send failed: %s",
                                 std::strerror(errno));
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

bool
FrameIo::readExact(char *buf, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t r = ::recv(fd_, buf + off, n - off, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            error_ = sim::format("recv failed: %s",
                                 std::strerror(errno));
            return false;
        }
        if (r == 0) {
            error_ = "connection closed";
            return false;
        }
        off += static_cast<std::size_t>(r);
    }
    return true;
}

bool
FrameIo::send(const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes) {
        error_ = sim::format("frame payload too large (%zu bytes)",
                             payload.size());
        return false;
    }
    char header[64];
    const int n = std::snprintf(header, sizeof(header), "%s %zu\n",
                                kFrameMagic, payload.size());
    std::string frame(header, static_cast<std::size_t>(n));
    frame += payload;
    return writeAll(frame.data(), frame.size());
}

bool
FrameIo::recv(std::string &payload)
{
    // Header: magic SP decimal-length LF, one byte at a time (the
    // header is tiny; the payload read is the bulk transfer).
    std::string header;
    for (;;) {
        char c;
        if (!readExact(&c, 1))
            return false;
        if (c == '\n')
            break;
        header.push_back(c);
        if (header.size() > 32) {
            error_ = "oversized frame header (protocol mismatch?)";
            return false;
        }
    }
    const std::string magic(kFrameMagic);
    if (header.size() <= magic.size() + 1 ||
        header.compare(0, magic.size(), magic) != 0 ||
        header[magic.size()] != ' ') {
        error_ = sim::format("bad frame magic '%s' (speaks %s)",
                             header.c_str(), kFrameMagic);
        return false;
    }
    const char *lenText = header.c_str() + magic.size() + 1;
    char *end = nullptr;
    const unsigned long long len = std::strtoull(lenText, &end, 10);
    if (end == lenText || *end != '\0' || len > kMaxFrameBytes) {
        error_ = sim::format("bad frame length '%s'", lenText);
        return false;
    }
    payload.resize(static_cast<std::size_t>(len));
    if (len && !readExact(&payload[0], payload.size()))
        return false;
    return true;
}

bool
FrameIo::setRecvTimeout(int ms)
{
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv,
                        sizeof(tv)) == 0;
}

bool
Address::parse(const std::string &text, Address &out,
               std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err)
            *err = std::move(msg);
        return false;
    };
    if (text.rfind("unix:", 0) == 0) {
        out.isUnix = true;
        out.path = text.substr(5);
        if (out.path.empty())
            return fail("unix address wants a socket path");
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        out.isUnix = false;
        std::string rest = text.substr(4);
        const auto colon = rest.rfind(':');
        if (colon != std::string::npos) {
            out.host = rest.substr(0, colon);
            rest = rest.substr(colon + 1);
        }
        char *end = nullptr;
        const long port = std::strtol(rest.c_str(), &end, 10);
        if (end == rest.c_str() || *end != '\0' || port <= 0 ||
            port > 65535)
            return fail("tcp address wants tcp:<port> or "
                        "tcp:<host>:<port>");
        out.port = static_cast<int>(port);
        return true;
    }
    return fail("address wants unix:<path> or tcp:[host:]<port> "
                "(got '" + text + "')");
}

std::string
Address::toString() const
{
    if (isUnix)
        return "unix:" + path;
    return sim::format("tcp:%s:%d", host.c_str(), port);
}

namespace
{

int
failSock(int fd, std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    if (fd >= 0)
        ::close(fd);
    return -1;
}

} // anonymous namespace

int
listenOn(const Address &addr, std::string *err)
{
    if (addr.isUnix) {
        if (addr.path.size() >= sizeof(sockaddr_un{}.sun_path))
            return failSock(-1, err, "unix socket path too long: " +
                                         addr.path);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return failSock(-1, err,
                            sim::format("socket: %s",
                                        std::strerror(errno)));
        ::unlink(addr.path.c_str()); // stale socket from a kill -9
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            return failSock(fd, err,
                            sim::format("bind %s: %s",
                                        addr.path.c_str(),
                                        std::strerror(errno)));
        if (::listen(fd, 64) != 0)
            return failSock(fd, err,
                            sim::format("listen: %s",
                                        std::strerror(errno)));
        return fd;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return failSock(-1, err,
                        sim::format("socket: %s",
                                    std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1)
        return failSock(fd, err, "bad listen host " + addr.host);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
               sizeof(sa)) != 0)
        return failSock(fd, err,
                        sim::format("bind port %d: %s", addr.port,
                                    std::strerror(errno)));
    if (::listen(fd, 64) != 0)
        return failSock(fd, err,
                        sim::format("listen: %s",
                                    std::strerror(errno)));
    return fd;
}

int
connectTo(const Address &addr, std::string *err)
{
    if (addr.isUnix) {
        if (addr.path.size() >= sizeof(sockaddr_un{}.sun_path))
            return failSock(-1, err, "unix socket path too long: " +
                                         addr.path);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return failSock(-1, err,
                            sim::format("socket: %s",
                                        std::strerror(errno)));
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0)
            return failSock(
                fd, err,
                sim::format("connect %s: %s (daemon running?)",
                            addr.path.c_str(),
                            std::strerror(errno)));
        return fd;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return failSock(-1, err,
                        sim::format("socket: %s",
                                    std::strerror(errno)));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1)
        return failSock(fd, err, "bad connect host " + addr.host);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0)
        return failSock(
            fd, err,
            sim::format("connect %s:%d: %s (daemon running?)",
                        addr.host.c_str(), addr.port,
                        std::strerror(errno)));
    return fd;
}

} // namespace serve
} // namespace varsim
