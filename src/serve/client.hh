/**
 * @file
 * Client side of the serve protocol: one method per request, each
 * on a fresh connection (the daemon is stateless per connection,
 * so a client never has to manage one).
 *
 * submit() computes the spec fingerprint locally — through the same
 * campaign::buildSpec the daemon (and the CLI) use — and sends it
 * with the fields, which is how client/daemon schema skew is caught
 * before any cycles are spent.
 */

#ifndef VARSIM_SERVE_CLIENT_HH
#define VARSIM_SERVE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/schema.hh"

namespace varsim
{
namespace serve
{

class Client
{
  public:
    explicit Client(const Address &addr) : addr(addr) {}

    /** Liveness check; false with @p err when unreachable. */
    bool ping(std::string *err);

    /**
     * Validate @p sub locally (buildSpec), stamp its fingerprint,
     * and submit. False with @p err on a local spec error, a
     * connection failure, or a daemon rejection.
     */
    bool submit(Submission &sub, std::string *err);

    /** All campaigns (@p tenant empty) or one tenant's. */
    bool status(const std::string &tenant,
                std::vector<CampaignInfo> &out, std::string *err);

    bool info(const std::string &id, CampaignInfo &out,
              std::string *err);

    /**
     * Stream campaign @p id's events with seq > @p afterSeq into
     * @p onEvent until the campaign is terminal (returns true) or
     * the connection drops / the daemon stops (false, @p err).
     */
    bool watch(const std::string &id, std::uint64_t afterSeq,
               const std::function<void(const Event &)> &onEvent,
               std::string *err);

    bool cancel(const std::string &id, std::string *err);

    /**
     * Fetch the report text for @p id — the daemon renders it with
     * the same code `varsim campaign report` uses. @p metric empty
     * = the standard variability report.
     */
    bool report(const std::string &id, double confidence,
                const std::string &metric, std::string &text,
                std::string *err);

    /** Drain the daemon: block until every campaign is terminal
     *  and the daemon has begun shutting down. */
    bool drain(std::string *err);

  private:
    /** Connect, send @p payload, read one reply frame.
     *  @p timeoutMs bounds the wait for the reply (0 = forever). */
    bool roundTrip(const std::string &payload, sim::JsonLine &rep,
                   std::string *err, int timeoutMs = 30000);

    Address addr;
};

} // namespace serve
} // namespace varsim

#endif // VARSIM_SERVE_CLIENT_HH
