#include "serve/client.hh"

#include "campaign/knobs.hh"
#include "campaign/spec.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace serve
{

namespace
{

/** Extract a daemon error reply into @p err; true when error. */
bool
isError(const sim::JsonLine &rep, std::string *err)
{
    if (rep.str("type") != "error")
        return false;
    if (err)
        *err = rep.str("message", "daemon error");
    return true;
}

} // anonymous namespace

bool
Client::roundTrip(const std::string &payload, sim::JsonLine &rep,
                  std::string *err, int timeoutMs)
{
    const int fd = connectTo(addr, err);
    if (fd < 0)
        return false;
    FrameIo io(fd);
    if (timeoutMs > 0)
        io.setRecvTimeout(timeoutMs);
    std::string reply;
    if (!io.send(payload) || !io.recv(reply)) {
        if (err)
            *err = io.errorText();
        return false;
    }
    if (!rep.parse(reply)) {
        if (err)
            *err = "unparseable daemon reply";
        return false;
    }
    return !isError(rep, err);
}

bool
Client::ping(std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("ping"));
    sim::JsonLine rep;
    if (!roundTrip(w.str(), rep, err))
        return false;
    if (rep.num("schema") !=
        static_cast<std::uint64_t>(kSchemaVersion)) {
        if (err)
            *err = sim::format(
                "daemon speaks schema %llu, this client %d",
                static_cast<unsigned long long>(
                    rep.num("schema")),
                kSchemaVersion);
        return false;
    }
    return true;
}

bool
Client::submit(Submission &sub, std::string *err)
{
    // Build the spec locally first: a bad submission fails here
    // with the CLI's own error text, and a good one gets the
    // fingerprint the daemon will verify.
    campaign::CampaignSpec spec;
    if (!campaign::buildSpec(sub.fields, spec, err))
        return false;
    sub.fingerprintHex = sim::format(
        "%016llx",
        static_cast<unsigned long long>(spec.fingerprint()));

    sim::JsonLine rep;
    return roundTrip(encodeSubmission(sub), rep, err);
}

bool
Client::status(const std::string &tenant,
               std::vector<CampaignInfo> &out, std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("status"));
    if (!tenant.empty())
        w.field("tenant", tenant);

    const int fd = connectTo(addr, err);
    if (fd < 0)
        return false;
    FrameIo io(fd);
    io.setRecvTimeout(30000);
    if (!io.send(w.str())) {
        if (err)
            *err = io.errorText();
        return false;
    }
    out.clear();
    for (;;) {
        std::string payload;
        if (!io.recv(payload)) {
            if (err)
                *err = io.errorText();
            return false;
        }
        sim::JsonLine obj;
        if (!obj.parse(payload)) {
            if (err)
                *err = "unparseable daemon reply";
            return false;
        }
        if (isError(obj, err))
            return false;
        if (obj.str("type") == "end")
            return true;
        CampaignInfo info;
        if (decodeInfo(obj, info))
            out.push_back(std::move(info));
    }
}

bool
Client::info(const std::string &id, CampaignInfo &out,
             std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("info"));
    w.field("id", id);
    sim::JsonLine rep;
    if (!roundTrip(w.str(), rep, err))
        return false;
    if (!decodeInfo(rep, out)) {
        if (err)
            *err = "malformed campaign info reply";
        return false;
    }
    return true;
}

bool
Client::watch(const std::string &id, std::uint64_t afterSeq,
              const std::function<void(const Event &)> &onEvent,
              std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("watch"));
    w.field("id", id);
    w.field("after", afterSeq);

    const int fd = connectTo(addr, err);
    if (fd < 0)
        return false;
    FrameIo io(fd);
    // No receive timeout: a quiet campaign can legitimately sit
    // between events for as long as a cell takes to simulate.
    if (!io.send(w.str())) {
        if (err)
            *err = io.errorText();
        return false;
    }
    bool sawTerminal = false;
    for (;;) {
        std::string payload;
        if (!io.recv(payload)) {
            if (err)
                *err = io.errorText();
            return false;
        }
        sim::JsonLine obj;
        if (!obj.parse(payload)) {
            if (err)
                *err = "unparseable daemon reply";
            return false;
        }
        if (isError(obj, err))
            return false;
        if (obj.str("type") == "end") {
            // A cursor already past the terminal event sees no
            // events at all; the end frame's state field is what
            // distinguishes "finished" from a daemon drain.
            const std::string st = obj.str("state");
            if (st == "complete" || st == "cancelled" ||
                st == "failed")
                sawTerminal = true;
            break;
        }
        Event ev;
        if (!decodeEvent(obj, ev))
            continue;
        if (ev.kind == "complete" || ev.kind == "cancelled" ||
            ev.kind == "failed")
            sawTerminal = true;
        onEvent(ev);
    }
    if (!sawTerminal && err)
        *err = "stream ended before the campaign finished "
               "(daemon draining?)";
    return sawTerminal;
}

bool
Client::cancel(const std::string &id, std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("cancel"));
    w.field("id", id);
    sim::JsonLine rep;
    return roundTrip(w.str(), rep, err);
}

bool
Client::report(const std::string &id, double confidence,
               const std::string &metric, std::string &text,
               std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("report"));
    w.field("id", id);
    w.field("confidence", confidence);
    if (!metric.empty())
        w.field("metric", metric);
    sim::JsonLine rep;
    if (!roundTrip(w.str(), rep, err))
        return false;
    text = rep.str("text");
    return true;
}

bool
Client::drain(std::string *err)
{
    sim::JsonWriter w;
    w.field("req", std::string("drain"));
    sim::JsonLine rep;
    // No timeout: the ok frame arrives only once every campaign
    // has reached a terminal state.
    return roundTrip(w.str(), rep, err, 0);
}

} // namespace serve
} // namespace varsim
