/**
 * @file
 * Request/response vocabulary of the serve protocol, versioned.
 *
 * Every request and event is one flat JSON object (sim/jsonl
 * dialect) inside one frame (protocol.hh). A submission carries
 * `schema: 1` plus the raw campaign *fields* — base knobs, vary
 * axes, workload and stopping parameters — exactly the vocabulary
 * of the `varsim campaign` CLI flags, NOT a serialized spec. The
 * daemon rebuilds the CampaignSpec through the same
 * campaign::buildSpec the CLI uses, then checks the client's
 * fingerprint echo: the client computes spec.fingerprint() locally
 * and sends it, the daemon recomputes it from the decoded fields,
 * and a mismatch (schema skew, version drift, a knob lost in
 * translation) rejects the submission instead of quietly running a
 * different experiment than the client asked for.
 *
 * Tenant and campaign names become directory components under the
 * daemon root, so they are restricted to [A-Za-z0-9_.-], no leading
 * dot, at most 64 bytes.
 */

#ifndef VARSIM_SERVE_SCHEMA_HH
#define VARSIM_SERVE_SCHEMA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/knobs.hh"
#include "sim/jsonl.hh"

namespace varsim
{
namespace serve
{

/** Submission schema version this build speaks. */
constexpr int kSchemaVersion = 1;

/** True when @p s is usable as a tenant/campaign path component. */
bool validName(const std::string &s);

/** One campaign submission, as it crosses the wire. */
struct Submission
{
    std::string tenant;
    std::string name;

    /**
     * Scheduling priority within the tenant, higher first (the
     * cross-tenant share is fair regardless — priority never lets
     * one tenant starve another).
     */
    int priority = 0;

    campaign::SpecFields fields;

    /** Client-computed spec fingerprint (hex), echoed for skew. */
    std::string fingerprintHex;

    /** "tenant/name", the daemon-wide campaign id. */
    std::string id() const { return tenant + "/" + name; }
};

/** Encode @p sub as a request payload (req=submit, schema=1). */
std::string encodeSubmission(const Submission &sub);

/**
 * Decode a submit payload. Returns false with @p err set on an
 * unsupported schema version, a bad name, or malformed fields.
 * Does NOT rebuild/validate the spec — the daemon does that next
 * via campaign::buildSpec so spec errors carry its messages.
 */
bool decodeSubmission(const sim::JsonLine &obj, Submission &out,
                      std::string *err);

/**
 * Progress event, streamed to watch subscribers and replayed from
 * history for late joiners. Flat, small, and self-describing:
 *
 *   kind=run       one cell recorded (group, run, value, progress)
 *   kind=round     an adaptive-stopping decision recomputed
 *   kind=complete  campaign reached every target
 *   kind=cancelled campaign cancelled (durable)
 *   kind=failed    campaign failed (message)
 */
struct Event
{
    std::uint64_t seq = 0; ///< per-campaign, 1-based, dense
    std::string kind;
    std::string campaignId;

    // kind=run
    std::uint64_t group = 0;
    std::uint64_t runIdx = 0;
    double value = 0.0; ///< cycles_per_txn of the recorded run

    // kind=run and kind=round: campaign-wide progress
    std::uint64_t recorded = 0;
    std::uint64_t target = 0;

    // kind=failed (and free-form notes)
    std::string message;
};

std::string encodeEvent(const Event &ev);
bool decodeEvent(const sim::JsonLine &obj, Event &out);

/** One campaign's scheduler-eye view, for status replies. */
struct CampaignInfo
{
    std::string id;
    std::string state; ///< queued|running|complete|cancelled|failed
    int priority = 0;
    std::uint64_t recorded = 0;
    std::uint64_t target = 0;
    std::uint64_t inFlight = 0;
    std::string error;
};

std::string encodeInfo(const CampaignInfo &info);
bool decodeInfo(const sim::JsonLine &obj, CampaignInfo &out);

} // namespace serve
} // namespace varsim

#endif // VARSIM_SERVE_SCHEMA_HH
