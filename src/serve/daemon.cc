#include "serve/daemon.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "campaign/engine.hh"
#include "ckpt/library.hh"
#include "sim/jsonl.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace serve
{

namespace
{

std::string
errorFrame(const std::string &message)
{
    sim::JsonWriter w;
    w.field("type", std::string("error"));
    w.field("message", message);
    return w.str();
}

std::string
endFrame(std::uint64_t count, const std::string &state = "")
{
    sim::JsonWriter w;
    w.field("type", std::string("end"));
    w.field("count", count);
    // Watch streams carry the campaign's terminal state: a
    // subscriber whose cursor is already past the terminal event
    // receives no events, so the end frame is its only proof the
    // campaign actually finished (vs a daemon drain cutting in).
    if (!state.empty())
        w.field("state", state);
    return w.str();
}

/** Split and validate a "tenant/name" campaign id. */
bool
parseId(const std::string &id, std::string *err)
{
    const auto slash = id.find('/');
    if (slash != std::string::npos &&
        validName(id.substr(0, slash)) &&
        validName(id.substr(slash + 1)))
        return true;
    if (err)
        *err = "bad campaign id '" + id +
               "' (want <tenant>/<name>)";
    return false;
}

} // anonymous namespace

Daemon::Daemon(const DaemonConfig &cfg) : cfg(cfg) {}

Daemon::~Daemon()
{
    shutdown();
}

bool
Daemon::start(std::string *err)
{
    // One shared library for every tenant: one pin table, one
    // content-addressed object pool, one dedup domain.
    library = ckpt::CheckpointLibrary::open(cfg.root + "/ckpts");

    SchedulerConfig sc;
    sc.root = cfg.root;
    sc.workers = cfg.workers;
    sc.library = library.get();
    sc.ckptDir = cfg.root + "/ckpts";
    sched = std::make_unique<Scheduler>(sc);

    // Resume before listening: by the time a client can reconnect,
    // every durable in-flight campaign is already re-enqueued.
    resumed = sched->resumeAll();

    listenFd = listenOn(cfg.addr, err);
    if (listenFd < 0)
        return false;
    acceptor = std::thread([this] { acceptLoop(); });
    return true;
}

void
Daemon::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    stopCv.wait(lock, [this] { return stopRequested; });
}

void
Daemon::requestStop()
{
    std::lock_guard<std::mutex> lock(mu);
    stopRequested = true;
    stopCv.notify_all();
}

void
Daemon::shutdown()
{
    if (stopping.exchange(true))
        return;
    requestStop();
    if (listenFd >= 0)
        ::shutdown(listenFd, SHUT_RDWR); // unblocks accept()
    if (acceptor.joinable())
        acceptor.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    // Stop the scheduler before waiting out handlers: a handler
    // blocked in drain() is released by the stop, watch streams
    // poll `stopping` at 250 ms, and short requests bound
    // themselves with recv timeouts.
    if (sched)
        sched->stop();
    {
        std::unique_lock<std::mutex> lock(mu);
        connsCv.wait(lock, [this] { return activeConns == 0; });
    }
}

void
Daemon::acceptLoop()
{
    while (!stopping.load()) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (!stopping.load())
                sim::warn("serve: accept failed: %s",
                          std::strerror(errno));
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping.load()) {
                ::close(fd);
                break;
            }
            ++activeConns;
        }
        std::thread([this, fd] {
            handleConnection(fd);
            std::lock_guard<std::mutex> lock(mu);
            if (--activeConns == 0)
                connsCv.notify_all();
        }).detach();
    }
}

void
Daemon::handleConnection(int fd)
{
    FrameIo io(fd); // owns fd
    io.setRecvTimeout(10000);

    std::string payload;
    if (!io.recv(payload))
        return; // client vanished; nothing owed
    sim::JsonLine obj;
    if (!obj.parse(payload)) {
        io.send(errorFrame("unparseable request payload"));
        return;
    }
    const std::string req = obj.str("req");
    std::string err;

    if (req == "ping") {
        sim::JsonWriter w;
        w.field("type", std::string("ok"));
        w.field("server", std::string("varsim-serve"));
        w.field("schema",
                static_cast<std::uint64_t>(kSchemaVersion));
        io.send(w.str());
        return;
    }

    if (req == "submit") {
        Submission sub;
        if (!decodeSubmission(obj, sub, &err) ||
            !sched->submit(sub, &err)) {
            io.send(errorFrame(err));
            return;
        }
        sim::JsonWriter w;
        w.field("type", std::string("ok"));
        w.field("id", sub.id());
        io.send(w.str());
        return;
    }

    if (req == "status") {
        const std::vector<CampaignInfo> infos =
            sched->status(obj.str("tenant"));
        for (const CampaignInfo &info : infos)
            if (!io.send(encodeInfo(info)))
                return;
        io.send(endFrame(infos.size()));
        return;
    }

    if (req == "info" || req == "watch" || req == "cancel" ||
        req == "report") {
        const std::string id = obj.str("id");
        if (!parseId(id, &err)) {
            io.send(errorFrame(err));
            return;
        }
        if (req == "info") {
            CampaignInfo info;
            if (!sched->info(id, info))
                io.send(errorFrame("unknown campaign " + id));
            else
                io.send(encodeInfo(info));
            return;
        }
        if (req == "watch") {
            handleWatch(io, id, obj.num("after"));
            return;
        }
        if (req == "cancel") {
            if (!sched->cancel(id, &err))
                io.send(errorFrame(err));
            else
                io.send("{\"type\": \"ok\"}");
            return;
        }
        // report: render through the same code path as `varsim
        // campaign report`. The read-only store open takes no lock,
        // so this works even while the campaign is running.
        CampaignInfo info;
        if (!sched->info(id, info)) {
            io.send(errorFrame("unknown campaign " + id));
            return;
        }
        const double confidence = obj.has("confidence")
                                      ? obj.real("confidence")
                                      : 0.95;
        const std::string metric = obj.str("metric");
        const campaign::CampaignReport rep =
            metric.empty()
                ? campaign::campaignReport(sched->storeDir(id),
                                           confidence)
                : campaign::campaignMetricReport(
                      sched->storeDir(id), metric, confidence);
        sim::JsonWriter w;
        w.field("type", std::string("ok"));
        w.field("text", rep.text);
        io.send(w.str());
        return;
    }

    if (req == "drain") {
        sched->drain();
        io.send("{\"type\": \"ok\"}");
        requestStop();
        return;
    }

    io.send(errorFrame("unknown request '" + req + "'"));
}

void
Daemon::handleWatch(FrameIo &io, const std::string &id,
                    std::uint64_t after)
{
    for (;;) {
        std::vector<Event> events;
        bool terminal = false;
        if (!sched->waitEvents(id, after, 250, events,
                               &terminal)) {
            io.send(errorFrame("unknown campaign " + id));
            return;
        }
        for (const Event &ev : events)
            if (!io.send(encodeEvent(ev)))
                return; // subscriber vanished
        after += events.size();
        if (terminal || stopping.load()) {
            CampaignInfo info;
            const std::string state =
                terminal && sched->info(id, info) ? info.state
                                                  : "";
            io.send(endFrame(after, state));
            return;
        }
    }
}

} // namespace serve
} // namespace varsim
