/**
 * @file
 * Multi-tenant campaign scheduler for the serve daemon.
 *
 * One Scheduler owns a worker TaskQueue and a map of jobs, one per
 * submitted campaign, each backed by a campaign::Execution — the
 * same machinery `varsim campaign run` uses, which is what makes a
 * served campaign's records bit-identical to the CLI's.
 *
 * Admission is fair-share across tenants, priority within a tenant:
 * when a worker asks for its next unit of work, the scheduler picks
 * the tenant with the fewest cells in flight (ties: fewest cells
 * served so far, then first-seen), and within that tenant the
 * highest-priority submission (ties: submission order). Workers run
 * *tokens* — each token claims the globally best unit at the moment
 * it executes, so a finished cell immediately frees capacity for
 * whichever tenant is furthest behind, not for whoever happened to
 * post after it.
 *
 * Kill-safety: a submission is durably recorded (submission.json,
 * temp+rename) before it is acknowledged, every run record lands in
 * the campaign's fsync'd ResultStore before the progress event
 * fires, and cancellation drops a durable marker file. After a
 * kill -9, resumeAll() rebuilds every non-terminal campaign from
 * those files and the idempotent store replay; at most the cells in
 * flight at the kill are re-run, with identical seeds and records.
 */

#ifndef VARSIM_SERVE_SCHEDULER_HH
#define VARSIM_SERVE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "campaign/exec.hh"
#include "core/task_queue.hh"
#include "serve/schema.hh"

namespace varsim
{

namespace ckpt
{
class CheckpointLibrary;
}

namespace serve
{

struct SchedulerConfig
{
    /** Daemon root: tenants/ and (by default) ckpts/ live here. */
    std::string root;

    /** Worker threads running campaign cells (0 = hardware). */
    std::size_t workers = 0;

    /**
     * Borrowed shared checkpoint library for every campaign
     * (nullptr: campaigns with checkpoints each open root/ckpts).
     */
    ckpt::CheckpointLibrary *library = nullptr;

    /** Directory recorded in store ckpt stats (and opened when
     *  library == nullptr). Empty: default to <root>/ckpts. */
    std::string ckptDir;
};

class Scheduler
{
  public:
    explicit Scheduler(const SchedulerConfig &cfg);
    ~Scheduler(); ///< stop(), discarding undispatched work

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit @p sub: rebuild its spec via campaign::buildSpec,
     * verify the client's fingerprint echo, durably record the
     * submission, and enqueue it. Returns false with @p err on a
     * bad spec, fingerprint skew, a duplicate id with different
     * fields, or a draining scheduler. A duplicate id with
     * identical fields re-attaches (idempotent resubmit).
     */
    bool submit(const Submission &sub, std::string *err);

    /**
     * Cancel campaign @p id. Durable (a marker file survives
     * restart); in-flight cells finish and record, undispatched
     * cells are dropped. False when the id is unknown.
     */
    bool cancel(const std::string &id, std::string *err);

    /** Scheduler-eye view; @p tenant empty = all tenants. */
    std::vector<CampaignInfo>
    status(const std::string &tenant = "") const;

    /** Info for one campaign id; false when unknown. */
    bool info(const std::string &id, CampaignInfo &out) const;

    /**
     * Copy campaign @p id's events with seq > @p afterSeq into
     * @p out, blocking up to @p timeoutMs for the first new one
     * (0 = no wait). Returns false when the id is unknown.
     * @p terminal is set when the campaign has reached a terminal
     * state AND every event up to it has been returned.
     */
    bool waitEvents(const std::string &id, std::uint64_t afterSeq,
                    int timeoutMs, std::vector<Event> &out,
                    bool *terminal) const;

    /**
     * Scan <root>/tenants/ * / * /submission.json and re-enqueue
     * every campaign without a terminal marker. Returns the number
     * of campaigns resumed. Call once, before serving.
     */
    std::size_t resumeAll();

    /**
     * Graceful drain: refuse new submissions, then block until
     * every admitted campaign reaches a terminal state.
     */
    void drain();

    /** Stop workers; undispatched cells are simply not run (the
     *  durable state re-schedules them on the next start). */
    void stop();

    /** Directory of campaign @p id's result store. */
    std::string storeDir(const std::string &id) const;

    /** Total cells executed since construction (tests/bench). */
    std::size_t cellsExecuted() const;

  private:
    struct Job
    {
        Submission sub;
        std::string dir; ///< <root>/tenants/<tenant>/<name>
        campaign::CampaignSpec spec;

        /** queued|running|complete|cancelled|failed */
        std::string state = "queued";
        std::string error;

        std::unique_ptr<campaign::Execution> exec;
        std::deque<campaign::Cell> frontier;
        std::size_t inFlight = 0;
        bool starting = false;
        bool cancelRequested = false;
        /** A cell or refill threw: fail once the job is idle. */
        bool failRequested = false;

        std::uint64_t recorded = 0;
        std::uint64_t target = 0;

        std::vector<Event> events;
        std::uint64_t order = 0; ///< admission order (FIFO ties)
    };

    struct Tenant
    {
        std::size_t inFlight = 0;
        std::size_t served = 0;
        std::uint64_t firstSeen = 0;
    };

    /** One worker token: claim and run the best unit of work. */
    void pump();

    /** Pick the next job to advance; nullptr when none. mu held. */
    Job *pickJob();

    /** Run one cell of @p job (outside mu); bookkeeping inside. */
    void runCell(Job &job, const campaign::Cell &cell);

    /** Start @p job: build Execution, compute first frontier. */
    void startJob(Job &job);

    /** Recompute the frontier after a round drains. mu held out. */
    void refillJob(Job &job);

    /** Record a thrown cell/refill error on @p job and fail it
     *  once no other worker still holds a piece of it. */
    void failJob(Job &job, const std::string &what);

    /** Append an event + notify watchers. mu held. */
    void emit(Job &job, Event ev);

    /** Enter a terminal state. mu held. */
    void finishJob(Job &job, const std::string &state,
                   const std::string &error);

    bool jobHasWork(const Job &job) const;

    std::string tenantsDir() const { return cfg.root + "/tenants"; }

    SchedulerConfig cfg;
    std::unique_ptr<core::TaskQueue> queue;

    mutable std::mutex mu;
    mutable std::condition_variable eventCv; ///< events/terminals
    std::map<std::string, std::unique_ptr<Job>> jobs; ///< by id
    /** Ids whose durable submission write is in progress; a second
     *  submit of the same id is refused until it settles, so the
     *  file on disk always matches the job that was admitted. */
    std::set<std::string> admitting;
    std::map<std::string, Tenant> tenants;
    std::uint64_t nextOrder = 0;
    std::size_t executed = 0;
    bool draining = false;
    bool stopped = false; ///< stop() called; aborts drain() waits
};

} // namespace serve
} // namespace varsim

#endif // VARSIM_SERVE_SCHEDULER_HH
