/**
 * @file
 * Wire protocol of the varsim serve daemon.
 *
 * Transport: a stream socket — `unix:<path>` (the default; the
 * daemon puts one at `<root>/serve.sock`) or `tcp:<port>` /
 * `tcp:<host>:<port>` for cross-host clients.
 *
 * Framing: every message in either direction is one frame,
 *
 *     "VSRV1 <payload-bytes>\n" <payload>
 *
 * where the payload is a single flat JSON object in the same
 * sim/jsonl dialect as the durable manifests (numbers, strings,
 * arrays of strings). The explicit length makes the stream
 * self-delimiting — a reader never scans payload bytes for a
 * terminator — and the magic pins the protocol version: a daemon
 * refuses a frame whose magic it does not speak, so schema skew
 * between client and server is a clean error, not a hang or a
 * misparse. Payloads are capped at 1 MiB; nothing legitimate (a
 * submission, an event) is near that, so an oversized header is
 * treated as a corrupt or hostile stream and the connection drops.
 *
 * The request/response vocabulary on top of the framing lives in
 * schema.hh; this file is transport only.
 */

#ifndef VARSIM_SERVE_PROTOCOL_HH
#define VARSIM_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>

namespace varsim
{
namespace serve
{

/** Frame magic; bump the digit when the framing itself changes. */
constexpr const char *kFrameMagic = "VSRV1";

/** Hard cap on one frame's payload bytes. */
constexpr std::size_t kMaxFrameBytes = 1u << 20;

/**
 * Blocking frame I/O over one connected socket fd. Writes are
 * whole-frame; reads reassemble exactly one frame. All methods
 * return false on EOF, timeout, or a malformed/oversized frame
 * (errorText() says which); the connection is then unusable.
 */
class FrameIo
{
  public:
    /** Takes ownership of connected @p fd (closed on destruction). */
    explicit FrameIo(int fd) : fd_(fd) {}
    ~FrameIo();

    FrameIo(const FrameIo &) = delete;
    FrameIo &operator=(const FrameIo &) = delete;

    /** Send one frame carrying @p payload. */
    bool send(const std::string &payload);

    /** Receive one frame into @p payload. */
    bool recv(std::string &payload);

    /**
     * Arm a receive timeout in milliseconds (0 = block forever).
     * Applies to subsequent recv() calls.
     */
    bool setRecvTimeout(int ms);

    const std::string &errorText() const { return error_; }

    int fd() const { return fd_; }

  private:
    bool readExact(char *buf, std::size_t n);
    bool writeAll(const char *buf, std::size_t n);

    int fd_ = -1;
    std::string error_;
};

/**
 * Parsed listen/connect address: "unix:<path>", "tcp:<port>", or
 * "tcp:<host>:<port>". parse() returns false with @p err set on
 * anything else.
 */
struct Address
{
    bool isUnix = true;
    std::string path;        ///< unix socket path
    std::string host = "127.0.0.1"; ///< tcp only
    int port = 0;            ///< tcp only

    static bool parse(const std::string &text, Address &out,
                      std::string *err);

    std::string toString() const;
};

/**
 * Bind + listen on @p addr. Returns the listening fd, or -1 with
 * @p err set. A unix address unlinks a stale socket file first
 * (the daemon's root is single-daemon by construction: the
 * campaign stores' flocks make a second daemon fail fast anyway).
 */
int listenOn(const Address &addr, std::string *err);

/** Connect to @p addr. Returns connected fd, or -1 with @p err. */
int connectTo(const Address &addr, std::string *err);

} // namespace serve
} // namespace varsim

#endif // VARSIM_SERVE_PROTOCOL_HH
