#include "serve/scheduler.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "campaign/knobs.hh"
#include "ckpt/library.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace serve
{

namespace fs = std::filesystem;

namespace
{

/** Durably write @p data to @p dir/@p name via temp + rename. */
bool
writeFileDurable(const std::string &dir, const std::string &name,
                 const std::string &data, std::string *err)
{
    const std::string tmp = dir + "/." + name + ".tmp";
    const std::string path = dir + "/" + name;
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (err)
            *err = sim::format("cannot write %s: %s", tmp.c_str(),
                               std::strerror(errno));
        return false;
    }
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = sim::format("write %s: %s", tmp.c_str(),
                                   std::strerror(errno));
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced ||
        ::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = sim::format("cannot publish %s: %s",
                               path.c_str(), std::strerror(errno));
        return false;
    }
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

} // anonymous namespace

Scheduler::Scheduler(const SchedulerConfig &cfg) : cfg(cfg)
{
    if (this->cfg.ckptDir.empty())
        this->cfg.ckptDir = this->cfg.root + "/ckpts";
    std::error_code ec;
    fs::create_directories(tenantsDir(), ec);
    if (ec)
        sim::fatal("cannot create %s: %s", tenantsDir().c_str(),
                   ec.message().c_str());
    queue = std::make_unique<core::TaskQueue>(this->cfg.workers);
}

Scheduler::~Scheduler()
{
    stop();
}

void
Scheduler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopped = true;
        eventCv.notify_all(); // unblock drain()/waitEvents() waits
    }
    queue->stop();
}

std::string
Scheduler::storeDir(const std::string &id) const
{
    return tenantsDir() + "/" + id + "/store";
}

std::size_t
Scheduler::cellsExecuted() const
{
    std::lock_guard<std::mutex> lock(mu);
    return executed;
}

bool
Scheduler::submit(const Submission &sub, std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err)
            *err = std::move(msg);
        return false;
    };

    if (!validName(sub.tenant) || !validName(sub.name))
        return fail("bad tenant or campaign name");

    // Rebuild the spec through the same path the CLI uses, then
    // check the client's fingerprint echo: a mismatch means the
    // client and daemon disagree on what these fields *mean*.
    campaign::CampaignSpec spec;
    std::string why;
    if (!campaign::buildSpec(sub.fields, spec, &why))
        return fail("invalid campaign spec: " + why);
    const std::string fp = sim::format(
        "%016llx",
        static_cast<unsigned long long>(spec.fingerprint()));
    if (fp != sub.fingerprintHex)
        return fail(sim::format(
            "spec fingerprint mismatch: client sent %s, daemon "
            "derives %s — client/daemon schema skew, refusing",
            sub.fingerprintHex.c_str(), fp.c_str()));

    const std::string id = sub.id();
    const std::string payload = encodeSubmission(sub);

    {
        std::lock_guard<std::mutex> lock(mu);
        if (draining)
            return fail("daemon is draining; not accepting new "
                        "campaigns");
        const auto it = jobs.find(id);
        if (it != jobs.end()) {
            // Idempotent resubmit of the same campaign is an ack;
            // same id with different fields is a conflict.
            if (encodeSubmission(it->second->sub) == payload)
                return true;
            return fail("campaign " + id +
                        " already exists with different fields");
        }
        // One durable write per id at a time: concurrent first-time
        // submits would otherwise race temp+rename on the same file
        // and could ack an in-memory job whose on-disk record is
        // the *other* client's fields.
        if (!admitting.insert(id).second)
            return fail("campaign " + id +
                        " is being submitted by another client; "
                        "retry");
    }
    auto unadmit = [&] {
        std::lock_guard<std::mutex> lock(mu);
        admitting.erase(id);
    };

    const std::string dir = tenantsDir() + "/" + id;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        unadmit();
        return fail("cannot create " + dir + ": " + ec.message());
    }
    // Durable before acknowledged: a kill -9 after the ack must
    // find the submission on disk to resume it.
    if (!writeFileDurable(dir, "submission.json", payload + "\n",
                          err)) {
        unadmit();
        return false;
    }

    {
        std::lock_guard<std::mutex> lock(mu);
        admitting.erase(id);
        const auto it = jobs.find(id);
        if (it != jobs.end()) {
            // resumeAll() admitted it from disk meanwhile; ack only
            // if what it admitted is what this client sent.
            if (encodeSubmission(it->second->sub) == payload)
                return true;
            return fail("campaign " + id +
                        " already exists with different fields");
        }
        auto job = std::make_unique<Job>();
        job->sub = sub;
        job->dir = dir;
        job->spec = std::move(spec);
        job->order = nextOrder++;
        auto &tenant = tenants[sub.tenant];
        if (tenant.firstSeen == 0)
            tenant.firstSeen = job->order + 1;
        jobs.emplace(id, std::move(job));
    }
    queue->post([this] { pump(); });
    return true;
}

bool
Scheduler::cancel(const std::string &id, std::string *err)
{
    std::unique_lock<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
        if (err)
            *err = "unknown campaign " + id;
        return false;
    }
    Job &job = *it->second;
    if (job.state == "complete" || job.state == "cancelled" ||
        job.state == "failed")
        return true; // terminal already; cancel is idempotent

    // Durable first: the marker is what a restarted daemon reads.
    // The two fsyncs are slow; drop mu for them (jobs are never
    // erased, so the reference stays valid) and revalidate after.
    const std::string dir = job.dir;
    lock.unlock();
    std::string werr;
    if (!writeFileDurable(dir, "cancelled", "cancelled\n",
                          &werr)) {
        if (err)
            *err = werr;
        return false;
    }
    lock.lock();
    if (job.state == "complete" || job.state == "cancelled" ||
        job.state == "failed")
        return true; // reached terminal while we were writing
    job.cancelRequested = true;
    job.frontier.clear();
    if (job.inFlight == 0 && !job.starting)
        finishJob(job, "cancelled", "");
    return true;
}

std::vector<CampaignInfo>
Scheduler::status(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<CampaignInfo> out;
    for (const auto &kv : jobs) {
        const Job &job = *kv.second;
        if (!tenant.empty() && job.sub.tenant != tenant)
            continue;
        CampaignInfo info;
        info.id = kv.first;
        info.state = job.state;
        info.priority = job.sub.priority;
        info.recorded = job.recorded;
        info.target = job.target;
        info.inFlight = job.inFlight;
        info.error = job.error;
        out.push_back(std::move(info));
    }
    return out;
}

bool
Scheduler::info(const std::string &id, CampaignInfo &out) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    if (it == jobs.end())
        return false;
    const Job &job = *it->second;
    out.id = id;
    out.state = job.state;
    out.priority = job.sub.priority;
    out.recorded = job.recorded;
    out.target = job.target;
    out.inFlight = job.inFlight;
    out.error = job.error;
    return true;
}

bool
Scheduler::waitEvents(const std::string &id,
                      std::uint64_t afterSeq, int timeoutMs,
                      std::vector<Event> &out,
                      bool *terminal) const
{
    std::unique_lock<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    if (it == jobs.end())
        return false;
    const Job &job = *it->second;
    // A cursor past the end (bogus client, or state from a prior
    // daemon life) must not make terminal detection unreachable.
    if (afterSeq > job.events.size())
        afterSeq = job.events.size();

    auto fresh = [&] {
        return job.events.size() > afterSeq ||
               job.state == "complete" ||
               job.state == "cancelled" || job.state == "failed";
    };
    if (timeoutMs > 0 && !fresh())
        eventCv.wait_for(lock,
                         std::chrono::milliseconds(timeoutMs),
                         fresh);

    out.clear();
    for (std::size_t i = afterSeq; i < job.events.size(); ++i)
        out.push_back(job.events[i]);
    if (terminal)
        *terminal = (job.state == "complete" ||
                     job.state == "cancelled" ||
                     job.state == "failed") &&
                    afterSeq + out.size() == job.events.size();
    return true;
}

std::size_t
Scheduler::resumeAll()
{
    std::size_t resumed = 0;
    std::error_code ec;
    for (const auto &tde :
         fs::directory_iterator(tenantsDir(), ec)) {
        if (!tde.is_directory())
            continue;
        for (const auto &cde :
             fs::directory_iterator(tde.path(), ec)) {
            if (!cde.is_directory())
                continue;
            const std::string dir = cde.path().string();
            const std::string payload =
                readWholeFile(dir + "/submission.json");
            if (payload.empty())
                continue;
            sim::JsonLine obj;
            const std::string line =
                payload.substr(0, payload.find('\n'));
            if (!obj.parse(line)) {
                sim::warn("serve: unparseable submission in %s, "
                          "skipping", dir.c_str());
                continue;
            }
            Submission sub;
            std::string err;
            if (!decodeSubmission(obj, sub, &err)) {
                sim::warn("serve: bad submission in %s (%s), "
                          "skipping", dir.c_str(), err.c_str());
                continue;
            }
            campaign::CampaignSpec spec;
            if (!campaign::buildSpec(sub.fields, spec, &err)) {
                sim::warn("serve: submission in %s no longer "
                          "builds (%s), skipping", dir.c_str(),
                          err.c_str());
                continue;
            }

            const std::string id = sub.id();
            const bool cancelled =
                fs::exists(dir + "/cancelled");
            {
                std::lock_guard<std::mutex> lock(mu);
                if (jobs.count(id))
                    continue;
                auto job = std::make_unique<Job>();
                job->sub = sub;
                job->dir = dir;
                job->spec = std::move(spec);
                job->order = nextOrder++;
                auto &tenant = tenants[sub.tenant];
                if (tenant.firstSeen == 0)
                    tenant.firstSeen = job->order + 1;
                if (cancelled) {
                    // Visible in status, never scheduled.
                    job->state = "cancelled";
                    job->cancelRequested = true;
                    jobs.emplace(id, std::move(job));
                    continue;
                }
                jobs.emplace(id, std::move(job));
            }
            // Re-enqueued like a fresh submission: the store knows
            // what already ran, Execution schedules only the rest,
            // and a long-finished campaign completes immediately.
            queue->post([this] { pump(); });
            ++resumed;
        }
    }
    return resumed;
}

void
Scheduler::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    draining = true;
    eventCv.wait(lock, [this] {
        if (stopped)
            return true; // forced shutdown aborts the drain
        for (const auto &kv : jobs) {
            const std::string &s = kv.second->state;
            if (s != "complete" && s != "cancelled" &&
                s != "failed")
                return false;
        }
        return true;
    });
}

bool
Scheduler::jobHasWork(const Job &job) const
{
    if (job.cancelRequested)
        return false;
    if (job.state == "queued" && !job.starting)
        return true;
    return job.state == "running" && !job.frontier.empty();
}

Scheduler::Job *
Scheduler::pickJob()
{
    // Tenant first: fewest cells in flight, then fewest served,
    // then first seen — the fair share. Job within the tenant:
    // highest priority, then submission order.
    Job *best = nullptr;
    const Tenant *bestTenant = nullptr;
    for (auto &kv : jobs) {
        Job &job = *kv.second;
        if (!jobHasWork(job))
            continue;
        const Tenant &ten = tenants[job.sub.tenant];
        if (best) {
            const Tenant &bt = *bestTenant;
            if (job.sub.tenant != best->sub.tenant) {
                auto key = [](const Tenant &t) {
                    return std::make_tuple(t.inFlight, t.served,
                                           t.firstSeen);
                };
                if (key(bt) <= key(ten))
                    continue;
            } else {
                auto key = [](const Job &j) {
                    return std::make_tuple(-j.sub.priority,
                                           j.order);
                };
                if (key(*best) <= key(job))
                    continue;
            }
        }
        best = &job;
        bestTenant = &ten;
    }
    return best;
}

void
Scheduler::pump()
{
    std::unique_lock<std::mutex> lock(mu);
    Job *job = pickJob();
    if (!job)
        return; // token outlived its work (cancel, double-post)

    if (job->state == "queued") {
        job->starting = true;
        lock.unlock();
        startJob(*job);
        return;
    }

    const campaign::Cell cell = job->frontier.front();
    job->frontier.pop_front();
    ++job->inFlight;
    ++tenants[job->sub.tenant].inFlight;
    lock.unlock();
    runCell(*job, cell);
}

void
Scheduler::startJob(Job &job)
{
    campaign::CampaignOptions opt;
    opt.hostThreads = 1; // budget pilots run inline on this worker
    opt.ckptDir = job.spec.numCheckpoints ? cfg.ckptDir : "";
    opt.sharedLibrary =
        job.spec.numCheckpoints ? cfg.library : nullptr;

    std::string err;
    auto exec = campaign::Execution::tryCreate(
        job.spec, job.dir + "/store", opt, &err);

    std::unique_lock<std::mutex> lock(mu);
    if (job.cancelRequested) {
        job.starting = false;
        finishJob(job, "cancelled", "");
        return;
    }
    if (!exec) {
        job.starting = false;
        finishJob(job, "failed", err);
        return;
    }
    job.exec = std::move(exec);
    job.state = "running";
    // starting stays true across the unlock: it is what keeps
    // cancel() from finishJob()ing — and freeing exec — while
    // refillJob() walks the store outside mu. refillJob clears it
    // under mu, as the end-of-round path does.
    lock.unlock();

    refillJob(job);
}

void
Scheduler::refillJob(Job &job)
{
    // Outside mu: recomputing decisions replays store state and may
    // contend only on the store's own mutex. An escaped exception
    // would leave starting=true forever (TaskQueue swallows it), so
    // convert throws into a terminal failed state.
    std::vector<campaign::Cell> cells;
    std::uint64_t target = 0;
    std::uint64_t recorded = 0;
    try {
        cells = job.exec->pendingCells();
        for (const auto &d : job.exec->decisions())
            target += d.target;
        recorded = job.exec->resultStore().totalRuns();
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(mu);
        job.starting = false;
        failJob(job, e.what());
        return;
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        job.starting = false;
        failJob(job, "unknown exception recomputing frontier");
        return;
    }

    std::unique_lock<std::mutex> lock(mu);
    job.starting = false;
    job.target = target;
    job.recorded = recorded;
    if (job.cancelRequested) {
        finishJob(job, "cancelled", "");
        return;
    }
    if (cells.empty()) {
        finishJob(job, "complete", "");
        return;
    }
    job.frontier.assign(cells.begin(), cells.end());
    Event ev;
    ev.kind = "round";
    ev.recorded = recorded;
    ev.target = target;
    emit(job, ev);
    const std::size_t tokens = cells.size();
    lock.unlock();
    for (std::size_t i = 0; i < tokens; ++i)
        queue->post([this] { pump(); });
}

void
Scheduler::runCell(Job &job, const campaign::Cell &cell)
{
    // An exception here must still run the bookkeeping below:
    // TaskQueue swallows throws, and a job with phantom inFlight
    // never terminates (watchers spin, drain() hangs) while its
    // tenant's fair share stays inflated.
    campaign::RunRecord rec;
    bool threw = false;
    std::string what;
    try {
        job.exec->prepareCell(cell);
        rec = job.exec->runCell(cell);
    } catch (const std::exception &e) {
        threw = true;
        what = e.what();
    } catch (...) {
        threw = true;
        what = "unknown exception running cell";
    }

    std::unique_lock<std::mutex> lock(mu);
    --job.inFlight;
    auto &tenant = tenants[job.sub.tenant];
    --tenant.inFlight;
    if (threw) {
        failJob(job, what);
        return;
    }
    ++tenant.served;
    ++executed;
    ++job.recorded;

    Event ev;
    ev.kind = "run";
    ev.group = rec.group;
    ev.runIdx = rec.runIdx;
    ev.value = rec.cyclesPerTxn;
    ev.recorded = job.recorded;
    ev.target = job.target;
    emit(job, ev);

    if (job.cancelRequested) {
        if (job.inFlight == 0 && !job.starting)
            finishJob(job, "cancelled", "");
        return;
    }
    if (job.failRequested) {
        // Another worker's cell threw; the last one out fails the
        // job with that first error.
        if (job.inFlight == 0 && !job.starting)
            finishJob(job, "failed", job.error);
        return;
    }
    if (job.frontier.empty() && job.inFlight == 0 &&
        !job.starting && job.state == "running") {
        // Last cell of the round: this worker recomputes the
        // frontier (adaptive extension or completion).
        job.starting = true;
        lock.unlock();
        refillJob(job);
    }
}

void
Scheduler::emit(Job &job, Event ev)
{
    ev.seq = job.events.size() + 1;
    ev.campaignId = job.sub.tenant + "/" + job.sub.name;
    job.events.push_back(std::move(ev));
    eventCv.notify_all();
}

void
Scheduler::failJob(Job &job, const std::string &what)
{
    job.frontier.clear();
    if (job.error.empty())
        job.error = what;
    job.failRequested = true;
    if (job.inFlight == 0 && !job.starting)
        finishJob(job,
                  job.cancelRequested ? "cancelled" : "failed",
                  job.error);
}

void
Scheduler::finishJob(Job &job, const std::string &state,
                     const std::string &error)
{
    if (job.exec) {
        if (state == "complete")
            job.exec->recordCkptStats();
        job.recorded = job.exec->resultStore().totalRuns();
        job.exec.reset(); // releases the store's write lock
    }
    job.state = state;
    job.error = error;
    Event ev;
    ev.kind = state;
    ev.recorded = job.recorded;
    ev.target = job.target;
    ev.message = error;
    emit(job, ev);
    eventCv.notify_all();
}

} // namespace serve
} // namespace varsim
