#include "serve/schema.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace varsim
{
namespace serve
{

using sim::JsonLine;
using sim::JsonWriter;

bool
validName(const std::string &s)
{
    if (s.empty() || s.size() > 64 || s.front() == '.')
        return false;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
encodeSubmission(const Submission &sub)
{
    const campaign::SpecFields &f = sub.fields;
    JsonWriter w;
    w.field("req", std::string("submit"));
    w.field("schema", static_cast<std::uint64_t>(kSchemaVersion));
    w.field("tenant", sub.tenant);
    w.field("name", sub.name);
    w.field("priority",
            sim::format("%d", sub.priority)); // may be negative
    w.field("fingerprint", sub.fingerprintHex);

    // Base knobs ride as "knob=value" strings: the jsonl dialect
    // has no nested objects, and this is the CLI's own syntax.
    std::vector<std::string> base;
    for (const auto &kv : f.base)
        base.push_back(kv.first + "=" + kv.second);
    w.field("base", base);
    w.field("vary", f.vary);

    w.field("workload", f.workload);
    w.field("wl_seed", f.workloadSeed);
    w.field("tpc", f.threadsPerCpu);
    w.field("warmup", f.warmupTxns);
    w.field("txns", f.measureTxns);
    w.field("intra_threads", f.intraThreads);
    w.field("lookahead",
            sim::format("%lld",
                        static_cast<long long>(f.lookahead)));
    w.field("sample", f.sample);
    w.field("sample_offset_seed", f.sampleOffsetSeed);
    w.field("seed", f.baseSeed);
    w.field("checkpoints", f.numCheckpoints);
    w.field("ckpt_step", f.checkpointStep);
    w.field("strategy", f.strategy);
    w.field("fixed_runs", f.fixedRuns);
    w.field("pilot_runs", f.pilotRuns);
    w.field("max_runs", f.maxRuns);
    w.field("rel_err", f.relativeError);
    w.field("alpha", f.alpha);
    w.field("confidence", f.confidence);
    w.field("budget", f.budgetTxns);
    return w.str();
}

bool
decodeSubmission(const JsonLine &obj, Submission &out,
                 std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err)
            *err = std::move(msg);
        return false;
    };

    const std::uint64_t schema = obj.num("schema");
    if (schema != static_cast<std::uint64_t>(kSchemaVersion))
        return fail(sim::format(
            "unsupported submission schema %llu (this daemon "
            "speaks %d); rebuild the client",
            static_cast<unsigned long long>(schema),
            kSchemaVersion));

    out.tenant = obj.str("tenant");
    out.name = obj.str("name");
    if (!validName(out.tenant))
        return fail("bad tenant name '" + out.tenant +
                    "' (want [A-Za-z0-9_.-]{1,64}, no leading "
                    "dot)");
    if (!validName(out.name))
        return fail("bad campaign name '" + out.name +
                    "' (want [A-Za-z0-9_.-]{1,64}, no leading "
                    "dot)");
    out.priority =
        static_cast<int>(std::strtol(obj.str("priority", "0")
                                         .c_str(), nullptr, 10));
    out.fingerprintHex = obj.str("fingerprint");
    if (out.fingerprintHex.empty())
        return fail("submission carries no spec fingerprint");

    campaign::SpecFields f;
    for (const std::string &kv : obj.list("base")) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail("bad base knob '" + kv +
                        "' (want knob=value)");
        f.base[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    f.vary = obj.list("vary");
    f.workload = obj.str("workload", f.workload);
    f.workloadSeed = obj.num("wl_seed", f.workloadSeed);
    f.threadsPerCpu = obj.num("tpc", f.threadsPerCpu);
    f.warmupTxns = obj.num("warmup", f.warmupTxns);
    f.measureTxns = obj.num("txns", f.measureTxns);
    f.intraThreads = obj.num("intra_threads", f.intraThreads);
    f.lookahead = static_cast<std::int64_t>(
        std::strtoll(obj.str("lookahead", "-1").c_str(), nullptr,
                     10));
    f.sample = obj.str("sample", f.sample);
    f.sampleOffsetSeed =
        obj.num("sample_offset_seed", f.sampleOffsetSeed);
    f.baseSeed = obj.num("seed", f.baseSeed);
    f.numCheckpoints = obj.num("checkpoints", f.numCheckpoints);
    f.checkpointStep = obj.num("ckpt_step", f.checkpointStep);
    f.strategy = obj.str("strategy", f.strategy);
    f.fixedRuns = obj.num("fixed_runs", f.fixedRuns);
    f.pilotRuns = obj.num("pilot_runs", f.pilotRuns);
    f.maxRuns = obj.num("max_runs", f.maxRuns);
    f.relativeError = obj.real("rel_err", f.relativeError);
    f.alpha = obj.real("alpha", f.alpha);
    f.confidence = obj.real("confidence", f.confidence);
    f.budgetTxns = obj.num("budget", f.budgetTxns);
    out.fields = std::move(f);
    return true;
}

std::string
encodeEvent(const Event &ev)
{
    JsonWriter w;
    w.field("type", std::string("event"));
    w.field("seq", ev.seq);
    w.field("kind", ev.kind);
    w.field("campaign", ev.campaignId);
    if (ev.kind == "run") {
        w.field("group", ev.group);
        w.field("run", ev.runIdx);
        w.field("value", ev.value);
    }
    if (ev.kind == "run" || ev.kind == "round") {
        w.field("recorded", ev.recorded);
        w.field("target", ev.target);
    }
    if (!ev.message.empty())
        w.field("message", ev.message);
    return w.str();
}

bool
decodeEvent(const JsonLine &obj, Event &out)
{
    if (obj.str("type") != "event")
        return false;
    out.seq = obj.num("seq");
    out.kind = obj.str("kind");
    out.campaignId = obj.str("campaign");
    out.group = obj.num("group");
    out.runIdx = obj.num("run");
    out.value = obj.real("value");
    out.recorded = obj.num("recorded");
    out.target = obj.num("target");
    out.message = obj.str("message");
    return !out.kind.empty();
}

std::string
encodeInfo(const CampaignInfo &info)
{
    JsonWriter w;
    w.field("type", std::string("campaign"));
    w.field("id", info.id);
    w.field("state", info.state);
    w.field("priority", sim::format("%d", info.priority));
    w.field("recorded", info.recorded);
    w.field("target", info.target);
    w.field("in_flight", info.inFlight);
    if (!info.error.empty())
        w.field("error", info.error);
    return w.str();
}

bool
decodeInfo(const JsonLine &obj, CampaignInfo &out)
{
    if (obj.str("type") != "campaign")
        return false;
    out.id = obj.str("id");
    out.state = obj.str("state");
    out.priority = static_cast<int>(
        std::strtol(obj.str("priority", "0").c_str(), nullptr,
                    10));
    out.recorded = obj.num("recorded");
    out.target = obj.num("target");
    out.inFlight = obj.num("in_flight");
    out.error = obj.str("error");
    return !out.id.empty();
}

} // namespace serve
} // namespace varsim
