/**
 * @file
 * The resident `varsim serve` daemon: socket front-end over a
 * Scheduler.
 *
 * The wire model is deliberately boring: one connection, one
 * request frame, one reply (or a bounded stream for status/watch),
 * close. No connection state survives a request, so a daemon
 * restart owes clients nothing — they reconnect and the durable
 * scheduler state answers. Streams end with a `type=end` frame;
 * errors are `type=error` frames with a human message.
 *
 * Request vocabulary (all flat jsonl payloads):
 *
 *   req=ping     liveness + schema echo
 *   req=submit   a Submission (schema.hh); reply ok/error
 *   req=status   [tenant] stream of type=campaign frames + end
 *   req=info     id; one type=campaign frame
 *   req=watch    id [after]; stream of type=event frames,
 *                end frame once the campaign is terminal
 *   req=cancel   id; reply ok/error
 *   req=report   id [confidence, metric]; reply ok with the same
 *                report text `varsim campaign report` prints
 *   req=drain    finish every admitted campaign, then reply ok and
 *                shut the daemon down
 */

#ifndef VARSIM_SERVE_DAEMON_HH
#define VARSIM_SERVE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"
#include "serve/scheduler.hh"

namespace varsim
{

namespace ckpt
{
class CheckpointLibrary;
}

namespace serve
{

struct DaemonConfig
{
    /** Daemon root: tenants/, ckpts/ live here. */
    std::string root;

    /** Listen address. */
    Address addr;

    /** Scheduler worker threads (0 = hardware). */
    std::size_t workers = 0;
};

class Daemon
{
  public:
    explicit Daemon(const DaemonConfig &cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Open the shared checkpoint library, resume every durable
     * in-flight campaign, bind the listen socket, and start the
     * acceptor. False with @p err on a bind failure.
     */
    bool start(std::string *err);

    /** Campaigns resumeAll() re-enqueued during start(). */
    std::size_t resumedCount() const { return resumed; }

    /** Block until a drain request or requestStop() arrives. */
    void wait();

    /**
     * Ask the daemon to exit: stops the acceptor and unblocks
     * wait(). Async-signal-unsafe (locks); call from a polling
     * loop, not a signal handler.
     */
    void requestStop();

    /**
     * Tear down: stop accepting, wait out connection handlers,
     * stop the scheduler. In-flight cells not yet recorded are
     * simply lost to the durable state and re-run on next start.
     */
    void shutdown();

    Scheduler &scheduler() { return *sched; }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    void handleWatch(FrameIo &io, const std::string &id,
                     std::uint64_t after);

    DaemonConfig cfg;
    std::unique_ptr<ckpt::CheckpointLibrary> library;
    std::unique_ptr<Scheduler> sched;
    std::size_t resumed = 0;

    int listenFd = -1;
    std::thread acceptor;
    std::atomic<bool> stopping{false};

    std::mutex mu;
    std::condition_variable stopCv;
    bool stopRequested = false;

    /** Live connection handlers (detached); shutdown waits. */
    std::size_t activeConns = 0;
    std::condition_variable connsCv;
};

} // namespace serve
} // namespace varsim

#endif // VARSIM_SERVE_DAEMON_HH
