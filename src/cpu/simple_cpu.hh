/**
 * @file
 * The fast blocking processor model (paper Section 3.2.4): completes
 * one instruction per cycle at 1 GHz if the L1 caches are perfect,
 * and stalls completely on every miss. This is the model behind most
 * of the paper's results (Experiments in Sections 4.1.1, 4.2, 4.3).
 *
 * Implementation note: instruction cycles accumulate as "time debt"
 * that is settled whenever the CPU interacts with the outside world
 * (a cache miss, a syscall, a preemption, or when the debt crosses a
 * threshold). L1 hits therefore cost no event-queue traffic, which
 * keeps multi-run experiments cheap.
 */

#ifndef VARSIM_CPU_SIMPLE_CPU_HH
#define VARSIM_CPU_SIMPLE_CPU_HH

#include "cpu/base_cpu.hh"

namespace varsim
{
namespace cpu
{

class SimpleCpu : public BaseCpu
{
  public:
    SimpleCpu(std::string name, sim::EventQueue &eq,
              const CpuConfig &cfg, mem::L1Cache &icache,
              mem::L1Cache &dcache, sim::CpuId id);

    void memResponse(std::uint64_t tag) override;

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  protected:
    void resume() override;
    void resetPipeline() override;

  private:
    enum class Phase : std::uint8_t
    {
        Start,  ///< op boundary: drain/preempt checks, fetch next op
        Instr,  ///< charge the op's instruction cycles (with ifetch)
        Data,   ///< perform the op's data access, if any
        Finish, ///< retire the op or hand it to the OS
    };

    /**
     * Settle accumulated cycles by scheduling a resume.
     * @return true if there was no debt (continue immediately).
     */
    bool payDebt();

    Phase phase = Phase::Start;
    std::uint64_t remaining = 0; ///< instructions left in this op
    sim::Tick owed = 0;          ///< unsettled cycles
    bool awaitingMem = false;
};

} // namespace cpu
} // namespace varsim

#endif // VARSIM_CPU_SIMPLE_CPU_HH
