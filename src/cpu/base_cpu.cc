#include "cpu/base_cpu.hh"

#include "sim/logging.hh"
#include "sim/statistics.hh"

namespace varsim
{
namespace cpu
{

BaseCpu::BaseCpu(std::string name, sim::EventQueue &eq,
                 const CpuConfig &config, mem::L1Cache &ic,
                 mem::L1Cache &dc, sim::CpuId id)
    : SimObject(std::move(name), eq), cfg(config), icache(ic),
      dcache(dc),
      resumeEvent([this] { resume(); }, this->name() + ".resume",
                  sim::Event::cpuTickPri),
      id_(id)
{
    icache.setClient(this);
    dcache.setClient(this);
}

CpuHost &
BaseCpu::host()
{
    VARSIM_ASSERT(host_ != nullptr, "%s has no host attached",
                  name().c_str());
    return *host_;
}

void
BaseCpu::runThread(ThreadContext *tc, sim::Tick delay)
{
    VARSIM_ASSERT(tc != nullptr, "runThread(null)");
    VARSIM_ASSERT(!resumeEvent.scheduled(),
                  "%s: dispatch while still active", name().c_str());
    if (idle_)
        stats_.idleTicks += curTick() - idleSince;
    tc_ = tc;
    idle_ = false;
    ++stats_.contextSwitches;
    resetFast();
    resetPipeline();
    scheduleIn(resumeEvent, delay);
}

void
BaseCpu::continueThread(sim::Tick delay)
{
    VARSIM_ASSERT(tc_ != nullptr, "%s: continue with no thread",
                  name().c_str());
    VARSIM_ASSERT(!resumeEvent.scheduled(),
                  "%s: continue while still active", name().c_str());
    scheduleIn(resumeEvent, delay);
}

void
BaseCpu::setIdle()
{
    if (resumeEvent.scheduled())
        deschedule(resumeEvent);
    tc_ = nullptr;
    if (!idle_)
        idleSince = curTick();
    idle_ = true;
    resetFast();
    resetPipeline();
}

void
BaseCpu::setFastMode(bool on)
{
    if (fastMode_ == on)
        return;
    // Mode flips happen between drain periods: every CPU is parked
    // at an op boundary with its debts settled, so the two engines
    // hand the op stream to each other with no partial-op residue.
    VARSIM_ASSERT(fastOwed == 0 && fastPhase == FastPhase::Start,
                  "%s: fast-mode switch mid-op", name().c_str());
    fastMode_ = on;
}

bool
BaseCpu::payFastDebt()
{
    if (fastOwed == 0)
        return true;
    const sim::Tick d = fastOwed;
    fastOwed = 0;
    scheduleIn(resumeEvent, d);
    return false;
}

void
BaseCpu::warmBranch(const Op &op)
{
    (void)op;
    ++stats_.branches;
}

void
BaseCpu::resumeFast()
{
    if (idle_ || tc_ == nullptr || resumeEvent.scheduled())
        return;

    while (true) {
        switch (fastPhase) {
          case FastPhase::Start: {
            if (host().draining() || preemptPending) {
                if (!payFastDebt())
                    return;
                if (host().draining()) {
                    host().drained(*this);
                    return;
                }
                preemptPending = false;
                host().preempted(*this);
                return;
            }
            fastRemaining = instrCost(tc_->stream().current());
            fastPhase = FastPhase::Instr;
            break;
          }
          case FastPhase::Instr: {
            // One cycle per instruction; fetch misses complete
            // synchronously through the warm path and charge their
            // fixed latency as debt.
            FetchState &f = tc_->fetchState();
            while (fastRemaining > 0) {
                if (f.sinceBoundary == 0) {
                    fastOwed += icache.warmAccess(
                        f.blockAddr(icache.blockSize()), false);
                }
                const std::uint64_t step =
                    f.advanceWithinBlock(fastRemaining);
                fastRemaining -= step;
                fastOwed += step;
                stats_.instructions += step;
                if (fastOwed >= cfg.debtThreshold) {
                    if (!payFastDebt())
                        return;
                }
            }
            fastPhase = FastPhase::Finish;
            break;
          }
          case FastPhase::Finish: {
            const Op op = tc_->stream().current();
            switch (op.kind) {
              case OpKind::Compute:
                tc_->stream().advance();
                fastPhase = FastPhase::Start;
                break;
              case OpKind::Load:
              case OpKind::Store:
                fastOwed += dcache.warmAccess(
                    op.addr, op.kind != OpKind::Load);
                ++stats_.memOps;
                tc_->stream().advance();
                fastPhase = FastPhase::Start;
                break;
              case OpKind::Branch:
              case OpKind::Call:
              case OpKind::Return:
              case OpKind::IndirectBranch:
                warmBranch(op);
                tc_->stream().advance();
                fastPhase = FastPhase::Start;
                break;
              case OpKind::Lock:
              case OpKind::Unlock:
                // Synchronizing RMW on the lock word, then trap.
                // The access must happen exactly once: paying its
                // debt parks the CPU, and a re-entry that repeated
                // the RMW would livelock when contending spinners
                // keep stealing the line from each other.
                fastOwed += dcache.warmAccess(op.addr, true);
                ++stats_.memOps;
                fastPhase = FastPhase::Trap;
                break;
              default:
                fastPhase = FastPhase::Trap;
                break;
            }
            break;
          }
          case FastPhase::Trap: {
            // OS-visible op: settle the debt, then trap so the
            // scheduler sees the op at the right tick.
            if (!payFastDebt())
                return;
            const Op op = tc_->stream().current();
            fastPhase = FastPhase::Start;
            host().syscall(*this, *tc_, op);
            return;
          }
        }
    }
}

void
BaseCpu::resumeFromDrain()
{
    if (idle_ || tc_ == nullptr)
        return;
    if (!resumeEvent.scheduled())
        scheduleIn(resumeEvent, 0);
}

std::uint64_t
BaseCpu::instrCost(const Op &op)
{
    switch (op.kind) {
      case OpKind::Compute:
        return op.count;
      case OpKind::Load:
      case OpKind::Store:
      case OpKind::Branch:
      case OpKind::Call:
      case OpKind::Return:
      case OpKind::IndirectBranch:
      case OpKind::Lock:
      case OpKind::Unlock:
        return 1;
      default:
        return 0;
    }
}

void
BaseCpu::serialize(sim::CheckpointOut &cp) const
{
    cp.put(stats_);
    cp.put(nextTag);
    // A drain can begin with a quantum preemption already pending;
    // the CPU parks at its op boundary without consuming the flag.
    // Dropping it across a restore would skip that context switch
    // and fork the schedule from the original's.
    cp.put(preemptPending);
}

void
BaseCpu::unserialize(sim::CheckpointIn &cp)
{
    cp.get(stats_);
    cp.get(nextTag);
    cp.get(preemptPending);
}

void
BaseCpu::regStats(sim::statistics::Registry &r)
{
    const std::string &n = name();
    r.regScalar(n + ".instructions", &stats_.instructions);
    r.regScalar(n + ".mem_ops", &stats_.memOps);
    r.regScalar(n + ".branches", &stats_.branches);
    r.regScalar(n + ".mispredicts", &stats_.mispredicts);
    r.regScalar(n + ".context_switches",
                &stats_.contextSwitches);
    r.regScalar(n + ".idle_ticks", &stats_.idleTicks);
    r.regFormula(n + ".ipc", [this] {
        const double elapsed = static_cast<double>(curTick());
        return elapsed > 0.0
                   ? static_cast<double>(stats_.instructions) /
                         elapsed
                   : 0.0;
    });
}

} // namespace cpu
} // namespace varsim
