#include "cpu/branch_predictor.hh"

#include "sim/logging.hh"

namespace varsim
{
namespace cpu
{

namespace
{

bool
isPow2(std::size_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** 2-bit saturating counter update. */
std::uint8_t
saturate(std::uint8_t c, bool up)
{
    if (up)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // anonymous namespace

YagsPredictor::YagsPredictor(std::size_t choice_entries,
                             std::size_t cache_entries,
                             std::size_t history_bits)
    : choicePht(choice_entries, 1), takenCache(cache_entries),
      notTakenCache(cache_entries),
      historyMask((1u << history_bits) - 1u)
{
    VARSIM_ASSERT(isPow2(choice_entries) && isPow2(cache_entries),
                  "YAGS table sizes must be powers of two");
}

std::size_t
YagsPredictor::choiceIndex(sim::Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) &
                                    (choicePht.size() - 1));
}

std::size_t
YagsPredictor::cacheIndex(sim::Addr pc) const
{
    return static_cast<std::size_t>(((pc >> 2) ^ history) &
                                    (takenCache.size() - 1));
}

std::uint16_t
YagsPredictor::cacheTag(sim::Addr pc) const
{
    return static_cast<std::uint16_t>((pc >> 2) & 0xff);
}

bool
YagsPredictor::predict(sim::Addr pc) const
{
    const bool choiceTaken = choicePht[choiceIndex(pc)] >= 2;
    // Consult the cache that records exceptions to the choice.
    const auto &cache = choiceTaken ? takenCache : notTakenCache;
    const CacheEntry &e = cache[cacheIndex(pc)];
    if (e.valid && e.tag == cacheTag(pc))
        return e.counter >= 2;
    return choiceTaken;
}

void
YagsPredictor::update(sim::Addr pc, bool taken)
{
    const std::size_t ci = choiceIndex(pc);
    const bool choiceTaken = choicePht[ci] >= 2;
    auto &cache = choiceTaken ? takenCache : notTakenCache;
    CacheEntry &e = cache[cacheIndex(pc)];
    const bool cacheHit = e.valid && e.tag == cacheTag(pc);

    // The choice PHT trains except when the exception cache hit and
    // agreed with the outcome while disagreeing with the choice
    // (standard YAGS update rule, simplified).
    if (!(cacheHit && (e.counter >= 2) == taken &&
          choiceTaken != taken)) {
        choicePht[ci] = saturate(choicePht[ci], taken);
    }

    // Exception caches allocate on mispredictions by the choice.
    if (cacheHit) {
        e.counter = saturate(e.counter, taken);
    } else if (choiceTaken != taken) {
        e.valid = true;
        e.tag = cacheTag(pc);
        e.counter = taken ? 2 : 1;
    }

    history = ((history << 1) | (taken ? 1u : 0u)) & historyMask;
}

void
YagsPredictor::serialize(sim::CheckpointOut &cp) const
{
    cp.put(choicePht);
    cp.put(history);
    cp.put(numLookups);
    cp.put(numCorrect);
    auto putCache = [&cp](const std::vector<CacheEntry> &c) {
        for (const auto &e : c) {
            cp.put(e.tag);
            cp.put(e.counter);
            cp.put(e.valid);
        }
    };
    putCache(takenCache);
    putCache(notTakenCache);
}

void
YagsPredictor::unserialize(sim::CheckpointIn &cp)
{
    cp.get(choicePht);
    cp.get(history);
    cp.get(numLookups);
    cp.get(numCorrect);
    auto getCache = [&cp](std::vector<CacheEntry> &c) {
        for (auto &e : c) {
            cp.get(e.tag);
            cp.get(e.counter);
            cp.get(e.valid);
        }
    };
    getCache(takenCache);
    getCache(notTakenCache);
}

ReturnAddressStack::ReturnAddressStack(std::size_t entries)
    : stack(entries, 0)
{
    VARSIM_ASSERT(entries > 0, "RAS needs at least one entry");
}

void
ReturnAddressStack::push(sim::Addr ra)
{
    top = (top + 1) % stack.size();
    stack[top] = ra;
    if (count < stack.size())
        ++count;
}

sim::Addr
ReturnAddressStack::pop()
{
    if (count == 0)
        return 0;
    const sim::Addr ra = stack[top];
    top = (top + stack.size() - 1) % stack.size();
    --count;
    return ra;
}

void
ReturnAddressStack::serialize(sim::CheckpointOut &cp) const
{
    cp.put(stack);
    cp.put(top);
    cp.put(count);
}

void
ReturnAddressStack::unserialize(sim::CheckpointIn &cp)
{
    cp.get(stack);
    cp.get(top);
    cp.get(count);
}

IndirectPredictor::IndirectPredictor(std::size_t entries,
                                     std::size_t history_bits)
    : table(entries), historyMask((1u << history_bits) - 1u)
{
    VARSIM_ASSERT(isPow2(entries),
                  "indirect predictor size must be a power of two");
}

std::size_t
IndirectPredictor::index(sim::Addr pc) const
{
    return static_cast<std::size_t>(((pc >> 2) ^ history) &
                                    (table.size() - 1));
}

sim::Addr
IndirectPredictor::predict(sim::Addr pc) const
{
    const Entry &e = table[index(pc)];
    if (e.valid && e.tag == pc)
        return e.target;
    return 0;
}

void
IndirectPredictor::update(sim::Addr pc, sim::Addr target)
{
    Entry &e = table[index(pc)];
    e.valid = true;
    e.tag = pc;
    e.target = target;
    history =
        ((history << 2) ^ static_cast<std::uint32_t>(target >> 2)) &
        historyMask;
}

void
IndirectPredictor::serialize(sim::CheckpointOut &cp) const
{
    for (const auto &e : table) {
        cp.put(e.tag);
        cp.put(e.target);
        cp.put(e.valid);
    }
    cp.put(history);
}

void
IndirectPredictor::unserialize(sim::CheckpointIn &cp)
{
    for (auto &e : table) {
        cp.get(e.tag);
        cp.get(e.target);
        cp.get(e.valid);
    }
    cp.get(history);
}

} // namespace cpu
} // namespace varsim
