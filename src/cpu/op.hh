/**
 * @file
 * The abstract instruction-stream interface between workloads and
 * processor models.
 *
 * Workload threads are deterministic generators of *ops*: coarse
 * units (compute bursts, individual memory references, branches,
 * synchronization calls, transaction boundaries) that the CPU models
 * convert into timing. A thread's op sequence is a pure function of
 * the workload seed and the thread id — never of timing — so the
 * injected memory-latency perturbation remains the only source of
 * divergence between runs, exactly as in the paper's methodology
 * (Section 3.3). Timing determines only *when* each op executes and
 * how the OS interleaves threads.
 */

#ifndef VARSIM_CPU_OP_HH
#define VARSIM_CPU_OP_HH

#include <cstdint>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace varsim
{
namespace cpu
{

/** Kinds of ops a thread program can emit. */
enum class OpKind : std::uint8_t
{
    /** Execute `count` ALU instructions (no data memory traffic). */
    Compute,
    /**
     * One load from `addr`. `id` == 1 marks a dependent load (e.g.
     * a pointer-chase step): it cannot issue until earlier memory
     * operations complete, limiting memory-level parallelism the
     * way real B-tree descents do.
     */
    Load,
    /** One store to `addr`. */
    Store,
    /**
     * One conditional branch; `id` holds the actual outcome (0/1) and
     * `addr` the branch's PC. Out-of-order models consult their
     * predictor and charge a penalty on mispredictions.
     */
    Branch,
    /**
     * A call; `count` carries the return address pushed on the RAS.
     */
    Call,
    /**
     * A return; `count` carries the actual return address, checked
     * against the return-address-stack prediction.
     */
    Return,
    /**
     * An indirect branch at PC `addr`; `count` carries the actual
     * target, checked against the indirect-target predictor.
     */
    IndirectBranch,
    /** Acquire the mutex `id` whose lock word lives at `addr`. */
    Lock,
    /** Release the mutex `id` whose lock word lives at `addr`. */
    Unlock,
    /** Wait at barrier `id`. */
    Barrier,
    /** A transaction of type `id` just completed. */
    TxnEnd,
    /** Sleep for `count` ticks (think time / timed waits). */
    Sleep,
    /** Voluntarily yield the processor. */
    Yield,
    /** Thread is finished; it never runs again. */
    End,
};

/** One op. A plain value type; streams return them by reference. */
struct Op
{
    OpKind kind = OpKind::End;
    std::uint64_t count = 0; ///< instructions (Compute) / ticks (Sleep)
    sim::Addr addr = 0;      ///< data address / lock word / branch PC
    std::int32_t id = 0;     ///< lock/barrier/txn-type id, branch outcome
};

/**
 * A resumable, serializable op generator. current() is stable until
 * advance() is called; after an End op, advance() must not be called.
 */
class OpStream : public sim::Serializable
{
  public:
    ~OpStream() override = default;

    /** The op at the stream head. */
    virtual const Op &current() = 0;

    /** Consume the head op. */
    virtual void advance() = 0;
};

/**
 * Per-thread instruction-fetch state: a cyclic walk over the thread's
 * code footprint, one icache block per `instrPerBlock` instructions.
 * Context switches and migrations naturally cause refill misses —
 * one of the mechanisms through which different OS schedules yield
 * different performance (Section 2.1).
 */
struct FetchState
{
    sim::Addr codeBase = 0;      ///< start of the code region
    std::uint32_t codeBlocks = 1;///< loop length, in cache blocks
    std::uint32_t pos = 0;       ///< current block within the loop
    std::uint32_t sinceBoundary = 0; ///< instructions into the block
    std::uint32_t instrPerBlock = 16;///< 64B block / 4B instruction

    /** Address of the current code block (given block size). */
    sim::Addr
    blockAddr(std::size_t block_bytes) const
    {
        return codeBase + static_cast<sim::Addr>(pos) * block_bytes;
    }

    /**
     * Advance by up to @p n instructions without crossing a block
     * boundary.
     * @return instructions actually advanced (>=1 unless n==0).
     */
    std::uint64_t
    advanceWithinBlock(std::uint64_t n)
    {
        const std::uint64_t room = instrPerBlock - sinceBoundary;
        const std::uint64_t step = n < room ? n : room;
        sinceBoundary += static_cast<std::uint32_t>(step);
        if (sinceBoundary == instrPerBlock) {
            sinceBoundary = 0;
            pos = (pos + 1) % codeBlocks;
        }
        return step;
    }
};

} // namespace cpu
} // namespace varsim

#endif // VARSIM_CPU_OP_HH
