/**
 * @file
 * The detailed out-of-order processor model, in the spirit of TFsim
 * (paper Section 3.2.4): a 4-wide superscalar core with a YAGS
 * direction predictor, an indirect-target predictor, a 64-entry
 * return address stack, and a parameterizable reorder buffer
 * (Experiment 2 varies 16/32/64 entries).
 *
 * Timing follows an interval model: computation dispatches at a
 * sustained issue rate; data misses do not stall dispatch — they
 * occupy ROB slots and overlap (memory-level parallelism) until the
 * ROB window or the MSHRs fill, at which point dispatch stalls until
 * the oldest miss retires. Instruction-fetch misses and OS-visible
 * ops (locks, transaction boundaries) serialize the pipeline.
 */

#ifndef VARSIM_CPU_OOO_CPU_HH
#define VARSIM_CPU_OOO_CPU_HH

#include <deque>

#include "cpu/base_cpu.hh"
#include "cpu/branch_predictor.hh"

namespace varsim
{
namespace cpu
{

class OoOCpu : public BaseCpu
{
  public:
    OoOCpu(std::string name, sim::EventQueue &eq,
           const CpuConfig &cfg, mem::L1Cache &icache,
           mem::L1Cache &dcache, sim::CpuId id);

    void memResponse(std::uint64_t tag) override;

    /** Direction predictor accuracy (for stats/tests). */
    const YagsPredictor &directionPredictor() const { return yags; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

    /** Base CPU counters plus branch-predictor accuracy. */
    void regStats(sim::statistics::Registry &r) override;

  protected:
    void resume() override;
    void resetPipeline() override;
    void warmBranch(const Op &op) override;

  private:
    enum class Phase : std::uint8_t
    {
        Start,
        Instr,
        Data,
        Finish,
    };

    struct MissEntry
    {
        std::uint64_t instrIdx;
        std::uint64_t tag;
        bool done;
    };

    bool payDebt();

    /** Drop completed entries from the ROB front. */
    void retireCompleted();

    /**
     * Enforce the ROB-window and MSHR limits before dispatching the
     * instruction at instrIdx.
     * @return true if dispatch may proceed; false if stalled (a wait
     *         state has been entered or a pay event scheduled).
     */
    bool windowAllowsDispatch();

    /** Advance the dispatch frontier by @p n instructions. */
    void addDispatch(std::uint64_t n);

    YagsPredictor yags;
    ReturnAddressStack ras;
    IndirectPredictor indirect;

    Phase phase = Phase::Start;
    std::uint64_t remaining = 0;
    sim::Tick owed = 0;
    std::uint32_t ipcCarry = 0;
    std::uint64_t instrIdx = 0;
    std::deque<MissEntry> missQueue;
    bool awaitingIFetch = false;
    std::uint64_t ifetchTag = 0;
    bool awaitingRetire = false; ///< stalled on the oldest miss
    bool blockingData = false;   ///< Lock/Unlock store in flight
};

} // namespace cpu
} // namespace varsim

#endif // VARSIM_CPU_OOO_CPU_HH
