#include "cpu/simple_cpu.hh"

#include "sim/trace.hh"

namespace varsim
{
namespace cpu
{

SimpleCpu::SimpleCpu(std::string name, sim::EventQueue &eq,
                     const CpuConfig &config, mem::L1Cache &ic,
                     mem::L1Cache &dc, sim::CpuId id)
    : BaseCpu(std::move(name), eq, config, ic, dc, id)
{}

void
SimpleCpu::resetPipeline()
{
    phase = Phase::Start;
    remaining = 0;
    owed = 0;
    awaitingMem = false;
}

bool
SimpleCpu::payDebt()
{
    if (owed == 0)
        return true;
    const sim::Tick d = owed;
    owed = 0;
    scheduleIn(resumeEvent, d);
    return false;
}

void
SimpleCpu::memResponse(std::uint64_t tag)
{
    (void)tag;
    VARSIM_ASSERT(awaitingMem, "%s: unexpected memory response",
                  name().c_str());
    awaitingMem = false;
    resume();
}

void
SimpleCpu::resume()
{
    if (fastModeActive()) {
        resumeFast();
        return;
    }
    if (idle_ || tc_ == nullptr || awaitingMem ||
        resumeEvent.scheduled()) {
        return;
    }

    while (true) {
        switch (phase) {
          case Phase::Start: {
            if (host().draining() || preemptPending) {
                if (!payDebt())
                    return;
                if (host().draining()) {
                    host().drained(*this);
                    return;
                }
                preemptPending = false;
                host().preempted(*this);
                return;
            }
            remaining = instrCost(tc_->stream().current());
            phase = Phase::Instr;
            break;
          }
          case Phase::Instr: {
            FetchState &f = tc_->fetchState();
            while (remaining > 0) {
                if (f.sinceBoundary == 0) {
                    const sim::Addr ba =
                        f.blockAddr(icache.blockSize());
                    if (!icache.tryAccess(ba, false)) {
                        if (!payDebt())
                            return;
                        awaitingMem = true;
                        icache.access({ba, false, true, nextTag++});
                        return;
                    }
                }
                const std::uint64_t step =
                    f.advanceWithinBlock(remaining);
                remaining -= step;
                owed += step;
                stats_.instructions += step;
                if (owed >= cfg.debtThreshold) {
                    if (!payDebt())
                        return;
                }
            }
            phase = Phase::Data;
            break;
          }
          case Phase::Data: {
            const Op &op = tc_->stream().current();
            if (op.kind == OpKind::Load || op.kind == OpKind::Store ||
                op.kind == OpKind::Lock ||
                op.kind == OpKind::Unlock) {
                const bool write = op.kind != OpKind::Load;
                if (!dcache.tryAccess(op.addr, write)) {
                    if (!payDebt())
                        return;
                    ++stats_.memOps;
                    awaitingMem = true;
                    dcache.access({op.addr, write, false, nextTag++});
                    phase = Phase::Finish;
                    return;
                }
                ++stats_.memOps;
            }
            phase = Phase::Finish;
            break;
          }
          case Phase::Finish: {
            const Op op = tc_->stream().current();
            switch (op.kind) {
              case OpKind::Compute:
              case OpKind::Load:
              case OpKind::Store:
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              case OpKind::Branch:
              case OpKind::Call:
              case OpKind::Return:
              case OpKind::IndirectBranch:
                // The blocking model spends one cycle per control
                // instruction and models no speculation.
                ++stats_.branches;
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              default:
                if (!payDebt())
                    return;
                phase = Phase::Start;
                host().syscall(*this, *tc_, op);
                return;
            }
            break;
          }
        }
    }
}

void
SimpleCpu::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(!awaitingMem && owed == 0 &&
                      phase == Phase::Start,
                  "%s: checkpoint while not quiescent",
                  name().c_str());
    BaseCpu::serialize(cp);
}

void
SimpleCpu::unserialize(sim::CheckpointIn &cp)
{
    BaseCpu::unserialize(cp);
    resetPipeline();
}

} // namespace cpu
} // namespace varsim
