#include "cpu/ooo_cpu.hh"

#include <limits>

#include "sim/statistics.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace cpu
{

OoOCpu::OoOCpu(std::string name, sim::EventQueue &eq,
               const CpuConfig &config, mem::L1Cache &ic,
               mem::L1Cache &dc, sim::CpuId id)
    : BaseCpu(std::move(name), eq, config, ic, dc, id)
{}

void
OoOCpu::resetPipeline()
{
    VARSIM_ASSERT(missQueue.empty(),
                  "%s: pipeline reset with misses in flight",
                  name().c_str());
    phase = Phase::Start;
    remaining = 0;
    owed = 0;
    ipcCarry = 0;
    instrIdx = 0;
    awaitingIFetch = false;
    awaitingRetire = false;
    blockingData = false;
}

bool
OoOCpu::payDebt()
{
    if (owed == 0)
        return true;
    const sim::Tick d = owed;
    owed = 0;
    scheduleIn(resumeEvent, d);
    return false;
}

void
OoOCpu::retireCompleted()
{
    while (!missQueue.empty() && missQueue.front().done)
        missQueue.pop_front();
}

void
OoOCpu::addDispatch(std::uint64_t n)
{
    const std::uint64_t total = ipcCarry + n;
    owed += total / cfg.issueIpc;
    ipcCarry = static_cast<std::uint32_t>(total % cfg.issueIpc);
}

void
OoOCpu::memResponse(std::uint64_t tag)
{
    if (awaitingIFetch && tag == ifetchTag) {
        awaitingIFetch = false;
        resume();
        return;
    }
    if (blockingData) {
        blockingData = false;
        resume();
        return;
    }
    for (MissEntry &e : missQueue) {
        if (e.tag == tag) {
            e.done = true;
            if (awaitingRetire) {
                awaitingRetire = false;
                resume();
            }
            return;
        }
    }
    sim::panic("%s: memory response with unknown tag %llu",
               name().c_str(), static_cast<unsigned long long>(tag));
}

void
OoOCpu::warmBranch(const Op &op)
{
    // Train every predictor structure exactly as the detailed engine
    // does — outcomes recorded, tables and the RAS updated — but
    // charge no refill penalty: fast mode warms state, not timing.
    switch (op.kind) {
      case OpKind::Branch: {
        ++stats_.branches;
        const bool taken = op.id != 0;
        const bool pred = yags.predict(op.addr);
        yags.recordOutcome(pred == taken);
        yags.update(op.addr, taken);
        if (pred != taken)
            ++stats_.mispredicts;
        break;
      }
      case OpKind::Call:
        ras.push(op.count);
        break;
      case OpKind::Return:
        ++stats_.branches;
        if (ras.pop() != op.count)
            ++stats_.mispredicts;
        break;
      case OpKind::IndirectBranch: {
        ++stats_.branches;
        const sim::Addr predicted = indirect.predict(op.addr);
        indirect.update(op.addr, op.count);
        if (predicted != op.count)
            ++stats_.mispredicts;
        break;
      }
      default:
        break;
    }
}

void
OoOCpu::resume()
{
    if (fastModeActive()) {
        resumeFast();
        return;
    }
    if (idle_ || tc_ == nullptr || awaitingIFetch || blockingData ||
        awaitingRetire || resumeEvent.scheduled()) {
        return;
    }

    retireCompleted();

    while (true) {
        switch (phase) {
          case Phase::Start: {
            if (host().draining() || preemptPending) {
                if (!payDebt())
                    return;
                retireCompleted();
                if (!missQueue.empty()) {
                    awaitingRetire = true;
                    return;
                }
                if (host().draining()) {
                    host().drained(*this);
                    return;
                }
                preemptPending = false;
                host().preempted(*this);
                return;
            }
            remaining = instrCost(tc_->stream().current());
            phase = Phase::Instr;
            break;
          }
          case Phase::Instr: {
            FetchState &f = tc_->fetchState();
            while (remaining > 0) {
                if (f.sinceBoundary == 0) {
                    const sim::Addr ba =
                        f.blockAddr(icache.blockSize());
                    if (!icache.tryAccess(ba, false)) {
                        // Fetch misses serialize the front end.
                        if (!payDebt())
                            return;
                        awaitingIFetch = true;
                        ifetchTag = nextTag;
                        icache.access({ba, false, true, nextTag++});
                        return;
                    }
                }
                std::uint64_t room =
                    std::numeric_limits<std::uint64_t>::max();
                if (!missQueue.empty()) {
                    retireCompleted();
                    if (!missQueue.empty()) {
                        const std::uint64_t limit =
                            missQueue.front().instrIdx +
                            cfg.robEntries;
                        room = limit > instrIdx ? limit - instrIdx
                                                : 0;
                        if (room == 0) {
                            // ROB full: stall until the oldest miss
                            // retires.
                            if (!payDebt())
                                return;
                            awaitingRetire = true;
                            return;
                        }
                    }
                }
                const std::uint64_t step = f.advanceWithinBlock(
                    remaining < room ? remaining : room);
                remaining -= step;
                instrIdx += step;
                addDispatch(step);
                stats_.instructions += step;
                if (owed >= cfg.debtThreshold) {
                    if (!payDebt())
                        return;
                }
            }
            phase = Phase::Data;
            break;
          }
          case Phase::Data: {
            const Op &op = tc_->stream().current();
            if (op.kind == OpKind::Load ||
                op.kind == OpKind::Store) {
                const bool write = op.kind == OpKind::Store;
                if (dcache.tryAccess(op.addr, write)) {
                    ++stats_.memOps;
                    phase = Phase::Finish;
                    break;
                }
                // Dependent loads (pointer chases) cannot overlap
                // earlier misses: the address is not known until
                // they complete.
                if (op.kind == OpKind::Load && op.id == 1 &&
                    !missQueue.empty()) {
                    if (!payDebt())
                        return;
                    retireCompleted();
                    if (!missQueue.empty()) {
                        awaitingRetire = true;
                        return;
                    }
                }
                // Miss: claim an MSHR; overlap with later work.
                if (missQueue.size() >= cfg.mshrEntries) {
                    if (!payDebt())
                        return;
                    retireCompleted();
                    if (missQueue.size() >= cfg.mshrEntries) {
                        awaitingRetire = true;
                        return;
                    }
                }
                if (!payDebt())
                    return;
                ++stats_.memOps;
                missQueue.push_back({instrIdx, nextTag, false});
                dcache.access({op.addr, write, false, nextTag++});
                phase = Phase::Finish;
                break;
            }
            if (op.kind == OpKind::Lock ||
                op.kind == OpKind::Unlock) {
                // Synchronizing RMW: drain the pipeline, then block
                // on the store (acquire/release semantics).
                if (!payDebt())
                    return;
                retireCompleted();
                if (!missQueue.empty()) {
                    awaitingRetire = true;
                    return;
                }
                if (!dcache.tryAccess(op.addr, true)) {
                    ++stats_.memOps;
                    blockingData = true;
                    dcache.access({op.addr, true, false, nextTag++});
                    phase = Phase::Finish;
                    return;
                }
                ++stats_.memOps;
            }
            phase = Phase::Finish;
            break;
          }
          case Phase::Finish: {
            const Op op = tc_->stream().current();
            switch (op.kind) {
              case OpKind::Compute:
              case OpKind::Load:
              case OpKind::Store:
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              case OpKind::Branch: {
                ++stats_.branches;
                const bool taken = op.id != 0;
                const bool pred = yags.predict(op.addr);
                yags.recordOutcome(pred == taken);
                yags.update(op.addr, taken);
                if (pred != taken) {
                    ++stats_.mispredicts;
                    owed += cfg.mispredictPenalty;
                }
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              }
              case OpKind::Call:
                ras.push(op.count);
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              case OpKind::Return: {
                ++stats_.branches;
                const sim::Addr predicted = ras.pop();
                if (predicted != op.count) {
                    ++stats_.mispredicts;
                    owed += cfg.mispredictPenalty;
                }
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              }
              case OpKind::IndirectBranch: {
                ++stats_.branches;
                const sim::Addr predicted = indirect.predict(op.addr);
                indirect.update(op.addr, op.count);
                if (predicted != op.count) {
                    ++stats_.mispredicts;
                    owed += cfg.mispredictPenalty;
                }
                tc_->stream().advance();
                phase = Phase::Start;
                break;
              }
              default:
                // OS-visible op: drain, then trap to the host.
                if (!payDebt())
                    return;
                retireCompleted();
                if (!missQueue.empty()) {
                    awaitingRetire = true;
                    return;
                }
                phase = Phase::Start;
                host().syscall(*this, *tc_, op);
                return;
            }
            break;
          }
        }
    }
}

void
OoOCpu::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(missQueue.empty() && !awaitingIFetch &&
                      !blockingData && owed == 0,
                  "%s: checkpoint while not quiescent",
                  name().c_str());
    BaseCpu::serialize(cp);
    yags.serialize(cp);
    ras.serialize(cp);
    indirect.serialize(cp);
    cp.put(ipcCarry);
}

void
OoOCpu::unserialize(sim::CheckpointIn &cp)
{
    BaseCpu::unserialize(cp);
    yags.unserialize(cp);
    ras.unserialize(cp);
    indirect.unserialize(cp);
    cp.get(ipcCarry);
    const std::uint32_t carry = ipcCarry;
    resetPipeline();
    ipcCarry = carry;
}

void
OoOCpu::regStats(sim::statistics::Registry &r)
{
    BaseCpu::regStats(r);
    const std::string &n = name();
    r.regFormula(n + ".bp_lookups",
                 [this] {
                     return static_cast<double>(yags.lookups());
                 },
                 "direction-predictor lookups");
    r.regFormula(n + ".bp_accuracy",
                 [this] {
                     const double looked =
                         static_cast<double>(yags.lookups());
                     return looked > 0.0
                                ? static_cast<double>(
                                      yags.correct()) /
                                      looked
                                : 0.0;
                 },
                 "direction-predictor hit rate");
}

} // namespace cpu
} // namespace varsim
