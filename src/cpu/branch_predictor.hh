/**
 * @file
 * Branch prediction structures modelled after the TFsim configuration
 * the paper uses for its detailed processor model (Section 3.2.4):
 * a YAGS direction predictor, a cascaded indirect-branch predictor
 * (modelled as a tagged target cache), and a return address stack.
 */

#ifndef VARSIM_CPU_BRANCH_PREDICTOR_HH
#define VARSIM_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace varsim
{
namespace cpu
{

/**
 * YAGS (Yet Another Global Scheme) direction predictor: a choice PHT
 * indexed by PC selects between taken/not-taken biased caches, each a
 * small tagged table of 2-bit counters indexed by PC^history.
 */
class YagsPredictor : public sim::Serializable
{
  public:
    /**
     * @param choice_entries size of the choice PHT (power of two)
     * @param cache_entries  size of each direction cache
     * @param history_bits   global history length
     */
    YagsPredictor(std::size_t choice_entries = 4096,
                  std::size_t cache_entries = 1024,
                  std::size_t history_bits = 8);

    /** Predict the direction of the branch at @p pc. */
    bool predict(sim::Addr pc) const;

    /** Train with the actual @p taken outcome and update history. */
    void update(sim::Addr pc, bool taken);

    /** Lookups so far. */
    std::uint64_t lookups() const { return numLookups; }

    /** Correct predictions so far. */
    std::uint64_t correct() const { return numCorrect; }

    /** Record a lookup outcome (called by the CPU model). */
    void
    recordOutcome(bool was_correct)
    {
        ++numLookups;
        if (was_correct)
            ++numCorrect;
    }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  private:
    struct CacheEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t counter = 1; ///< 2-bit saturating
        bool valid = false;
    };

    std::size_t choiceIndex(sim::Addr pc) const;
    std::size_t cacheIndex(sim::Addr pc) const;
    std::uint16_t cacheTag(sim::Addr pc) const;

    std::vector<std::uint8_t> choicePht; ///< 2-bit counters
    std::vector<CacheEntry> takenCache;  ///< exceptions to "taken"
    std::vector<CacheEntry> notTakenCache;
    std::uint32_t history = 0;
    std::uint32_t historyMask;
    std::uint64_t numLookups = 0;
    std::uint64_t numCorrect = 0;
};

/**
 * Return address stack (64 entries in the paper's TFsim setup).
 * Over/underflow wraps, as in real hardware.
 */
class ReturnAddressStack : public sim::Serializable
{
  public:
    explicit ReturnAddressStack(std::size_t entries = 64);

    /** Push a return address at a call. */
    void push(sim::Addr ra);

    /** Pop the predicted return address (0 if empty). */
    sim::Addr pop();

    /** Current depth (saturates at capacity). */
    std::size_t depth() const { return count; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  private:
    std::vector<sim::Addr> stack;
    std::size_t top = 0;
    std::size_t count = 0;
};

/**
 * Indirect-branch target cache (the "cascaded indirect predictor" is
 * modelled as one tagged, history-indexed target table).
 */
class IndirectPredictor : public sim::Serializable
{
  public:
    explicit IndirectPredictor(std::size_t entries = 64,
                               std::size_t history_bits = 6);

    /** Predicted target for the indirect branch at @p pc. */
    sim::Addr predict(sim::Addr pc) const;

    /** Train with the actual target and update path history. */
    void update(sim::Addr pc, sim::Addr target);

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  private:
    struct Entry
    {
        sim::Addr tag = 0;
        sim::Addr target = 0;
        bool valid = false;
    };

    std::size_t index(sim::Addr pc) const;

    std::vector<Entry> table;
    std::uint32_t history = 0;
    std::uint32_t historyMask;
};

} // namespace cpu
} // namespace varsim

#endif // VARSIM_CPU_BRANCH_PREDICTOR_HH
