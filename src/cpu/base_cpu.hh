/**
 * @file
 * Common machinery for the two processor models the paper uses
 * (Section 3.2.4): a fast blocking model with an IPC of 1 given
 * perfect L1s (SimpleCpu), and a 4-wide out-of-order model with a
 * parameterizable reorder buffer in the spirit of TFsim (OoOCpu).
 *
 * A CPU executes the op stream of the thread the simulated OS has
 * dispatched onto it, converting ops into timing against the memory
 * hierarchy. Scheduling policy lives entirely in the OS model; the
 * CPU reports back through the CpuHost interface at op boundaries
 * (syscalls, preemption points, drain points).
 */

#ifndef VARSIM_CPU_BASE_CPU_HH
#define VARSIM_CPU_BASE_CPU_HH

#include <cstdint>

#include "cpu/op.hh"
#include "mem/iface.hh"
#include "mem/l1_cache.hh"
#include "sim/sim_object.hh"

namespace varsim
{
namespace cpu
{

class BaseCpu;

/**
 * What a CPU needs to know about the software thread it is running.
 * Implemented by os::Thread.
 */
class ThreadContext
{
  public:
    virtual ~ThreadContext() = default;

    /** The thread's deterministic op stream. */
    virtual OpStream &stream() = 0;

    /** The thread's instruction-fetch walker. */
    virtual FetchState &fetchState() = 0;

    /** Thread id (for tracing). */
    virtual sim::ThreadId tid() const = 0;
};

/**
 * The CPU-to-OS upcall interface. Implemented by os::Scheduler.
 *
 * Contract: after any of these calls the CPU does nothing further
 * until the host invokes runThread(), continueThread(), or
 * setIdle() on it (except drained(), after which resumeFromDrain()
 * restarts execution).
 */
class CpuHost
{
  public:
    virtual ~CpuHost() = default;

    /**
     * The running thread reached an OS-visible op (Lock, Unlock,
     * Barrier, TxnEnd, Sleep, Yield, End). The host advances the
     * stream as appropriate and redispatches the CPU.
     */
    virtual void syscall(BaseCpu &cpu, ThreadContext &tc,
                         const Op &op) = 0;

    /** A requested preemption was honoured at an op boundary. */
    virtual void preempted(BaseCpu &cpu) = 0;

    /** The CPU reached a quiescent op boundary while draining. */
    virtual void drained(BaseCpu &cpu) = 0;

    /** True while the system is draining toward a checkpoint. */
    virtual bool draining() const = 0;
};

/** Configuration shared by the processor models. */
struct CpuConfig
{
    enum class Model
    {
        Simple,    ///< blocking, IPC 1 with perfect L1s
        OutOfOrder ///< 4-wide, ROB-windowed, multiple misses in flight
    };

    Model model = Model::Simple;

    /** Reorder buffer entries (Experiment 2 varies 16/32/64). */
    std::uint32_t robEntries = 64;

    /** Sustainable compute issue rate, instructions per cycle. */
    std::uint32_t issueIpc = 2;

    /** Maximum outstanding data misses (MSHRs). */
    std::uint32_t mshrEntries = 8;

    /** Pipeline refill penalty on a branch misprediction. */
    sim::Tick mispredictPenalty = 12;

    /**
     * Maximum accumulated "time debt" before the model synchronizes
     * with the event queue. Hitting ops cost no events; their cycles
     * accumulate as debt paid at interaction points (misses,
     * syscalls) or when this threshold is reached.
     */
    sim::Tick debtThreshold = 256;
};

/** Per-CPU execution statistics. */
struct CpuStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t contextSwitches = 0;
    sim::Tick idleTicks = 0;
};

/**
 * Base class: thread attachment protocol, drain/preempt flags, and
 * bookkeeping. The execution engine lives in subclasses' resume().
 */
class BaseCpu : public sim::SimObject, public mem::MemClient
{
  public:
    BaseCpu(std::string name, sim::EventQueue &eq,
            const CpuConfig &cfg, mem::L1Cache &icache,
            mem::L1Cache &dcache, sim::CpuId id);

    ~BaseCpu() override = default;

    /** Attach the OS. Must happen before any thread runs. */
    void setHost(CpuHost *host) { host_ = host; }

    sim::CpuId cpuId() const { return id_; }

    /**
     * Dispatch @p tc onto this CPU; execution begins @p delay ticks
     * from now (the context-switch cost, charged by the OS).
     */
    void runThread(ThreadContext *tc, sim::Tick delay);

    /**
     * Resume the currently attached thread after @p delay ticks
     * (e.g. following a successful syscall).
     */
    void continueThread(sim::Tick delay);

    /** Detach any thread; the CPU idles until runThread(). */
    void setIdle();

    /** Ask the CPU to stop at the next op boundary. */
    void requestPreempt() { preemptPending = true; }

    /** Restart execution after a drain period ends. */
    void resumeFromDrain();

    /**
     * Functional-warming fast mode (sampling): when on, resume()
     * routes to the shared blocking engine in resumeFast() — one
     * cycle per instruction, misses completed synchronously through
     * the caches' warm path at a fixed charged latency, branch
     * predictors warmed through warmBranch() with no penalty. All
     * architectural and microarchitectural *state* (caches,
     * coherence, predictors, OS schedule) evolves exactly as the op
     * stream dictates; only detailed timing is approximated.
     *
     * Only legal at a quiesced op boundary (between drain periods):
     * Simulation::setFastMode() is the supported entry point.
     */
    void setFastMode(bool on);

    /** True while the fast engine is active. */
    bool fastModeActive() const { return fastMode_; }

    /**
     * Re-attach a thread without dispatch accounting or a kick; used
     * when restoring a checkpoint. Follow with resumeFromDrain().
     *
     * Deliberately does NOT reset the pipeline: the CPU's own
     * unserialize() already did, and then reinstated serialized
     * residue (e.g. the OoO model's partial-issue carry) that a
     * second reset here would destroy, forking the restored timing
     * from the original's.
     */
    void
    attachThread(ThreadContext *tc)
    {
        tc_ = tc;
        idle_ = tc == nullptr;
    }

    /** The attached thread (may be non-null while idle is false). */
    ThreadContext *currentThread() const { return tc_; }

    /** True if no thread is attached. */
    bool isIdle() const { return idle_; }

    /** Execution statistics. */
    const CpuStats &stats() const { return stats_; }
    CpuStats &stats() { return stats_; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;
    void regStats(sim::statistics::Registry &r) override;

  protected:
    /** Subclass engine: (re)enter the dispatch loop. */
    virtual void resume() = 0;

    /** Subclass hook: clear per-dispatch scratch state. */
    virtual void resetPipeline() = 0;

    /**
     * Fast-mode hook: retire a control op (Branch, Call, Return,
     * IndirectBranch), updating whatever predictor state the model
     * keeps — outcomes recorded, tables trained — but charging no
     * misprediction penalty. The base implementation only counts the
     * branch (the blocking model keeps no predictor state).
     */
    virtual void warmBranch(const Op &op);

    /**
     * The shared fast engine. Subclass resume() implementations must
     * delegate here first when fastModeActive().
     */
    void resumeFast();

    /** Instruction footprint of an op. */
    static std::uint64_t instrCost(const Op &op);

    CpuHost &host();

    const CpuConfig &cfg;
    mem::L1Cache &icache;
    mem::L1Cache &dcache;
    ThreadContext *tc_ = nullptr;
    bool idle_ = true;
    bool preemptPending = false;
    std::uint64_t nextTag = 1;
    CpuStats stats_;
    sim::EventFunctionWrapper resumeEvent;

  private:
    enum class FastPhase : std::uint8_t
    {
        Start,  ///< op boundary: drain/preempt checks
        Instr,  ///< charge instruction cycles (with ifetch warming)
        Finish, ///< data access / predictor warming
        Trap,   ///< warm access done: settle debt, enter the OS
    };

    /**
     * Settle fast-mode cycles by scheduling a resume.
     * @return true if there was no debt (continue immediately).
     */
    bool payFastDebt();

    /** Clear fast-engine scratch state (dispatch/idle boundaries). */
    void
    resetFast()
    {
        fastPhase = FastPhase::Start;
        fastRemaining = 0;
        fastOwed = 0;
    }

    CpuHost *host_ = nullptr;
    sim::CpuId id_;
    sim::Tick idleSince = 0;

    bool fastMode_ = false;
    FastPhase fastPhase = FastPhase::Start;
    std::uint64_t fastRemaining = 0; ///< instrs left in current op
    sim::Tick fastOwed = 0;          ///< unsettled fast-mode cycles
};

} // namespace cpu
} // namespace varsim

#endif // VARSIM_CPU_BASE_CPU_HH
