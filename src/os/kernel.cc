#include "os/kernel.hh"

#include <algorithm>

#include "sim/statistics.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace os
{

Kernel::Kernel(std::string name, sim::EventQueue &eq, OsConfig config,
               std::vector<cpu::BaseCpu *> cpu_list)
    : SimObject(std::move(name), eq), cfg(config),
      cpus(std::move(cpu_list)), runQueues(cpus.size()),
      cpuDrained(cpus.size(), false)
{
    VARSIM_ASSERT(!cpus.empty(), "kernel needs at least one CPU");
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        cpus[i]->setHost(this);
        quantumEvents.push_back(
            std::make_unique<sim::EventFunctionWrapper>(
                [this, i] {
                    if (idleView(i))
                        return;
                    // schedctl-style postponement: never preempt a
                    // lock holder; recheck shortly after.
                    Thread *t = threadView(i);
                    if (t != nullptr && t->heldLocks > 0) {
                        eventq().schedule(quantumEvents[i].get(),
                                          curTick() +
                                              cfg.quantum / 4);
                        return;
                    }
                    cpuRequestPreempt(i);
                },
                this->name() + sim::format(".quantum%zu", i),
                sim::Event::schedulerPri));
    }
}

void
Kernel::bindDomains(sim::DomainRouter &router)
{
    router_ = &router;
    shadowThread.assign(cpus.size(), nullptr);
    shadowIdle.assign(cpus.size(), true);
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        ports_.push_back(std::make_unique<CpuPort>());
        ports_.back()->init(this, &router,
                            static_cast<sim::DomainId>(1 + i));
        cpus[i]->setHost(ports_.back().get());
    }
}

void
Kernel::CpuPort::syscall(cpu::BaseCpu &cpu, cpu::ThreadContext &tc,
                         const cpu::Op &op)
{
    Kernel *k = kernel;
    cpu::BaseCpu *c = &cpu;
    cpu::ThreadContext *t = &tc;
    const cpu::Op o = op;
    router->send(dom, sim::sharedDomain,
                 cpu.curTick() + router->lookahead(),
                 sim::Event::cpuTickPri,
                 [k, c, t, o] { k->syscall(*c, *t, o); });
}

void
Kernel::CpuPort::preempted(cpu::BaseCpu &cpu)
{
    Kernel *k = kernel;
    cpu::BaseCpu *c = &cpu;
    router->send(dom, sim::sharedDomain,
                 cpu.curTick() + router->lookahead(),
                 sim::Event::cpuTickPri, [k, c] { k->preempted(*c); });
}

void
Kernel::CpuPort::drained(cpu::BaseCpu &cpu)
{
    Kernel *k = kernel;
    cpu::BaseCpu *c = &cpu;
    router->send(dom, sim::sharedDomain,
                 cpu.curTick() + router->lookahead(),
                 sim::Event::cpuTickPri, [k, c] { k->drained(*c); });
}

void
Kernel::cpuRunThread(std::size_t i, Thread *t, sim::Tick delay)
{
    if (!domained()) {
        cpus[i]->runThread(t, delay);
        return;
    }
    shadowThread[i] = t;
    shadowIdle[i] = false;
    cpu::BaseCpu *c = cpus[i];
    cpu::ThreadContext *tc = t;
    const sim::Tick rem = localDelay(delay);
    router_->send(sim::sharedDomain,
                  static_cast<sim::DomainId>(1 + i),
                  curTick() + hop(), sim::Event::schedulerPri,
                  [c, tc, rem] { c->runThread(tc, rem); });
}

void
Kernel::cpuContinue(cpu::BaseCpu &cpu, sim::Tick delay)
{
    if (!domained()) {
        cpu.continueThread(delay);
        return;
    }
    cpu::BaseCpu *c = &cpu;
    const sim::Tick rem = localDelay(delay);
    router_->send(
        sim::sharedDomain,
        static_cast<sim::DomainId>(1 + cpu.cpuId()),
        curTick() + hop(), sim::Event::schedulerPri,
        [c, rem] { c->continueThread(rem); });
}

void
Kernel::cpuSetIdle(std::size_t i)
{
    if (!domained()) {
        cpus[i]->setIdle();
        return;
    }
    shadowThread[i] = nullptr;
    shadowIdle[i] = true;
    cpu::BaseCpu *c = cpus[i];
    router_->send(sim::sharedDomain,
                  static_cast<sim::DomainId>(1 + i),
                  curTick() + hop(), sim::Event::schedulerPri,
                  [c] { c->setIdle(); });
}

void
Kernel::cpuRequestPreempt(std::size_t i)
{
    if (!domained()) {
        cpus[i]->requestPreempt();
        return;
    }
    // The flag lands Λ later; if the thread parks first, the flag
    // hits an idle CPU and the *next* thread takes a spuriously
    // early op-boundary preemption — the same benign race a real
    // IPI loses, and deterministic like everything else here.
    cpu::BaseCpu *c = cpus[i];
    router_->send(sim::sharedDomain,
                  static_cast<sim::DomainId>(1 + i),
                  curTick() + hop(), sim::Event::schedulerPri,
                  [c] { c->requestPreempt(); });
}

void
Kernel::cpuResumeFromDrain(std::size_t i)
{
    if (!domained()) {
        cpus[i]->resumeFromDrain();
        return;
    }
    cpu::BaseCpu *c = cpus[i];
    router_->send(sim::sharedDomain,
                  static_cast<sim::DomainId>(1 + i),
                  curTick() + hop(), sim::Event::schedulerPri,
                  [c] { c->resumeFromDrain(); });
}

Kernel::~Kernel() = default;

Thread &
Kernel::addThread(std::unique_ptr<Thread> thread)
{
    VARSIM_ASSERT(thread->tid() ==
                      static_cast<sim::ThreadId>(threads.size()),
                  "thread ids must be dense and in order");
    const sim::ThreadId tid = thread->tid();
    threads.push_back(std::move(thread));
    sleepEvents.push_back(std::make_unique<sim::EventFunctionWrapper>(
        [this, tid] {
            Thread &t = this->thread(tid);
            VARSIM_ASSERT(t.state == Thread::State::Sleeping,
                          "sleep timer for non-sleeping thread %d",
                          tid);
            wake(t);
        },
        name() + sim::format(".sleep%d", tid),
        sim::Event::schedulerPri));
    return *threads.back();
}

Thread &
Kernel::thread(sim::ThreadId tid)
{
    VARSIM_ASSERT(tid >= 0 &&
                      static_cast<std::size_t>(tid) < threads.size(),
                  "bad thread id %d", tid);
    return *threads[static_cast<std::size_t>(tid)];
}

int
Kernel::createMutex(sim::Addr lock_word)
{
    mutexes.push_back(Mutex{lock_word, sim::invalidThreadId, {}});
    return static_cast<int>(mutexes.size() - 1);
}

int
Kernel::createBarrier(std::uint32_t expected)
{
    VARSIM_ASSERT(expected > 0, "barrier needs expected > 0");
    barriers.push_back(Barrier{expected, {}});
    return static_cast<int>(barriers.size() - 1);
}

void
Kernel::start()
{
    // Round-robin initial placement, then dispatch every CPU.
    std::size_t next = 0;
    for (const auto &t : threads) {
        if (t->state == Thread::State::Ready) {
            t->lastCpu = static_cast<sim::CpuId>(next);
            runQueues[next].push_back(t->tid());
            next = (next + 1) % runQueues.size();
        }
    }
    for (std::size_t i = 0; i < cpus.size(); ++i)
        dispatch(i);
}

std::size_t
Kernel::shortestQueue() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < runQueues.size(); ++i)
        if (runQueues[i].size() < runQueues[best].size())
            best = i;
    return best;
}

std::size_t
Kernel::longestQueue() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < runQueues.size(); ++i)
        if (runQueues[i].size() > runQueues[best].size())
            best = i;
    return best;
}

void
Kernel::record(SchedEvent::Kind kind, sim::CpuId cpu,
               sim::ThreadId tid)
{
    if (trace.size() < traceCap)
        trace.push_back({curTick(), cpu, tid, kind});
}

void
Kernel::enableTrace(std::size_t cap)
{
    traceCap = cap;
    trace.clear();
    trace.reserve(std::min<std::size_t>(cap, 1u << 20));
}

void
Kernel::armQuantum(std::size_t cpu_idx)
{
    // The quantum runs from when the thread starts executing, i.e.
    // after the context-switch latency — otherwise a quantum shorter
    // than the switch cost would preempt threads before they run.
    eventq().reschedule(quantumEvents[cpu_idx].get(),
                        curTick() + cfg.ctxSwitchCost +
                            cfg.quantum);
}

void
Kernel::cancelQuantum(std::size_t cpu_idx)
{
    if (quantumEvents[cpu_idx]->scheduled())
        eventq().deschedule(quantumEvents[cpu_idx].get());
}

void
Kernel::enqueue(Thread &t, bool allow_migrate)
{
    std::size_t target =
        t.lastCpu != sim::invalidCpuId
            ? static_cast<std::size_t>(t.lastCpu)
            : shortestQueue();
    if (allow_migrate) {
        const std::size_t shortest = shortestQueue();
        if (runQueues[target].size() >
            runQueues[shortest].size() + cfg.migrateThreshold) {
            target = shortest;
            ++stats_.migrations;
        }
    }
    t.state = Thread::State::Ready;
    runQueues[target].push_back(t.tid());
    if (!draining_ && idleView(target))
        dispatch(target);
}

void
Kernel::dispatch(std::size_t cpu_idx)
{
    if (draining_) {
        // The previous thread just blocked/yielded/finished while a
        // drain is in progress: no new work may start, so this CPU
        // is quiescent now.
        cpuSetIdle(cpu_idx);
        cancelQuantum(cpu_idx);
        cpuDrained[cpu_idx] = true;
        return;
    }

    sim::ThreadId tid = sim::invalidThreadId;
    if (!runQueues[cpu_idx].empty()) {
        tid = runQueues[cpu_idx].front();
        runQueues[cpu_idx].pop_front();
    } else if (cfg.workStealing) {
        const std::size_t victim = longestQueue();
        if (victim != cpu_idx && !runQueues[victim].empty()) {
            tid = runQueues[victim].back();
            runQueues[victim].pop_back();
            ++stats_.steals;
        }
    }

    if (tid == sim::invalidThreadId) {
        cancelQuantum(cpu_idx);
        cpuSetIdle(cpu_idx);
        return;
    }

    Thread &t = thread(tid);
    VARSIM_ASSERT(t.state == Thread::State::Ready,
                  "dispatching thread %d in state %d", tid,
                  int(t.state));
    t.state = Thread::State::Running;
    t.lastCpu = static_cast<sim::CpuId>(cpu_idx);
    ++stats_.dispatches;
    record(SchedEvent::Kind::Dispatch,
           static_cast<sim::CpuId>(cpu_idx), tid);
    DPRINTF(Sched, "dispatch t%d on cpu%zu", tid, cpu_idx);
    cpuRunThread(cpu_idx, &t, cfg.ctxSwitchCost);
    armQuantum(cpu_idx);
}

void
Kernel::wake(Thread &t)
{
    record(SchedEvent::Kind::Wakeup, t.lastCpu, t.tid());
    enqueue(t, true);
}

void
Kernel::preempted(cpu::BaseCpu &cpu)
{
    auto *t = static_cast<Thread *>(cpu.currentThread());
    VARSIM_ASSERT(t != nullptr, "preempt on idle cpu");
    ++stats_.preemptions;
    record(SchedEvent::Kind::Preempt, cpu.cpuId(), t->tid());
    // Preempted threads requeue locally (no migration) behind any
    // already-ready work, plain round-robin.
    enqueue(*t, false);
    dispatch(static_cast<std::size_t>(cpu.cpuId()));
}

void
Kernel::syscall(cpu::BaseCpu &cpu, cpu::ThreadContext &tc,
                const cpu::Op &op)
{
    auto &t = static_cast<Thread &>(tc);
    switch (op.kind) {
      case cpu::OpKind::Lock:
        doLock(cpu, t, op);
        return;
      case cpu::OpKind::Unlock:
        doUnlock(cpu, t, op);
        return;
      case cpu::OpKind::Barrier:
        doBarrier(cpu, t, op);
        return;
      case cpu::OpKind::Sleep:
        doSleep(cpu, t, op);
        return;
      case cpu::OpKind::TxnEnd:
        t.stream().advance();
        ++t.txnsCompleted;
        ++stats_.transactions;
        if (txnSink != nullptr) {
            txnSink->transactionCompleted(t.tid(), op.id, curTick());
        }
        cpuContinue(cpu, 0);
        return;
      case cpu::OpKind::Yield:
        t.stream().advance();
        enqueue(t, true);
        dispatch(static_cast<std::size_t>(cpu.cpuId()));
        return;
      case cpu::OpKind::End:
        t.state = Thread::State::Finished;
        ++numFinished;
        record(SchedEvent::Kind::Finish, cpu.cpuId(), t.tid());
        dispatch(static_cast<std::size_t>(cpu.cpuId()));
        return;
      default:
        sim::panic("kernel: unexpected syscall op kind %d",
                   int(op.kind));
    }
}

void
Kernel::doLock(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op)
{
    VARSIM_ASSERT(op.id >= 0 &&
                      static_cast<std::size_t>(op.id) <
                          mutexes.size(),
                  "bad mutex id %d", op.id);
    Mutex &m = mutexes[static_cast<std::size_t>(op.id)];
    if (m.owner == sim::invalidThreadId || m.owner == t.tid()) {
        // Free, or handed off to us while we slept.
        m.owner = t.tid();
        ++t.heldLocks;
        ++stats_.lockAcquires;
        t.stream().advance();
        cpuContinue(cpu, cfg.syscallCost);
        return;
    }
    // Contended. Adaptive policy (Solaris): while the owner is
    // running on some CPU it will release soon — spin by retrying
    // the Lock op (including its lock-word RMW: real spin traffic).
    // If the owner is not running, sleep in FIFO order. Either way
    // the stream is NOT advanced; the Lock op re-executes.
    if (cfg.spinRetryNs > 0 &&
        thread(m.owner).state == Thread::State::Running) {
        ++stats_.lockSpins;
        cpuContinue(cpu, cfg.spinRetryNs);
        return;
    }
    ++stats_.contendedLocks;
    ++t.lockBlocks;
    t.state = Thread::State::Blocked;
    m.waiters.push_back(t.tid());
    record(SchedEvent::Kind::Block, cpu.cpuId(), t.tid());
    DPRINTF(Mutex, "t%d blocks on mutex %d (owner t%d)", t.tid(),
            op.id, m.owner);
    dispatch(static_cast<std::size_t>(cpu.cpuId()));
}

void
Kernel::doUnlock(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op)
{
    VARSIM_ASSERT(op.id >= 0 &&
                      static_cast<std::size_t>(op.id) <
                          mutexes.size(),
                  "bad mutex id %d", op.id);
    Mutex &m = mutexes[static_cast<std::size_t>(op.id)];
    VARSIM_ASSERT(m.owner == t.tid(),
                  "t%d unlocks mutex %d owned by t%d", t.tid(),
                  op.id, m.owner);
    --t.heldLocks;
    t.stream().advance();
    // Competitive (Solaris-style) release: the lock becomes free and
    // the first sleeper is woken to *retry*. A running thread that
    // reaches the lock first wins the race — direct handoff would
    // convoy the lock behind the waiter's dispatch latency. This is
    // also one of the paper's divergence mechanisms: "locks may be
    // acquired in different orders" (Section 2.1).
    m.owner = sim::invalidThreadId;
    if (!m.waiters.empty()) {
        const sim::ThreadId next = m.waiters.front();
        m.waiters.pop_front();
        wake(thread(next));
    }
    cpuContinue(cpu, cfg.syscallCost);
}

void
Kernel::doBarrier(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op)
{
    VARSIM_ASSERT(op.id >= 0 &&
                      static_cast<std::size_t>(op.id) <
                          barriers.size(),
                  "bad barrier id %d", op.id);
    Barrier &b = barriers[static_cast<std::size_t>(op.id)];
    t.stream().advance();
    if (b.waiting.size() + 1 == b.expected) {
        // Last arriver: release everyone.
        ++stats_.barrierEpisodes;
        std::vector<sim::ThreadId> released = std::move(b.waiting);
        b.waiting.clear();
        for (sim::ThreadId w : released)
            wake(thread(w));
        cpuContinue(cpu, cfg.syscallCost);
        return;
    }
    b.waiting.push_back(t.tid());
    t.state = Thread::State::Blocked;
    record(SchedEvent::Kind::Block, cpu.cpuId(), t.tid());
    dispatch(static_cast<std::size_t>(cpu.cpuId()));
}

void
Kernel::doSleep(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op)
{
    t.stream().advance();
    t.state = Thread::State::Sleeping;
    t.sleepUntil = curTick() + op.count;
    eventq().reschedule(
        sleepEvents[static_cast<std::size_t>(t.tid())].get(),
        t.sleepUntil);
    dispatch(static_cast<std::size_t>(cpu.cpuId()));
}

void
Kernel::beginDrain()
{
    draining_ = true;
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        cancelQuantum(i);
        cpuDrained[i] = cpus[i]->isIdle();
    }
    // Park sleep timers; sleepUntil is absolute and survives.
    for (const auto &ev : sleepEvents)
        if (ev->scheduled())
            eventq().deschedule(ev.get());
}

void
Kernel::drained(cpu::BaseCpu &cpu)
{
    cpuDrained[static_cast<std::size_t>(cpu.cpuId())] = true;
}

bool
Kernel::fullyDrained() const
{
    return std::all_of(cpuDrained.begin(), cpuDrained.end(),
                       [](bool d) { return d; });
}

void
Kernel::endDrain()
{
    draining_ = false;
    std::fill(cpuDrained.begin(), cpuDrained.end(), false);
    // Re-arm sleepers.
    for (const auto &tptr : threads) {
        Thread &t = *tptr;
        if (t.state != Thread::State::Sleeping)
            continue;
        if (t.sleepUntil <= curTick()) {
            wake(t);
        } else {
            eventq().reschedule(
                sleepEvents[static_cast<std::size_t>(t.tid())].get(),
                t.sleepUntil);
        }
    }
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        // Quiescent between rounds: reading the parked CPU directly
        // is race-free on both engines.
        if (cpus[i]->currentThread() != nullptr) {
            armQuantum(i);
            cpuResumeFromDrain(i);
        } else {
            dispatch(i);
        }
    }
}

void
Kernel::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(fullyDrained(), "kernel checkpoint while running");
    // Which thread sits on each CPU.
    for (const auto *c : cpus) {
        const auto *t = static_cast<const Thread *>(
            const_cast<cpu::BaseCpu *>(c)->currentThread());
        cp.put<sim::ThreadId>(t != nullptr ? t->tid()
                                           : sim::invalidThreadId);
    }
    for (const auto &q : runQueues) {
        cp.put<std::uint64_t>(q.size());
        for (sim::ThreadId tid : q)
            cp.put(tid);
    }
    cp.put<std::uint64_t>(mutexes.size());
    for (const auto &m : mutexes) {
        cp.put(m.lockWord);
        cp.put(m.owner);
        cp.put(m.waiters);
    }
    cp.put<std::uint64_t>(barriers.size());
    for (const auto &b : barriers) {
        cp.put(b.expected);
        cp.put(b.waiting);
    }
    for (const auto &t : threads)
        t->serialize(cp);
    cp.put<std::uint64_t>(numFinished);
    cp.put(stats_);
}

void
Kernel::unserialize(sim::CheckpointIn &cp)
{
    std::vector<sim::ThreadId> running(cpus.size());
    for (auto &tid : running)
        cp.get(tid);
    for (auto &q : runQueues) {
        std::uint64_t n = 0;
        cp.get(n);
        q.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            sim::ThreadId tid;
            cp.get(tid);
            q.push_back(tid);
        }
    }
    std::uint64_t nm = 0;
    cp.get(nm);
    VARSIM_ASSERT(nm == mutexes.size(),
                  "checkpoint mutex count mismatch");
    for (auto &m : mutexes) {
        cp.get(m.lockWord);
        cp.get(m.owner);
        cp.get(m.waiters);
    }
    std::uint64_t nb = 0;
    cp.get(nb);
    VARSIM_ASSERT(nb == barriers.size(),
                  "checkpoint barrier count mismatch");
    for (auto &b : barriers) {
        cp.get(b.expected);
        cp.get(b.waiting);
    }
    for (const auto &t : threads)
        t->unserialize(cp);
    std::uint64_t fin = 0;
    cp.get(fin);
    numFinished = static_cast<std::size_t>(fin);
    cp.get(stats_);

    // Re-attach running threads; execution restarts at endDrain().
    draining_ = true;
    for (std::size_t i = 0; i < cpus.size(); ++i) {
        cpuDrained[i] = true;
        Thread *t = running[i] != sim::invalidThreadId
                        ? &thread(running[i])
                        : nullptr;
        cpus[i]->attachThread(t);
        if (domained()) {
            shadowThread[i] = t;
            shadowIdle[i] = t == nullptr;
        }
    }
}

void
Kernel::reattachAfterRestore()
{
    // Retained for API compatibility; unserialize() reattaches.
}

void
Kernel::regStats(sim::statistics::Registry &r)
{
    const std::string &n = name();
    r.regScalar(n + ".dispatches", &stats_.dispatches);
    r.regScalar(n + ".preemptions", &stats_.preemptions);
    r.regScalar(n + ".migrations", &stats_.migrations);
    r.regScalar(n + ".steals", &stats_.steals);
    r.regScalar(n + ".lock_acquires", &stats_.lockAcquires);
    r.regScalar(n + ".contended_locks", &stats_.contendedLocks);
    r.regScalar(n + ".lock_spins", &stats_.lockSpins);
    r.regScalar(n + ".barrier_episodes", &stats_.barrierEpisodes);
    r.regScalar(n + ".transactions", &stats_.transactions);
    r.regFormula(n + ".lock_contention",
                 [this] {
                     const double acq = static_cast<double>(
                         stats_.lockAcquires);
                     return acq > 0.0
                                ? static_cast<double>(
                                      stats_.contendedLocks) /
                                      acq
                                : 0.0;
                 },
                 "fraction of lock acquires that contended");
}

} // namespace os
} // namespace varsim
