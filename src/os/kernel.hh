/**
 * @file
 * The simulated operating system: a preemptive, quantum-based,
 * per-CPU run-queue scheduler with sleeping mutexes, barriers, timed
 * sleeps and load balancing.
 *
 * The paper (Section 2.1) names three mechanisms through which small
 * timing variations become divergent executions; all three live here:
 *
 *  1. "the operating system may make different scheduling decisions
 *     (e.g., a scheduling quantum may end before an event in one run,
 *     but not another)" — the quantum timer races against op
 *     boundaries and memory stalls;
 *  2. "locks may be acquired in different orders" — mutex grant order
 *     is arrival order, and arrival ticks inherit every upstream
 *     perturbation;
 *  3. "a transaction may complete during the measurement interval in
 *     one run, but not another" — transaction completions are
 *     reported through the TxnSink at exact ticks.
 *
 * Everything is deterministic: run queues are FIFO, ties break by
 * CPU id, the mutex wait list is FIFO with direct handoff. Divergence
 * between runs arises only from timing.
 */

#ifndef VARSIM_OS_KERNEL_HH
#define VARSIM_OS_KERNEL_HH

#include <deque>
#include <memory>
#include <vector>

#include "cpu/base_cpu.hh"
#include "os/thread.hh"
#include "sim/domains.hh"
#include "sim/sim_object.hh"

namespace varsim
{
namespace os
{

/** Scheduler tunables. */
struct OsConfig
{
    /**
     * Scheduling quantum. Scaled to the synthetic workloads'
     * transaction sizes (as the paper's Solaris quantum was to real
     * TPC-C transactions) so quantum expiry genuinely races against
     * lock blocking — "a scheduling quantum may end before an event
     * in one run, but not another" (Section 2.1).
     */
    sim::Tick quantum = 20'000;

    /** Cost of a context switch (dispatch latency). */
    sim::Tick ctxSwitchCost = 2'000;

    /** Kernel overhead of a lock/unlock/yield syscall. */
    sim::Tick syscallCost = 200;

    /**
     * Adaptive-mutex spin: when a contended lock's owner is running
     * on another CPU, the waiter retries after this delay instead of
     * sleeping (Solaris adaptive mutexes). Zero disables spinning.
     */
    sim::Tick spinRetryNs = 250;

    /**
     * A wakeup enqueues to the waker's idea of the sleeper's last
     * CPU, but migrates to the shortest queue if the target is this
     * much longer (load balancing).
     */
    std::size_t migrateThreshold = 2;

    /** Allow idle CPUs to steal from the longest run queue. */
    bool workStealing = true;
};

/** Receiver of transaction-completion notifications. */
class TxnSink
{
  public:
    virtual ~TxnSink() = default;

    /** Thread @p tid completed a transaction of type @p type. */
    virtual void transactionCompleted(sim::ThreadId tid, int type,
                                      sim::Tick when) = 0;
};

/** One scheduling decision, for Figure 1-style traces. */
struct SchedEvent
{
    enum class Kind : std::uint8_t
    {
        Dispatch, ///< thread placed on a CPU
        Preempt,  ///< quantum expired
        Block,    ///< thread blocked on a mutex/barrier
        Wakeup,   ///< thread became ready
        Finish,   ///< thread terminated
    };

    sim::Tick when;
    sim::CpuId cpu;
    sim::ThreadId thread;
    Kind kind;
};

/** Aggregate OS statistics for one run. */
struct OsStats
{
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;
    std::uint64_t steals = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t contendedLocks = 0;
    std::uint64_t lockSpins = 0;
    std::uint64_t barrierEpisodes = 0;
    std::uint64_t transactions = 0;
};

class Kernel : public sim::SimObject, public cpu::CpuHost
{
  public:
    Kernel(std::string name, sim::EventQueue &eq, OsConfig cfg,
           std::vector<cpu::BaseCpu *> cpus);

    ~Kernel() override;

    /** Register a thread (before start()). The kernel owns it. */
    Thread &addThread(std::unique_ptr<Thread> thread);

    /** Thread lookup. */
    Thread &thread(sim::ThreadId tid);
    std::size_t numThreads() const { return threads.size(); }

    /**
     * Create a mutex whose lock word lives at @p lock_word.
     * @return the mutex id for Lock/Unlock ops.
     */
    int createMutex(sim::Addr lock_word);

    /** Create a barrier released when @p expected threads arrive. */
    int createBarrier(std::uint32_t expected);

    /** Receiver of TxnEnd notifications (measurement harness). */
    void setTxnSink(TxnSink *sink) { txnSink = sink; }

    /**
     * Domained engine: the kernel stays in the shared domain; CPU i
     * (domain 1+i) talks to it through a per-CPU host proxy that
     * turns every upcall into a mailbox message, and the kernel's
     * own CPU manipulations hop the other way. Call once, after
     * construction, before start().
     */
    void bindDomains(sim::DomainRouter &router);

    /** Initial placement and dispatch of all Ready threads. */
    void start();

    /** Number of threads that have executed their End op. */
    std::size_t finishedThreads() const { return numFinished; }

    // ---- drain protocol (checkpointing) ----

    /** Stop dispatching; CPUs park at their next op boundary. */
    void beginDrain();

    /** True once every CPU has parked. */
    bool fullyDrained() const;

    /** Resume execution after a drain (or a checkpoint restore). */
    void endDrain();

    // ---- cpu::CpuHost ----
    void syscall(cpu::BaseCpu &cpu, cpu::ThreadContext &tc,
                 const cpu::Op &op) override;
    void preempted(cpu::BaseCpu &cpu) override;
    void drained(cpu::BaseCpu &cpu) override;
    bool draining() const override { return draining_; }

    // ---- introspection ----
    const OsStats &stats() const { return stats_; }

    /** Enable collection of SchedEvents (capped at @p cap). */
    void enableTrace(std::size_t cap);

    /** Collected scheduling events. */
    const std::vector<SchedEvent> &traceEvents() const { return trace; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;
    void regStats(sim::statistics::Registry &r) override;

    /**
     * Re-attach restored running threads to their CPUs. Call after
     * unserialize(), before endDrain().
     */
    void reattachAfterRestore();

  private:
    /**
     * CPU-side face of the kernel on the domained engine: upcalls
     * hop from the CPU's domain into the shared domain at the
     * conservative latency. draining() stays a direct read —
     * draining_ only changes between rounds, so it is constant for
     * the duration of any round a CPU could observe it in.
     */
    class CpuPort : public cpu::CpuHost
    {
      public:
        void
        init(Kernel *k, sim::DomainRouter *r, sim::DomainId d)
        {
            kernel = k;
            router = r;
            dom = d;
        }

        void syscall(cpu::BaseCpu &cpu, cpu::ThreadContext &tc,
                     const cpu::Op &op) override;
        void preempted(cpu::BaseCpu &cpu) override;
        void drained(cpu::BaseCpu &cpu) override;
        bool draining() const override { return kernel->draining_; }

      private:
        Kernel *kernel = nullptr;
        sim::DomainRouter *router = nullptr;
        sim::DomainId dom = sim::sharedDomain;
    };

    struct Mutex
    {
        sim::Addr lockWord = 0;
        sim::ThreadId owner = sim::invalidThreadId;
        std::deque<sim::ThreadId> waiters;
    };

    struct Barrier
    {
        std::uint32_t expected = 0;
        std::vector<sim::ThreadId> waiting;
    };

    void dispatch(std::size_t cpu_idx);
    void enqueue(Thread &t, bool allow_migrate);
    void wake(Thread &t);
    void record(SchedEvent::Kind kind, sim::CpuId cpu,
                sim::ThreadId tid);
    void armQuantum(std::size_t cpu_idx);
    void cancelQuantum(std::size_t cpu_idx);
    std::size_t shortestQueue() const;
    std::size_t longestQueue() const;

    void doLock(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op);
    void doUnlock(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op);
    void doBarrier(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op);
    void doSleep(cpu::BaseCpu &cpu, Thread &t, const cpu::Op &op);

    // ---- engine-independent CPU manipulation ----
    // On the legacy engine these call the CPU directly; on the
    // domained engine they hop into the CPU's domain, splitting any
    // delay into the hop plus a local remainder so end-to-end
    // latencies stay on the legacy schedule wherever delay >= Λ.
    bool domained() const { return router_ != nullptr; }
    sim::Tick hop() const { return router_->lookahead(); }
    sim::Tick
    localDelay(sim::Tick delay) const
    {
        return delay > hop() ? delay - hop() : 0;
    }
    void cpuRunThread(std::size_t i, Thread *t, sim::Tick delay);
    void cpuContinue(cpu::BaseCpu &cpu, sim::Tick delay);
    void cpuSetIdle(std::size_t i);
    void cpuRequestPreempt(std::size_t i);
    void cpuResumeFromDrain(std::size_t i);

    // Shadow of each CPU's (idle, thread) pair, maintained at kernel
    // decision points. On the domained engine the kernel must never
    // read a possibly-executing CPU's fields, so the sites that fire
    // while CPUs run (the quantum handler and enqueue's idle check)
    // read these views instead; legacy mode reads the CPU directly,
    // keeping it bit-exact with history.
    bool
    idleView(std::size_t i) const
    {
        return domained() ? shadowIdle[i] : cpus[i]->isIdle();
    }
    Thread *
    threadView(std::size_t i) const
    {
        return domained() ? shadowThread[i]
                          : static_cast<Thread *>(
                                cpus[i]->currentThread());
    }

    OsConfig cfg;
    std::vector<cpu::BaseCpu *> cpus;
    std::vector<std::unique_ptr<Thread>> threads;
    std::vector<std::deque<sim::ThreadId>> runQueues;
    std::vector<Mutex> mutexes;
    std::vector<Barrier> barriers;
    std::vector<std::unique_ptr<sim::EventFunctionWrapper>>
        quantumEvents;
    std::vector<std::unique_ptr<sim::EventFunctionWrapper>>
        sleepEvents;
    TxnSink *txnSink = nullptr;

    sim::DomainRouter *router_ = nullptr;
    std::vector<std::unique_ptr<CpuPort>> ports_;
    std::vector<Thread *> shadowThread;
    std::vector<bool> shadowIdle;

    bool draining_ = false;
    std::vector<bool> cpuDrained;
    std::size_t numFinished = 0;

    OsStats stats_;
    std::vector<SchedEvent> trace;
    std::size_t traceCap = 0;
};

} // namespace os
} // namespace varsim

#endif // VARSIM_OS_KERNEL_HH
