/**
 * @file
 * The simulated OS's thread control block.
 *
 * OLTP-style commercial workloads run many more software threads than
 * processors (the paper emulates 8 database users per processor,
 * Section 3.1); which thread runs where and when is decided by the
 * scheduler, and those decisions are the paper's primary source of
 * space variability (Figure 1).
 */

#ifndef VARSIM_OS_THREAD_HH
#define VARSIM_OS_THREAD_HH

#include "cpu/base_cpu.hh"
#include "cpu/op.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace varsim
{
namespace os
{

class Thread : public cpu::ThreadContext, public sim::Serializable
{
  public:
    enum class State : std::uint8_t
    {
        Ready,    ///< runnable, waiting in a run queue
        Running,  ///< on a CPU
        Blocked,  ///< waiting on a mutex or barrier
        Sleeping, ///< waiting on a timer
        Finished, ///< terminated (End op reached)
    };

    /**
     * @param tid    unique thread id
     * @param stream the thread's op generator (owned by the workload)
     */
    Thread(sim::ThreadId tid, cpu::OpStream *stream)
        : tid_(tid), stream_(stream)
    {}

    // cpu::ThreadContext
    cpu::OpStream &stream() override { return *stream_; }
    cpu::FetchState &fetchState() override { return fetch; }
    sim::ThreadId tid() const override { return tid_; }

    State state = State::Ready;

    /** Last CPU this thread ran on (affinity hint). */
    sim::CpuId lastCpu = sim::invalidCpuId;

    /** Per-thread instruction-fetch walker. */
    cpu::FetchState fetch;

    /** Absolute wake tick while Sleeping. */
    sim::Tick sleepUntil = 0;

    /** Transactions this thread has completed. */
    std::uint64_t txnsCompleted = 0;

    /** Times this thread blocked on a contended mutex. */
    std::uint64_t lockBlocks = 0;

    /**
     * Mutexes currently held. The scheduler postpones quantum
     * preemption of lock holders (schedctl-style), avoiding
     * lock-holder-preemption convoys.
     */
    std::int32_t heldLocks = 0;

    void
    serialize(sim::CheckpointOut &cp) const override
    {
        cp.put(state);
        cp.put(lastCpu);
        cp.put(fetch);
        cp.put(sleepUntil);
        cp.put(txnsCompleted);
        cp.put(lockBlocks);
        cp.put(heldLocks);
    }

    void
    unserialize(sim::CheckpointIn &cp) override
    {
        cp.get(state);
        cp.get(lastCpu);
        cp.get(fetch);
        cp.get(sleepUntil);
        cp.get(txnsCompleted);
        cp.get(lockBlocks);
        cp.get(heldLocks);
    }

  private:
    sim::ThreadId tid_;
    cpu::OpStream *stream_;
};

} // namespace os
} // namespace varsim

#endif // VARSIM_OS_THREAD_HH
