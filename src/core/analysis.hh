/**
 * @file
 * The paper's statistical methodology as a user-facing API
 * (Sections 4.1 and 5): variability summaries, wrong-conclusion
 * ratios, confidence-interval and hypothesis-test comparisons,
 * sample-size advice, and the ANOVA-based decision between
 * single-checkpoint and multi-checkpoint sampling.
 */

#ifndef VARSIM_CORE_ANALYSIS_HH
#define VARSIM_CORE_ANALYSIS_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "stats/inference.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace core
{

/** Space-variability profile of one configuration's runs. */
struct VariabilityReport
{
    stats::Summary summary;
    double coefficientOfVariation = 0.0; ///< percent
    double rangeOfVariability = 0.0;     ///< percent

    std::string toString() const;
};

/** Summarize the metric across runs (Section 4.2 metrics). */
VariabilityReport analyze(const std::vector<RunResult> &runs);
VariabilityReport analyze(const std::vector<double> &metric);

/** Summarize a named metric (see metricOf(results, name)). */
VariabilityReport analyze(const std::vector<RunResult> &runs,
                          const std::string &name);

/**
 * Full comparison of two configurations A and B per Section 5.1.
 */
struct ComparisonReport
{
    stats::Summary a, b;

    /**
     * Fraction of single-run pairs contradicting the mean-based
     * conclusion (Section 4.1's WCR), in percent.
     */
    double wrongConclusionRatio = 0.0;

    stats::ConfidenceInterval ciA, ciB;
    bool ciOverlap = true;

    /** One-sided test of H0: mean(worse) == mean(better). */
    stats::TTestResult ttest;

    /** True if B (the smaller mean) is the better configuration. */
    bool bIsBetter = true;

    /**
     * The smallest standard significance level (10%, 5%, 2.5%, 1%,
     * 0.5%) at which H0 is rejected; 1.0 if never.
     */
    double smallestRejectedAlpha = 1.0;

    /** Human-readable verdict of the methodology. */
    std::string verdict() const;
    std::string toString() const;
};

/**
 * Compare two experiments' metrics ("cycles per transaction": lower
 * is better) at the given confidence level.
 */
ComparisonReport compare(const std::vector<RunResult> &a,
                         const std::vector<RunResult> &b,
                         double confidence = 0.95);
ComparisonReport compare(const std::vector<double> &a,
                         const std::vector<double> &b,
                         double confidence = 0.95);

/**
 * Sample-size advice (Section 5.1.2 / Table 5): given pilot runs of
 * two configurations, the runs per configuration needed to bound the
 * wrong-conclusion probability by @p alpha.
 */
std::size_t recommendRuns(const std::vector<double> &pilot_a,
                          const std::vector<double> &pilot_b,
                          double alpha);

/**
 * Time-variability decision (Section 5.2): one-way ANOVA over groups
 * of runs started from different checkpoints. If significant, the
 * sample must include runs from multiple starting points.
 */
struct TimeVariabilityReport
{
    stats::AnovaResult anova;
    bool needMultipleCheckpoints = false;
    std::string toString() const;
};

TimeVariabilityReport
checkpointAnova(const std::vector<std::vector<double>> &groups,
                double alpha = 0.05);

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_ANALYSIS_HH
