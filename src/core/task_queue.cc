#include "core/task_queue.hh"

#include "sim/logging.hh"

namespace varsim
{
namespace core
{

TaskQueue::TaskQueue(std::size_t workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerMain(); });
}

TaskQueue::~TaskQueue()
{
    stop();
}

void
TaskQueue::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping)
            return;
        queue.push_back(std::move(fn));
    }
    wake.notify_one();
}

void
TaskQueue::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock,
              [this] { return queue.empty() && running_ == 0; });
}

void
TaskQueue::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping && threads.empty())
            return;
        stopping = true;
        queue.clear();
    }
    wake.notify_all();
    for (std::thread &t : threads)
        t.join();
    threads.clear();
    idle.notify_all();
}

std::size_t
TaskQueue::pending() const
{
    std::lock_guard<std::mutex> lock(mu);
    return queue.size();
}

std::size_t
TaskQueue::running() const
{
    std::lock_guard<std::mutex> lock(mu);
    return running_;
}

void
TaskQueue::workerMain()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        wake.wait(lock,
                  [this] { return stopping || !queue.empty(); });
        if (stopping)
            return;
        std::function<void()> task = std::move(queue.front());
        queue.pop_front();
        ++running_;
        lock.unlock();
        try {
            task();
        } catch (const std::exception &e) {
            sim::warn("task queue: task failed: %s", e.what());
        } catch (...) {
            sim::warn("task queue: task failed with a non-standard "
                      "exception");
        }
        lock.lock();
        --running_;
        if (queue.empty() && running_ == 0)
            idle.notify_all();
    }
}

} // namespace core
} // namespace varsim
