#include "core/analysis.hh"

#include <array>
#include <cmath>

#include "sim/logging.hh"

namespace varsim
{
namespace core
{

namespace
{

/** A relative-variability figure: "12.34%" or "n/a" (mean == 0). */
std::string
percentOrNa(double x)
{
    return std::isnan(x) ? std::string("n/a")
                         : sim::format("%.2f%%", x);
}

} // anonymous namespace

std::string
VariabilityReport::toString() const
{
    return sim::format(
        "n=%zu mean=%.4g sd=%.3g CoV=%s range=%s "
        "[min=%.4g max=%.4g]",
        summary.n, summary.mean, summary.stddev,
        percentOrNa(coefficientOfVariation).c_str(),
        percentOrNa(rangeOfVariability).c_str(), summary.min,
        summary.max);
}

VariabilityReport
analyze(const std::vector<double> &metric)
{
    VariabilityReport r;
    r.summary = stats::summarize(metric);
    r.coefficientOfVariation = r.summary.coefficientOfVariation();
    r.rangeOfVariability = r.summary.rangeOfVariability();
    return r;
}

VariabilityReport
analyze(const std::vector<RunResult> &runs)
{
    return analyze(metricOf(runs));
}

VariabilityReport
analyze(const std::vector<RunResult> &runs, const std::string &name)
{
    return analyze(metricOf(runs, name));
}

std::string
ComparisonReport::verdict() const
{
    const char *winner = bIsBetter ? "B" : "A";
    if (!ciOverlap) {
        return sim::format(
            "%s is better; confidence intervals do not overlap "
            "(wrong-conclusion probability < %.1f%%, t-test bound "
            "%.3g)",
            winner, 100.0 * (1.0 - ciA.confidence),
            smallestRejectedAlpha);
    }
    if (smallestRejectedAlpha < 1.0) {
        return sim::format(
            "%s is likely better; intervals overlap but the t-test "
            "rejects equality at alpha=%.3g",
            winner, smallestRejectedAlpha);
    }
    return "no statistically significant difference - do not draw a "
           "conclusion from these runs";
}

std::string
ComparisonReport::toString() const
{
    return sim::format(
        "A: mean=%.4g sd=%.3g  B: mean=%.4g sd=%.3g  WCR=%.1f%%  "
        "CI(A)=[%.4g,%.4g] CI(B)=[%.4g,%.4g] overlap=%s  t=%.3f "
        "(df=%.0f, p1=%.4g)\n  -> %s",
        a.mean, a.stddev, b.mean, b.stddev, wrongConclusionRatio,
        ciA.lo, ciA.hi, ciB.lo, ciB.hi, ciOverlap ? "yes" : "no",
        ttest.statistic, ttest.degreesOfFreedom,
        ttest.pValueOneSided, verdict().c_str());
}

ComparisonReport
compare(const std::vector<double> &a, const std::vector<double> &b,
        double confidence)
{
    VARSIM_ASSERT(a.size() >= 2 && b.size() >= 2,
                  "compare needs >= 2 runs per configuration");
    ComparisonReport r;
    r.a = stats::summarize(a);
    r.b = stats::summarize(b);
    r.bIsBetter = r.b.mean <= r.a.mean;

    r.wrongConclusionRatio =
        100.0 * stats::wrongConclusionRatioAuto(a, b);

    r.ciA = stats::meanConfidenceInterval(a, confidence);
    r.ciB = stats::meanConfidenceInterval(b, confidence);
    r.ciOverlap = r.ciA.overlaps(r.ciB);

    // One-sided test that the worse configuration's true mean
    // exceeds the better one's.
    const std::vector<double> &worse = r.bIsBetter ? a : b;
    const std::vector<double> &better = r.bIsBetter ? b : a;
    r.ttest = worse.size() == better.size()
                  ? stats::pooledTTest(worse, better)
                  : stats::welchTTest(worse, better);

    const std::array<double, 5> levels = {0.10, 0.05, 0.025, 0.01,
                                          0.005};
    r.smallestRejectedAlpha = 1.0;
    for (double alpha : levels) {
        if (r.ttest.rejectsAtLevel(alpha))
            r.smallestRejectedAlpha = alpha;
    }
    return r;
}

ComparisonReport
compare(const std::vector<RunResult> &a,
        const std::vector<RunResult> &b, double confidence)
{
    return compare(metricOf(a), metricOf(b), confidence);
}

std::size_t
recommendRuns(const std::vector<double> &pilot_a,
              const std::vector<double> &pilot_b, double alpha)
{
    const stats::Summary sa = stats::summarize(pilot_a);
    const stats::Summary sb = stats::summarize(pilot_b);
    const double diff = sa.mean > sb.mean ? sa.mean - sb.mean
                                          : sb.mean - sa.mean;
    if (diff <= 0.0)
        return 10000; // indistinguishable configurations
    return stats::runsNeededForSignificance(
        diff, sa.stddev * sa.stddev, sb.stddev * sb.stddev, alpha);
}

std::string
TimeVariabilityReport::toString() const
{
    return sim::format(
        "ANOVA: F=%.3f (df %g/%g), p=%.4g, MSbetween=%.4g, "
        "MSwithin=%.4g -> %s",
        anova.fStatistic, anova.dfBetween, anova.dfWithin,
        anova.pValue, anova.meanSquareBetween,
        anova.meanSquareWithin,
        needMultipleCheckpoints
            ? "time variability is significant; sample from "
              "multiple starting points"
            : "between-checkpoint variability is explained by "
              "space variability; a single starting point suffices");
}

TimeVariabilityReport
checkpointAnova(const std::vector<std::vector<double>> &groups,
                double alpha)
{
    TimeVariabilityReport r;
    r.anova = stats::oneWayAnova(groups);
    r.needMultipleCheckpoints = r.anova.significantAt(alpha);
    return r;
}

} // namespace core
} // namespace varsim
