/**
 * @file
 * Single-run measurement (paper Section 3.1): warm the system up for
 * a number of transactions, then measure the simulated time to
 * complete a fixed number of transactions. The reported metric is
 * aggregate cycles per transaction:
 *
 *     cyclesPerTxn = elapsed_ticks * num_cpus / transactions
 *
 * (one tick = one cycle at the 1 GHz target clock), matching the
 * paper's use of "cycles per transaction" as the performance metric
 * for all workloads.
 */

#ifndef VARSIM_CORE_RUNNER_HH
#define VARSIM_CORE_RUNNER_HH

#include "core/simulation.hh"
#include "os/kernel.hh"

namespace varsim
{
namespace core
{

/** Parameters of one measured run. */
struct RunConfig
{
    /** Transactions completed before measurement starts. */
    std::uint64_t warmupTxns = 0;

    /** Transactions measured (0 = the workload's default count). */
    std::uint64_t measureTxns = 0;

    /**
     * Seed of this run's latency-perturbation stream. Distinct seeds
     * produce distinct members of the space of possible executions
     * (Section 3.3).
     */
    std::uint64_t perturbSeed = 1;

    /**
     * If nonzero, also record cycles-per-transaction for every
     * window of this many transactions (Figure 8-style series).
     */
    std::uint64_t windowTxns = 0;

    /**
     * Intra-run parallelism (default: off, legacy serial engine).
     * Results on the domained engine are identical for every
     * par.threads >= 1 — only wall-clock time changes.
     */
    ParallelConfig par;

    /**
     * Intra-run statistical sampling (default: off, full detail).
     * When enabled, drive the measure phase through
     * sample::measure() — core::measure() ignores this field.
     */
    SampleConfig sample;
};

/**
 * Host-side profile of one run: wall-clock phase timers and
 * simulation throughput. Pure observation — derived from the host
 * clock and the event-dispatch counter, never fed back into the
 * simulation.
 */
struct HostProfile
{
    double warmupWallSec = 0.0;  ///< wall time in the warmup phase
    double measureWallSec = 0.0; ///< wall time in the measure phase
    std::uint64_t eventsDispatched = 0; ///< events in measure phase
    double eventsPerSec = 0.0;   ///< event throughput (measure phase)
    double hostMips = 0.0; ///< simulated M-instructions / host second
};

/** Everything measured in one run. */
struct RunResult
{
    double cyclesPerTxn = 0.0;
    sim::Tick runtimeTicks = 0;
    std::uint64_t txns = 0;
    bool workloadEnded = false;

    mem::MemStats mem;
    os::OsStats os;
    cpu::CpuStats cpu;

    /** Per-window cycles/txn (only if RunConfig::windowTxns set). */
    std::vector<double> windows;

    /**
     * Full dump of the simulation's metrics registry, taken after the
     * measure phase. Names are stable across runs of one
     * configuration (schema-stable JSONL via statsJsonl()).
     */
    sim::statistics::StatDump stats;

    /** Host-side profiling of this run. */
    HostProfile host;

    /**
     * Sampling estimates (sampled runs only; enabled=false and all
     * zeros on full-detail runs). When enabled, cyclesPerTxn above
     * holds the sampled point estimate so downstream metric
     * pipelines work unchanged.
     */
    SampledStats sampled;

    /** The stats dump as one JSONL line. */
    std::string statsJsonl() const
    {
        return sim::statistics::toJsonl(stats);
    }
};

/**
 * Run one fresh simulation of (sys, wl) under @p run.
 */
RunResult runOnce(const SystemConfig &sys,
                  const workload::WorkloadParams &wl,
                  const RunConfig &run);

/**
 * Run one simulation restored from @p cp (same workload; the system
 * configuration may differ in timing knobs). warmupTxns is usually 0
 * here — the checkpoint *is* the warmup.
 */
RunResult runFromCheckpoint(const SystemConfig &sys,
                            const workload::WorkloadParams &wl,
                            const Checkpoint &cp,
                            const RunConfig &run);

/**
 * Measure an already-constructed simulation (advanced use: callers
 * that warmed up or checkpointed by hand).
 */
RunResult measure(Simulation &simn, const RunConfig &run,
                  std::size_t num_cpus);

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_RUNNER_HH
