/**
 * @file
 * Multiple-simulation experiments (paper Section 5): N runs of the
 * same (configuration, workload) pair with distinct perturbation
 * seeds, executed concurrently on host threads — the paper's
 * "reasonable simulation time using coarse-grain parallelism,
 * provided that multiple simulation hosts are available".
 */

#ifndef VARSIM_CORE_EXPERIMENT_HH
#define VARSIM_CORE_EXPERIMENT_HH

#include <vector>

#include "core/runner.hh"

namespace varsim
{
namespace core
{

/**
 * Parameters of a multi-run experiment.
 *
 * Seed policy: run i (0-based) uses perturbation seed baseSeed + i,
 * so an experiment's seeds are the contiguous range
 * [baseSeed, baseSeed + numRuns). Callers that partition a larger
 * seed space (e.g. campaign cells) can therefore assert uniqueness
 * by spacing their base seeds at least numRuns apart. validate()
 * rejects numRuns == 0 (an experiment with no runs is always a
 * caller bug) and a range that would wrap around 2^64 (two runs
 * would silently share a seed); every runMany* entry point calls
 * it.
 */
struct ExperimentConfig
{
    /** Runs per configuration (the paper typically uses 20). */
    std::size_t numRuns = 20;

    /** Perturbation seed of run i is baseSeed + i. */
    std::uint64_t baseSeed = 1000;

    /** Host threads (0 = hardware concurrency). */
    std::size_t hostThreads = 0;

    /** fatal() unless the seed range [baseSeed, baseSeed+numRuns)
     *  is non-empty and free of 64-bit wraparound. */
    void validate() const;
};

/**
 * Run @p exp.numRuns independent simulations of (sys, wl) under
 * @p run, with per-run seeds baseSeed+i. Results are ordered by run
 * index regardless of host-thread scheduling.
 */
std::vector<RunResult> runMany(const SystemConfig &sys,
                               const workload::WorkloadParams &wl,
                               const RunConfig &run,
                               const ExperimentConfig &exp);

/**
 * As runMany, but every run restores from @p cp first — the
 * space-variability experiment design: identical initial conditions,
 * different perturbation seeds.
 */
std::vector<RunResult>
runManyFromCheckpoint(const SystemConfig &sys,
                      const workload::WorkloadParams &wl,
                      const Checkpoint &cp, const RunConfig &run,
                      const ExperimentConfig &exp);

/** One (configuration, workload, run, experiment) quadruple of a
 *  sweep — the unit of runManyBatch(). */
struct ExperimentSpec
{
    SystemConfig sys;
    workload::WorkloadParams wl;
    RunConfig run;
    ExperimentConfig exp;
};

/**
 * Run several experiments as one interleaved batch: every run of
 * every spec is flattened into a single work queue, so host threads
 * stay busy across configuration boundaries instead of draining at
 * each runMany() join. Results are grouped per spec, ordered by run
 * index — identical to calling runMany() per spec, just faster on a
 * multi-core host. The worker budget is the largest hostThreads of
 * any spec (hardware concurrency if any spec asks for it).
 */
std::vector<std::vector<RunResult>>
runManyBatch(const std::vector<ExperimentSpec> &specs);

/** Extract the cycles-per-transaction metric from results. */
std::vector<double> metricOf(const std::vector<RunResult> &results);

/**
 * Extract metric @p name from results: one of the built-in run
 * metrics ("cycles_per_txn", "runtime_ticks", "txns") or any name in
 * the runs' registry dumps (e.g. "system.mem.bus.l2_misses").
 * fatal() if a run lacks the metric.
 */
std::vector<double> metricOf(const std::vector<RunResult> &results,
                             const std::string &name);

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_EXPERIMENT_HH
