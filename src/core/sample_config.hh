/**
 * @file
 * Configuration and result types for intra-run statistical sampling
 * (SMARTS-style): a run alternates fast-forward (functional warming),
 * detailed warm-up, and detailed measurement intervals, and the
 * measured windows yield confidence-bounded estimates of the
 * full-detail metrics.
 *
 * Pure data — the controller machinery lives in src/sample. Kept in
 * core so RunConfig/RunResult can embed these types without a
 * dependency cycle (campaign -> sample -> core).
 */

#ifndef VARSIM_CORE_SAMPLE_CONFIG_HH
#define VARSIM_CORE_SAMPLE_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace varsim
{
namespace core
{

/** How measurement windows are placed within a run. */
struct SampleConfig
{
    enum class Design : std::uint8_t
    {
        Off,        ///< full detail, controller inert
        Systematic, ///< periodic windows, fixed phase (SMARTS)
        Stratified, ///< periodic windows, per-period random offset
        MatchedPair,///< periodic windows at seed-independent offsets
    };

    Design design = Design::Off;

    /** Sampling unit (period) U, in transactions. */
    std::uint64_t periodTxns = 0;

    /** Detailed warm-up W before each measurement, in transactions. */
    std::uint64_t warmupTxns = 0;

    /** Measurement window M, in transactions. */
    std::uint64_t measureTxns = 0;

    /** Two-sided confidence level for the reported intervals. */
    double confidence = 0.95;

    /**
     * Seed for the stratified design's offset stream. Mixed with the
     * run's perturbation seed for Stratified (independent placement
     * per run) but used alone for MatchedPair (identical windows
     * across the perturbation seeds being compared).
     */
    std::uint64_t offsetSeed = 12345;

    bool enabled() const { return design != Design::Off; }

    /**
     * Parse the CLI form "design:U:W:M[:confidence]" with design one
     * of systematic|stratified|matched. Returns false (leaving @p out
     * untouched) on malformed input.
     */
    static bool
    parse(const std::string &text, SampleConfig &out)
    {
        SampleConfig c;
        std::size_t pos = 0;
        auto nextField = [&](std::string &f) {
            if (pos == std::string::npos)
                return false;
            const std::size_t colon = text.find(':', pos);
            f = text.substr(pos, colon == std::string::npos
                                     ? std::string::npos
                                     : colon - pos);
            pos = colon == std::string::npos ? std::string::npos
                                             : colon + 1;
            return !f.empty();
        };

        std::string f;
        if (!nextField(f))
            return false;
        if (f == "systematic")
            c.design = Design::Systematic;
        else if (f == "stratified")
            c.design = Design::Stratified;
        else if (f == "matched")
            c.design = Design::MatchedPair;
        else
            return false;

        auto parseU64 = [](const std::string &s, std::uint64_t &v) {
            try {
                std::size_t used = 0;
                v = std::stoull(s, &used);
                return used == s.size();
            } catch (...) {
                return false;
            }
        };
        if (!nextField(f) || !parseU64(f, c.periodTxns))
            return false;
        if (!nextField(f) || !parseU64(f, c.warmupTxns))
            return false;
        if (!nextField(f) || !parseU64(f, c.measureTxns))
            return false;
        if (pos != std::string::npos) {
            if (!nextField(f))
                return false;
            try {
                std::size_t used = 0;
                c.confidence = std::stod(f, &used);
                if (used != f.size())
                    return false;
            } catch (...) {
                return false;
            }
            if (pos != std::string::npos)
                return false; // trailing fields
        }
        if (c.periodTxns == 0 || c.measureTxns == 0 ||
            c.warmupTxns + c.measureTxns > c.periodTxns)
            return false;
        if (c.confidence <= 0.0 || c.confidence >= 1.0)
            return false;
        out = c;
        return true;
    }

    std::string
    toString() const
    {
        const char *d = design == Design::Systematic ? "systematic"
                        : design == Design::Stratified
                            ? "stratified"
                        : design == Design::MatchedPair ? "matched"
                                                        : "off";
        return sim::format("%s:%llu:%llu:%llu", d,
                           static_cast<unsigned long long>(periodTxns),
                           static_cast<unsigned long long>(warmupTxns),
                           static_cast<unsigned long long>(
                               measureTxns));
    }
};

/**
 * What a sampled run estimated, surfaced through the sim.sampled.*
 * metrics and RunResult. All intervals are two-sided at `confidence`.
 */
struct SampledStats
{
    bool enabled = false;

    std::uint64_t periods = 0;      ///< sampling units completed
    std::uint64_t windows = 0;      ///< measurement windows taken
    std::uint64_t fastTxns = 0;     ///< txns under functional warming
    std::uint64_t warmTxns = 0;     ///< txns in detailed warm-up
    std::uint64_t measuredTxns = 0; ///< txns inside measured windows

    /**
     * True when the run was too short for even one full window and
     * the controller degraded to full detail (the estimate is then
     * exact, with a degenerate interval).
     */
    bool fullDetailFallback = false;

    double confidence = 0.0;

    // Cycles per transaction (aggregate cost metric, cpu-ticks/txn).
    double cptMean = 0.0, cptLo = 0.0, cptHi = 0.0;
    // Instructions per cycle, summed over CPUs then normalized.
    double ipcMean = 0.0, ipcLo = 0.0, ipcHi = 0.0;
    // L2 miss rate: misses / (hits + misses) at the L2s.
    double l2MissMean = 0.0, l2MissLo = 0.0, l2MissHi = 0.0;
};

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_SAMPLE_CONFIG_HH
