#include "core/planner.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "stats/distributions.hh"

namespace varsim
{
namespace core
{

std::vector<std::uint64_t>
planCheckpoints(SamplingStrategy strategy,
                std::uint64_t lifetime_txns, std::size_t samples,
                std::uint64_t seed)
{
    VARSIM_ASSERT(samples >= 1, "need at least one sample");
    VARSIM_ASSERT(lifetime_txns >= samples,
                  "lifetime (%llu txns) shorter than the sample "
                  "count (%zu)",
                  static_cast<unsigned long long>(lifetime_txns),
                  samples);

    std::vector<std::uint64_t> points;
    points.reserve(samples);
    const std::uint64_t stratum = lifetime_txns / samples;
    sim::Random rng(seed);

    switch (strategy) {
      case SamplingStrategy::Systematic:
        for (std::size_t i = 1; i <= samples; ++i)
            points.push_back(stratum * i);
        break;
      case SamplingStrategy::Random:
        for (std::size_t i = 0; i < samples; ++i)
            points.push_back(rng.uniformInt(1, lifetime_txns));
        std::sort(points.begin(), points.end());
        // De-duplicate by nudging forward (keeps strict order).
        for (std::size_t i = 1; i < points.size(); ++i)
            if (points[i] <= points[i - 1])
                points[i] = points[i - 1] + 1;
        break;
      case SamplingStrategy::Stratified:
        for (std::size_t i = 0; i < samples; ++i) {
            const std::uint64_t lo = stratum * i + 1;
            const std::uint64_t hi = stratum * (i + 1);
            points.push_back(rng.uniformInt(lo, std::max(lo, hi)));
        }
        break;
    }
    return points;
}

std::string
BudgetPlan::toString() const
{
    return sim::format(
        "run %zu simulations of %llu transactions each "
        "(predicted per-run CoV %.2f%%, CI half-width %.2f%% of "
        "the mean)",
        numRuns, static_cast<unsigned long long>(runLength),
        predictedCov, predictedHalfWidth);
}

BudgetPlan
planBudget(std::span<const std::pair<std::uint64_t, double>> pilots,
           std::uint64_t budget_txns, std::size_t min_runs,
           double confidence)
{
    VARSIM_ASSERT(pilots.size() >= 2,
                  "budget planning needs >= 2 pilot points");
    VARSIM_ASSERT(min_runs >= 2, "min_runs must be >= 2");
    VARSIM_ASSERT(budget_txns >= min_runs,
                  "budget cannot afford %zu runs", min_runs);

    // Least-squares fit of cov = a / sqrt(N) + b over the pilots.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto &[len, cov] : pilots) {
        VARSIM_ASSERT(len > 0, "pilot with zero length");
        const double x = 1.0 / std::sqrt(static_cast<double>(len));
        sx += x;
        sy += cov;
        sxx += x * x;
        sxy += x * cov;
    }
    const double m = static_cast<double>(pilots.size());
    const double denom = m * sxx - sx * sx;
    double a = denom != 0.0 ? (m * sxy - sx * sy) / denom : 0.0;
    double b = (sy - a * sx) / m;
    a = std::max(a, 0.0);
    b = std::max(b, 0.0);

    auto covAt = [&](std::uint64_t len) {
        return a / std::sqrt(static_cast<double>(len)) + b;
    };

    // Evaluate every feasible (length, runs) split of the budget
    // with runs >= min_runs, minimizing the predicted CI half-width.
    BudgetPlan best;
    double bestHalf = 1e300;
    const std::uint64_t maxLen = budget_txns / min_runs;
    for (std::uint64_t len = std::max<std::uint64_t>(1, maxLen / 64);
         len <= maxLen;
         len = std::max(len + 1, len + maxLen / 256)) {
        const std::size_t runs =
            static_cast<std::size_t>(budget_txns / len);
        if (runs < min_runs)
            break;
        const double cov = covAt(len);
        const double t = stats::tCriticalTwoSided(
            confidence, static_cast<double>(runs - 1));
        const double half =
            t * cov / std::sqrt(static_cast<double>(runs));
        if (half < bestHalf) {
            bestHalf = half;
            best.runLength = len;
            best.numRuns = runs;
            best.predictedCov = cov;
            best.predictedHalfWidth = half;
        }
    }
    VARSIM_ASSERT(best.numRuns >= min_runs,
                  "no feasible plan under the budget");
    return best;
}

} // namespace core
} // namespace varsim
