#include "core/simulation.hh"

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace core
{

Simulation::Simulation(const SystemConfig &sys,
                       const workload::WorkloadParams &wl)
    : sys_(sys), wlParams(wl)
{
    mem_ = std::make_unique<mem::MemSystem>("system.mem", eq,
                                            sys_.mem);
    std::vector<cpu::BaseCpu *> cpuPtrs;
    for (std::size_t n = 0; n < sys_.numCpus(); ++n) {
        const std::string cname = sim::format("system.cpu%zu", n);
        std::unique_ptr<cpu::BaseCpu> c;
        if (sys_.cpu.model == cpu::CpuConfig::Model::OutOfOrder) {
            c = std::make_unique<cpu::OoOCpu>(
                cname, eq, sys_.cpu, mem_->icache(n),
                mem_->dcache(n), static_cast<sim::CpuId>(n));
        } else {
            c = std::make_unique<cpu::SimpleCpu>(
                cname, eq, sys_.cpu, mem_->icache(n),
                mem_->dcache(n), static_cast<sim::CpuId>(n));
        }
        cpuPtrs.push_back(c.get());
        cpus_.push_back(std::move(c));
    }
    kernel_ = std::make_unique<os::Kernel>("system.kernel", eq,
                                           sys_.os, cpuPtrs);
    kernel_->setTxnSink(this);
    wl_ = workload::Workload::build(wlParams, *kernel_,
                                    sys_.numCpus(),
                                    sys_.mem.blockBytes);

    // Every SimObject registers its counters once, at construction;
    // values are read lazily at dump time only.
    mem_->regStats(statsReg);
    for (const auto &c : cpus_)
        c->regStats(statsReg);
    kernel_->regStats(statsReg);
    statsReg.regFormula(
        "sim.ticks",
        [this] { return static_cast<double>(eq.curTick()); },
        "simulated time");
    statsReg.regFormula(
        "sim.events_dispatched",
        [this] { return static_cast<double>(eq.numDispatched()); },
        "host-side event dispatch count");
    statsReg.regFormula(
        "sim.txns",
        [this] { return static_cast<double>(txnCount); },
        "transactions completed");
}

Simulation::~Simulation() = default;

void
Simulation::seedPerturbation(std::uint64_t seed)
{
    mem_->seedPerturbation(seed);
}

void
Simulation::bootIfNeeded()
{
    if (booted)
        return;
    booted = true;
    kernel_->start();
}

void
Simulation::transactionCompleted(sim::ThreadId tid, int type,
                                 sim::Tick when)
{
    ++txnCount;
    if (recording)
        txns.push_back({when, type, tid});
    if (txnTarget != 0 && txnCount >= txnTarget)
        eq.requestStop();
}

Simulation::Progress
Simulation::runTransactions(std::uint64_t n)
{
    bootIfNeeded();
    const std::uint64_t startTxns = txnCount;
    const sim::Tick startTick = eq.curTick();
    txnTarget = txnCount + n;
    eq.clearStop();
    eq.run();
    txnTarget = 0;
    eq.clearStop();

    Progress p;
    p.txns = txnCount - startTxns;
    p.elapsed = eq.curTick() - startTick;
    p.workloadEnded = eq.empty();
    return p;
}

void
Simulation::quiesce()
{
    kernel_->beginDrain();
    eq.clearStop();
    eq.run();
    VARSIM_ASSERT(eq.empty(),
                  "quiesce: event queue still has %zu events",
                  eq.size());
    VARSIM_ASSERT(kernel_->fullyDrained(),
                  "quiesce: kernel not drained");
    VARSIM_ASSERT(mem_->pendingTransactions() == 0,
                  "quiesce: %zu memory transactions in flight",
                  mem_->pendingTransactions());
    mem_->drain();
}

Checkpoint
Simulation::checkpoint()
{
    bootIfNeeded();
    quiesce();

    sim::CheckpointOut cp;
    cp.put(eq.curTick());
    cp.put(txnCount);
    mem_->serialize(cp);
    for (const auto &c : cpus_)
        c->serialize(cp);
    kernel_->serialize(cp);
    wl_->serialize(cp);

    // Resume execution; checkpointing is non-destructive.
    kernel_->endDrain();

    Checkpoint out;
    out.bytes = cp.bytes();
    return out;
}

std::unique_ptr<Simulation>
Simulation::restore(const SystemConfig &sys,
                    const workload::WorkloadParams &wl,
                    const Checkpoint &cp)
{
    VARSIM_ASSERT(!cp.empty(), "restore from an empty checkpoint");
    auto simn = std::make_unique<Simulation>(sys, wl);
    sim::CheckpointIn in(cp.bytes);

    sim::Tick when = 0;
    in.get(when);
    simn->eq.restoreTick(when);
    in.get(simn->txnCount);
    simn->mem_->unserialize(in);
    for (const auto &c : simn->cpus_)
        c->unserialize(in);
    simn->kernel_->unserialize(in);
    simn->wl_->unserialize(in);
    VARSIM_ASSERT(in.exhausted(),
                  "checkpoint has trailing bytes: config mismatch?");

    simn->booted = true;
    simn->kernel_->endDrain();
    return simn;
}

cpu::CpuStats
Simulation::totalCpuStats() const
{
    cpu::CpuStats total;
    for (const auto &c : cpus_) {
        const cpu::CpuStats &s = c->stats();
        total.instructions += s.instructions;
        total.memOps += s.memOps;
        total.branches += s.branches;
        total.mispredicts += s.mispredicts;
        total.contextSwitches += s.contextSwitches;
        total.idleTicks += s.idleTicks;
    }
    return total;
}

} // namespace core
} // namespace varsim
