#include "core/simulation.hh"

#include <algorithm>
#include <thread>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace core
{

Simulation::Simulation(const SystemConfig &sys,
                       const workload::WorkloadParams &wl,
                       const ParallelConfig &par)
    : sys_(sys), wlParams(wl), par_(par)
{
    // The domained engine: the shared queue (eq) becomes domain 0
    // (bus/L2/DRAM fabric + kernel) and each CPU with its L1 pair
    // gets a private queue in domain 1+n, stitched together by the
    // mailbox router. par.enabled() false leaves everything on eq,
    // the legacy engine, bit-exact with the historical goldens.
    std::vector<sim::EventQueue *> l1Queues;
    if (par_.enabled()) {
        const sim::Tick la = par_.effectiveLookahead(sys_.mem);
        std::vector<sim::EventQueue *> queues;
        queues.push_back(&eq);
        for (std::size_t n = 0; n < sys_.numCpus(); ++n) {
            cpuQueues_.push_back(
                std::make_unique<sim::EventQueue>());
            queues.push_back(cpuQueues_.back().get());
            l1Queues.push_back(cpuQueues_.back().get());
        }
        router_ = std::make_unique<sim::DomainRouter>(queues, la);
        // Worker threads beyond the host's cores only add barrier
        // contention — they can never raise throughput, and results
        // are identical for every count — so clamp silently. The
        // scheduler itself honors any explicit count (its unit
        // tests oversubscribe on purpose).
        std::size_t workers = par_.threads;
        if (par_.clampThreadsToHost) {
            workers = std::min(
                workers,
                std::max<std::size_t>(
                    1, std::thread::hardware_concurrency()));
        }
        scheduler_ = std::make_unique<sim::DomainScheduler>(
            queues, *router_, workers);
        // All cross-CPU traffic flows through the shared domain
        // (bus/directory + kernel); CPU↔CPU lanes never carry a
        // message. Declaring them unused frees every CPU domain's
        // round horizon from its siblings' positions — CPUs are
        // coupled only through the shared fabric's pending work.
        const std::size_t nd = router_->numDomains();
        for (std::size_t i = 1; i < nd; ++i) {
            for (std::size_t j = 1; j < nd; ++j) {
                if (i != j)
                    router_->markLaneUnused(
                        static_cast<sim::DomainId>(i),
                        static_cast<sim::DomainId>(j));
            }
        }
    }

    mem_ = std::make_unique<mem::MemSystem>(
        "system.mem", eq, sys_.mem,
        l1Queues.empty() ? nullptr : &l1Queues);
    std::vector<cpu::BaseCpu *> cpuPtrs;
    for (std::size_t n = 0; n < sys_.numCpus(); ++n) {
        const std::string cname = sim::format("system.cpu%zu", n);
        sim::EventQueue &cq =
            cpuQueues_.empty() ? eq : *cpuQueues_[n];
        std::unique_ptr<cpu::BaseCpu> c;
        if (sys_.cpu.model == cpu::CpuConfig::Model::OutOfOrder) {
            c = std::make_unique<cpu::OoOCpu>(
                cname, cq, sys_.cpu, mem_->icache(n),
                mem_->dcache(n), static_cast<sim::CpuId>(n));
        } else {
            c = std::make_unique<cpu::SimpleCpu>(
                cname, cq, sys_.cpu, mem_->icache(n),
                mem_->dcache(n), static_cast<sim::CpuId>(n));
        }
        cpuPtrs.push_back(c.get());
        cpus_.push_back(std::move(c));
    }
    kernel_ = std::make_unique<os::Kernel>("system.kernel", eq,
                                           sys_.os, cpuPtrs);
    kernel_->setTxnSink(this);
    if (router_) {
        mem_->bindDomains(*router_);
        kernel_->bindDomains(*router_);
    }
    wl_ = workload::Workload::build(wlParams, *kernel_,
                                    sys_.numCpus(),
                                    sys_.mem.blockBytes);

    // Every SimObject registers its counters once, at construction;
    // values are read lazily at dump time only.
    mem_->regStats(statsReg);
    for (const auto &c : cpus_)
        c->regStats(statsReg);
    kernel_->regStats(statsReg);
    statsReg.regFormula(
        "sim.ticks",
        [this] { return static_cast<double>(eq.curTick()); },
        "simulated time");
    statsReg.regFormula(
        "sim.events_dispatched",
        [this] {
            return static_cast<double>(eventsDispatched());
        },
        "host-side event dispatch count");
    statsReg.regFormula(
        "sim.txns",
        [this] { return static_cast<double>(txnCount); },
        "transactions completed");

    // Intra-run parallel engine health. The round and message
    // counters are pure functions of simulated state — identical
    // for every --threads value — so they live in the default dump.
    // The wall-clock breakdowns depend on the host and are
    // registered as host metrics, excluded from the default dump so
    // recorded per-run stats stay bit-identical across hosts and
    // thread counts.
    statsReg.regFormula(
        "sim.par.rounds",
        [this] {
            return static_cast<double>(
                scheduler_ ? scheduler_->rounds() : 0);
        },
        "synchronization rounds executed by the domain scheduler");
    statsReg.regFormula(
        "sim.par.serial_rounds",
        [this] {
            return static_cast<double>(
                scheduler_ ? scheduler_->serialRoundCount() : 0);
        },
        "rounds whose runnable set had at most one domain");
    statsReg.regFormula(
        "sim.par.messages_routed",
        [this] {
            return static_cast<double>(
                router_ ? router_->delivered() : 0);
        },
        "cross-domain messages delivered");
    if (scheduler_) {
        statsReg.regDistribution(
            "sim.par.events_per_round",
            &scheduler_->eventsPerRound(),
            "events dispatched per synchronization round");
        statsReg.regHostFormula(
            "sim.par.host.barrier_wait_ns",
            [this] {
                return static_cast<double>(
                    scheduler_->barrierWaitNs());
            },
            "host wall-ns parties spent waiting at the rendezvous");
        for (std::size_t d = 0; d < router_->numDomains(); ++d) {
            statsReg.regHostFormula(
                sim::format("sim.par.host.domain%zu.wall_ns", d),
                [this, d] {
                    return static_cast<double>(
                        scheduler_->domainWallNs(
                            static_cast<sim::DomainId>(d)));
                },
                "host wall-ns draining and dispatching this domain");
        }
    }

    // Sampled-estimate exports. Registered unconditionally so every
    // run (sampled or not) emits the same metric schema; the slots
    // stay zero unless a sampling controller fills them.
    statsReg.regFormula(
        "sim.sampled.enabled",
        [this] { return sampled_.enabled ? 1.0 : 0.0; },
        "1 if this run's estimates came from sampling");
    statsReg.regFormula(
        "sim.sampled.windows",
        [this] { return static_cast<double>(sampled_.windows); },
        "measurement windows taken");
    statsReg.regFormula(
        "sim.sampled.fast_txns",
        [this] { return static_cast<double>(sampled_.fastTxns); },
        "transactions executed under functional warming");
    statsReg.regFormula(
        "sim.sampled.measured_txns",
        [this] {
            return static_cast<double>(sampled_.measuredTxns);
        },
        "transactions inside measured windows");
    statsReg.regFormula(
        "sim.sampled.fallback",
        [this] { return sampled_.fullDetailFallback ? 1.0 : 0.0; },
        "1 if the run degraded to full detail");
    statsReg.regFormula(
        "sim.sampled.confidence",
        [this] { return sampled_.confidence; },
        "confidence level of the reported intervals");
    statsReg.regFormula(
        "sim.sampled.cpt_mean",
        [this] { return sampled_.cptMean; },
        "sampled cycles-per-transaction point estimate");
    statsReg.regFormula(
        "sim.sampled.cpt_lo",
        [this] { return sampled_.cptLo; },
        "cycles-per-transaction interval lower bound");
    statsReg.regFormula(
        "sim.sampled.cpt_hi",
        [this] { return sampled_.cptHi; },
        "cycles-per-transaction interval upper bound");
    statsReg.regFormula(
        "sim.sampled.ipc_mean",
        [this] { return sampled_.ipcMean; },
        "sampled per-CPU IPC point estimate");
    statsReg.regFormula(
        "sim.sampled.ipc_lo", [this] { return sampled_.ipcLo; },
        "IPC interval lower bound");
    statsReg.regFormula(
        "sim.sampled.ipc_hi", [this] { return sampled_.ipcHi; },
        "IPC interval upper bound");
    statsReg.regFormula(
        "sim.sampled.l2_miss_mean",
        [this] { return sampled_.l2MissMean; },
        "sampled L2 miss-rate point estimate");
    statsReg.regFormula(
        "sim.sampled.l2_miss_lo",
        [this] { return sampled_.l2MissLo; },
        "L2 miss-rate interval lower bound");
    statsReg.regFormula(
        "sim.sampled.l2_miss_hi",
        [this] { return sampled_.l2MissHi; },
        "L2 miss-rate interval upper bound");
}

Simulation::~Simulation() = default;

void
Simulation::seedPerturbation(std::uint64_t seed)
{
    mem_->seedPerturbation(seed);
}

void
Simulation::bootIfNeeded()
{
    if (booted)
        return;
    booted = true;
    kernel_->start();
}

void
Simulation::transactionCompleted(sim::ThreadId tid, int type,
                                 sim::Tick when)
{
    ++txnCount;
    if (recording)
        txns.push_back({when, type, tid});
    if (txnTarget != 0 && txnCount >= txnTarget) {
        // The domained engine never halts a queue mid-round — that
        // would leave the domains at different horizons. The stop
        // lands at the next round boundary instead: a deterministic
        // overshoot of at most one round past the target.
        if (scheduler_)
            scheduler_->requestStop();
        else
            eq.requestStop();
    }
}

Simulation::Progress
Simulation::runTransactions(std::uint64_t n)
{
    bootIfNeeded();
    const std::uint64_t startTxns = txnCount;
    const sim::Tick startTick = eq.curTick();
    txnTarget = txnCount + n;

    Progress p;
    if (scheduler_) {
        scheduler_->clearStop();
        scheduler_->run();
        txnTarget = 0;
        scheduler_->clearStop();
        p.workloadEnded = scheduler_->idle();
    } else {
        eq.clearStop();
        eq.run();
        txnTarget = 0;
        eq.clearStop();
        p.workloadEnded = eq.empty();
    }

    p.txns = txnCount - startTxns;
    p.elapsed = eq.curTick() - startTick;
    return p;
}

void
Simulation::setFastMode(bool on)
{
    bootIfNeeded();
    if (fastMode_ == on)
        return;
    // Drain to a quiescent op boundary: every CPU parked with debts
    // settled and no misses in flight, every queue and mailbox
    // empty. The engines then swap with no timing residue.
    quiesce();
    for (const auto &c : cpus_)
        c->setFastMode(on);
    if (scheduler_)
        scheduler_->setSerialRounds(on);
    fastMode_ = on;
    kernel_->endDrain();
}

void
Simulation::quiesce()
{
    kernel_->beginDrain();
    if (scheduler_) {
        // Rounds run until global quiescence: every domain queue
        // empty AND every mailbox drained (a lone in-flight message
        // keeps the rounds going until its effects settle).
        scheduler_->clearStop();
        scheduler_->run();
        VARSIM_ASSERT(scheduler_->idle(),
                      "quiesce: domains not quiescent");
        for (const auto &q : cpuQueues_)
            VARSIM_ASSERT(q->empty(),
                          "quiesce: CPU queue still has %zu events",
                          q->size());
    } else {
        eq.clearStop();
        eq.run();
    }
    VARSIM_ASSERT(eq.empty(),
                  "quiesce: event queue still has %zu events",
                  eq.size());
    VARSIM_ASSERT(kernel_->fullyDrained(),
                  "quiesce: kernel not drained");
    VARSIM_ASSERT(mem_->pendingTransactions() == 0,
                  "quiesce: %zu memory transactions in flight",
                  mem_->pendingTransactions());
    mem_->drain();
}

Checkpoint
Simulation::checkpoint()
{
    bootIfNeeded();
    quiesce();

    // Drained queues may sit at slightly different ticks (each
    // stops at its last dispatched event); serialize the global
    // max so restore starts every domain at one common time. The
    // byte format is identical to the legacy engine's, so
    // checkpoints are portable across engines and thread counts.
    sim::Tick globalTick = eq.curTick();
    for (const auto &q : cpuQueues_)
        globalTick = std::max(globalTick, q->curTick());

    sim::CheckpointOut cp;
    cp.put(globalTick);
    cp.put(txnCount);
    mem_->serialize(cp);
    for (const auto &c : cpus_)
        c->serialize(cp);
    kernel_->serialize(cp);
    wl_->serialize(cp);

    // Align the live queues to the serialized tick before resuming,
    // so continuing this simulation is bitwise identical to
    // restoring the checkpoint (a restored sim starts every domain
    // at globalTick; the queues are empty here, so this only moves
    // their clocks forward). Legacy mode: globalTick == eq.curTick()
    // and this is a no-op.
    eq.restoreTick(globalTick);
    for (const auto &q : cpuQueues_)
        q->restoreTick(globalTick);

    // Resume execution; checkpointing is non-destructive.
    kernel_->endDrain();

    Checkpoint out;
    out.bytes = cp.bytes();
    return out;
}

std::unique_ptr<Simulation>
Simulation::restore(const SystemConfig &sys,
                    const workload::WorkloadParams &wl,
                    const Checkpoint &cp, const ParallelConfig &par)
{
    VARSIM_ASSERT(!cp.empty(), "restore from an empty checkpoint");
    auto simn = std::make_unique<Simulation>(sys, wl, par);
    sim::CheckpointIn in(cp.bytes);

    sim::Tick when = 0;
    in.get(when);
    simn->eq.restoreTick(when);
    for (const auto &q : simn->cpuQueues_)
        q->restoreTick(when);
    in.get(simn->txnCount);
    simn->mem_->unserialize(in);
    for (const auto &c : simn->cpus_)
        c->unserialize(in);
    simn->kernel_->unserialize(in);
    simn->wl_->unserialize(in);
    VARSIM_ASSERT(in.exhausted(),
                  "checkpoint has trailing bytes: config mismatch?");

    simn->booted = true;
    simn->kernel_->endDrain();
    return simn;
}

cpu::CpuStats
Simulation::totalCpuStats() const
{
    cpu::CpuStats total;
    for (const auto &c : cpus_) {
        const cpu::CpuStats &s = c->stats();
        total.instructions += s.instructions;
        total.memOps += s.memOps;
        total.branches += s.branches;
        total.mispredicts += s.mispredicts;
        total.contextSwitches += s.contextSwitches;
        total.idleTicks += s.idleTicks;
    }
    return total;
}

} // namespace core
} // namespace varsim
