/**
 * @file
 * Asynchronous sibling of HostThreadPool.
 *
 * parallelFor() is batch-synchronous: the caller blocks until its
 * batch drains, and batches serialize behind one another. That shape
 * fits a CLI invocation running one campaign, but not a resident
 * daemon multiplexing many tenants — there the scheduler must keep
 * posting work as results stream in, never blocking a submission on
 * another tenant's batch. TaskQueue is that executor: a fixed set of
 * workers draining a FIFO of posted closures.
 *
 * The serve scheduler deliberately posts *tokens*, not campaign
 * cells: each token asks the scheduler for the globally best next
 * cell at the moment it runs (late binding), which is how fair-share
 * admission stays accurate under completion-order churn.
 */

#ifndef VARSIM_CORE_TASK_QUEUE_HH
#define VARSIM_CORE_TASK_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace varsim
{
namespace core
{

class TaskQueue
{
  public:
    /** Start @p workers threads (0 = hardware concurrency). */
    explicit TaskQueue(std::size_t workers);

    /** stop()s (discarding queued tasks) and joins. */
    ~TaskQueue();

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /**
     * Enqueue @p fn for execution on some worker, FIFO. Tasks
     * posted after stop() are silently dropped (the daemon's
     * shutdown path races its own completion callbacks; dropping
     * is the correct loser's outcome). A task that throws is
     * swallowed with a warning — one tenant's failure must not
     * take down the executor.
     */
    void post(std::function<void()> fn);

    /** Block until no task is queued or running. */
    void drain();

    /**
     * Stop accepting and discard queued tasks; running tasks
     * complete. Returns after every worker has exited. Idempotent.
     */
    void stop();

    /** Tasks queued but not yet started. */
    std::size_t pending() const;

    /** Tasks currently executing. */
    std::size_t running() const;

    std::size_t workerCount() const { return threads.size(); }

  private:
    void workerMain();

    mutable std::mutex mu;
    std::condition_variable wake; ///< workers: task posted / stop
    std::condition_variable idle; ///< drain(): queue+running empty
    std::deque<std::function<void()>> queue;
    std::size_t running_ = 0;
    bool stopping = false;
    std::vector<std::thread> threads;
};

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_TASK_QUEUE_HH
