/**
 * @file
 * One full-system simulation instance: an event queue, a memory
 * hierarchy, processors, the simulated OS, and a workload, plus
 * transaction-count-based run control (the measurement methodology
 * of Section 3.1: measure the simulated time to complete a fixed
 * number of transactions) and Simics-style checkpointing
 * (Section 3.2.2).
 *
 * Simulations are self-contained — no global state — so a
 * multiple-simulation experiment can run many instances concurrently
 * on host threads (the paper's "coarse-grain parallelism" across
 * simulation hosts).
 */

#ifndef VARSIM_CORE_SIMULATION_HH
#define VARSIM_CORE_SIMULATION_HH

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/sample_config.hh"
#include "mem/mem_system.hh"
#include "sim/domains.hh"
#include "sim/statistics.hh"
#include "workload/workload.hh"

namespace varsim
{
namespace core
{

/** An opaque full-system checkpoint. */
struct Checkpoint
{
    std::vector<std::uint8_t> bytes;

    bool empty() const { return bytes.empty(); }
    std::size_t size() const { return bytes.size(); }
};

/** One completed transaction, for windowed/time analyses. */
struct TxnRecord
{
    sim::Tick when;
    std::int32_t type;
    sim::ThreadId tid;
};

class Simulation : public os::TxnSink
{
  public:
    /**
     * @p par selects the event engine: default ({}) is the legacy
     * single event queue, bit-exact with every historical golden;
     * par.enabled() builds the per-CPU domained engine instead (same
     * model, +Λ cross-domain hop skew — its own golden pins live in
     * tests/core/test_parallel_golden.cc).
     */
    Simulation(const SystemConfig &sys,
               const workload::WorkloadParams &wl,
               const ParallelConfig &par = {});
    ~Simulation() override;

    /**
     * Seed this run's memory-latency perturbation stream
     * (Section 3.3). Call before the first runTransactions().
     */
    void seedPerturbation(std::uint64_t seed);

    /** Result of a runTransactions() call. */
    struct Progress
    {
        std::uint64_t txns = 0;      ///< completed during this call
        sim::Tick elapsed = 0;       ///< simulated time consumed
        bool workloadEnded = false;  ///< all threads finished
    };

    /**
     * Simulate until @p n more transactions complete (or the
     * workload ends). The first call also boots the OS.
     */
    Progress runTransactions(std::uint64_t n);

    /** Current simulated time. */
    sim::Tick now() const { return eq.curTick(); }

    /** Transactions completed since construction/restore. */
    std::uint64_t totalTxns() const { return txnCount; }

    /** Record every completion into completions() (off by default). */
    void recordCompletions(bool on) { recording = on; }
    const std::vector<TxnRecord> &completions() const { return txns; }

    /**
     * Switch every CPU between detailed timing and the
     * functional-warming fast engine. The system is drained to a
     * quiescent op boundary first, so the two engines hand the op
     * streams to each other with no partial-op or in-flight-miss
     * residue; on the domained engine, rounds additionally run
     * serially while fast mode is on (the warm memory path makes
     * direct cross-domain calls). A no-op if already in the
     * requested mode.
     */
    void setFastMode(bool on);

    /** True while CPUs run the functional-warming fast engine. */
    bool fastMode() const { return fastMode_; }

    /**
     * Sampled-estimate slots read by the sim.sampled.* metrics. The
     * sampling controller fills them; they stay zero (enabled=0) on
     * unsampled runs, keeping the exported schema stable.
     */
    SampledStats &sampledStats() { return sampled_; }
    const SampledStats &sampledStats() const { return sampled_; }

    /**
     * Drain the system to a quiescent point and serialize the full
     * architectural state. The simulation resumes afterwards and can
     * keep running.
     */
    Checkpoint checkpoint();

    /**
     * Build a simulation from a checkpoint taken on an identical
     * (sys, wl) configuration pair — except that the *memory timing*
     * knobs of @p sys may differ (that is the whole point: start
     * different configurations from identical initial conditions).
     */
    static std::unique_ptr<Simulation>
    restore(const SystemConfig &sys,
            const workload::WorkloadParams &wl, const Checkpoint &cp,
            const ParallelConfig &par = {});

    // ---- introspection ----
    os::Kernel &kernel() { return *kernel_; }
    mem::MemSystem &memSystem() { return *mem_; }
    workload::Workload &workloadInstance() { return *wl_; }
    cpu::BaseCpu &cpu(std::size_t i) { return *cpus_.at(i); }
    std::size_t numCpus() const { return cpus_.size(); }
    const SystemConfig &config() const { return sys_; }

    /** Aggregate CPU stats across all processors. */
    cpu::CpuStats totalCpuStats() const;

    /**
     * The metrics registry every SimObject in this instance
     * registered into at construction. Dumping is read-only and
     * schedules nothing: it never perturbs simulated timing.
     */
    const sim::statistics::Registry &statsRegistry() const
    {
        return statsReg;
    }

    /** Host-side event dispatch count (profiling, not sim state). */
    std::uint64_t
    eventsDispatched() const
    {
        std::uint64_t n = eq.numDispatched();
        for (const auto &q : cpuQueues_)
            n += q->numDispatched();
        return n;
    }

    /** True if this instance runs the domained parallel engine. */
    bool parallelEngine() const { return scheduler_ != nullptr; }

    /** Barrier rounds executed (0 on the legacy engine). */
    std::uint64_t
    parallelRounds() const
    {
        return scheduler_ ? scheduler_->rounds() : 0;
    }

    // ---- os::TxnSink ----
    void transactionCompleted(sim::ThreadId tid, int type,
                              sim::Tick when) override;

  private:
    void bootIfNeeded();
    void quiesce();

    SystemConfig sys_;
    workload::WorkloadParams wlParams;
    ParallelConfig par_;
    /** The shared domain's queue; the only queue in legacy mode. */
    sim::EventQueue eq;
    /** Per-CPU domain queues; empty on the legacy engine. */
    std::vector<std::unique_ptr<sim::EventQueue>> cpuQueues_;
    std::unique_ptr<sim::DomainRouter> router_;
    std::unique_ptr<sim::DomainScheduler> scheduler_;
    std::unique_ptr<mem::MemSystem> mem_;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<workload::Workload> wl_;
    sim::statistics::Registry statsReg;

    bool booted = false;
    bool fastMode_ = false;
    SampledStats sampled_;
    bool recording = false;
    std::uint64_t txnCount = 0;
    std::uint64_t txnTarget = 0;
    std::vector<TxnRecord> txns;
};

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_SIMULATION_HH
