/**
 * @file
 * Experiment-planning extensions from the paper's future-work list
 * (Section 5.2):
 *
 *  - checkpoint sampling strategies beyond systematic sampling
 *    ("Sampling techniques other than systematic sampling can be
 *    used to select representative time samples");
 *  - the fixed-budget tradeoff between run length and run count
 *    ("Given a fixed simulation budget ... a tradeoff must be made
 *    between the length of each simulation and the number of
 *    simulations required to maximize the confidence probability").
 */

#ifndef VARSIM_CORE_PLANNER_HH
#define VARSIM_CORE_PLANNER_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace varsim
{
namespace core
{

/** How to place measurement starting points in a workload's life. */
enum class SamplingStrategy
{
    /** Fixed intervals (the paper's baseline, Section 5.2). */
    Systematic,
    /** Uniform pseudo-random positions (deterministic by seed). */
    Random,
    /**
     * One uniform draw inside each of `samples` equal strata:
     * random like Random, but guaranteed lifetime coverage.
     */
    Stratified,
};

/**
 * Plan @p samples checkpoint positions (warmup transaction counts)
 * over a workload lifetime of @p lifetime_txns transactions.
 * Positions are strictly increasing and > 0.
 */
std::vector<std::uint64_t>
planCheckpoints(SamplingStrategy strategy,
                std::uint64_t lifetime_txns, std::size_t samples,
                std::uint64_t seed = 1);

/** The advisor's recommendation for a fixed simulation budget. */
struct BudgetPlan
{
    std::uint64_t runLength = 0;  ///< measured txns per run
    std::size_t numRuns = 0;      ///< runs (seeds) to simulate
    double predictedCov = 0.0;    ///< per-run CoV at that length, %
    double predictedHalfWidth = 0.0; ///< CI half-width, % of mean

    std::string toString() const;
};

/**
 * Choose (run length, run count) under a budget of
 * @p budget_txns total measured transactions.
 *
 * Pilot observations supply (run length, CoV%) pairs; the planner
 * fits the paper's empirical law CoV(N) ~ a/sqrt(N) + b (Table 4)
 * and minimizes the predicted confidence-interval half-width
 * t_{k-1} * CoV(N) / sqrt(k) subject to k*N <= budget and
 * k >= @p min_runs (you cannot form an interval from one run).
 *
 * @param pilots      (length, CoV in percent) measurements
 * @param budget_txns total transactions the budget affords
 * @param min_runs    smallest acceptable sample size (>= 2)
 * @param confidence  CI confidence level used in the objective
 */
BudgetPlan
planBudget(std::span<const std::pair<std::uint64_t, double>> pilots,
           std::uint64_t budget_txns, std::size_t min_runs = 3,
           double confidence = 0.95);

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_PLANNER_HH
