#include "core/runner.hh"

#include <chrono>

#include "sim/logging.hh"

namespace varsim
{
namespace core
{

namespace
{

double
wallSecondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::uint64_t
resolveMeasureTxns(const Simulation &simn, const RunConfig &run)
{
    if (run.measureTxns != 0)
        return run.measureTxns;
    return const_cast<Simulation &>(simn)
        .workloadInstance()
        .defaultTxnCount();
}

} // anonymous namespace

RunResult
measure(Simulation &simn, const RunConfig &run, std::size_t num_cpus)
{
    const std::uint64_t n = resolveMeasureTxns(simn, run);

    RunResult r;

    const auto warmupT0 = std::chrono::steady_clock::now();
    if (run.warmupTxns > 0)
        simn.runTransactions(run.warmupTxns);
    r.host.warmupWallSec = wallSecondsSince(warmupT0);

    const bool wantWindows = run.windowTxns != 0;
    simn.recordCompletions(wantWindows);

    const sim::Tick start = simn.now();
    const std::uint64_t startTxns = simn.totalTxns();
    const std::uint64_t startEvents = simn.eventsDispatched();
    const std::uint64_t startInstrs =
        simn.totalCpuStats().instructions;
    const auto measureT0 = std::chrono::steady_clock::now();
    const Simulation::Progress p = simn.runTransactions(n);
    r.host.measureWallSec = wallSecondsSince(measureT0);
    r.host.eventsDispatched = simn.eventsDispatched() - startEvents;
    if (r.host.measureWallSec > 0.0) {
        r.host.eventsPerSec =
            static_cast<double>(r.host.eventsDispatched) /
            r.host.measureWallSec;
        r.host.hostMips =
            static_cast<double>(simn.totalCpuStats().instructions -
                                startInstrs) /
            (r.host.measureWallSec * 1e6);
    }
    r.txns = p.txns;
    r.runtimeTicks = p.elapsed;
    r.workloadEnded = p.workloadEnded;
    VARSIM_ASSERT(p.txns > 0 || p.workloadEnded,
                  "measured zero transactions");
    if (p.txns > 0) {
        r.cyclesPerTxn = static_cast<double>(p.elapsed) *
                         static_cast<double>(num_cpus) /
                         static_cast<double>(p.txns);
    }
    r.mem = simn.memSystem().totalStats();
    r.os = simn.kernel().stats();
    r.cpu = simn.totalCpuStats();
    r.stats = simn.statsRegistry().dump();

    if (wantWindows) {
        const auto &recs = simn.completions();
        sim::Tick winStart = start;
        std::uint64_t inWin = 0;
        for (const auto &rec : recs) {
            if (rec.when < start)
                continue;
            ++inWin;
            if (inWin == run.windowTxns) {
                r.windows.push_back(
                    static_cast<double>(rec.when - winStart) *
                    static_cast<double>(num_cpus) /
                    static_cast<double>(inWin));
                winStart = rec.when;
                inWin = 0;
            }
        }
        (void)startTxns;
    }
    return r;
}

RunResult
runOnce(const SystemConfig &sys, const workload::WorkloadParams &wl,
        const RunConfig &run)
{
    Simulation simn(sys, wl, run.par);
    simn.seedPerturbation(run.perturbSeed);
    return measure(simn, run, sys.numCpus());
}

RunResult
runFromCheckpoint(const SystemConfig &sys,
                  const workload::WorkloadParams &wl,
                  const Checkpoint &cp, const RunConfig &run)
{
    auto simn = Simulation::restore(sys, wl, cp, run.par);
    simn->seedPerturbation(run.perturbSeed);
    return measure(*simn, run, sys.numCpus());
}

} // namespace core
} // namespace varsim
