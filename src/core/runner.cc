#include "core/runner.hh"

#include "sim/logging.hh"

namespace varsim
{
namespace core
{

namespace
{

std::uint64_t
resolveMeasureTxns(const Simulation &simn, const RunConfig &run)
{
    if (run.measureTxns != 0)
        return run.measureTxns;
    return const_cast<Simulation &>(simn)
        .workloadInstance()
        .defaultTxnCount();
}

} // anonymous namespace

RunResult
measure(Simulation &simn, const RunConfig &run, std::size_t num_cpus)
{
    const std::uint64_t n = resolveMeasureTxns(simn, run);

    if (run.warmupTxns > 0)
        simn.runTransactions(run.warmupTxns);

    const bool wantWindows = run.windowTxns != 0;
    simn.recordCompletions(wantWindows);

    const sim::Tick start = simn.now();
    const std::uint64_t startTxns = simn.totalTxns();
    const Simulation::Progress p = simn.runTransactions(n);

    RunResult r;
    r.txns = p.txns;
    r.runtimeTicks = p.elapsed;
    r.workloadEnded = p.workloadEnded;
    VARSIM_ASSERT(p.txns > 0 || p.workloadEnded,
                  "measured zero transactions");
    if (p.txns > 0) {
        r.cyclesPerTxn = static_cast<double>(p.elapsed) *
                         static_cast<double>(num_cpus) /
                         static_cast<double>(p.txns);
    }
    r.mem = simn.memSystem().totalStats();
    r.os = simn.kernel().stats();
    r.cpu = simn.totalCpuStats();

    if (wantWindows) {
        const auto &recs = simn.completions();
        sim::Tick winStart = start;
        std::uint64_t inWin = 0;
        for (const auto &rec : recs) {
            if (rec.when < start)
                continue;
            ++inWin;
            if (inWin == run.windowTxns) {
                r.windows.push_back(
                    static_cast<double>(rec.when - winStart) *
                    static_cast<double>(num_cpus) /
                    static_cast<double>(inWin));
                winStart = rec.when;
                inWin = 0;
            }
        }
        (void)startTxns;
    }
    return r;
}

RunResult
runOnce(const SystemConfig &sys, const workload::WorkloadParams &wl,
        const RunConfig &run)
{
    Simulation simn(sys, wl);
    simn.seedPerturbation(run.perturbSeed);
    return measure(simn, run, sys.numCpus());
}

RunResult
runFromCheckpoint(const SystemConfig &sys,
                  const workload::WorkloadParams &wl,
                  const Checkpoint &cp, const RunConfig &run)
{
    auto simn = Simulation::restore(sys, wl, cp);
    simn->seedPerturbation(run.perturbSeed);
    return measure(*simn, run, sys.numCpus());
}

} // namespace core
} // namespace varsim
