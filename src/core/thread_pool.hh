/**
 * @file
 * Persistent host-side worker pool for multi-run experiments.
 *
 * The experiment driver used to spawn and join a fresh set of host
 * threads for every runMany() call; sweeps that call it in a loop
 * (every CLI experiment, every ablation) paid thread creation and
 * teardown per configuration. This pool keeps the workers alive for
 * the lifetime of the process and hands them batches of indexed
 * jobs.
 *
 * Semantics:
 *  - parallelFor(n, max_workers, job) runs job(0..n-1), using at
 *    most max_workers host threads (0 = hardware concurrency). The
 *    calling thread participates, so only max_workers-1 pool
 *    threads are enlisted and a single-worker batch runs inline
 *    with no synchronization at all.
 *  - Job order across threads is unspecified; callers must key
 *    results by index (all of core/experiment does).
 *  - If any job throws, the first captured exception is rethrown on
 *    the calling thread after the batch drains; remaining unclaimed
 *    indices are cancelled (in-flight jobs still complete). The
 *    pool stays usable after a throwing batch.
 *  - Batches are serialized: concurrent parallelFor calls from
 *    different threads queue behind each other. Jobs must not call
 *    parallelFor re-entrantly.
 */

#ifndef VARSIM_CORE_THREAD_POOL_HH
#define VARSIM_CORE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace varsim
{
namespace core
{

class HostThreadPool
{
  public:
    /** The process-wide pool. */
    static HostThreadPool &instance();

    /**
     * Run @p job(i) for i in [0, n) on at most @p max_workers host
     * threads (0 = hardware concurrency). Returns when every claimed
     * job has finished; rethrows the first job exception.
     */
    void parallelFor(std::size_t n, std::size_t max_workers,
                     const std::function<void(std::size_t)> &job);

    /** Pool threads currently alive (tests/diagnostics). */
    std::size_t workerCount() const;

    ~HostThreadPool();

    HostThreadPool(const HostThreadPool &) = delete;
    HostThreadPool &operator=(const HostThreadPool &) = delete;

  private:
    HostThreadPool() = default;

    /** Grow the pool to @p count threads; requires mu held. */
    void ensureWorkers(std::size_t count);

    void workerMain();

    /** Claim indices until the batch is exhausted or cancelled. */
    void claimLoop(const std::function<void(std::size_t)> &job,
                   std::size_t count);

    /** Serializes whole batches (outermost lock). */
    std::mutex batchMu;

    /** Guards all state below. */
    mutable std::mutex mu;
    std::condition_variable newBatch;  ///< workers: batch published
    std::condition_variable batchDone; ///< caller: workers drained
    std::vector<std::thread> threads;
    bool shutdown = false;

    // Current batch (valid while jobCount != 0).
    std::uint64_t generation = 0;
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobCount = 0;
    std::size_t allowedJoiners = 0; ///< pool threads this batch may use
    std::size_t joiners = 0;        ///< pool threads that joined
    std::size_t activeWorkers = 0;  ///< pool threads inside claimLoop
    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
};

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_THREAD_POOL_HH
