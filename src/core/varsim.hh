/**
 * @file
 * Umbrella header: the varsim public API.
 *
 * Typical use:
 * @code
 *   using namespace varsim;
 *   core::SystemConfig sys;                 // the paper's target
 *   workload::WorkloadParams wl;            // OLTP by default
 *   core::RunConfig run{.warmupTxns = 100, .measureTxns = 200};
 *   auto results = core::runMany(sys, wl, run, {.numRuns = 20});
 *   auto report  = core::analyze(results);
 * @endcode
 */

#ifndef VARSIM_CORE_VARSIM_HH
#define VARSIM_CORE_VARSIM_HH

#include "core/analysis.hh"
#include "core/config.hh"
#include "core/experiment.hh"
#include "core/planner.hh"
#include "core/runner.hh"
#include "core/simulation.hh"
#include "stats/anova2.hh"
#include "stats/distributions.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

#endif // VARSIM_CORE_VARSIM_HH
