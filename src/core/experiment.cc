#include "core/experiment.hh"

#include <algorithm>
#include <functional>
#include <string>

#include "core/thread_pool.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace core
{

namespace
{

/**
 * Run @p job(i) for i in [0, n) on the persistent host pool,
 * results keyed by index so the outcome is independent of host
 * scheduling. Job exceptions rethrow on the calling thread.
 */
void
parallelFor(std::size_t n, std::size_t host_threads,
            const std::function<void(std::size_t)> &job)
{
    HostThreadPool::instance().parallelFor(n, host_threads, job);
}

} // anonymous namespace

void
ExperimentConfig::validate() const
{
    if (numRuns == 0)
        sim::fatal("ExperimentConfig::numRuns is 0: an experiment "
                   "must run at least one simulation");
    // Seeds are baseSeed + i for i in [0, numRuns); wraparound would
    // alias two runs onto one seed and silently destroy the "N
    // independent perturbed runs" premise.
    if (baseSeed > UINT64_MAX - (numRuns - 1))
        sim::fatal("experiment seed range [%llu, +%zu) wraps "
                   "around 2^64; lower baseSeed or numRuns",
                   static_cast<unsigned long long>(baseSeed),
                   numRuns);
}

std::vector<RunResult>
runMany(const SystemConfig &sys, const workload::WorkloadParams &wl,
        const RunConfig &run, const ExperimentConfig &exp)
{
    exp.validate();
    std::vector<RunResult> results(exp.numRuns);
    parallelFor(exp.numRuns, exp.hostThreads, [&](std::size_t i) {
        // Runs execute concurrently on host threads; the scope gives
        // every DPRINTF line this run emits a run identity.
        sim::trace::RunScope scope(sim::format("r%zu", i));
        RunConfig r = run;
        r.perturbSeed = exp.baseSeed + i;
        results[i] = runOnce(sys, wl, r);
    });
    return results;
}

std::vector<RunResult>
runManyFromCheckpoint(const SystemConfig &sys,
                      const workload::WorkloadParams &wl,
                      const Checkpoint &cp, const RunConfig &run,
                      const ExperimentConfig &exp)
{
    exp.validate();
    std::vector<RunResult> results(exp.numRuns);
    parallelFor(exp.numRuns, exp.hostThreads, [&](std::size_t i) {
        sim::trace::RunScope scope(sim::format("r%zu", i));
        RunConfig r = run;
        r.perturbSeed = exp.baseSeed + i;
        results[i] = runFromCheckpoint(sys, wl, cp, r);
    });
    return results;
}

std::vector<std::vector<RunResult>>
runManyBatch(const std::vector<ExperimentSpec> &specs)
{
    // Flatten every run of every experiment into one index space so
    // a sweep keeps all host threads busy across configuration
    // boundaries (no join barrier between configurations).
    std::vector<std::size_t> offsets(specs.size() + 1, 0);
    std::size_t hostThreads = 1;
    bool useHardware = false;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        specs[s].exp.validate();
        offsets[s + 1] = offsets[s] + specs[s].exp.numRuns;
        const std::size_t ht = specs[s].exp.hostThreads;
        // 0 means "hardware concurrency": let it dominate the max.
        useHardware |= ht == 0;
        hostThreads = std::max(hostThreads, ht);
    }
    if (useHardware)
        hostThreads = 0;

    std::vector<std::vector<RunResult>> results(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s)
        results[s].resize(specs[s].exp.numRuns);

    parallelFor(
        offsets.back(), hostThreads, [&](std::size_t flat) {
            const std::size_t s = static_cast<std::size_t>(
                std::upper_bound(offsets.begin(), offsets.end(),
                                 flat) -
                offsets.begin() - 1);
            const std::size_t i = flat - offsets[s];
            sim::trace::RunScope scope(sim::format("e%zu.r%zu", s, i));
            const ExperimentSpec &spec = specs[s];
            RunConfig r = spec.run;
            r.perturbSeed = spec.exp.baseSeed + i;
            results[s][i] = runOnce(spec.sys, spec.wl, r);
        });
    return results;
}

std::vector<double>
metricOf(const std::vector<RunResult> &results)
{
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto &r : results)
        xs.push_back(r.cyclesPerTxn);
    return xs;
}

std::vector<double>
metricOf(const std::vector<RunResult> &results,
         const std::string &name)
{
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto &r : results) {
        if (name == "cycles_per_txn") {
            xs.push_back(r.cyclesPerTxn);
            continue;
        }
        if (name == "runtime_ticks") {
            xs.push_back(static_cast<double>(r.runtimeTicks));
            continue;
        }
        if (name == "txns") {
            xs.push_back(static_cast<double>(r.txns));
            continue;
        }
        bool found = false;
        for (const auto &sv : r.stats) {
            if (sv.name == name) {
                xs.push_back(sv.value);
                found = true;
                break;
            }
        }
        if (!found)
            sim::fatal("metricOf: run has no metric named '%s'",
                       name.c_str());
    }
    return xs;
}

} // namespace core
} // namespace varsim
