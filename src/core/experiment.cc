#include "core/experiment.hh"

#include <atomic>
#include <functional>
#include <thread>

namespace varsim
{
namespace core
{

namespace
{

/**
 * Run @p jobs(i) for i in [0, n) on a pool of host threads, results
 * keyed by index so the outcome is independent of host scheduling.
 */
void
parallelFor(std::size_t n, std::size_t host_threads,
            const std::function<void(std::size_t)> &job)
{
    std::size_t workers = host_threads != 0
                              ? host_threads
                              : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = std::min(workers, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            job(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                job(i);
            }
        });
    }
    for (auto &t : pool)
        t.join();
}

} // anonymous namespace

std::vector<RunResult>
runMany(const SystemConfig &sys, const workload::WorkloadParams &wl,
        const RunConfig &run, const ExperimentConfig &exp)
{
    std::vector<RunResult> results(exp.numRuns);
    parallelFor(exp.numRuns, exp.hostThreads, [&](std::size_t i) {
        RunConfig r = run;
        r.perturbSeed = exp.baseSeed + i;
        results[i] = runOnce(sys, wl, r);
    });
    return results;
}

std::vector<RunResult>
runManyFromCheckpoint(const SystemConfig &sys,
                      const workload::WorkloadParams &wl,
                      const Checkpoint &cp, const RunConfig &run,
                      const ExperimentConfig &exp)
{
    std::vector<RunResult> results(exp.numRuns);
    parallelFor(exp.numRuns, exp.hostThreads, [&](std::size_t i) {
        RunConfig r = run;
        r.perturbSeed = exp.baseSeed + i;
        results[i] = runFromCheckpoint(sys, wl, cp, r);
    });
    return results;
}

std::vector<double>
metricOf(const std::vector<RunResult> &results)
{
    std::vector<double> xs;
    xs.reserve(results.size());
    for (const auto &r : results)
        xs.push_back(r.cyclesPerTxn);
    return xs;
}

} // namespace core
} // namespace varsim
