#include "core/thread_pool.hh"

#include <algorithm>

namespace varsim
{
namespace core
{

HostThreadPool &
HostThreadPool::instance()
{
    static HostThreadPool pool;
    return pool;
}

HostThreadPool::~HostThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        shutdown = true;
    }
    newBatch.notify_all();
    for (std::thread &t : threads)
        t.join();
}

std::size_t
HostThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> lk(mu);
    return threads.size();
}

void
HostThreadPool::ensureWorkers(std::size_t count)
{
    while (threads.size() < count)
        threads.emplace_back([this] { workerMain(); });
}

void
HostThreadPool::parallelFor(
    std::size_t n, std::size_t max_workers,
    const std::function<void(std::size_t)> &fn)
{
    std::size_t workers = max_workers != 0
                              ? max_workers
                              : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = std::min(workers, n);
    if (workers <= 1) {
        // Inline: no pool traffic, exceptions propagate directly.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One batch at a time; later callers queue here.
    std::lock_guard<std::mutex> serial(batchMu);

    std::unique_lock<std::mutex> lk(mu);
    ensureWorkers(workers - 1);
    job = &fn;
    jobCount = n;
    allowedJoiners = workers - 1;
    joiners = 0;
    next.store(0, std::memory_order_relaxed);
    firstError = nullptr;
    ++generation;
    lk.unlock();
    newBatch.notify_all();

    // The caller is a full participant.
    claimLoop(fn, n);

    lk.lock();
    batchDone.wait(lk, [this] { return activeWorkers == 0; });
    job = nullptr;
    jobCount = 0;
    std::exception_ptr err = std::move(firstError);
    firstError = nullptr;
    lk.unlock();

    if (err)
        std::rethrow_exception(err);
}

void
HostThreadPool::claimLoop(const std::function<void(std::size_t)> &fn,
                          std::size_t count)
{
    while (true) {
        const std::size_t i =
            next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            return;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu);
            if (!firstError)
                firstError = std::current_exception();
            // Cancel unclaimed indices; in-flight jobs finish.
            next.store(count, std::memory_order_relaxed);
        }
    }
}

void
HostThreadPool::workerMain()
{
    std::unique_lock<std::mutex> lk(mu);
    std::uint64_t seen = 0;
    while (true) {
        newBatch.wait(lk, [&] {
            return shutdown || generation != seen;
        });
        if (shutdown)
            return;
        seen = generation;
        if (jobCount == 0 || joiners >= allowedJoiners)
            continue; // batch already drained or fully staffed
        ++joiners;
        ++activeWorkers;
        const std::function<void(std::size_t)> &fn = *job;
        const std::size_t count = jobCount;
        lk.unlock();
        claimLoop(fn, count);
        lk.lock();
        if (--activeWorkers == 0)
            batchDone.notify_all();
    }
}

} // namespace core
} // namespace varsim
