/**
 * @file
 * The target-system configuration: everything Section 3.2 of the
 * paper specifies, in one value type. Experiments compare
 * SystemConfigs that differ in exactly one knob (L2 associativity,
 * ROB size, DRAM latency, ...).
 */

#ifndef VARSIM_CORE_CONFIG_HH
#define VARSIM_CORE_CONFIG_HH

#include "cpu/base_cpu.hh"
#include "mem/config.hh"
#include "os/kernel.hh"
#include "sim/types.hh"

namespace varsim
{
namespace core
{

/**
 * The conservative lookahead Λ derived from the memory-system
 * latency constants: the fastest cross-domain interaction is an L1
 * miss answered by an L2 hit, which takes l2HitLatency ticks end to
 * end and crosses the domain boundary exactly twice (CPU→fabric
 * request, fabric→CPU response). Half of it is therefore the tightest
 * uniform per-hop latency that leaves the total unchanged.
 */
inline sim::Tick
derivedLookahead(const mem::MemConfig &m)
{
    const sim::Tick half = m.l2HitLatency / 2;
    return half > 0 ? half : 1;
}

/**
 * Intra-run parallelism knobs. Default-constructed means "off":
 * the simulation runs on the legacy single event queue, bit-exact
 * with every historical golden.
 */
struct ParallelConfig
{
    /** Sentinel: derive lookahead from the memory config. */
    static constexpr sim::Tick lookaheadAuto =
        static_cast<sim::Tick>(-1);

    /**
     * Host worker threads for the domained engine; 0 = legacy
     * single-queue engine. 1 runs the domained engine inline (the
     * determinism pin for higher counts).
     */
    std::size_t threads = 0;

    /** Conservative horizon Λ in ticks; lookaheadAuto derives it. */
    sim::Tick lookahead = lookaheadAuto;

    /**
     * Cap the worker count at the host's hardware concurrency.
     * Extra workers can never raise throughput (and results are
     * identical for every count), so the cap is on by default;
     * tests turn it off to exercise the real barrier machinery —
     * notably under ThreadSanitizer — even on small hosts.
     */
    bool clampThreadsToHost = true;

    /**
     * True if the domained engine is in play. An explicit
     * lookahead of 0 disables it even when threads were requested —
     * a zero horizon cannot make progress, so it falls back to the
     * legacy serial engine (see tests/core/test_parallel_golden.cc).
     */
    bool
    enabled() const
    {
        return threads > 0 && lookahead != 0;
    }

    /** The Λ actually used: explicit value or the derived one. */
    sim::Tick
    effectiveLookahead(const mem::MemConfig &m) const
    {
        return lookahead == lookaheadAuto ? derivedLookahead(m)
                                          : lookahead;
    }
};

struct SystemConfig
{
    mem::MemConfig mem;   ///< caches, coherence, DRAM, perturbation
    cpu::CpuConfig cpu;   ///< processor model and parameters
    os::OsConfig os;      ///< scheduler parameters

    /** Processors in the target (one per memory-system node). */
    std::size_t numCpus() const { return mem.numNodes; }

    /** The paper's baseline 16-processor E10000-like target. */
    static SystemConfig
    paperDefault()
    {
        return {};
    }

    /** A smaller 4-processor target, handy for unit tests. */
    static SystemConfig
    testDefault()
    {
        SystemConfig c;
        c.mem.numNodes = 4;
        c.mem.l2Size = 512 * 1024;
        c.mem.l1Size = 32 * 1024;
        return c;
    }
};

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_CONFIG_HH
