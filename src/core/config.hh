/**
 * @file
 * The target-system configuration: everything Section 3.2 of the
 * paper specifies, in one value type. Experiments compare
 * SystemConfigs that differ in exactly one knob (L2 associativity,
 * ROB size, DRAM latency, ...).
 */

#ifndef VARSIM_CORE_CONFIG_HH
#define VARSIM_CORE_CONFIG_HH

#include "cpu/base_cpu.hh"
#include "mem/config.hh"
#include "os/kernel.hh"

namespace varsim
{
namespace core
{

struct SystemConfig
{
    mem::MemConfig mem;   ///< caches, coherence, DRAM, perturbation
    cpu::CpuConfig cpu;   ///< processor model and parameters
    os::OsConfig os;      ///< scheduler parameters

    /** Processors in the target (one per memory-system node). */
    std::size_t numCpus() const { return mem.numNodes; }

    /** The paper's baseline 16-processor E10000-like target. */
    static SystemConfig
    paperDefault()
    {
        return {};
    }

    /** A smaller 4-processor target, handy for unit tests. */
    static SystemConfig
    testDefault()
    {
        SystemConfig c;
        c.mem.numNodes = 4;
        c.mem.l2Size = 512 * 1024;
        c.mem.l1Size = 32 * 1024;
        return c;
    }
};

} // namespace core
} // namespace varsim

#endif // VARSIM_CORE_CONFIG_HH
