/**
 * @file
 * The campaign-spec construction surface shared by every front end.
 *
 * A campaign arrives as *fields* — base configuration knobs, a list
 * of `--vary knob=v1,v2` grid axes, workload and stopping-rule
 * parameters — from two directions: the `varsim campaign` CLI flags
 * and the `varsim serve` submission schema over a socket. Both must
 * produce bit-identical CampaignSpecs (the daemon's contract is that
 * a served campaign's results equal the CLI's), so the translation
 * lives here once, and both callers use it.
 *
 * Everything validates non-fatally: the daemon must reject a bad
 * submission with an error message, not exit. The CLI wraps the
 * error in sim::fatal itself.
 */

#ifndef VARSIM_CAMPAIGN_KNOBS_HH
#define VARSIM_CAMPAIGN_KNOBS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/spec.hh"

namespace varsim
{
namespace campaign
{

/**
 * Apply one configuration knob ("l2-assoc", "model", ...) to @p sys.
 * Returns false and sets @p err on an unknown knob or a bad value.
 * The knob set is the `--vary` vocabulary; "cpus" is additionally
 * accepted for base configurations.
 */
bool applyKnob(core::SystemConfig &sys, const std::string &knob,
               const std::string &value, std::string *err);

/**
 * Split one "knob=v1,v2,v3" axis description. Returns false and
 * sets @p err on a malformed axis (no '=', no values).
 */
bool parseVary(const std::string &arg, std::string &knob,
               std::vector<std::string> &values, std::string *err);

/**
 * Expand @p varyAxes ("knob=v1,v2" strings, cartesian) over @p base
 * into named configuration variants, exactly as the CLI's --vary
 * flags do. With no axes the grid is the single "base" variant.
 */
bool buildConfigGrid(const core::SystemConfig &base,
                     const std::vector<std::string> &varyAxes,
                     std::vector<ConfigVariant> &out,
                     std::string *err);

/**
 * Everything that determines a campaign spec, in the raw form the
 * CLI flags and the submission schema carry it. Defaults equal the
 * CLI defaults, so an empty SpecFields is `varsim campaign run`
 * with no flags.
 */
struct SpecFields
{
    /**
     * Base-configuration knobs the submitter set, knob name to value
     * string ("l2-assoc" -> "4"). Accepts the --vary vocabulary plus
     * "cpus". Applied to the default SystemConfig in name order.
     */
    std::map<std::string, std::string> base;

    /** Grid axes, each "knob=v1,v2,..." (cartesian expansion). */
    std::vector<std::string> vary;

    std::string workload = "oltp";
    std::uint64_t workloadSeed = 12345;
    std::uint64_t threadsPerCpu = 0;

    std::uint64_t warmupTxns = 100;
    std::uint64_t measureTxns = 0; ///< 0 = workload default

    /** Intra-run domained-engine workers (0 = serial engine). */
    std::uint64_t intraThreads = 0;

    /** Conservative lookahead in ticks; negative = derived. */
    std::int64_t lookahead = -1;

    /** Sampling spec "design:U:W:M[:conf]"; empty = full detail. */
    std::string sample;
    std::uint64_t sampleOffsetSeed = 12345;

    std::uint64_t baseSeed = 1000;
    std::uint64_t numCheckpoints = 0;
    std::uint64_t checkpointStep = 400;
    std::string strategy = "systematic";

    std::uint64_t fixedRuns = 0;
    std::uint64_t pilotRuns = 6;
    std::uint64_t maxRuns = 32;
    double relativeError = 0.02;

    /** Negative = automatic (0.05 with >= 2 configs, else off). */
    double alpha = -1.0;
    double confidence = 0.95;
    std::uint64_t budgetTxns = 0;
};

/**
 * Translate @p fields into a validated CampaignSpec. Returns false
 * and sets @p err on any bad field; @p out is untouched on failure.
 */
bool buildSpec(const SpecFields &fields, CampaignSpec &out,
               std::string *err);

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_KNOBS_HH
