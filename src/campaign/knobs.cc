#include "campaign/knobs.hh"

#include <cctype>
#include <cstdlib>

#include "sim/logging.hh"

namespace varsim
{
namespace campaign
{

namespace
{

bool
fail(std::string *err, std::string msg)
{
    if (err)
        *err = std::move(msg);
    return false;
}

/**
 * Workload-name lookup that reports instead of exiting (the
 * daemon-facing twin of workload::kindFromName, which fatals).
 */
bool
workloadFromName(const std::string &name,
                 workload::WorkloadKind &out)
{
    static const std::pair<const char *, workload::WorkloadKind>
        kinds[] = {
            {"oltp", workload::WorkloadKind::Oltp},
            {"apache", workload::WorkloadKind::Apache},
            {"specjbb", workload::WorkloadKind::SpecJbb},
            {"jbb", workload::WorkloadKind::SpecJbb},
            {"slashcode", workload::WorkloadKind::Slashcode},
            {"ecperf", workload::WorkloadKind::EcPerf},
            {"barnes", workload::WorkloadKind::Barnes},
            {"ocean", workload::WorkloadKind::Ocean},
        };
    std::string lower = name;
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    for (const auto &kv : kinds) {
        if (lower == kv.first) {
            out = kv.second;
            return true;
        }
    }
    return false;
}

} // anonymous namespace

bool
applyKnob(core::SystemConfig &sys, const std::string &knob,
          const std::string &value, std::string *err)
{
    auto n = [&] {
        return std::strtoull(value.c_str(), nullptr, 10);
    };
    if (knob == "cpus") {
        sys.mem.numNodes = n();
    } else if (knob == "l2-assoc") {
        sys.mem.l2Assoc = n();
    } else if (knob == "l2-size") {
        sys.mem.l2Size = n();
    } else if (knob == "dram") {
        sys.mem.dramLatency = n();
    } else if (knob == "perturb") {
        sys.mem.perturbMaxNs = n();
    } else if (knob == "rob") {
        sys.cpu.robEntries = static_cast<std::uint32_t>(n());
    } else if (knob == "quantum") {
        sys.os.quantum = n();
    } else if (knob == "model") {
        if (value == "ooo")
            sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
        else if (value == "simple")
            sys.cpu.model = cpu::CpuConfig::Model::Simple;
        else
            return fail(err, "unknown CPU model '" + value +
                                 "' (simple, ooo)");
    } else if (knob == "protocol") {
        if (value == "directory")
            sys.mem.protocol = mem::CoherenceProtocol::Directory;
        else if (value == "snooping")
            sys.mem.protocol = mem::CoherenceProtocol::Snooping;
        else
            return fail(err, "unknown protocol '" + value +
                                 "' (snooping, directory)");
    } else if (knob == "prefetch") {
        if (value != "on" && value != "off")
            return fail(err, "prefetch wants on|off, got '" +
                                 value + "'");
        sys.mem.l2NextLinePrefetch = value == "on";
    } else {
        return fail(err, "unknown configuration knob '" + knob +
                             "' (cpus l2-assoc l2-size dram perturb "
                             "rob quantum model protocol prefetch)");
    }
    return true;
}

bool
parseVary(const std::string &arg, std::string &knob,
          std::vector<std::string> &values, std::string *err)
{
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size())
        return fail(err, "vary axis wants knob=v1,v2,... (got '" +
                             arg + "')");
    knob = arg.substr(0, eq);
    values.clear();
    const std::string rest = arg.substr(eq + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        const auto comma = rest.find(',', pos);
        const auto end =
            comma == std::string::npos ? rest.size() : comma;
        if (end > pos)
            values.push_back(rest.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (values.empty())
        return fail(err, "vary axis '" + knob + "' has no values");
    return true;
}

bool
buildConfigGrid(const core::SystemConfig &base,
                const std::vector<std::string> &varyAxes,
                std::vector<ConfigVariant> &out, std::string *err)
{
    std::vector<ConfigVariant> grid = {{"base", base}};
    for (const std::string &axis : varyAxes) {
        std::string knob;
        std::vector<std::string> values;
        if (!parseVary(axis, knob, values, err))
            return false;
        if (knob == "cpus")
            return fail(err, "cpus cannot be a vary axis (the "
                             "workload geometry is part of the "
                             "campaign identity); submit separate "
                             "campaigns instead");
        std::vector<ConfigVariant> next;
        for (const auto &cv : grid) {
            for (const std::string &v : values) {
                ConfigVariant variant = cv;
                if (!applyKnob(variant.sys, knob, v, err))
                    return false;
                variant.name = cv.name == "base"
                                   ? knob + "=" + v
                                   : cv.name + "," + knob + "=" + v;
                next.push_back(variant);
            }
        }
        grid = std::move(next);
    }
    out = std::move(grid);
    return true;
}

bool
buildSpec(const SpecFields &fields, CampaignSpec &out,
          std::string *err)
{
    CampaignSpec spec;

    core::SystemConfig base;
    for (const auto &kv : fields.base)
        if (!applyKnob(base, kv.first, kv.second, err))
            return false;
    if (!buildConfigGrid(base, fields.vary, spec.configs, err))
        return false;

    if (!workloadFromName(fields.workload, spec.wl.kind))
        return fail(err, "unknown workload '" + fields.workload +
                             "' (oltp apache specjbb slashcode "
                             "ecperf barnes ocean)");
    spec.wl.seed = fields.workloadSeed;
    spec.wl.threadsPerCpu = fields.threadsPerCpu;

    spec.run.warmupTxns = fields.warmupTxns;
    spec.run.measureTxns = fields.measureTxns;
    spec.run.par.threads = fields.intraThreads;
    if (fields.lookahead >= 0)
        spec.run.par.lookahead =
            static_cast<sim::Tick>(fields.lookahead);
    if (!fields.sample.empty() &&
        !core::SampleConfig::parse(fields.sample, spec.run.sample))
        return fail(err, "bad sample spec '" + fields.sample +
                             "' (want design:U:W:M[:conf] with "
                             "design systematic|stratified|"
                             "matched)");
    spec.run.sample.offsetSeed = fields.sampleOffsetSeed;

    spec.baseSeed = fields.baseSeed;
    spec.numCheckpoints = fields.numCheckpoints;
    spec.checkpointStep = fields.checkpointStep;
    if (fields.strategy == "systematic")
        spec.strategy = core::SamplingStrategy::Systematic;
    else if (fields.strategy == "random")
        spec.strategy = core::SamplingStrategy::Random;
    else if (fields.strategy == "stratified")
        spec.strategy = core::SamplingStrategy::Stratified;
    else
        return fail(err, "unknown strategy '" + fields.strategy +
                             "' (systematic, random, stratified)");

    spec.stop.fixedRuns = fields.fixedRuns;
    spec.stop.pilotRuns = fields.pilotRuns;
    spec.stop.maxRuns = fields.maxRuns;
    spec.stop.relativeError = fields.relativeError;
    spec.stop.alpha = fields.alpha >= 0.0
                          ? fields.alpha
                          : (spec.configs.size() >= 2 ? 0.05 : 0.0);
    spec.stop.confidence = fields.confidence;
    spec.budgetTxns = fields.budgetTxns;

    std::string why;
    if (!spec.check(&why))
        return fail(err, std::move(why));
    out = std::move(spec);
    return true;
}

} // namespace campaign
} // namespace varsim
