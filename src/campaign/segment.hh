/**
 * @file
 * The compacted binary result-segment format.
 *
 * A segment holds every run record of a campaign store at the moment
 * of compaction, in one checksummed, length-framed, mmap-able file —
 * the same container conventions as the checkpoint archives in
 * src/ckpt/archive.hh (little-endian fixed-width integers, trailing
 * whole-file FNV-1a 64 checksum, parse-never-aborts). Layout:
 *
 *     offset  size  field
 *     0       8     magic "VSIMSEG1"
 *     8       4     format version (currently 1)
 *     12      4     dictionary entry count D
 *     16      8     run record count R
 *     24      8     group summary count G
 *     32      ...   dictionary: D x { u32 length, bytes } metric
 *                   names, sorted, unique
 *     ...           records: R x {
 *                     u64 group, u64 run, u64 config, u64 ckpt,
 *                     u64 seed, u64 cycles_per_txn (double bits),
 *                     u64 runtime_ticks, u64 txns,
 *                     u32 metric count M,
 *                     M x { u32 dict index, u64 value (double
 *                     bits) } sorted by dict index
 *                   } sorted by (group, run), strictly increasing
 *     ...           summaries: G x { u64 group, u64 count,
 *                     u64 mean, u64 m2, u64 min, u64 max (double
 *                     bits) } — the canonical streaming fold
 *                     snapshot, sorted by group
 *     end-8   8     FNV-1a 64 checksum over every preceding byte
 *
 * Metric doubles travel as raw IEEE-754 bits, so a segment round
 * trip is bit-exact by construction (the JSONL journal achieves the
 * same through %.17g). The per-segment dictionary makes a record's
 * metric list an array of (u32, u64) pairs instead of repeated name
 * strings — the dominant space and parse cost of large journals.
 *
 * Truncation and bit flips are rejected with a description, not
 * misread: every frame is bounds-checked, record keys must strictly
 * increase, dictionary references must resolve, the declared frames
 * must exactly tile the file, and the trailing checksum must match.
 */

#ifndef VARSIM_CAMPAIGN_SEGMENT_HH
#define VARSIM_CAMPAIGN_SEGMENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/store.hh"

namespace varsim
{
namespace campaign
{

constexpr std::uint32_t kSegmentVersion = 1;

/**
 * Serialize @p records (must be sorted by (group, run), unique) and
 * the canonical per-group summaries into segment bytes.
 */
std::vector<std::uint8_t>
buildSegment(const std::vector<RunRecord> &records,
             const std::map<std::size_t, GroupSummary> &summaries);

/**
 * A parsed, validated segment. Read-only and immutable: accessors
 * read straight out of the backing bytes (an mmap'd file or an
 * owned buffer), so holding a view costs index + dictionary memory,
 * not a copy of the records.
 */
class SegmentView
{
  public:
    /** Handle to one record inside the view. */
    struct Ref
    {
        std::size_t idx = SIZE_MAX;
        bool valid() const { return idx != SIZE_MAX; }
    };

    std::size_t runCount() const { return index.size(); }

    /** Recorded runs of @p group (any run indices). */
    std::size_t runsInGroup(std::size_t group) const;

    /** Locate (group, run); !valid() when absent. */
    Ref find(std::size_t group, std::size_t run) const;

    double cyclesPerTxn(Ref r) const;
    std::uint64_t runtimeTicks(Ref r) const;
    std::uint64_t txns(Ref r) const;

    /** Full record, metric names resolved through the dictionary. */
    RunRecord materialize(Ref r) const;

    /**
     * Dictionary index of @p name, or -1. Resolve once per walk,
     * then look values up by index.
     */
    int dictIndex(const std::string &name) const;

    /** Value of dictionary metric @p dictIdx in record @p r. */
    bool metricValue(Ref r, std::uint32_t dictIdx,
                     double *out) const;

    /** Sorted unique metric names the segment's records carry. */
    const std::vector<std::string> &dictionary() const
    {
        return dict;
    }

    /** Canonical streaming-summary snapshot taken at compaction. */
    const std::map<std::size_t, GroupSummary> &summaries() const
    {
        return sums;
    }

    /** The trailing whole-file checksum (manifest cross-check). */
    std::uint64_t checksum() const { return fnv; }

    /** Total size of the backing bytes. */
    std::size_t bytes() const { return size_; }

    ~SegmentView();

    SegmentView(const SegmentView &) = delete;
    SegmentView &operator=(const SegmentView &) = delete;

  private:
    SegmentView() = default;

    friend struct SegmentParser;

    struct Entry
    {
        std::uint64_t group;
        std::uint64_t run;
        std::size_t offset; ///< record start within the bytes
    };

    const std::uint8_t *base = nullptr;
    std::size_t size_ = 0;
    void *mapping = nullptr;         ///< munmap'd when set
    std::size_t mappingLen = 0;
    std::vector<std::uint8_t> owned; ///< backing when not mapped

    std::vector<std::string> dict;
    std::vector<Entry> index; ///< sorted by (group, run)
    std::map<std::size_t, GroupSummary> sums;
    std::uint64_t fnv = 0;
};

/** Outcome of loading a segment; never aborts on damage. */
struct SegmentLoad
{
    bool ok = false;

    /** Human-readable reason when !ok. */
    std::string error;

    std::shared_ptr<SegmentView> view;
};

/**
 * Validate and index @p bytes (the view takes ownership). Tests and
 * the damage sweeps use this direct form.
 */
SegmentLoad parseSegment(std::vector<std::uint8_t> bytes);

/**
 * mmap (falling back to a plain read) and parse @p path. I/O errors
 * land in SegmentLoad.
 */
SegmentLoad loadSegmentFile(const std::string &path);

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_SEGMENT_HH
