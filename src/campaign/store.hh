/**
 * @file
 * Durable, append-only result store for campaigns.
 *
 * One directory per campaign holding a single `manifest.jsonl`:
 * a header record identifying the spec, an optional budget-plan
 * record, and one record per completed run. Appends are single
 * `write(2)` calls followed by `fsync(2)`, so a record is either
 * fully on disk or absent; replay on open tolerates a torn final
 * line (the signature of a crash mid-append) by discarding it.
 *
 * The store is the campaign's only authority on what has already
 * happened: the scheduler asks it which (group, run) cells exist and
 * schedules only the rest, which is what makes kill-and-resume free
 * of duplicated work, and the aggregate statistics are computed from
 * replayed records (metric doubles round-trip %.17g exactly), which
 * is what makes a resumed campaign's statistics bit-identical to an
 * uninterrupted one's.
 */

#ifndef VARSIM_CAMPAIGN_STORE_HH
#define VARSIM_CAMPAIGN_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace varsim
{
namespace campaign
{

/** Identity record written when a store is created. */
struct StoreHeader
{
    int version = 1;
    std::uint64_t fingerprint = 0;
    std::size_t numGroups = 0;
    std::size_t numCheckpoints = 0; ///< 0 = fresh-start campaign
    std::string workload;
    std::vector<std::string> configNames;
};

/** One completed run of one cell. */
struct RunRecord
{
    std::size_t group = 0;
    std::size_t configIdx = 0;
    std::size_t ckptIdx = 0;
    std::size_t runIdx = 0;
    std::uint64_t seed = 0;
    double cyclesPerTxn = 0.0;
    std::uint64_t runtimeTicks = 0;
    std::uint64_t txns = 0;

    /**
     * The run's full metrics-registry dump (name, value), in
     * registration order. Persisted as a companion "metrics" record
     * so pre-existing manifests (and older readers) still parse the
     * unchanged "run" record.
     */
    std::vector<std::pair<std::string, double>> metrics;
};

/** The budget planner's recorded decision (empty until planned). */
struct PlanRecord
{
    bool valid = false;
    std::uint64_t runLength = 0;
    std::size_t numRuns = 0;
};

/**
 * Checkpoint-library traffic of a campaign invocation. Appended once
 * per invocation that used a library; on replay the latest record
 * wins, so status always shows the most recent run's hit/miss split.
 */
struct CkptStatsRecord
{
    bool valid = false;

    /** Library directory the campaign consulted. */
    std::string dir;

    /** Warm-up checkpoints restored from disk (library hits). */
    std::size_t restored = 0;

    /** Warm-up checkpoints built by re-simulation (misses). */
    std::size_t warmed = 0;

    /** Library size after the invocation. */
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
};

class ResultStore
{
  public:
    /**
     * Open @p dir, creating directory and manifest (with @p header)
     * if absent. When the manifest exists, its header must match
     * @p header's fingerprint — resuming under a different spec is
     * a user error (fatal).
     *
     * Writable opens take an exclusive advisory flock(2) on the
     * manifest for the life of the store, so a daemon and a stray
     * `varsim campaign run` pointed at the same directory fail fast
     * with a clear message instead of interleaving appends.
     */
    static std::unique_ptr<ResultStore>
    openOrCreate(const std::string &dir, const StoreHeader &header);

    /**
     * Non-fatal openOrCreate(): nullptr with @p err set when the
     * store is locked by another process, was created for a
     * different fingerprint, or cannot be created. The daemon opens
     * campaign stores with this so a bad submission is an error
     * reply, not an exit.
     */
    static std::unique_ptr<ResultStore>
    tryOpenOrCreate(const std::string &dir,
                    const StoreHeader &header, std::string *err);

    /** Open an existing store read-write (locked); fatal if absent. */
    static std::unique_ptr<ResultStore>
    open(const std::string &dir);

    /**
     * Open an existing store for reading only: no write lock, no
     * torn-tail truncation (a torn final line is dropped from the
     * replay but left on disk for the writer to repair). Status and
     * report paths use this so they work while a daemon or campaign
     * process holds the write lock.
     */
    static std::unique_ptr<ResultStore>
    openReadOnly(const std::string &dir);

    const StoreHeader &header() const { return header_; }
    const std::string &directory() const { return dir_; }

    /** True if (group, runIdx) already has a recorded run. */
    bool hasRun(std::size_t group, std::size_t runIdx) const;

    /** Recorded runs of @p group (any run indices). */
    std::size_t runsInGroup(std::size_t group) const;

    /** All recorded runs. */
    std::size_t totalRuns() const;

    /**
     * Metric values of @p group ordered by run index. Only the
     * contiguous prefix starting at run 0 is returned: a gap (a run
     * another shard has not recorded yet) ends the sequence, so
     * every consumer sees a deterministic prefix of the group's
     * seed sequence.
     */
    std::vector<double> groupMetric(std::size_t group) const;

    /** Full records of @p group's contiguous prefix, by run index. */
    std::vector<RunRecord> groupRuns(std::size_t group) const;

    /**
     * Values of metric @p name over @p group's contiguous prefix.
     * @p name is a built-in run metric ("cycles_per_txn",
     * "runtime_ticks", "txns") or any registry metric stored with the
     * runs. The sequence stops at the first run lacking the metric
     * (e.g. runs recorded before the metric existed).
     */
    std::vector<double> groupMetricNamed(std::size_t group,
                                         const std::string &name) const;

    /**
     * Sorted union of every metric name any recorded run carries,
     * built-ins first.
     */
    std::vector<std::string> metricNames() const;

    /**
     * Durably append one run record (thread-safe). A duplicate
     * (group, runIdx) — possible when two shards of the same index
     * race — keeps the first record and drops this one.
     */
    void appendRun(const RunRecord &rec);

    const PlanRecord &plan() const { return plan_; }

    /** Durably record the budget plan (once per store). */
    void appendPlan(const PlanRecord &plan);

    /** Latest checkpoint-library statistics (invalid when unused). */
    const CkptStatsRecord &ckptStats() const { return ckpt_; }

    /** Durably record a checkpoint-library statistics snapshot. */
    void appendCkptStats(const CkptStatsRecord &rec);

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

  private:
    ResultStore() = default;

    /** Replay manifest lines into the in-memory index. */
    void replay(const std::string &path);

    /** Write one line + '\n' with fsync; requires mu held. */
    void appendLine(const std::string &line);

    std::string dir_;
    int fd = -1;
    StoreHeader header_;
    PlanRecord plan_;
    CkptStatsRecord ckpt_;

    mutable std::mutex mu;
    std::map<std::pair<std::size_t, std::size_t>, RunRecord> runs;
};

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_STORE_HH
