/**
 * @file
 * Durable result store for campaigns: an append-only JSONL journal
 * plus optional compacted binary segments.
 *
 * One directory per campaign. `manifest.jsonl` is the journal: a
 * header record identifying the spec, an optional budget-plan
 * record, and one record per completed run. Appends are single
 * `write(2)` calls followed by `fsync(2)`, so a record is either
 * fully on disk or absent; replay on open tolerates a torn final
 * line (the signature of a crash mid-append) by discarding it.
 *
 * Replaying a large journal re-parses every record, which makes the
 * open cost of `status`/`report`/resume O(campaign size). compact()
 * fixes that: it folds every recorded run into one checksummed
 * binary segment under `segments/` (see campaign/segment.hh), then
 * atomically rewrites the manifest to a header + one "segment"
 * reference record. Open cost becomes proportional to the
 * un-compacted JSONL *tail* — the appends since the last compaction
 * — while the JSONL journal remains the interchange format
 * (exportJsonl() re-emits any store, compacted or not, as pure
 * JSONL). Compaction is observationally a no-op: a compacted store
 * replays to the same records, the same reports, and the same
 * resume decisions as its pure-JSONL twin.
 *
 * The store is the campaign's only authority on what has already
 * happened: the scheduler asks it which (group, run) cells exist and
 * schedules only the rest, which is what makes kill-and-resume free
 * of duplicated work, and the aggregate statistics are computed from
 * replayed records (metric doubles round-trip %.17g in the journal
 * and as raw bits in segments), which is what makes a resumed
 * campaign's statistics bit-identical to an uninterrupted one's.
 *
 * Streaming aggregation: the store maintains one Welford summary per
 * group, always folded in canonical order (ascending run index over
 * the group's contiguous prefix) regardless of the order appends
 * arrive in, so the summary of a given set of records is
 * bit-deterministic. Compaction snapshots the summaries into the
 * segment footer; open restores them and folds only the tail.
 */

#ifndef VARSIM_CAMPAIGN_STORE_HH
#define VARSIM_CAMPAIGN_STORE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace varsim
{

namespace sim
{
class JsonLine;
}

namespace campaign
{

class SegmentView; // campaign/segment.hh

/** Identity record written when a store is created. */
struct StoreHeader
{
    /**
     * Manifest format version. 1 = pure JSONL journal; 2 = journal
     * that may reference compacted binary segments. Replay accepts
     * both and rejects anything newer with a clear message.
     */
    int version = 1;
    std::uint64_t fingerprint = 0;
    std::size_t numGroups = 0;
    std::size_t numCheckpoints = 0; ///< 0 = fresh-start campaign
    std::string workload;
    std::vector<std::string> configNames;
};

/** One completed run of one cell. */
struct RunRecord
{
    std::size_t group = 0;
    std::size_t configIdx = 0;
    std::size_t ckptIdx = 0;
    std::size_t runIdx = 0;
    std::uint64_t seed = 0;
    double cyclesPerTxn = 0.0;
    std::uint64_t runtimeTicks = 0;
    std::uint64_t txns = 0;

    /**
     * The run's full metrics-registry dump (name, value). Persisted
     * as a companion "metrics" record so pre-existing manifests (and
     * older readers) still parse the unchanged "run" record. Order
     * is registration order when freshly appended and name order
     * after a replay or compaction; every consumer looks metrics up
     * by name, so the order is not part of the contract.
     */
    std::vector<std::pair<std::string, double>> metrics;
};

/** The budget planner's recorded decision (empty until planned). */
struct PlanRecord
{
    bool valid = false;
    std::uint64_t runLength = 0;
    std::size_t numRuns = 0;
};

/**
 * Checkpoint-library traffic of a campaign invocation. Appended once
 * per invocation that used a library; on replay the latest record
 * wins, so status always shows the most recent run's hit/miss split.
 */
struct CkptStatsRecord
{
    bool valid = false;

    /** Library directory the campaign consulted. */
    std::string dir;

    /** Warm-up checkpoints restored from disk (library hits). */
    std::size_t restored = 0;

    /** Warm-up checkpoints built by re-simulation (misses). */
    std::size_t warmed = 0;

    /** Library size after the invocation. */
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
};

/**
 * Streaming (Welford) summary of one group's primary metric over its
 * contiguous run-index prefix. Folds happen in exactly one order —
 * ascending run index, gaps deferred until filled — so a summary is
 * a bit-deterministic function of the records it covers, no matter
 * how appends, replays, and compactions interleave.
 */
struct GroupSummary
{
    /** Runs folded so far == the group's contiguous-prefix length. */
    std::uint64_t count = 0;

    double mean = 0.0;
    double m2 = 0.0; ///< sum of squared deviations from the mean
    double minValue = 0.0;
    double maxValue = 0.0;

    /** Fold the next prefix value (must be run index == count). */
    void fold(double x);

    /** Sample standard deviation (0 when count < 2). */
    double stddev() const;
};

class ResultStore
{
  public:
    /**
     * Open @p dir, creating directory and manifest (with @p header)
     * if absent. When the manifest exists, its header must match
     * @p header's fingerprint — resuming under a different spec is
     * a user error (fatal).
     *
     * Writable opens take an exclusive advisory flock(2) on a
     * dedicated `.lock` file in the store directory for the life of
     * the store, so a daemon and a stray `varsim campaign run`
     * pointed at the same directory fail fast with a clear message
     * instead of interleaving appends. (The lock cannot live on the
     * manifest itself: compaction replaces the manifest by
     * rename(2), which would strand a manifest-fd lock on the old
     * inode.)
     */
    static std::unique_ptr<ResultStore>
    openOrCreate(const std::string &dir, const StoreHeader &header);

    /**
     * Non-fatal openOrCreate(): nullptr with @p err set when the
     * store is locked by another process, was created for a
     * different fingerprint, or cannot be created. The daemon opens
     * campaign stores with this so a bad submission is an error
     * reply, not an exit.
     */
    static std::unique_ptr<ResultStore>
    tryOpenOrCreate(const std::string &dir,
                    const StoreHeader &header, std::string *err);

    /** Open an existing store read-write (locked); fatal if absent. */
    static std::unique_ptr<ResultStore>
    open(const std::string &dir);

    /**
     * Open an existing store for reading only: no write lock, no
     * torn-tail truncation (a torn final line is dropped from the
     * replay but left on disk — it may simply be a live writer's
     * append in progress). Status and report paths use this so they
     * work while a daemon or campaign process holds the write lock.
     */
    static std::unique_ptr<ResultStore>
    openReadOnly(const std::string &dir);

    const StoreHeader &header() const { return header_; }
    const std::string &directory() const { return dir_; }

    /** True if (group, runIdx) already has a recorded run. */
    bool hasRun(std::size_t group, std::size_t runIdx) const;

    /** Recorded runs of @p group (any run indices). */
    std::size_t runsInGroup(std::size_t group) const;

    /** All recorded runs. */
    std::size_t totalRuns() const;

    /**
     * Metric values of @p group ordered by run index. Only the
     * contiguous prefix starting at run 0 is returned: a gap (a run
     * another shard has not recorded yet) ends the sequence, so
     * every consumer sees a deterministic prefix of the group's
     * seed sequence. @p maxRuns caps the prefix — the stopping
     * controller only ever reads the pilot, so it passes the pilot
     * size and stops paying O(recorded runs) per decision.
     */
    std::vector<double>
    groupMetric(std::size_t group,
                std::size_t maxRuns = SIZE_MAX) const;

    /** Full records of @p group's contiguous prefix, by run index. */
    std::vector<RunRecord> groupRuns(std::size_t group) const;

    /**
     * Values of metric @p name over @p group's contiguous prefix,
     * capped at @p maxRuns. @p name is a built-in run metric
     * ("cycles_per_txn", "runtime_ticks", "txns") or any registry
     * metric stored with the runs. The sequence stops at the first
     * run lacking the metric (e.g. runs recorded before the metric
     * existed).
     */
    std::vector<double>
    groupMetricNamed(std::size_t group, const std::string &name,
                     std::size_t maxRuns = SIZE_MAX) const;

    /**
     * Sorted union of every metric name any recorded run carries,
     * built-ins first.
     */
    std::vector<std::string> metricNames() const;

    /**
     * Streaming summary of @p group's primary metric over its
     * contiguous prefix; O(1), maintained at append and compaction
     * time. count == groupMetric(group).size() always.
     */
    GroupSummary groupSummary(std::size_t group) const;

    /** Length of @p group's contiguous run prefix; O(1). */
    std::size_t prefixLength(std::size_t group) const;

    /** Compacted segments currently referenced by the manifest. */
    std::size_t segmentCount() const;

    /** Runs living in compacted segments. */
    std::size_t segmentRunCount() const;

    /** Runs living in the JSONL journal tail (not yet compacted). */
    std::size_t tailRunCount() const;

    /**
     * Durably append one run record (thread-safe). A duplicate
     * (group, runIdx) — possible when two shards of the same index
     * race — keeps the first record and drops this one. May trigger
     * an automatic compaction when the journal tail crosses the
     * VARSIM_STORE_COMPACT_TAIL threshold (default 8192 runs;
     * 0 disables).
     */
    void appendRun(const RunRecord &rec);

    const PlanRecord &plan() const { return plan_; }

    /** Durably record the budget plan (once per store). */
    void appendPlan(const PlanRecord &plan);

    /** Latest checkpoint-library statistics (invalid when unused). */
    const CkptStatsRecord &ckptStats() const { return ckpt_; }

    /** Durably record a checkpoint-library statistics snapshot. */
    void appendCkptStats(const CkptStatsRecord &rec);

    struct CompactResult
    {
        /** False when the store was already fully compacted. */
        bool performed = false;

        /** Runs in the segment the compaction wrote. */
        std::size_t runs = 0;

        /** Segment file, relative to the store directory. */
        std::string segmentFile;
    };

    /**
     * Fold every recorded run (segments + journal tail) into one new
     * binary segment and atomically rewrite the manifest to
     * reference it (writer only — fatal on a read-only store).
     *
     * Crash-safe by ordering: the segment is written and fsync'd
     * first, the manifest swap (temp + fsync + rename) second. A
     * crash between the two leaves the old manifest authoritative
     * and the new segment an unreferenced orphan that the next
     * compaction atomically overwrites; referenced segments are
     * never deleted, so a reader that replayed the old manifest can
     * always open the files it references.
     */
    CompactResult compact();

    /**
     * Re-emit the store as pure version-1 JSONL (header, plan,
     * checkpoint stats, then every run with its metrics companion,
     * sorted by (group, run)). This is the interchange guarantee:
     * any store, compacted or not, exports to a journal that any
     * version-1 reader replays to the same records.
     */
    void exportJsonl(std::ostream &os) const;

    /** @name Manifest line builders
     * The single source of the journal's record formats, shared by
     * the append path, compaction, exportJsonl(), and the store
     * benchmarks (which synthesize large journals without paying an
     * fsync per record). @{ */
    static std::string headerLineFor(const StoreHeader &h);
    static std::string runLineFor(const RunRecord &r);
    static std::string metricsLineFor(const RunRecord &r);
    static std::string planLineFor(const PlanRecord &p);
    static std::string ckptStatsLineFor(const CkptStatsRecord &r);
    /** @} */

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

  private:
    ResultStore() = default;

    /** Replay manifest lines into the in-memory index. */
    void replay(const std::string &path);

    /** Load and verify one "segment" reference record. */
    void loadSegmentRecord(const sim::JsonLine &obj,
                           const std::string &path,
                           std::size_t lineNo);

    /** Write one line + '\n' with fsync; requires mu held. */
    void appendLine(const std::string &line);

    /** @name Accessor internals (require mu held) @{ */
    bool hasRunLocked(std::size_t g, std::size_t i) const;
    bool cptAtLocked(std::size_t g, std::size_t i, double *v) const;
    void advanceSummaryLocked(std::size_t g);
    void rebuildSummariesLocked();
    CompactResult compactLocked();
    void maybeAutoCompactLocked();
    std::vector<RunRecord> allRunsSortedLocked() const;
    /** @} */

    std::string dir_;
    int fd = -1;     ///< manifest append fd (-1: read-only)
    int lockFd = -1; ///< .lock fd holding the writer flock
    StoreHeader header_;
    PlanRecord plan_;
    CkptStatsRecord ckpt_;

    /** Auto-compaction tail threshold (runs); 0 disables. */
    std::size_t autoCompactTail = 0;

    /** Next segment file sequence number (orphans overwritten). */
    std::size_t nextSegmentSeq = 1;

    mutable std::mutex mu;

    /** Journal-tail runs (records appended since last compaction). */
    std::map<std::pair<std::size_t, std::size_t>, RunRecord> runs;

    /** Compacted segments, in manifest order (normally 0 or 1). */
    std::vector<std::shared_ptr<SegmentView>> segments_;

    /** Canonical per-group streaming summaries (see GroupSummary). */
    std::map<std::size_t, GroupSummary> summaries_;
};

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_STORE_HH
