/**
 * @file
 * Incremental campaign execution: one open campaign, advanced one
 * recorded run at a time.
 *
 * runCampaign() used to own the whole loop — decide targets, find
 * missing cells, run them on the thread pool, repeat. The `varsim
 * serve` daemon needs the same machinery at cell granularity so its
 * scheduler can interleave many tenants' campaigns on one worker
 * pool, stream per-run progress, and cancel between cells. Execution
 * is that machinery factored out; runCampaign() is now a thin loop
 * over it, which is what guarantees a served campaign's records are
 * bit-identical to the CLI's: both paths run the same seeds through
 * the same code against the same durable store.
 *
 * Thread contract: pendingCells()/complete()/outcome() may be called
 * from any thread; prepareCell() serializes internally (checkpoint
 * warm-up is not concurrent); runCell() may run concurrently from
 * many threads for *distinct* prepared cells.
 */

#ifndef VARSIM_CAMPAIGN_EXEC_HH
#define VARSIM_CAMPAIGN_EXEC_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/controller.hh"
#include "campaign/engine.hh"
#include "campaign/spec.hh"
#include "campaign/store.hh"

namespace varsim
{
namespace campaign
{

/** One schedulable unit: run @c runIdx of cell group @c group. */
struct Cell
{
    std::size_t group = 0;
    std::size_t runIdx = 0;
};

class CheckpointWarmer;

class Execution
{
  public:
    /**
     * Open (or create) the store at @p dir for @p spec and prepare
     * to execute. Runs the budget-planning pilots synchronously when
     * the spec has a budget and the store no recorded plan. Returns
     * nullptr with @p err set on a bad spec, a locked store, or a
     * fingerprint mismatch — the daemon turns that into an error
     * reply; runCampaign() turns it into fatal().
     */
    static std::unique_ptr<Execution>
    tryCreate(const CampaignSpec &spec, const std::string &dir,
              const CampaignOptions &opt, std::string *err);

    ~Execution();

    Execution(const Execution &) = delete;
    Execution &operator=(const Execution &) = delete;

    /** The spec actually executed (budget plan applied). */
    const CampaignSpec &effective() const { return eff; }

    const CampaignOptions &options() const { return opt; }

    ResultStore &resultStore() { return *store; }

    /**
     * Recompute stopping decisions from the store and return every
     * cell below target that is missing and owned by this shard.
     * The list shrinks as runs record and can *grow* after a pilot
     * completes (adaptive extension); callers poll it until empty.
     */
    std::vector<Cell> pendingCells();

    /**
     * Latest decisions (valid after the first pendingCells() call).
     * Snapshot by value: the vector is replaced on recompute.
     */
    std::vector<GroupDecision> decisions() const;

    /**
     * Make @p cell runnable: restore or re-simulate its
     * configuration's warm-up checkpoints. Serializes internally;
     * cheap when already warmed or when the spec plans none.
     */
    void prepareCell(const Cell &cell);

    /**
     * Execute @p cell and durably record it. Returns the record
     * (already appended; a duplicate is dropped by the store).
     */
    RunRecord runCell(const Cell &cell);

    /** Runs executed through this Execution instance. */
    std::size_t runsExecuted() const;

    /** True when every group meets its latest target. */
    bool complete();

    /**
     * Append the checkpoint-library traffic snapshot to the store
     * (no-op without a library). Call once, when execution stops.
     */
    void recordCkptStats();

    /** Assemble the invocation outcome (status counters). */
    CampaignOutcome outcome();

    std::size_t checkpointsRestored() const;
    std::size_t checkpointsWarmed() const;

  private:
    Execution() = default;

    /** Recompute decisions; true when all groups meet target. */
    bool pendingCellsComplete();

    CampaignSpec eff;
    CampaignOptions opt;
    std::unique_ptr<ResultStore> store;
    std::unique_ptr<CheckpointWarmer> warmer;

    mutable std::mutex mu; ///< decisions_, executed, ckptRecorded
    std::vector<GroupDecision> decisions_;
    std::size_t executed = 0;
    bool ckptRecorded = false;

    std::mutex warmMu; ///< serializes prepareCell
};

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_EXEC_HH
