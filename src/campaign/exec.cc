#include "campaign/exec.hh"

#include <algorithm>
#include <cstdio>

#include "ckpt/library.hh"
#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/simulation.hh"
#include "sample/runner.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace campaign
{

namespace
{

/**
 * Seed-space layout beyond the cell groups (all derived through
 * CampaignSpec::groupSeed so the overflow checks apply): pseudo
 * groups [numGroups, numGroups+8) seed the budget-planning pilots,
 * [numGroups+8, ...) seed the per-config checkpoint warmers.
 */
constexpr std::size_t kBudgetPilotGroups = 8;

StoreHeader
headerFor(const CampaignSpec &spec)
{
    StoreHeader h;
    h.fingerprint = spec.fingerprint();
    h.numGroups = spec.numGroups();
    h.numCheckpoints = spec.numCheckpoints;
    h.workload = workload::kindName(spec.wl.kind);
    for (const ConfigVariant &cv : spec.configs)
        h.configNames.push_back(cv.name);
    return h;
}

/**
 * Measure CoV pilots at a few run lengths and let the planner split
 * the budget; the decision is recorded so a resumed campaign reuses
 * it instead of re-measuring.
 */
PlanRecord
planTheBudget(const CampaignSpec &spec, ResultStore &store,
              const CampaignOptions &opt)
{
    if (store.plan().valid)
        return store.plan();

    // Three pilot lengths spanning ~1.5 decades of the budget.
    std::vector<std::uint64_t> lengths;
    for (std::uint64_t div : {64u, 16u, 4u}) {
        const std::uint64_t len =
            std::max<std::uint64_t>(10, spec.budgetTxns / div /
                                            spec.stop.pilotRuns);
        if (lengths.empty() || lengths.back() < len)
            lengths.push_back(len);
    }

    if (opt.verbose)
        std::printf("campaign: measuring %zu budget pilots...\n",
                    lengths.size());

    std::vector<std::pair<std::uint64_t, double>> pilots;
    for (std::size_t li = 0; li < lengths.size(); ++li) {
        core::RunConfig rc = spec.run;
        rc.measureTxns = lengths[li];
        core::ExperimentConfig exp;
        exp.numRuns = spec.stop.pilotRuns;
        exp.baseSeed = spec.groupSeed(spec.numGroups() + li, 0);
        exp.hostThreads = opt.hostThreads;
        const auto rep = core::analyze(core::runMany(
            spec.configs.front().sys, spec.wl, rc, exp));
        pilots.emplace_back(lengths[li],
                            rep.coefficientOfVariation);
        if (opt.verbose)
            std::printf("  pilot %llu txns: CoV %.2f%%\n",
                        static_cast<unsigned long long>(
                            lengths[li]),
                        rep.coefficientOfVariation);
    }
    if (pilots.size() < 2) {
        // Degenerate budget: every length collapsed to the floor.
        pilots.emplace_back(pilots.front().first + 1,
                            pilots.front().second);
    }

    const core::BudgetPlan bp = core::planBudget(
        pilots, spec.budgetTxns,
        std::max<std::size_t>(2, spec.stop.pilotRuns),
        spec.stop.confidence);
    if (opt.verbose)
        std::printf("campaign: budget plan: %s\n",
                    bp.toString().c_str());

    PlanRecord rec;
    rec.runLength = bp.runLength;
    rec.numRuns = bp.numRuns;
    store.appendPlan(rec);
    return store.plan();
}

/** The spec actually executed, after the budget plan is applied. */
CampaignSpec
effectiveSpec(const CampaignSpec &spec, const PlanRecord &plan)
{
    CampaignSpec eff = spec;
    if (!plan.valid)
        return eff;
    eff.run.measureTxns = plan.runLength;
    if (eff.stop.fixedRuns) {
        eff.stop.fixedRuns =
            std::min(eff.stop.fixedRuns, plan.numRuns);
    } else if (eff.stop.relativeError == 0.0 &&
               eff.stop.alpha == 0.0) {
        // No adaptive criterion: the plan's run count is the rule.
        eff.stop.fixedRuns =
            std::max<std::size_t>(2, plan.numRuns);
    } else {
        eff.stop.maxRuns = std::clamp(plan.numRuns,
                                      eff.stop.pilotRuns,
                                      eff.stop.maxRuns);
    }
    return eff;
}

} // anonymous namespace

/**
 * Lazy, library-backed supplier of warm-up checkpoints.
 *
 * A configuration is warmed only when ensureConfig() is called for
 * it — the scheduler calls it for exactly the configurations whose
 * cells this shard owns this round, so a shard whose stripe misses a
 * configuration never pays its warm-up, and a completed campaign's
 * re-invocation warms nothing at all.
 *
 * With a library attached, every planned position is first looked up
 * on disk; the warmer only simulates from the last restorable
 * snapshot onward (a snapshot carries the perturbation RNG, so the
 * continued trajectory is bit-identical to the original warmer's)
 * and publishes whatever it had to build. The warmers are
 * deterministic, so all of this — lazily, from disk, or re-derived —
 * yields byte-identical starting states.
 */
class CheckpointWarmer
{
  public:
    CheckpointWarmer(const CampaignSpec &spec,
                     const CampaignOptions &opt)
        : spec(spec), opt(opt)
    {
        if (!spec.numCheckpoints)
            return;
        positions = core::planCheckpoints(
            spec.strategy,
            spec.checkpointStep * spec.numCheckpoints,
            spec.numCheckpoints, spec.baseSeed);
        cps.resize(spec.configs.size());
        ready.assign(spec.configs.size(), 0);
        if (opt.sharedLibrary) {
            lib = opt.sharedLibrary;
        } else if (!opt.ckptDir.empty()) {
            owned = ckpt::CheckpointLibrary::open(opt.ckptDir);
            lib = owned.get();
        }
    }

    ~CheckpointWarmer()
    {
        for (const std::string &hex : pinnedDigests)
            lib->unpin(hex);
    }

    /** Make config @p c's checkpoints available (serial caller). */
    void
    ensureConfig(std::size_t c)
    {
        if (!spec.numCheckpoints || ready[c])
            return;
        ready[c] = 1;
        const std::uint64_t warmSeed = spec.groupSeed(
            spec.numGroups() + kBudgetPilotGroups + c, 0);
        auto &dst = cps[c];
        dst.resize(positions.size());

        // Longest restorable prefix. A hit beyond a miss is unusable:
        // the warmer must re-simulate *through* the missing position,
        // which re-derives the later ones anyway. Every hit is pinned
        // for the warmer's lifetime: another tenant's gc must not
        // evict an object this campaign restores from.
        std::size_t prefix = 0;
        while (lib && prefix < positions.size() &&
               fetchPinned(keyFor(c, warmSeed, positions[prefix]),
                           dst[prefix]))
            ++prefix;
        restored += prefix;
        if (prefix == positions.size()) {
            if (opt.verbose)
                std::printf("campaign: restored %zu checkpoint(s) "
                            "for %s from %s\n", prefix,
                            spec.configs[c].name.c_str(),
                            opt.ckptDir.c_str());
            return;
        }

        if (opt.verbose)
            std::printf("campaign: warming %zu checkpoint(s) for "
                        "%s (%zu restored)...\n",
                        positions.size() - prefix,
                        spec.configs[c].name.c_str(), prefix);
        std::unique_ptr<core::Simulation> warmer;
        std::uint64_t done = 0;
        if (prefix) {
            warmer = core::Simulation::restore(
                spec.configs[c].sys, spec.wl, dst[prefix - 1]);
            done = positions[prefix - 1];
        } else {
            warmer = std::make_unique<core::Simulation>(
                spec.configs[c].sys, spec.wl);
            warmer->seedPerturbation(warmSeed);
        }
        for (std::size_t i = prefix; i < positions.size(); ++i) {
            warmer->runTransactions(positions[i] - done);
            done = positions[i];
            dst[i] = warmer->checkpoint();
            ++warmed;
            if (lib) {
                const auto key =
                    keyFor(c, warmSeed, positions[i]);
                // Pin before publishing: no gc window between the
                // object landing on disk and the pin existing.
                lib->pin(key.digestHex());
                pinnedDigests.push_back(key.digestHex());
                lib->publish(key, dst[i]);
            }
        }
    }

    /** Checkpoint of (config, position); ensureConfig'd first. */
    const core::Checkpoint &
    get(std::size_t config, std::size_t ck) const
    {
        VARSIM_ASSERT(ready[config],
                      "checkpoint for config %zu requested before "
                      "it was warmed", config);
        return cps[config][ck];
    }

    ckpt::CheckpointLibrary *library() const { return lib; }

    std::size_t restoredCount() const { return restored; }
    std::size_t warmedCount() const { return warmed; }

  private:
    /** fetch() + pin on hit (pin released when the warmer dies). */
    bool
    fetchPinned(const ckpt::CheckpointKey &key,
                core::Checkpoint &cp)
    {
        if (!lib->fetch(key, cp))
            return false;
        lib->pin(key.digestHex());
        pinnedDigests.push_back(key.digestHex());
        return true;
    }

    ckpt::CheckpointKey
    keyFor(std::size_t c, std::uint64_t warmSeed,
           std::uint64_t position) const
    {
        ckpt::CheckpointKey key;
        key.sys = spec.configs[c].sys;
        key.wl = spec.wl;
        key.warmupSeed = warmSeed;
        key.position = position;
        return key;
    }

    const CampaignSpec &spec;
    const CampaignOptions &opt;
    std::vector<std::uint64_t> positions;
    std::vector<std::vector<core::Checkpoint>> cps;
    std::vector<char> ready;
    std::unique_ptr<ckpt::CheckpointLibrary> owned;
    ckpt::CheckpointLibrary *lib = nullptr;
    std::vector<std::string> pinnedDigests;
    std::size_t restored = 0;
    std::size_t warmed = 0;
};

WarmupResult
warmCampaignCheckpoints(const CampaignSpec &spec,
                        const CampaignOptions &opt)
{
    spec.validate();
    if (!spec.numCheckpoints)
        sim::fatal("this campaign plans no checkpoints; nothing to "
                   "pre-warm (set a checkpoint count)");
    if (opt.ckptDir.empty())
        sim::fatal("pre-warming needs a library directory");

    CheckpointWarmer warmer(spec, opt);
    for (std::size_t c = 0; c < spec.configs.size(); ++c)
        warmer.ensureConfig(c);

    WarmupResult r;
    r.restored = warmer.restoredCount();
    r.warmed = warmer.warmedCount();
    const auto st = warmer.library()->stats();
    r.libraryEntries = st.entries;
    r.libraryBytes = st.bytes;
    return r;
}

std::unique_ptr<Execution>
Execution::tryCreate(const CampaignSpec &spec,
                     const std::string &dir,
                     const CampaignOptions &opt, std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err)
            *err = std::move(msg);
        return std::unique_ptr<Execution>();
    };

    std::string why;
    if (!spec.check(&why))
        return fail(std::move(why));
    if (opt.shardCount == 0 || opt.shardIndex >= opt.shardCount)
        return fail(sim::format("bad shard %zu/%zu", opt.shardIndex,
                                opt.shardCount));

    std::unique_ptr<Execution> ex(new Execution);
    ex->opt = opt;
    ex->store = ResultStore::tryOpenOrCreate(dir, headerFor(spec),
                                             err);
    if (!ex->store)
        return nullptr;

    PlanRecord plan;
    if (spec.budgetTxns)
        plan = planTheBudget(spec, *ex->store, ex->opt);
    ex->eff = effectiveSpec(spec, plan);

    ex->warmer = std::make_unique<CheckpointWarmer>(ex->eff,
                                                    ex->opt);
    return ex;
}

Execution::~Execution() = default;

std::vector<Cell>
Execution::pendingCells()
{
    const std::size_t groups = eff.numGroups();
    // Stable cell ids for sharding: group-major with the per-group
    // cap as the stride (constant for the life of the store).
    const std::size_t cellStride =
        std::max(eff.stop.fixedRuns, eff.stop.maxRuns);

    // The stopping controller only ever reads the pilot prefix (the
    // fixed-runs path reads no metrics at all), so cap the replayed
    // vectors there: decisions stay bit-identical while the cost of
    // a decision stops growing with the number of recorded runs.
    const std::size_t pilotCap =
        eff.stop.fixedRuns ? 0 : eff.stop.pilotRuns;

    std::vector<std::vector<double>> metrics(groups);
    for (std::size_t g = 0; g < groups; ++g)
        metrics[g] = store->groupMetric(g, pilotCap);
    // Sampled specs: hand the controller each run's within-run CI
    // half-width so the stopping rule sizes the sample against the
    // full (between + within) uncertainty.
    std::vector<std::vector<double>> ciHalf;
    if (eff.run.sample.enabled()) {
        ciHalf.resize(groups);
        for (std::size_t g = 0; g < groups; ++g) {
            const auto lo = store->groupMetricNamed(
                g, "sim.sampled.cpt_lo", pilotCap);
            const auto hi = store->groupMetricNamed(
                g, "sim.sampled.cpt_hi", pilotCap);
            const std::size_t n = std::min(lo.size(), hi.size());
            ciHalf[g].reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                ciHalf[g].push_back((hi[i] - lo[i]) / 2.0);
        }
    }
    auto dec = decideTargets(eff, metrics, ciHalf);

    std::vector<Cell> work;
    for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t i = 0; i < dec[g].target; ++i) {
            if (store->hasRun(g, i))
                continue;
            const std::size_t cellId = g * cellStride + i;
            if (cellId % opt.shardCount != opt.shardIndex)
                continue;
            work.push_back({g, i});
        }
    }

    std::lock_guard<std::mutex> lk(mu);
    decisions_ = std::move(dec);
    return work;
}

std::vector<GroupDecision>
Execution::decisions() const
{
    std::lock_guard<std::mutex> lk(mu);
    return decisions_;
}

void
Execution::prepareCell(const Cell &cell)
{
    if (!eff.numCheckpoints)
        return;
    std::lock_guard<std::mutex> lk(warmMu);
    warmer->ensureConfig(eff.configOf(cell.group));
}

RunRecord
Execution::runCell(const Cell &cell)
{
    // Give every trace line this run emits a durable identity
    // (group/run), matching the store's cell.
    sim::trace::RunScope scope(
        sim::format("g%zu.r%zu", cell.group, cell.runIdx));
    const std::size_t cfg = eff.configOf(cell.group);
    const std::size_t ck = eff.ckptOf(cell.group);

    core::RunConfig rc = eff.run;
    rc.perturbSeed = eff.groupSeed(cell.group, cell.runIdx);

    // The sample:: runners fall straight through to core:: when the
    // spec leaves sampling off.
    core::RunResult res;
    if (eff.numCheckpoints) {
        rc.warmupTxns = 0; // the checkpoint warmed up
        res = sample::runFromCheckpoint(eff.configs[cfg].sys,
                                        eff.wl,
                                        warmer->get(cfg, ck), rc);
    } else {
        res = sample::runOnce(eff.configs[cfg].sys, eff.wl, rc);
    }

    RunRecord rec;
    rec.group = cell.group;
    rec.configIdx = cfg;
    rec.ckptIdx = ck;
    rec.runIdx = cell.runIdx;
    rec.seed = rc.perturbSeed;
    rec.cyclesPerTxn = res.cyclesPerTxn;
    rec.runtimeTicks =
        static_cast<std::uint64_t>(res.runtimeTicks);
    rec.txns = res.txns;
    rec.metrics.reserve(res.stats.size());
    for (const auto &sv : res.stats)
        rec.metrics.emplace_back(sv.name, sv.value);
    store->appendRun(rec);

    std::lock_guard<std::mutex> lk(mu);
    ++executed;
    return rec;
}

std::size_t
Execution::runsExecuted() const
{
    std::lock_guard<std::mutex> lk(mu);
    return executed;
}

bool
Execution::complete()
{
    return pendingCellsComplete();
}

bool
Execution::pendingCellsComplete()
{
    const std::size_t groups = eff.numGroups();
    const std::size_t pilotCap =
        eff.stop.fixedRuns ? 0 : eff.stop.pilotRuns;
    std::vector<std::vector<double>> metrics(groups);
    for (std::size_t g = 0; g < groups; ++g)
        metrics[g] = store->groupMetric(g, pilotCap);
    std::vector<std::vector<double>> ciHalf;
    if (eff.run.sample.enabled()) {
        ciHalf.resize(groups);
        for (std::size_t g = 0; g < groups; ++g) {
            const auto lo = store->groupMetricNamed(
                g, "sim.sampled.cpt_lo", pilotCap);
            const auto hi = store->groupMetricNamed(
                g, "sim.sampled.cpt_hi", pilotCap);
            const std::size_t n = std::min(lo.size(), hi.size());
            ciHalf[g].reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                ciHalf[g].push_back((hi[i] - lo[i]) / 2.0);
        }
    }
    auto dec = decideTargets(eff, metrics, ciHalf);
    bool done = true;
    for (std::size_t g = 0; g < groups; ++g)
        if (store->runsInGroup(g) < dec[g].target)
            done = false;
    std::lock_guard<std::mutex> lk(mu);
    decisions_ = std::move(dec);
    return done;
}

void
Execution::recordCkptStats()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (ckptRecorded)
            return;
        ckptRecorded = true;
    }
    if (!warmer->library())
        return;
    const auto st = warmer->library()->stats();
    CkptStatsRecord rec;
    rec.dir = opt.ckptDir;
    rec.restored = warmer->restoredCount();
    rec.warmed = warmer->warmedCount();
    rec.entries = st.entries;
    rec.bytes = st.bytes;
    store->appendCkptStats(rec);
}

CampaignOutcome
Execution::outcome()
{
    const bool done = pendingCellsComplete();
    std::lock_guard<std::mutex> lk(mu);
    const std::size_t groups = eff.numGroups();
    CampaignOutcome out;
    out.runsExecuted = executed;
    out.runsRecorded = store->totalRuns();
    out.checkpointsRestored = warmer->restoredCount();
    out.checkpointsWarmed = warmer->warmedCount();
    out.targetRuns.resize(groups);
    out.recordedRuns.resize(groups);
    out.complete = done;
    for (std::size_t g = 0; g < groups; ++g) {
        out.targetRuns[g] = decisions_[g].target;
        out.recordedRuns[g] = store->runsInGroup(g);
    }
    return out;
}

std::size_t
Execution::checkpointsRestored() const
{
    return warmer->restoredCount();
}

std::size_t
Execution::checkpointsWarmed() const
{
    return warmer->warmedCount();
}

} // namespace campaign
} // namespace varsim
