#include "campaign/engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "ckpt/library.hh"
#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/simulation.hh"
#include "core/thread_pool.hh"
#include "sample/runner.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace campaign
{

namespace
{

/**
 * Seed-space layout beyond the cell groups (all derived through
 * CampaignSpec::groupSeed so the overflow checks apply): pseudo
 * groups [numGroups, numGroups+8) seed the budget-planning pilots,
 * [numGroups+8, ...) seed the per-config checkpoint warmers.
 */
constexpr std::size_t kBudgetPilotGroups = 8;

StoreHeader
headerFor(const CampaignSpec &spec)
{
    StoreHeader h;
    h.fingerprint = spec.fingerprint();
    h.numGroups = spec.numGroups();
    h.numCheckpoints = spec.numCheckpoints;
    h.workload = workload::kindName(spec.wl.kind);
    for (const ConfigVariant &cv : spec.configs)
        h.configNames.push_back(cv.name);
    return h;
}

/**
 * Measure CoV pilots at a few run lengths and let the planner split
 * the budget; the decision is recorded so a resumed campaign reuses
 * it instead of re-measuring.
 */
PlanRecord
planTheBudget(const CampaignSpec &spec, ResultStore &store,
              const CampaignOptions &opt)
{
    if (store.plan().valid)
        return store.plan();

    // Three pilot lengths spanning ~1.5 decades of the budget.
    std::vector<std::uint64_t> lengths;
    for (std::uint64_t div : {64u, 16u, 4u}) {
        const std::uint64_t len =
            std::max<std::uint64_t>(10, spec.budgetTxns / div /
                                            spec.stop.pilotRuns);
        if (lengths.empty() || lengths.back() < len)
            lengths.push_back(len);
    }

    if (opt.verbose)
        std::printf("campaign: measuring %zu budget pilots...\n",
                    lengths.size());

    std::vector<std::pair<std::uint64_t, double>> pilots;
    for (std::size_t li = 0; li < lengths.size(); ++li) {
        core::RunConfig rc = spec.run;
        rc.measureTxns = lengths[li];
        core::ExperimentConfig exp;
        exp.numRuns = spec.stop.pilotRuns;
        exp.baseSeed = spec.groupSeed(spec.numGroups() + li, 0);
        exp.hostThreads = opt.hostThreads;
        const auto rep = core::analyze(core::runMany(
            spec.configs.front().sys, spec.wl, rc, exp));
        pilots.emplace_back(lengths[li],
                            rep.coefficientOfVariation);
        if (opt.verbose)
            std::printf("  pilot %llu txns: CoV %.2f%%\n",
                        static_cast<unsigned long long>(
                            lengths[li]),
                        rep.coefficientOfVariation);
    }
    if (pilots.size() < 2) {
        // Degenerate budget: every length collapsed to the floor.
        pilots.emplace_back(pilots.front().first + 1,
                            pilots.front().second);
    }

    const core::BudgetPlan bp = core::planBudget(
        pilots, spec.budgetTxns,
        std::max<std::size_t>(2, spec.stop.pilotRuns),
        spec.stop.confidence);
    if (opt.verbose)
        std::printf("campaign: budget plan: %s\n",
                    bp.toString().c_str());

    PlanRecord rec;
    rec.runLength = bp.runLength;
    rec.numRuns = bp.numRuns;
    store.appendPlan(rec);
    return store.plan();
}

/** The spec actually executed, after the budget plan is applied. */
CampaignSpec
effectiveSpec(const CampaignSpec &spec, const PlanRecord &plan)
{
    CampaignSpec eff = spec;
    if (!plan.valid)
        return eff;
    eff.run.measureTxns = plan.runLength;
    if (eff.stop.fixedRuns) {
        eff.stop.fixedRuns =
            std::min(eff.stop.fixedRuns, plan.numRuns);
    } else if (eff.stop.relativeError == 0.0 &&
               eff.stop.alpha == 0.0) {
        // No adaptive criterion: the plan's run count is the rule.
        eff.stop.fixedRuns =
            std::max<std::size_t>(2, plan.numRuns);
    } else {
        eff.stop.maxRuns = std::clamp(plan.numRuns,
                                      eff.stop.pilotRuns,
                                      eff.stop.maxRuns);
    }
    return eff;
}

/**
 * Lazy, library-backed supplier of warm-up checkpoints.
 *
 * A configuration is warmed only when ensureConfig() is called for
 * it — the scheduler calls it for exactly the configurations whose
 * cells this shard owns this round, so a shard whose stripe misses a
 * configuration never pays its warm-up, and a completed campaign's
 * re-invocation warms nothing at all.
 *
 * With a library attached, every planned position is first looked up
 * on disk; the warmer only simulates from the last restorable
 * snapshot onward (a snapshot carries the perturbation RNG, so the
 * continued trajectory is bit-identical to the original warmer's)
 * and publishes whatever it had to build. The warmers are
 * deterministic, so all of this — lazily, from disk, or re-derived —
 * yields byte-identical starting states.
 */
class CheckpointWarmer
{
  public:
    CheckpointWarmer(const CampaignSpec &spec,
                     const CampaignOptions &opt)
        : spec(spec), opt(opt)
    {
        if (!spec.numCheckpoints)
            return;
        positions = core::planCheckpoints(
            spec.strategy,
            spec.checkpointStep * spec.numCheckpoints,
            spec.numCheckpoints, spec.baseSeed);
        cps.resize(spec.configs.size());
        ready.assign(spec.configs.size(), 0);
        if (!opt.ckptDir.empty())
            lib = ckpt::CheckpointLibrary::open(opt.ckptDir);
    }

    /** Make config @p c's checkpoints available (serial caller). */
    void
    ensureConfig(std::size_t c)
    {
        if (!spec.numCheckpoints || ready[c])
            return;
        ready[c] = 1;
        const std::uint64_t warmSeed = spec.groupSeed(
            spec.numGroups() + kBudgetPilotGroups + c, 0);
        auto &dst = cps[c];
        dst.resize(positions.size());

        // Longest restorable prefix. A hit beyond a miss is unusable:
        // the warmer must re-simulate *through* the missing position,
        // which re-derives the later ones anyway.
        std::size_t prefix = 0;
        while (lib && prefix < positions.size() &&
               lib->fetch(keyFor(c, warmSeed, positions[prefix]),
                          dst[prefix]))
            ++prefix;
        restored += prefix;
        if (prefix == positions.size()) {
            if (opt.verbose)
                std::printf("campaign: restored %zu checkpoint(s) "
                            "for %s from %s\n", prefix,
                            spec.configs[c].name.c_str(),
                            opt.ckptDir.c_str());
            return;
        }

        if (opt.verbose)
            std::printf("campaign: warming %zu checkpoint(s) for "
                        "%s (%zu restored)...\n",
                        positions.size() - prefix,
                        spec.configs[c].name.c_str(), prefix);
        std::unique_ptr<core::Simulation> warmer;
        std::uint64_t done = 0;
        if (prefix) {
            warmer = core::Simulation::restore(
                spec.configs[c].sys, spec.wl, dst[prefix - 1]);
            done = positions[prefix - 1];
        } else {
            warmer = std::make_unique<core::Simulation>(
                spec.configs[c].sys, spec.wl);
            warmer->seedPerturbation(warmSeed);
        }
        for (std::size_t i = prefix; i < positions.size(); ++i) {
            warmer->runTransactions(positions[i] - done);
            done = positions[i];
            dst[i] = warmer->checkpoint();
            ++warmed;
            if (lib)
                lib->publish(keyFor(c, warmSeed, positions[i]),
                             dst[i]);
        }
    }

    /** Checkpoint of (config, position); ensureConfig'd first. */
    const core::Checkpoint &
    get(std::size_t config, std::size_t ck) const
    {
        VARSIM_ASSERT(ready[config],
                      "checkpoint for config %zu requested before "
                      "it was warmed", config);
        return cps[config][ck];
    }

    ckpt::CheckpointLibrary *library() const { return lib.get(); }

    std::size_t restoredCount() const { return restored; }
    std::size_t warmedCount() const { return warmed; }

  private:
    ckpt::CheckpointKey
    keyFor(std::size_t c, std::uint64_t warmSeed,
           std::uint64_t position) const
    {
        ckpt::CheckpointKey key;
        key.sys = spec.configs[c].sys;
        key.wl = spec.wl;
        key.warmupSeed = warmSeed;
        key.position = position;
        return key;
    }

    const CampaignSpec &spec;
    const CampaignOptions &opt;
    std::vector<std::uint64_t> positions;
    std::vector<std::vector<core::Checkpoint>> cps;
    std::vector<char> ready;
    std::unique_ptr<ckpt::CheckpointLibrary> lib;
    std::size_t restored = 0;
    std::size_t warmed = 0;
};

struct Cell
{
    std::size_t group;
    std::size_t runIdx;
};

} // anonymous namespace

WarmupResult
warmCampaignCheckpoints(const CampaignSpec &spec,
                        const CampaignOptions &opt)
{
    spec.validate();
    if (!spec.numCheckpoints)
        sim::fatal("this campaign plans no checkpoints; nothing to "
                   "pre-warm (set a checkpoint count)");
    if (opt.ckptDir.empty())
        sim::fatal("pre-warming needs a library directory");

    CheckpointWarmer warmer(spec, opt);
    for (std::size_t c = 0; c < spec.configs.size(); ++c)
        warmer.ensureConfig(c);

    WarmupResult r;
    r.restored = warmer.restoredCount();
    r.warmed = warmer.warmedCount();
    const auto st = warmer.library()->stats();
    r.libraryEntries = st.entries;
    r.libraryBytes = st.bytes;
    return r;
}

CampaignOutcome
runCampaign(const CampaignSpec &spec, const std::string &dir,
            const CampaignOptions &opt)
{
    spec.validate();
    if (opt.shardCount == 0 || opt.shardIndex >= opt.shardCount)
        sim::fatal("bad shard %zu/%zu", opt.shardIndex,
                   opt.shardCount);

    auto store = ResultStore::openOrCreate(dir, headerFor(spec));

    PlanRecord plan;
    if (spec.budgetTxns)
        plan = planTheBudget(spec, *store, opt);
    const CampaignSpec eff = effectiveSpec(spec, plan);

    CheckpointWarmer warmer(eff, opt);

    const std::size_t groups = eff.numGroups();
    // Stable cell ids for sharding: group-major with the per-group
    // cap as the stride (constant for the life of the store).
    const std::size_t cellStride =
        std::max(eff.stop.fixedRuns, eff.stop.maxRuns);

    std::atomic<bool> interrupted{false};
    std::atomic<std::size_t> newRecords{0};
    std::vector<GroupDecision> decisions;

    for (;;) {
        std::vector<std::vector<double>> metrics(groups);
        for (std::size_t g = 0; g < groups; ++g)
            metrics[g] = store->groupMetric(g);
        // Sampled specs: hand the controller each run's within-run
        // CI half-width so the stopping rule sizes the sample
        // against the full (between + within) uncertainty.
        std::vector<std::vector<double>> ciHalf;
        if (eff.run.sample.enabled()) {
            ciHalf.resize(groups);
            for (std::size_t g = 0; g < groups; ++g) {
                const auto lo = store->groupMetricNamed(
                    g, "sim.sampled.cpt_lo");
                const auto hi = store->groupMetricNamed(
                    g, "sim.sampled.cpt_hi");
                const std::size_t n =
                    std::min(lo.size(), hi.size());
                ciHalf[g].reserve(n);
                for (std::size_t i = 0; i < n; ++i)
                    ciHalf[g].push_back((hi[i] - lo[i]) / 2.0);
            }
        }
        decisions = decideTargets(eff, metrics, ciHalf);

        std::vector<Cell> work;
        for (std::size_t g = 0; g < groups; ++g) {
            for (std::size_t i = 0; i < decisions[g].target; ++i) {
                if (store->hasRun(g, i))
                    continue;
                const std::size_t cellId = g * cellStride + i;
                if (cellId % opt.shardCount != opt.shardIndex)
                    continue;
                work.push_back({g, i});
            }
        }
        if (work.empty() || interrupted.load())
            break;

        // Warm (or restore) only the configurations this round's
        // owned cells actually start from, serially — the library
        // and the warmers are not touched from worker threads.
        if (eff.numCheckpoints) {
            std::vector<char> needed(eff.configs.size(), 0);
            for (const Cell &cell : work)
                needed[eff.configOf(cell.group)] = 1;
            for (std::size_t c = 0; c < needed.size(); ++c)
                if (needed[c])
                    warmer.ensureConfig(c);
        }

        if (opt.verbose) {
            std::printf("campaign: scheduling %zu run(s):\n",
                        work.size());
            for (std::size_t g = 0; g < groups; ++g)
                std::printf("  %-24s %zu/%zu recorded (%s)\n",
                            eff.groupName(g).c_str(),
                            metrics[g].size(),
                            decisions[g].target,
                            decisions[g].reason.c_str());
        }

        core::HostThreadPool::instance().parallelFor(
            work.size(), opt.hostThreads, [&](std::size_t k) {
                if (interrupted.load())
                    return; // unclaimed cells die with the "kill"
                const Cell cell = work[k];
                // Give every trace line this run emits a durable
                // identity (group/run), matching the store's cell.
                sim::trace::RunScope scope(sim::format(
                    "g%zu.r%zu", work[k].group, work[k].runIdx));
                const std::size_t cfg = eff.configOf(cell.group);
                const std::size_t ck = eff.ckptOf(cell.group);

                core::RunConfig rc = eff.run;
                rc.perturbSeed =
                    eff.groupSeed(cell.group, cell.runIdx);

                // The sample:: runners fall straight through to
                // core:: when the spec leaves sampling off.
                core::RunResult res;
                if (eff.numCheckpoints) {
                    rc.warmupTxns = 0; // the checkpoint warmed up
                    res = sample::runFromCheckpoint(
                        eff.configs[cfg].sys, eff.wl,
                        warmer.get(cfg, ck), rc);
                } else {
                    res = sample::runOnce(eff.configs[cfg].sys,
                                          eff.wl, rc);
                }

                RunRecord rec;
                rec.group = cell.group;
                rec.configIdx = cfg;
                rec.ckptIdx = ck;
                rec.runIdx = cell.runIdx;
                rec.seed = rc.perturbSeed;
                rec.cyclesPerTxn = res.cyclesPerTxn;
                rec.runtimeTicks =
                    static_cast<std::uint64_t>(res.runtimeTicks);
                rec.txns = res.txns;
                rec.metrics.reserve(res.stats.size());
                for (const auto &sv : res.stats)
                    rec.metrics.emplace_back(sv.name, sv.value);
                store->appendRun(rec);

                const std::size_t mine =
                    newRecords.fetch_add(1) + 1;
                if (opt.interruptAfter &&
                    mine >= opt.interruptAfter)
                    interrupted.store(true);
            });

        if (interrupted.load())
            break;
    }

    if (warmer.library()) {
        const auto st = warmer.library()->stats();
        CkptStatsRecord rec;
        rec.dir = opt.ckptDir;
        rec.restored = warmer.restoredCount();
        rec.warmed = warmer.warmedCount();
        rec.entries = st.entries;
        rec.bytes = st.bytes;
        store->appendCkptStats(rec);
    }

    CampaignOutcome out;
    out.runsExecuted = newRecords.load();
    out.runsRecorded = store->totalRuns();
    out.interrupted = interrupted.load();
    out.checkpointsRestored = warmer.restoredCount();
    out.checkpointsWarmed = warmer.warmedCount();
    out.targetRuns.resize(groups);
    out.recordedRuns.resize(groups);
    out.complete = true;
    for (std::size_t g = 0; g < groups; ++g) {
        out.targetRuns[g] = decisions[g].target;
        out.recordedRuns[g] = store->runsInGroup(g);
        if (out.recordedRuns[g] < out.targetRuns[g])
            out.complete = false;
    }
    return out;
}

std::string
CampaignStatus::toString() const
{
    std::string s = sim::format(
        "campaign store: %zu group(s), %zu run(s) recorded "
        "(workload %s%s)\n",
        header.numGroups, totalRuns, header.workload.c_str(),
        header.numCheckpoints
            ? sim::format(", %zu checkpoints",
                          header.numCheckpoints)
                  .c_str()
            : "");
    if (plan.valid)
        s += sim::format(
            "budget plan: %zu runs of %llu txns per group\n",
            plan.numRuns,
            static_cast<unsigned long long>(plan.runLength));
    if (ckpt.valid)
        s += sim::format(
            "checkpoint library %s: %zu entr%s, %llu byte(s); last "
            "run restored %zu, warmed %zu\n",
            ckpt.dir.c_str(), ckpt.entries,
            ckpt.entries == 1 ? "y" : "ies",
            static_cast<unsigned long long>(ckpt.bytes),
            ckpt.restored, ckpt.warmed);
    for (std::size_t g = 0; g < runsPerGroup.size(); ++g)
        s += sim::format("  %-24s %zu run(s)\n",
                         groupNames[g].c_str(), runsPerGroup[g]);
    return s;
}

CampaignStatus
campaignStatus(const std::string &dir)
{
    auto store = ResultStore::open(dir);
    CampaignStatus st;
    st.header = store->header();
    st.plan = store->plan();
    st.ckpt = store->ckptStats();
    st.totalRuns = store->totalRuns();
    const std::size_t slots =
        st.header.numCheckpoints ? st.header.numCheckpoints : 1;
    for (std::size_t g = 0; g < st.header.numGroups; ++g) {
        st.runsPerGroup.push_back(store->runsInGroup(g));
        std::string name = g / slots < st.header.configNames.size()
                               ? st.header.configNames[g / slots]
                               : sim::format("config%zu", g / slots);
        if (st.header.numCheckpoints)
            name += sim::format(" @ckpt%zu", g % slots);
        st.groupNames.push_back(name);
    }
    return st;
}

CampaignReport
campaignReport(const std::string &dir, double confidence)
{
    auto store = ResultStore::open(dir);
    const StoreHeader &h = store->header();
    const std::size_t slots =
        h.numCheckpoints ? h.numCheckpoints : 1;
    const std::size_t numConfigs =
        slots ? h.numGroups / slots : 0;

    auto nameOf = [&](std::size_t cfg, std::size_t ck) {
        std::string name = cfg < h.configNames.size()
                               ? h.configNames[cfg]
                               : sim::format("config%zu", cfg);
        if (h.numCheckpoints)
            name += sim::format(" @ckpt%zu", ck);
        return name;
    };

    CampaignReport rep;
    rep.text = sim::format(
        "campaign report (%zu run(s), workload %s)\n",
        store->totalRuns(), h.workload.c_str());
    // Presence only, no counts: resumed and uninterrupted campaigns
    // warm different amounts yet must report byte-identically.
    if (store->ckptStats().valid)
        rep.text += sim::format(
            "note: warm-up checkpoints served from library %s "
            "(restored snapshots are bit-identical to re-warmed "
            "ones)\n",
            store->ckptStats().dir.c_str());

    for (std::size_t g = 0; g < h.numGroups; ++g) {
        const auto xs = store->groupMetric(g);
        rep.text += sim::format("\n%s:\n",
                                nameOf(g / slots, g % slots)
                                    .c_str());
        if (xs.size() < 2) {
            rep.text += sim::format("  %zu run(s): too few for "
                                    "statistics\n", xs.size());
            continue;
        }
        rep.text +=
            "  " + core::analyze(xs).toString() + "\n";
        const auto ci =
            stats::meanConfidenceInterval(xs, confidence);
        rep.text += sim::format(
            "  %.0f%% CI for the mean: [%.0f, %.0f]\n",
            100.0 * confidence, ci.lo, ci.hi);
        // Sampled runs: surface the second uncertainty level (the
        // average within-run sampling CI) next to the run-to-run
        // one, so the reader sees how much of the spread the
        // estimator itself contributes.
        const auto sEnabled =
            store->groupMetricNamed(g, "sim.sampled.enabled");
        if (!sEnabled.empty() && sEnabled.front() != 0.0) {
            const auto sLo = store->groupMetricNamed(
                g, "sim.sampled.cpt_lo");
            const auto sHi = store->groupMetricNamed(
                g, "sim.sampled.cpt_hi");
            const auto sWin = store->groupMetricNamed(
                g, "sim.sampled.windows");
            const std::size_t n =
                std::min(sLo.size(), sHi.size());
            if (n > 0) {
                double half = 0.0, wins = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                    half += (sHi[i] - sLo[i]) / 2.0;
                half /= static_cast<double>(n);
                for (double w : sWin)
                    wins += w;
                if (!sWin.empty())
                    wins /= static_cast<double>(sWin.size());
                const double mean =
                    stats::summarize(xs).mean;
                rep.text += sim::format(
                    "  sampled estimates: %.1f window(s)/run, "
                    "avg within-run CI half-width %.1f (%.2f%% "
                    "of the mean)\n",
                    wins, half,
                    mean != 0.0 ? 100.0 * half / mean : 0.0);
            }
        }
    }

    bool anyPair = false;
    for (std::size_t ck = 0; ck < slots; ++ck) {
        for (std::size_t a = 0; a < numConfigs; ++a) {
            for (std::size_t b = a + 1; b < numConfigs; ++b) {
                const auto xa =
                    store->groupMetric(a * slots + ck);
                const auto xb =
                    store->groupMetric(b * slots + ck);
                if (xa.size() < 2 || xb.size() < 2)
                    continue;
                if (!anyPair) {
                    rep.text += sim::format(
                        "\ncomparisons (at %.0f%% confidence):\n",
                        100.0 * confidence);
                    anyPair = true;
                }
                const auto cmp =
                    core::compare(xa, xb, confidence);
                rep.text += sim::format(
                    "  %s vs %s:\n    %s\n",
                    nameOf(a, ck).c_str(), nameOf(b, ck).c_str(),
                    cmp.verdict().c_str());
            }
        }
    }
    return rep;
}

CampaignReport
campaignMetricReport(const std::string &dir,
                     const std::string &metric, double confidence)
{
    auto store = ResultStore::open(dir);
    const StoreHeader &h = store->header();
    const std::size_t slots =
        h.numCheckpoints ? h.numCheckpoints : 1;

    CampaignReport rep;
    if (metric == "list") {
        rep.text = "available metrics:\n";
        for (const auto &name : store->metricNames())
            rep.text += "  " + name + "\n";
        return rep;
    }

    auto nameOf = [&](std::size_t cfg, std::size_t ck) {
        std::string name = cfg < h.configNames.size()
                               ? h.configNames[cfg]
                               : sim::format("config%zu", cfg);
        if (h.numCheckpoints)
            name += sim::format(" @ckpt%zu", ck);
        return name;
    };

    bool any = false;
    rep.text = sim::format("campaign metric report: %s\n",
                           metric.c_str());
    for (std::size_t g = 0; g < h.numGroups; ++g) {
        const auto xs = store->groupMetricNamed(g, metric);
        rep.text += sim::format("\n%s:\n",
                                nameOf(g / slots, g % slots)
                                    .c_str());
        if (xs.size() < 2) {
            rep.text += sim::format("  %zu run(s) with this metric: "
                                    "too few for statistics\n",
                                    xs.size());
            continue;
        }
        any = true;
        rep.text += "  " + core::analyze(xs).toString() + "\n";
        const auto ci =
            stats::meanConfidenceInterval(xs, confidence);
        rep.text += sim::format(
            "  %.0f%% CI for the mean: [%.4g, %.4g]\n",
            100.0 * confidence, ci.lo, ci.hi);
    }
    if (!any) {
        rep.text += "\nno group has 2+ runs carrying this metric; "
                    "run `campaign report --metric list` for the "
                    "recorded names\n";
    }
    return rep;
}

} // namespace campaign
} // namespace varsim
