#include "campaign/engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "campaign/exec.hh"
#include "core/analysis.hh"
#include "core/thread_pool.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace campaign
{

CampaignOutcome
runCampaign(const CampaignSpec &spec, const std::string &dir,
            const CampaignOptions &opt)
{
    // All the mechanism lives in Execution (shared with the serve
    // daemon); this loop only sequences rounds on the host pool.
    std::string err;
    auto execp = Execution::tryCreate(spec, dir, opt, &err);
    if (!execp)
        sim::fatal("%s", err.c_str());
    Execution &exec = *execp;
    const CampaignSpec &eff = exec.effective();

    std::atomic<bool> interrupted{false};

    for (;;) {
        std::vector<Cell> work = exec.pendingCells();
        if (work.empty() || interrupted.load())
            break;

        // Warm (or restore) only the configurations this round's
        // owned cells actually start from, serially — the library
        // and the warmers are not touched from worker threads.
        for (const Cell &cell : work)
            exec.prepareCell(cell);

        if (opt.verbose) {
            const auto dec = exec.decisions();
            std::printf("campaign: scheduling %zu run(s):\n",
                        work.size());
            for (std::size_t g = 0; g < eff.numGroups(); ++g)
                std::printf(
                    "  %-24s %zu/%zu recorded (%s)\n",
                    eff.groupName(g).c_str(),
                    exec.resultStore().prefixLength(g),
                    dec[g].target, dec[g].reason.c_str());
        }

        core::HostThreadPool::instance().parallelFor(
            work.size(), opt.hostThreads, [&](std::size_t k) {
                if (interrupted.load())
                    return; // unclaimed cells die with the "kill"
                exec.runCell(work[k]);
                if (opt.interruptAfter &&
                    exec.runsExecuted() >= opt.interruptAfter)
                    interrupted.store(true);
            });

        if (interrupted.load())
            break;
    }

    exec.recordCkptStats();
    CampaignOutcome out = exec.outcome();
    out.interrupted = interrupted.load();
    return out;
}

std::string
CampaignStatus::toString() const
{
    std::string s = sim::format(
        "campaign store: %zu group(s), %zu run(s) recorded "
        "(workload %s%s)\n",
        header.numGroups, totalRuns, header.workload.c_str(),
        header.numCheckpoints
            ? sim::format(", %zu checkpoints",
                          header.numCheckpoints)
                  .c_str()
            : "");
    if (plan.valid)
        s += sim::format(
            "budget plan: %zu runs of %llu txns per group\n",
            plan.numRuns,
            static_cast<unsigned long long>(plan.runLength));
    if (ckpt.valid)
        s += sim::format(
            "checkpoint library %s: %zu entr%s, %llu byte(s); last "
            "run restored %zu, warmed %zu\n",
            ckpt.dir.c_str(), ckpt.entries,
            ckpt.entries == 1 ? "y" : "ies",
            static_cast<unsigned long long>(ckpt.bytes),
            ckpt.restored, ckpt.warmed);
    if (segmentCount)
        s += sim::format(
            "compacted: %zu run(s) in %zu segment(s), %zu in the "
            "journal tail\n", segmentRuns, segmentCount, tailRuns);
    for (std::size_t g = 0; g < runsPerGroup.size(); ++g)
        s += sim::format("  %-24s %zu run(s)\n",
                         groupNames[g].c_str(), runsPerGroup[g]);
    return s;
}

CampaignStatus
campaignStatus(const std::string &dir)
{
    auto store = ResultStore::openReadOnly(dir);
    CampaignStatus st;
    st.header = store->header();
    st.plan = store->plan();
    st.ckpt = store->ckptStats();
    st.totalRuns = store->totalRuns();
    st.segmentCount = store->segmentCount();
    st.segmentRuns = store->segmentRunCount();
    st.tailRuns = store->tailRunCount();
    const std::size_t slots =
        st.header.numCheckpoints ? st.header.numCheckpoints : 1;
    for (std::size_t g = 0; g < st.header.numGroups; ++g) {
        st.runsPerGroup.push_back(store->runsInGroup(g));
        std::string name = g / slots < st.header.configNames.size()
                               ? st.header.configNames[g / slots]
                               : sim::format("config%zu", g / slots);
        if (st.header.numCheckpoints)
            name += sim::format(" @ckpt%zu", g % slots);
        st.groupNames.push_back(name);
    }
    return st;
}

CampaignReport
campaignReport(const std::string &dir, double confidence)
{
    auto store = ResultStore::openReadOnly(dir);
    const StoreHeader &h = store->header();
    const std::size_t slots =
        h.numCheckpoints ? h.numCheckpoints : 1;
    const std::size_t numConfigs =
        slots ? h.numGroups / slots : 0;

    auto nameOf = [&](std::size_t cfg, std::size_t ck) {
        std::string name = cfg < h.configNames.size()
                               ? h.configNames[cfg]
                               : sim::format("config%zu", cfg);
        if (h.numCheckpoints)
            name += sim::format(" @ckpt%zu", ck);
        return name;
    };

    CampaignReport rep;
    rep.text = sim::format(
        "campaign report (%zu run(s), workload %s)\n",
        store->totalRuns(), h.workload.c_str());

    // A store with no completed runs yet (freshly created, or a
    // daemon campaign still in its pilot) has nothing to summarize;
    // say so instead of printing an empty table per group.
    if (store->totalRuns() == 0) {
        rep.text +=
            "\nno completed runs recorded yet — nothing to "
            "report.\nrun `varsim campaign run` (or let the serve "
            "daemon finish) and try again; `varsim campaign "
            "status` shows per-group progress.\n";
        return rep;
    }

    // Presence only, no counts: resumed and uninterrupted campaigns
    // warm different amounts yet must report byte-identically.
    if (store->ckptStats().valid)
        rep.text += sim::format(
            "note: warm-up checkpoints served from library %s "
            "(restored snapshots are bit-identical to re-warmed "
            "ones)\n",
            store->ckptStats().dir.c_str());

    for (std::size_t g = 0; g < h.numGroups; ++g) {
        const auto xs = store->groupMetric(g);
        rep.text += sim::format("\n%s:\n",
                                nameOf(g / slots, g % slots)
                                    .c_str());
        if (xs.size() < 2) {
            rep.text += sim::format("  %zu run(s): too few for "
                                    "statistics\n", xs.size());
            continue;
        }
        rep.text +=
            "  " + core::analyze(xs).toString() + "\n";
        const auto ci =
            stats::meanConfidenceInterval(xs, confidence);
        rep.text += sim::format(
            "  %.0f%% CI for the mean: [%.0f, %.0f]\n",
            100.0 * confidence, ci.lo, ci.hi);
        // Sampled runs: surface the second uncertainty level (the
        // average within-run sampling CI) next to the run-to-run
        // one, so the reader sees how much of the spread the
        // estimator itself contributes.
        const auto sEnabled =
            store->groupMetricNamed(g, "sim.sampled.enabled");
        if (!sEnabled.empty() && sEnabled.front() != 0.0) {
            const auto sLo = store->groupMetricNamed(
                g, "sim.sampled.cpt_lo");
            const auto sHi = store->groupMetricNamed(
                g, "sim.sampled.cpt_hi");
            const auto sWin = store->groupMetricNamed(
                g, "sim.sampled.windows");
            const std::size_t n =
                std::min(sLo.size(), sHi.size());
            if (n > 0) {
                double half = 0.0, wins = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                    half += (sHi[i] - sLo[i]) / 2.0;
                half /= static_cast<double>(n);
                for (double w : sWin)
                    wins += w;
                if (!sWin.empty())
                    wins /= static_cast<double>(sWin.size());
                const double mean =
                    stats::summarize(xs).mean;
                rep.text += sim::format(
                    "  sampled estimates: %.1f window(s)/run, "
                    "avg within-run CI half-width %.1f (%.2f%% "
                    "of the mean)\n",
                    wins, half,
                    mean != 0.0 ? 100.0 * half / mean : 0.0);
            }
        }
    }

    bool anyPair = false;
    for (std::size_t ck = 0; ck < slots; ++ck) {
        for (std::size_t a = 0; a < numConfigs; ++a) {
            for (std::size_t b = a + 1; b < numConfigs; ++b) {
                const auto xa =
                    store->groupMetric(a * slots + ck);
                const auto xb =
                    store->groupMetric(b * slots + ck);
                if (xa.size() < 2 || xb.size() < 2)
                    continue;
                if (!anyPair) {
                    rep.text += sim::format(
                        "\ncomparisons (at %.0f%% confidence):\n",
                        100.0 * confidence);
                    anyPair = true;
                }
                const auto cmp =
                    core::compare(xa, xb, confidence);
                rep.text += sim::format(
                    "  %s vs %s:\n    %s\n",
                    nameOf(a, ck).c_str(), nameOf(b, ck).c_str(),
                    cmp.verdict().c_str());
            }
        }
    }
    return rep;
}

CampaignReport
campaignMetricReport(const std::string &dir,
                     const std::string &metric, double confidence)
{
    auto store = ResultStore::openReadOnly(dir);
    const StoreHeader &h = store->header();
    const std::size_t slots =
        h.numCheckpoints ? h.numCheckpoints : 1;

    CampaignReport rep;
    if (metric == "list") {
        rep.text = "available metrics:\n";
        for (const auto &name : store->metricNames())
            rep.text += "  " + name + "\n";
        return rep;
    }

    if (store->totalRuns() == 0) {
        rep.text = sim::format(
            "campaign metric report: %s\n\nno completed runs "
            "recorded yet — nothing to report.\n", metric.c_str());
        return rep;
    }

    auto nameOf = [&](std::size_t cfg, std::size_t ck) {
        std::string name = cfg < h.configNames.size()
                               ? h.configNames[cfg]
                               : sim::format("config%zu", cfg);
        if (h.numCheckpoints)
            name += sim::format(" @ckpt%zu", ck);
        return name;
    };

    bool any = false;
    rep.text = sim::format("campaign metric report: %s\n",
                           metric.c_str());
    for (std::size_t g = 0; g < h.numGroups; ++g) {
        const auto xs = store->groupMetricNamed(g, metric);
        rep.text += sim::format("\n%s:\n",
                                nameOf(g / slots, g % slots)
                                    .c_str());
        if (xs.size() < 2) {
            rep.text += sim::format("  %zu run(s) with this metric: "
                                    "too few for statistics\n",
                                    xs.size());
            continue;
        }
        any = true;
        rep.text += "  " + core::analyze(xs).toString() + "\n";
        const auto ci =
            stats::meanConfidenceInterval(xs, confidence);
        rep.text += sim::format(
            "  %.0f%% CI for the mean: [%.4g, %.4g]\n",
            100.0 * confidence, ci.lo, ci.hi);
    }
    if (!any) {
        rep.text += "\nno group has 2+ runs carrying this metric; "
                    "run `campaign report --metric list` for the "
                    "recorded names\n";
    }
    return rep;
}

} // namespace campaign
} // namespace varsim
