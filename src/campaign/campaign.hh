/**
 * @file
 * Umbrella header: the campaign subsystem's public API.
 *
 * A campaign is the paper's methodology run as a closed loop:
 * @code
 *   using namespace varsim;
 *   campaign::CampaignSpec spec;
 *   spec.configs = {{"2-way", sysA}, {"4-way", sysB}};
 *   spec.stop.alpha = 0.05;           // stop when the comparison
 *   spec.stop.relativeError = 0.02;   // and the CIs are safe
 *   auto outcome = campaign::runCampaign(spec, "oltp-assoc.camp");
 *   std::puts(campaign::campaignReport("oltp-assoc.camp")
 *                 .text.c_str());
 * @endcode
 *
 * Kill the process at any point; rerunning runCampaign() resumes
 * from the durable store without repeating completed runs.
 */

#ifndef VARSIM_CAMPAIGN_CAMPAIGN_HH
#define VARSIM_CAMPAIGN_CAMPAIGN_HH

#include "campaign/controller.hh"
#include "campaign/engine.hh"
#include "campaign/spec.hh"
#include "campaign/store.hh"

#endif // VARSIM_CAMPAIGN_CAMPAIGN_HH
