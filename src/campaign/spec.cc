#include "campaign/spec.hh"

#include "sim/logging.hh"

namespace varsim
{
namespace campaign
{

namespace
{

/** FNV-1a over the bytes of a string. */
std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Append one "key=value;" token to the canonical spec string. */
template <typename T>
void
field(std::string &out, const char *key, T value)
{
    out += key;
    out += '=';
    out += std::to_string(value);
    out += ';';
}

void
field(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += '=';
    out += value;
    out += ';';
}

/** Canonical string of the knobs experiments actually vary. */
void
systemFields(std::string &out, const core::SystemConfig &sys)
{
    field(out, "nodes", sys.mem.numNodes);
    field(out, "block", sys.mem.blockBytes);
    field(out, "l1", sys.mem.l1Size);
    field(out, "l1w", sys.mem.l1Assoc);
    field(out, "l2", sys.mem.l2Size);
    field(out, "l2w", sys.mem.l2Assoc);
    field(out, "dram", static_cast<unsigned long long>(
                           sys.mem.dramLatency));
    field(out, "perturb", static_cast<unsigned long long>(
                              sys.mem.perturbMaxNs));
    field(out, "proto", static_cast<int>(sys.mem.protocol));
    field(out, "prefetch", sys.mem.l2NextLinePrefetch ? 1 : 0);
    field(out, "model", static_cast<int>(sys.cpu.model));
    field(out, "rob", sys.cpu.robEntries);
    field(out, "quantum",
          static_cast<unsigned long long>(sys.os.quantum));
}

} // anonymous namespace

std::string
CampaignSpec::groupName(std::size_t group) const
{
    std::string name = configs.at(configOf(group)).name;
    if (numCheckpoints)
        name += sim::format(" @ckpt%zu", ckptOf(group));
    return name;
}

std::uint64_t
CampaignSpec::groupSeed(std::size_t group, std::size_t runIdx) const
{
    VARSIM_ASSERT(runIdx < seedStride,
                  "run index %zu exceeds the seed stride %llu: "
                  "group seed ranges would collide",
                  runIdx,
                  static_cast<unsigned long long>(seedStride));
    const std::uint64_t offset =
        static_cast<std::uint64_t>(group) * seedStride +
        static_cast<std::uint64_t>(runIdx);
    VARSIM_ASSERT(offset / seedStride ==
                          static_cast<std::uint64_t>(group) &&
                      baseSeed <= UINT64_MAX - offset,
                  "campaign seed space overflows 64 bits "
                  "(baseSeed %llu, group %zu, stride %llu)",
                  static_cast<unsigned long long>(baseSeed), group,
                  static_cast<unsigned long long>(seedStride));
    return baseSeed + offset;
}

std::uint64_t
CampaignSpec::fingerprint() const
{
    std::string canon;
    canon.reserve(512);
    for (const ConfigVariant &cv : configs) {
        field(canon, "name", cv.name);
        systemFields(canon, cv.sys);
    }
    field(canon, "wl", static_cast<int>(wl.kind));
    field(canon, "wlseed",
          static_cast<unsigned long long>(wl.seed));
    field(canon, "tpc", wl.threadsPerCpu);
    field(canon, "warmup",
          static_cast<unsigned long long>(run.warmupTxns));
    field(canon, "txns",
          static_cast<unsigned long long>(run.measureTxns));
    field(canon, "window",
          static_cast<unsigned long long>(run.windowTxns));
    field(canon, "ckpts", numCheckpoints);
    field(canon, "step",
          static_cast<unsigned long long>(checkpointStep));
    field(canon, "strategy", static_cast<int>(strategy));
    field(canon, "seed",
          static_cast<unsigned long long>(baseSeed));
    field(canon, "stride",
          static_cast<unsigned long long>(seedStride));
    field(canon, "fixed", stop.fixedRuns);
    field(canon, "pilot", stop.pilotRuns);
    field(canon, "max", stop.maxRuns);
    field(canon, "relerr", sim::format("%.9g", stop.relativeError));
    field(canon, "alpha", sim::format("%.9g", stop.alpha));
    field(canon, "conf", sim::format("%.9g", stop.confidence));
    field(canon, "budget",
          static_cast<unsigned long long>(budgetTxns));
    return fnv1a(1469598103934665603ull, canon);
}

void
CampaignSpec::validate() const
{
    if (configs.empty())
        sim::fatal("campaign spec has no configurations");
    for (const ConfigVariant &cv : configs)
        if (cv.name.empty())
            sim::fatal("campaign configuration without a name");
    if (numCheckpoints && checkpointStep == 0)
        sim::fatal("campaign with checkpoints needs a nonzero "
                   "checkpoint step");
    if (stop.fixedRuns == 0) {
        if (stop.pilotRuns < 2)
            sim::fatal("adaptive campaigns need pilotRuns >= 2 "
                       "(got %zu)", stop.pilotRuns);
        if (stop.maxRuns < stop.pilotRuns)
            sim::fatal("maxRuns (%zu) below pilotRuns (%zu)",
                       stop.maxRuns, stop.pilotRuns);
    }
    const std::size_t perGroup =
        stop.fixedRuns ? stop.fixedRuns : stop.maxRuns;
    if (perGroup == 0)
        sim::fatal("campaign would run zero runs per group");
    if (perGroup > seedStride)
        sim::fatal("per-group run cap %zu exceeds the seed stride "
                   "%llu; seeds would collide between groups",
                   perGroup,
                   static_cast<unsigned long long>(seedStride));
    if (stop.relativeError < 0.0 || stop.alpha < 0.0 ||
        stop.alpha >= 1.0)
        sim::fatal("nonsensical stopping thresholds (relative "
                   "error %g, alpha %g)", stop.relativeError,
                   stop.alpha);
    if (stop.confidence <= 0.0 || stop.confidence >= 1.0)
        sim::fatal("confidence must be in (0, 1), got %g",
                   stop.confidence);
}

} // namespace campaign
} // namespace varsim
