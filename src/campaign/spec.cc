#include "campaign/spec.hh"

#include "ckpt/key.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace campaign
{

namespace
{

/**
 * Append one "key=value;" token to the canonical spec string. The
 * rendering (and the system-knob subset, ckpt::appendSystemFields)
 * is shared with the checkpoint-library key so a spec fingerprint
 * and a checkpoint digest canonicalize configurations identically.
 */
template <typename T>
void
field(std::string &out, const char *key, T value)
{
    ckpt::appendField(out, key, std::to_string(value));
}

void
field(std::string &out, const char *key, const std::string &value)
{
    ckpt::appendField(out, key, value);
}

} // anonymous namespace

std::string
CampaignSpec::groupName(std::size_t group) const
{
    std::string name = configs.at(configOf(group)).name;
    if (numCheckpoints)
        name += sim::format(" @ckpt%zu", ckptOf(group));
    return name;
}

std::uint64_t
CampaignSpec::groupSeed(std::size_t group, std::size_t runIdx) const
{
    VARSIM_ASSERT(runIdx < seedStride,
                  "run index %zu exceeds the seed stride %llu: "
                  "group seed ranges would collide",
                  runIdx,
                  static_cast<unsigned long long>(seedStride));
    const std::uint64_t offset =
        static_cast<std::uint64_t>(group) * seedStride +
        static_cast<std::uint64_t>(runIdx);
    VARSIM_ASSERT(offset / seedStride ==
                          static_cast<std::uint64_t>(group) &&
                      baseSeed <= UINT64_MAX - offset,
                  "campaign seed space overflows 64 bits "
                  "(baseSeed %llu, group %zu, stride %llu)",
                  static_cast<unsigned long long>(baseSeed), group,
                  static_cast<unsigned long long>(seedStride));
    return baseSeed + offset;
}

std::uint64_t
CampaignSpec::fingerprint() const
{
    std::string canon;
    canon.reserve(512);
    for (const ConfigVariant &cv : configs) {
        field(canon, "name", cv.name);
        ckpt::appendSystemFields(canon, cv.sys);
    }
    field(canon, "wl", static_cast<int>(wl.kind));
    field(canon, "wlseed",
          static_cast<unsigned long long>(wl.seed));
    field(canon, "tpc", wl.threadsPerCpu);
    field(canon, "warmup",
          static_cast<unsigned long long>(run.warmupTxns));
    field(canon, "txns",
          static_cast<unsigned long long>(run.measureTxns));
    field(canon, "window",
          static_cast<unsigned long long>(run.windowTxns));
    field(canon, "ckpts", numCheckpoints);
    field(canon, "step",
          static_cast<unsigned long long>(checkpointStep));
    field(canon, "strategy", static_cast<int>(strategy));
    field(canon, "seed",
          static_cast<unsigned long long>(baseSeed));
    field(canon, "stride",
          static_cast<unsigned long long>(seedStride));
    field(canon, "fixed", stop.fixedRuns);
    field(canon, "pilot", stop.pilotRuns);
    field(canon, "max", stop.maxRuns);
    field(canon, "relerr", sim::format("%.9g", stop.relativeError));
    field(canon, "alpha", sim::format("%.9g", stop.alpha));
    field(canon, "conf", sim::format("%.9g", stop.confidence));
    field(canon, "budget",
          static_cast<unsigned long long>(budgetTxns));
    // The domained engine changes results (+Λ cross-domain skew), so
    // it is part of the identity — but only when actually enabled,
    // keeping every historical fingerprint stable. The thread count
    // is deliberately excluded: results are identical for any N.
    if (run.par.enabled()) {
        field(canon, "intra", 1);
        field(canon, "la",
              static_cast<unsigned long long>(run.par.lookahead));
    }
    // Sampled runs measure an estimate, not the full population — a
    // different experiment. Same only-when-enabled rule as above.
    if (run.sample.enabled()) {
        field(canon, "sdesign",
              static_cast<int>(run.sample.design));
        field(canon, "speriod",
              static_cast<unsigned long long>(
                  run.sample.periodTxns));
        field(canon, "swarm",
              static_cast<unsigned long long>(
                  run.sample.warmupTxns));
        field(canon, "smeasure",
              static_cast<unsigned long long>(
                  run.sample.measureTxns));
        field(canon, "sconf",
              sim::format("%.9g", run.sample.confidence));
        field(canon, "soffseed",
              static_cast<unsigned long long>(
                  run.sample.offsetSeed));
    }
    return ckpt::fnv1a64(ckpt::kFnvOffsetBasis, canon);
}

bool
CampaignSpec::check(std::string *why) const
{
    auto bad = [&](std::string msg) {
        if (why)
            *why = std::move(msg);
        return false;
    };
    if (configs.empty())
        return bad("campaign spec has no configurations");
    for (const ConfigVariant &cv : configs)
        if (cv.name.empty())
            return bad("campaign configuration without a name");
    if (numCheckpoints && checkpointStep == 0)
        return bad("campaign with checkpoints needs a nonzero "
                   "checkpoint step");
    if (stop.fixedRuns == 0) {
        if (stop.pilotRuns < 2)
            return bad(sim::format(
                "adaptive campaigns need pilotRuns >= 2 (got %zu)",
                stop.pilotRuns));
        if (stop.maxRuns < stop.pilotRuns)
            return bad(sim::format(
                "maxRuns (%zu) below pilotRuns (%zu)", stop.maxRuns,
                stop.pilotRuns));
    }
    const std::size_t perGroup =
        stop.fixedRuns ? stop.fixedRuns : stop.maxRuns;
    if (perGroup == 0)
        return bad("campaign would run zero runs per group");
    if (perGroup > seedStride)
        return bad(sim::format(
            "per-group run cap %zu exceeds the seed stride %llu; "
            "seeds would collide between groups", perGroup,
            static_cast<unsigned long long>(seedStride)));
    if (stop.relativeError < 0.0 || stop.alpha < 0.0 ||
        stop.alpha >= 1.0)
        return bad(sim::format(
            "nonsensical stopping thresholds (relative error %g, "
            "alpha %g)", stop.relativeError, stop.alpha));
    if (stop.confidence <= 0.0 || stop.confidence >= 1.0)
        return bad(sim::format("confidence must be in (0, 1), got "
                               "%g", stop.confidence));
    return true;
}

void
CampaignSpec::validate() const
{
    std::string why;
    if (!check(&why))
        sim::fatal("%s", why.c_str());
}

} // namespace campaign
} // namespace varsim
