/**
 * @file
 * The adaptive stopping controller: the paper's Section 5.1
 * sample-size machinery applied after each group's pilot batch.
 *
 * Given the metric values recorded so far, decideTargets() returns
 * the number of runs every cell group should end up with. The
 * decision for a group uses ONLY its (and its comparison partners')
 * pilot prefix — the first StoppingRule::pilotRuns run indices — so
 * the decision is a pure function of data that is identical whether
 * the campaign ran straight through or was killed and resumed. That
 * invariant is what makes resumed campaigns reproduce uninterrupted
 * ones bit for bit.
 */

#ifndef VARSIM_CAMPAIGN_CONTROLLER_HH
#define VARSIM_CAMPAIGN_CONTROLLER_HH

#include <string>
#include <vector>

#include "campaign/spec.hh"

namespace varsim
{
namespace campaign
{

/** One group's verdict from the controller. */
struct GroupDecision
{
    /** Total runs this group should have. */
    std::size_t target = 0;

    /** Pilot coefficient of variation, percent (0 until pilot). */
    double covPercent = 0.0;

    /** Demand of the mean-precision criterion (0 = inactive). */
    std::size_t needPrecision = 0;

    /** Demand of the pairwise t-test criterion (0 = inactive). */
    std::size_t needPairwise = 0;

    /** Human-readable one-line rationale. */
    std::string reason;
};

/**
 * Decide per-group run targets from recorded metrics.
 *
 * @p groupMetric holds, per group, the contiguous run-index prefix
 * of recorded metric values (ResultStore::groupMetric). Groups whose
 * pilot is incomplete get target = pilotRuns (or fixedRuns); groups
 * with a complete pilot get the larger of the mean-precision and
 * pairwise-significance demands, clamped to [pilotRuns, maxRuns].
 */
std::vector<GroupDecision>
decideTargets(const CampaignSpec &spec,
              const std::vector<std::vector<double>> &groupMetric);

/**
 * Two-level stopping for sampled campaigns. @p groupCiHalf holds,
 * per group, the within-run sampling CI half-widths aligned with
 * @p groupMetric (ResultStore's sim.sampled.cpt_lo/hi columns). A
 * sampled run's recorded value is itself an estimate, so the
 * run-to-run scatter understates the real uncertainty; the
 * mean-precision criterion therefore sizes the sample with the
 * effective variation
 *
 *     cov_eff = sqrt(cov_between^2 + cov_within^2)
 *
 * where cov_within derives from the pilot-average within-run
 * standard error (~ half-width / 2 at 95%). Decisions stay a pure
 * function of the pilot prefix. Empty half-width vectors reduce to
 * the single-level rule above.
 */
std::vector<GroupDecision>
decideTargets(const CampaignSpec &spec,
              const std::vector<std::vector<double>> &groupMetric,
              const std::vector<std::vector<double>> &groupCiHalf);

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_CONTROLLER_HH
