#include "campaign/store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>

#include "sim/jsonl.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace campaign
{

using sim::JsonLine;
using sim::JsonWriter;

namespace
{

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.jsonl";
}

/** fsync a directory so a freshly created manifest survives a crash. */
void
syncDirectory(const std::string &dir)
{
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        return; // best effort: not all filesystems allow this
    ::fsync(dfd);
    ::close(dfd);
}

std::string
headerLine(const StoreHeader &h)
{
    JsonWriter w;
    w.field("type", std::string("header"));
    w.field("version", static_cast<std::uint64_t>(h.version));
    w.field("fingerprint", sim::format(
                               "%016llx",
                               static_cast<unsigned long long>(
                                   h.fingerprint)));
    w.field("groups", static_cast<std::uint64_t>(h.numGroups));
    w.field("checkpoints",
            static_cast<std::uint64_t>(h.numCheckpoints));
    w.field("workload", h.workload);
    w.field("configs", h.configNames);
    return w.str();
}

} // anonymous namespace

namespace
{

/**
 * Take the writer's exclusive advisory lock on an open manifest fd.
 * Returns false with @p err set when another process (daemon or
 * CLI campaign) already holds it. The lock lives as long as the fd.
 */
bool
lockManifest(int fd, const std::string &dir, std::string *err)
{
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0)
        return true;
    if (err) {
        if (errno == EWOULDBLOCK)
            *err = sim::format(
                "campaign store %s is locked by another process "
                "(a serve daemon or a running `varsim campaign`); "
                "refusing concurrent appends — use `campaign "
                "status`/`report` to read, or stop the other "
                "writer first", dir.c_str());
        else
            *err = sim::format("cannot lock campaign store %s: %s",
                               dir.c_str(), std::strerror(errno));
    }
    return false;
}

} // anonymous namespace

std::unique_ptr<ResultStore>
ResultStore::tryOpenOrCreate(const std::string &dir,
                             const StoreHeader &header,
                             std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err)
            *err = std::move(msg);
        return std::unique_ptr<ResultStore>();
    };

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return fail(sim::format(
            "cannot create campaign directory %s: %s", dir.c_str(),
            ec.message().c_str()));

    std::unique_ptr<ResultStore> store(new ResultStore);
    store->dir_ = dir;
    const std::string path = manifestPath(dir);
    store->fd = ::open(path.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (store->fd < 0)
        return fail(sim::format("cannot open %s: %s", path.c_str(),
                                std::strerror(errno)));
    if (!lockManifest(store->fd, dir, err))
        return nullptr;

    // Decide created-vs-resumed *after* winning the lock: a loser
    // of a concurrent create race must replay the winner's header,
    // not append a second one.
    struct stat sb;
    const bool existed =
        ::fstat(store->fd, &sb) == 0 && sb.st_size > 0;

    if (existed) {
        store->replay(path);
        if (store->header_.fingerprint != header.fingerprint)
            return fail(sim::format(
                "campaign store %s was created for a different "
                "spec (fingerprint %016llx, expected %016llx); "
                "refusing to mix results",
                dir.c_str(),
                static_cast<unsigned long long>(
                    store->header_.fingerprint),
                static_cast<unsigned long long>(
                    header.fingerprint)));
    } else {
        store->header_ = header;
        std::lock_guard<std::mutex> lock(store->mu);
        store->appendLine(headerLine(header));
        syncDirectory(dir);
    }
    return store;
}

std::unique_ptr<ResultStore>
ResultStore::openOrCreate(const std::string &dir,
                          const StoreHeader &header)
{
    std::string err;
    auto store = tryOpenOrCreate(dir, header, &err);
    if (!store)
        sim::fatal("%s", err.c_str());
    return store;
}

std::unique_ptr<ResultStore>
ResultStore::open(const std::string &dir)
{
    const std::string path = manifestPath(dir);
    if (!std::filesystem::exists(path))
        sim::fatal("no campaign store at %s (missing %s)",
                   dir.c_str(), path.c_str());
    std::unique_ptr<ResultStore> store(new ResultStore);
    store->dir_ = dir;
    store->fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (store->fd < 0)
        sim::fatal("cannot open %s: %s", path.c_str(),
                   std::strerror(errno));
    std::string err;
    if (!lockManifest(store->fd, dir, &err))
        sim::fatal("%s", err.c_str());
    store->replay(path);
    return store;
}

std::unique_ptr<ResultStore>
ResultStore::openReadOnly(const std::string &dir)
{
    const std::string path = manifestPath(dir);
    if (!std::filesystem::exists(path))
        sim::fatal("no campaign store at %s (missing %s)",
                   dir.c_str(), path.c_str());
    std::unique_ptr<ResultStore> store(new ResultStore);
    store->dir_ = dir;
    store->replay(path); // fd stays -1: reader, no lock, no repair
    return store;
}

void
ResultStore::replay(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        sim::fatal("cannot read %s", path.c_str());
    const std::string data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t dropped = 0;
    std::size_t pos = 0;
    while (pos < data.size()) {
        ++lineNo;
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos) {
            // An unterminated final line is a torn append: the
            // single write(2) behind it never completed, so the
            // record was never acknowledged. Discard it and
            // truncate it away so the next append starts on a
            // clean line instead of gluing onto the debris.
            sim::warn("%s: discarding torn final line %zu "
                      "(crash during append)", path.c_str(),
                      lineNo);
            // Read-only opens (fd < 0) just drop the debris from
            // the replay; only the lock-holding writer repairs the
            // file so its next append starts on a clean line.
            if (fd >= 0 &&
                ::ftruncate(fd, static_cast<off_t>(pos)) != 0)
                sim::fatal("cannot truncate torn tail of %s: %s",
                           path.c_str(), std::strerror(errno));
            break;
        }
        const std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        JsonLine obj;
        if (!obj.parse(line)) {
            // Newline-terminated damage is not a torn append; the
            // records around it are still genuine — keep going,
            // but tell the user.
            sim::warn("%s:%zu: malformed record skipped",
                      path.c_str(), lineNo);
            ++dropped;
            continue;
        }
        const std::string type = obj.str("type");
        if (type == "header") {
            header_.version = static_cast<int>(obj.num("version"));
            header_.fingerprint = std::strtoull(
                obj.str("fingerprint").c_str(), nullptr, 16);
            header_.numGroups = obj.num("groups");
            header_.numCheckpoints = obj.num("checkpoints");
            header_.workload = obj.str("workload");
            header_.configNames = obj.list("configs");
            sawHeader = true;
        } else if (type == "plan") {
            plan_.valid = true;
            plan_.runLength = obj.num("run_length");
            plan_.numRuns = obj.num("num_runs");
        } else if (type == "ckpt_stats") {
            ckpt_.valid = true;
            ckpt_.dir = obj.str("dir");
            ckpt_.restored = obj.num("restored");
            ckpt_.warmed = obj.num("warmed");
            ckpt_.entries = obj.num("entries");
            ckpt_.bytes = obj.num("bytes");
        } else if (type == "run") {
            RunRecord r;
            r.group = obj.num("group");
            r.configIdx = obj.num("config");
            r.ckptIdx = obj.num("checkpoint");
            r.runIdx = obj.num("run");
            r.seed = obj.num("seed");
            r.cyclesPerTxn = obj.real("cycles_per_txn");
            r.runtimeTicks = obj.num("runtime_ticks");
            r.txns = obj.num("txns");
            runs.try_emplace({r.group, r.runIdx}, r);
        } else if (type == "metrics") {
            // Companion record: attach the dump to its run. The run
            // record always precedes it (both are appended under one
            // lock), so an orphan means a hand-edited manifest.
            const std::size_t g = obj.num("group");
            const std::size_t i = obj.num("run");
            const auto it = runs.find({g, i});
            if (it == runs.end()) {
                sim::warn("%s:%zu: metrics record for unknown run "
                          "(group %zu, run %zu) skipped",
                          path.c_str(), lineNo, g, i);
                continue;
            }
            it->second.metrics = obj.realsWithPrefix("m:");
        } else {
            sim::warn("%s:%zu: unknown record type '%s' skipped",
                      path.c_str(), lineNo, type.c_str());
        }
    }
    if (!sawHeader)
        sim::fatal("%s has no header record; not a campaign store",
                   path.c_str());
    if (dropped)
        sim::warn("%s: %zu malformed mid-file record(s); the "
                  "manifest may have been edited", path.c_str(),
                  dropped);
}

void
ResultStore::appendLine(const std::string &line)
{
    const std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(fd, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            sim::fatal("write to campaign manifest failed: %s",
                       std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0)
        sim::fatal("fsync of campaign manifest failed: %s",
                   std::strerror(errno));
}

bool
ResultStore::hasRun(std::size_t group, std::size_t runIdx) const
{
    std::lock_guard<std::mutex> lock(mu);
    return runs.count({group, runIdx}) > 0;
}

std::size_t
ResultStore::runsInGroup(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto lo = runs.lower_bound({group, 0});
    const auto hi = runs.lower_bound({group + 1, 0});
    return static_cast<std::size_t>(std::distance(lo, hi));
}

std::size_t
ResultStore::totalRuns() const
{
    std::lock_guard<std::mutex> lock(mu);
    return runs.size();
}

std::vector<double>
ResultStore::groupMetric(std::size_t group) const
{
    std::vector<double> xs;
    for (const RunRecord &r : groupRuns(group))
        xs.push_back(r.cyclesPerTxn);
    return xs;
}

std::vector<RunRecord>
ResultStore::groupRuns(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RunRecord> out;
    for (std::size_t i = 0;; ++i) {
        const auto it = runs.find({group, i});
        if (it == runs.end())
            break;
        out.push_back(it->second);
    }
    return out;
}

void
ResultStore::appendRun(const RunRecord &rec)
{
    JsonWriter w;
    w.field("type", std::string("run"));
    w.field("group", static_cast<std::uint64_t>(rec.group));
    w.field("config", static_cast<std::uint64_t>(rec.configIdx));
    w.field("checkpoint", static_cast<std::uint64_t>(rec.ckptIdx));
    w.field("run", static_cast<std::uint64_t>(rec.runIdx));
    w.field("seed", rec.seed);
    w.field("cycles_per_txn", rec.cyclesPerTxn);
    w.field("runtime_ticks", rec.runtimeTicks);
    w.field("txns", rec.txns);

    std::lock_guard<std::mutex> lock(mu);
    if (!runs.try_emplace({rec.group, rec.runIdx}, rec).second) {
        sim::warn("duplicate run record (group %zu, run %zu) "
                  "dropped — two shards with the same index?",
                  rec.group, rec.runIdx);
        return;
    }
    appendLine(w.str());

    // The registry dump travels as a companion record so the "run"
    // line's schema — what pre-existing stores hold — is untouched.
    // Metric names carry an "m:" prefix to keep them disjoint from
    // the record's own keys.
    if (!rec.metrics.empty()) {
        JsonWriter m;
        m.field("type", std::string("metrics"));
        m.field("group", static_cast<std::uint64_t>(rec.group));
        m.field("run", static_cast<std::uint64_t>(rec.runIdx));
        for (const auto &kv : rec.metrics)
            m.field("m:" + kv.first, kv.second);
        appendLine(m.str());
    }
}

std::vector<double>
ResultStore::groupMetricNamed(std::size_t group,
                              const std::string &name) const
{
    std::vector<double> xs;
    for (const RunRecord &r : groupRuns(group)) {
        if (name == "cycles_per_txn") {
            xs.push_back(r.cyclesPerTxn);
            continue;
        }
        if (name == "runtime_ticks") {
            xs.push_back(static_cast<double>(r.runtimeTicks));
            continue;
        }
        if (name == "txns") {
            xs.push_back(static_cast<double>(r.txns));
            continue;
        }
        bool found = false;
        for (const auto &kv : r.metrics) {
            if (kv.first == name) {
                xs.push_back(kv.second);
                found = true;
                break;
            }
        }
        // A run without the metric (recorded by an older binary)
        // ends the prefix: everything returned is comparable.
        if (!found)
            break;
    }
    return xs;
}

std::vector<std::string>
ResultStore::metricNames() const
{
    std::vector<std::string> out = {"cycles_per_txn",
                                    "runtime_ticks", "txns"};
    std::set<std::string> extra;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &entry : runs)
            for (const auto &kv : entry.second.metrics)
                extra.insert(kv.first);
    }
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
}

void
ResultStore::appendPlan(const PlanRecord &plan)
{
    std::lock_guard<std::mutex> lock(mu);
    VARSIM_ASSERT(!plan_.valid,
                  "budget plan recorded twice in one store");
    JsonWriter w;
    w.field("type", std::string("plan"));
    w.field("run_length", plan.runLength);
    w.field("num_runs", static_cast<std::uint64_t>(plan.numRuns));
    appendLine(w.str());
    plan_ = plan;
    plan_.valid = true;
}

void
ResultStore::appendCkptStats(const CkptStatsRecord &rec)
{
    JsonWriter w;
    w.field("type", std::string("ckpt_stats"));
    w.field("dir", rec.dir);
    w.field("restored", static_cast<std::uint64_t>(rec.restored));
    w.field("warmed", static_cast<std::uint64_t>(rec.warmed));
    w.field("entries", static_cast<std::uint64_t>(rec.entries));
    w.field("bytes", rec.bytes);

    std::lock_guard<std::mutex> lock(mu);
    appendLine(w.str());
    ckpt_ = rec;
    ckpt_.valid = true;
}

ResultStore::~ResultStore()
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace campaign
} // namespace varsim
