#include "campaign/store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <ostream>

#include "campaign/segment.hh"
#include "ckpt/archive.hh"
#include "sim/jsonl.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace campaign
{

using sim::JsonLine;
using sim::JsonWriter;

namespace
{

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.jsonl";
}

/** fsync a directory so a freshly created manifest survives a crash. */
void
syncDirectory(const std::string &dir)
{
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        return; // best effort: not all filesystems allow this
    ::fsync(dfd);
    ::close(dfd);
}

/**
 * Take the writer's exclusive advisory lock on the store's `.lock`
 * file. Returns the lock-holding fd, or -1 with @p err set when
 * another process (daemon or CLI campaign) already holds it. The
 * lock lives on a dedicated file rather than the manifest because
 * compaction replaces the manifest by rename(2), which would strand
 * a manifest-fd lock on the unlinked inode.
 */
int
lockStore(const std::string &dir, std::string *err)
{
    const std::string path = dir + "/.lock";
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
        if (err)
            *err = sim::format("cannot open %s: %s", path.c_str(),
                               std::strerror(errno));
        return -1;
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0)
        return fd;
    if (err) {
        if (errno == EWOULDBLOCK)
            *err = sim::format(
                "campaign store %s is locked by another process "
                "(a serve daemon or a running `varsim campaign`); "
                "refusing concurrent appends — use `campaign "
                "status`/`report` to read, or stop the other "
                "writer first", dir.c_str());
        else
            *err = sim::format("cannot lock campaign store %s: %s",
                               dir.c_str(), std::strerror(errno));
    }
    ::close(fd);
    return -1;
}

/** Auto-compaction tail threshold: env override, 0 disables. */
std::size_t
autoCompactTailFromEnv()
{
    const char *e = std::getenv("VARSIM_STORE_COMPACT_TAIL");
    if (!e || !*e)
        return 8192;
    return static_cast<std::size_t>(
        std::strtoull(e, nullptr, 10));
}

/**
 * Strict hex parse of a 64-bit fingerprint/checksum field; returns
 * false on an empty string, trailing garbage, or overflow.
 */
bool
parseHex64(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
    if (errno == ERANGE || end == s.c_str() || *end != '\0')
        return false;
    *out = static_cast<std::uint64_t>(v);
    return true;
}

} // anonymous namespace

void
GroupSummary::fold(double x)
{
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
    if (count == 1) {
        minValue = x;
        maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
}

double
GroupSummary::stddev() const
{
    if (count < 2)
        return 0.0;
    return std::sqrt(m2 / static_cast<double>(count - 1));
}

std::string
ResultStore::headerLineFor(const StoreHeader &h)
{
    JsonWriter w;
    w.field("type", std::string("header"));
    w.field("version", static_cast<std::uint64_t>(h.version));
    w.field("fingerprint", sim::format(
                               "%016llx",
                               static_cast<unsigned long long>(
                                   h.fingerprint)));
    w.field("groups", static_cast<std::uint64_t>(h.numGroups));
    w.field("checkpoints",
            static_cast<std::uint64_t>(h.numCheckpoints));
    w.field("workload", h.workload);
    w.field("configs", h.configNames);
    return w.str();
}

std::string
ResultStore::runLineFor(const RunRecord &r)
{
    JsonWriter w;
    w.field("type", std::string("run"));
    w.field("group", static_cast<std::uint64_t>(r.group));
    w.field("config", static_cast<std::uint64_t>(r.configIdx));
    w.field("checkpoint", static_cast<std::uint64_t>(r.ckptIdx));
    w.field("run", static_cast<std::uint64_t>(r.runIdx));
    w.field("seed", r.seed);
    w.field("cycles_per_txn", r.cyclesPerTxn);
    w.field("runtime_ticks", r.runtimeTicks);
    w.field("txns", r.txns);
    return w.str();
}

std::string
ResultStore::metricsLineFor(const RunRecord &r)
{
    // Metric names carry an "m:" prefix to keep them disjoint from
    // the record's own keys.
    JsonWriter w;
    w.field("type", std::string("metrics"));
    w.field("group", static_cast<std::uint64_t>(r.group));
    w.field("run", static_cast<std::uint64_t>(r.runIdx));
    for (const auto &kv : r.metrics)
        w.field("m:" + kv.first, kv.second);
    return w.str();
}

std::string
ResultStore::planLineFor(const PlanRecord &p)
{
    JsonWriter w;
    w.field("type", std::string("plan"));
    w.field("run_length", p.runLength);
    w.field("num_runs", static_cast<std::uint64_t>(p.numRuns));
    return w.str();
}

std::string
ResultStore::ckptStatsLineFor(const CkptStatsRecord &r)
{
    JsonWriter w;
    w.field("type", std::string("ckpt_stats"));
    w.field("dir", r.dir);
    w.field("restored", static_cast<std::uint64_t>(r.restored));
    w.field("warmed", static_cast<std::uint64_t>(r.warmed));
    w.field("entries", static_cast<std::uint64_t>(r.entries));
    w.field("bytes", r.bytes);
    return w.str();
}

std::unique_ptr<ResultStore>
ResultStore::tryOpenOrCreate(const std::string &dir,
                             const StoreHeader &header,
                             std::string *err)
{
    auto fail = [&](std::string msg) {
        if (err)
            *err = std::move(msg);
        return std::unique_ptr<ResultStore>();
    };

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return fail(sim::format(
            "cannot create campaign directory %s: %s", dir.c_str(),
            ec.message().c_str()));

    std::unique_ptr<ResultStore> store(new ResultStore);
    store->dir_ = dir;
    store->lockFd = lockStore(dir, err);
    if (store->lockFd < 0)
        return nullptr;
    const std::string path = manifestPath(dir);
    store->fd = ::open(path.c_str(),
                       O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (store->fd < 0)
        return fail(sim::format("cannot open %s: %s", path.c_str(),
                                std::strerror(errno)));
    store->autoCompactTail = autoCompactTailFromEnv();

    // Decide created-vs-resumed *after* winning the lock: a loser
    // of a concurrent create race must replay the winner's header,
    // not append a second one.
    struct stat sb;
    const bool existed =
        ::fstat(store->fd, &sb) == 0 && sb.st_size > 0;

    if (existed) {
        store->replay(path);
        if (store->header_.fingerprint != header.fingerprint)
            return fail(sim::format(
                "campaign store %s was created for a different "
                "spec (fingerprint %016llx, expected %016llx); "
                "refusing to mix results",
                dir.c_str(),
                static_cast<unsigned long long>(
                    store->header_.fingerprint),
                static_cast<unsigned long long>(
                    header.fingerprint)));
        std::lock_guard<std::mutex> lock(store->mu);
        store->maybeAutoCompactLocked();
    } else {
        store->header_ = header;
        std::lock_guard<std::mutex> lock(store->mu);
        store->appendLine(headerLineFor(header));
        syncDirectory(dir);
    }
    return store;
}

std::unique_ptr<ResultStore>
ResultStore::openOrCreate(const std::string &dir,
                          const StoreHeader &header)
{
    std::string err;
    auto store = tryOpenOrCreate(dir, header, &err);
    if (!store)
        sim::fatal("%s", err.c_str());
    return store;
}

std::unique_ptr<ResultStore>
ResultStore::open(const std::string &dir)
{
    const std::string path = manifestPath(dir);
    if (!std::filesystem::exists(path))
        sim::fatal("no campaign store at %s (missing %s)",
                   dir.c_str(), path.c_str());
    std::unique_ptr<ResultStore> store(new ResultStore);
    store->dir_ = dir;
    std::string err;
    store->lockFd = lockStore(dir, &err);
    if (store->lockFd < 0)
        sim::fatal("%s", err.c_str());
    store->fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (store->fd < 0)
        sim::fatal("cannot open %s: %s", path.c_str(),
                   std::strerror(errno));
    store->autoCompactTail = autoCompactTailFromEnv();
    store->replay(path);
    {
        std::lock_guard<std::mutex> lock(store->mu);
        store->maybeAutoCompactLocked();
    }
    return store;
}

std::unique_ptr<ResultStore>
ResultStore::openReadOnly(const std::string &dir)
{
    const std::string path = manifestPath(dir);
    if (!std::filesystem::exists(path))
        sim::fatal("no campaign store at %s (missing %s)",
                   dir.c_str(), path.c_str());
    std::unique_ptr<ResultStore> store(new ResultStore);
    store->dir_ = dir;
    store->replay(path); // fd stays -1: reader, no lock, no repair
    return store;
}

void
ResultStore::loadSegmentRecord(const sim::JsonLine &obj,
                               const std::string &path,
                               std::size_t lineNo)
{
    const std::string file = obj.str("file");
    const std::size_t declaredRuns = obj.num("runs");
    std::uint64_t declaredFnv = 0;
    if (!parseHex64(obj.str("fnv"), &declaredFnv))
        sim::fatal("%s:%zu: segment record has an unparseable "
                   "checksum '%s'", path.c_str(), lineNo,
                   obj.str("fnv").c_str());

    SegmentLoad l = loadSegmentFile(dir_ + "/" + file);
    if (!l.ok)
        sim::fatal("%s:%zu: cannot load compacted segment: %s",
                   path.c_str(), lineNo, l.error.c_str());
    if (l.view->checksum() != declaredFnv)
        sim::fatal("%s:%zu: segment %s does not match the manifest "
                   "(checksum %016llx, manifest says %016llx)",
                   path.c_str(), lineNo, file.c_str(),
                   static_cast<unsigned long long>(
                       l.view->checksum()),
                   static_cast<unsigned long long>(declaredFnv));
    if (l.view->runCount() != declaredRuns)
        sim::fatal("%s:%zu: segment %s holds %zu run(s) but the "
                   "manifest says %zu",
                   path.c_str(), lineNo, file.c_str(),
                   l.view->runCount(), declaredRuns);
    segments_.push_back(std::move(l.view));

    // Keep the sequence counter past every referenced segment so a
    // fresh compaction never renames a file a reader may hold open.
    const std::size_t dash = file.rfind("seg-");
    if (dash != std::string::npos) {
        const std::size_t seq = static_cast<std::size_t>(
            std::strtoull(file.c_str() + dash + 4, nullptr, 10));
        nextSegmentSeq = std::max(nextSegmentSeq, seq + 1);
    }
}

void
ResultStore::replay(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        sim::fatal("cannot read %s", path.c_str());
    const std::string data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t dropped = 0;
    std::size_t pos = 0;

    // Appends write a "run" line and its "metrics" companion
    // adjacently under one lock, so a companion always refers to the
    // most recent "run" line. Tracking that line lets the replay
    // keep a duplicated run's *own* metrics and drop the
    // duplicate's, instead of letting the later companion clobber
    // the kept record.
    std::pair<std::size_t, std::size_t> lastRunKey{SIZE_MAX,
                                                   SIZE_MAX};
    bool lastRunDropped = false;

    while (pos < data.size()) {
        ++lineNo;
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos) {
            // An unterminated final line never completed its single
            // write(2), so the record was never acknowledged.
            // Discard it from the replay. Only the lock-holding
            // writer may call it a crash and repair the file; a
            // read-only open may simply be racing a live writer
            // whose append is still in flight.
            if (fd >= 0) {
                sim::warn("%s: discarding torn final line %zu "
                          "(crash during append)", path.c_str(),
                          lineNo);
                if (::ftruncate(fd, static_cast<off_t>(pos)) != 0)
                    sim::fatal(
                        "cannot truncate torn tail of %s: %s",
                        path.c_str(), std::strerror(errno));
            } else {
                sim::inform("%s: ignoring incomplete final line "
                            "%zu (an append may be in progress)",
                            path.c_str(), lineNo);
            }
            break;
        }
        const std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        JsonLine obj;
        if (!obj.parse(line)) {
            // Newline-terminated damage is not a torn append; the
            // records around it are still genuine — keep going,
            // but tell the user.
            sim::warn("%s:%zu: malformed record skipped",
                      path.c_str(), lineNo);
            ++dropped;
            continue;
        }
        const std::string type = obj.str("type");
        if (type == "header") {
            header_.version = static_cast<int>(obj.num("version"));
            if (header_.version != 1 && header_.version != 2)
                sim::fatal("%s:%zu: unsupported manifest version "
                           "%d (this build reads versions 1 and "
                           "2); refusing to guess at its records",
                           path.c_str(), lineNo, header_.version);
            if (!parseHex64(obj.str("fingerprint"),
                            &header_.fingerprint))
                sim::fatal("%s:%zu: header fingerprint '%s' is not "
                           "a 64-bit hex value; refusing to resume "
                           "against an unidentifiable store",
                           path.c_str(), lineNo,
                           obj.str("fingerprint").c_str());
            header_.numGroups = obj.num("groups");
            header_.numCheckpoints = obj.num("checkpoints");
            header_.workload = obj.str("workload");
            header_.configNames = obj.list("configs");
            sawHeader = true;
        } else if (type == "segment") {
            loadSegmentRecord(obj, path, lineNo);
        } else if (type == "plan") {
            plan_.valid = true;
            plan_.runLength = obj.num("run_length");
            plan_.numRuns = obj.num("num_runs");
        } else if (type == "ckpt_stats") {
            ckpt_.valid = true;
            ckpt_.dir = obj.str("dir");
            ckpt_.restored = obj.num("restored");
            ckpt_.warmed = obj.num("warmed");
            ckpt_.entries = obj.num("entries");
            ckpt_.bytes = obj.num("bytes");
        } else if (type == "run") {
            RunRecord r;
            r.group = obj.num("group");
            r.configIdx = obj.num("config");
            r.ckptIdx = obj.num("checkpoint");
            r.runIdx = obj.num("run");
            r.seed = obj.num("seed");
            r.cyclesPerTxn = obj.real("cycles_per_txn");
            r.runtimeTicks = obj.num("runtime_ticks");
            r.txns = obj.num("txns");
            lastRunKey = {r.group, r.runIdx};
            if (hasRunLocked(r.group, r.runIdx)) {
                sim::warn("%s:%zu: duplicate run record (group "
                          "%zu, run %zu) dropped (first record "
                          "wins)", path.c_str(), lineNo, r.group,
                          r.runIdx);
                lastRunDropped = true;
            } else {
                runs.emplace(lastRunKey, std::move(r));
                lastRunDropped = false;
            }
        } else if (type == "metrics") {
            // Companion record: attach the dump to its run. The run
            // record always precedes it (both are appended under one
            // lock), so an orphan means a hand-edited manifest.
            const std::size_t g = obj.num("group");
            const std::size_t i = obj.num("run");
            if (lastRunDropped && lastRunKey.first == g &&
                lastRunKey.second == i)
                continue; // the dropped duplicate's companion
            const auto it = runs.find({g, i});
            if (it == runs.end()) {
                sim::warn("%s:%zu: metrics record for unknown run "
                          "(group %zu, run %zu) skipped",
                          path.c_str(), lineNo, g, i);
                continue;
            }
            if (!it->second.metrics.empty()) {
                sim::warn("%s:%zu: extra metrics record for "
                          "(group %zu, run %zu) ignored (the "
                          "run's first dump wins)",
                          path.c_str(), lineNo, g, i);
                continue;
            }
            it->second.metrics = obj.realsWithPrefix("m:");
        } else {
            sim::warn("%s:%zu: unknown record type '%s' skipped",
                      path.c_str(), lineNo, type.c_str());
        }
    }
    if (!sawHeader)
        sim::fatal("%s has no header record; not a campaign store",
                   path.c_str());
    if (dropped)
        sim::warn("%s: %zu malformed mid-file record(s); the "
                  "manifest may have been edited", path.c_str(),
                  dropped);
    rebuildSummariesLocked();
}

void
ResultStore::appendLine(const std::string &line)
{
    const std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(fd, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            sim::fatal("write to campaign manifest failed: %s",
                       std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0)
        sim::fatal("fsync of campaign manifest failed: %s",
                   std::strerror(errno));
}

bool
ResultStore::hasRunLocked(std::size_t g, std::size_t i) const
{
    if (runs.count({g, i}) > 0)
        return true;
    for (const auto &seg : segments_)
        if (seg->find(g, i).valid())
            return true;
    return false;
}

bool
ResultStore::cptAtLocked(std::size_t g, std::size_t i,
                         double *v) const
{
    const auto it = runs.find({g, i});
    if (it != runs.end()) {
        *v = it->second.cyclesPerTxn;
        return true;
    }
    for (const auto &seg : segments_) {
        const SegmentView::Ref r = seg->find(g, i);
        if (r.valid()) {
            *v = seg->cyclesPerTxn(r);
            return true;
        }
    }
    return false;
}

void
ResultStore::advanceSummaryLocked(std::size_t g)
{
    const auto it = summaries_.find(g);
    double v;
    if (it == summaries_.end()) {
        if (!cptAtLocked(g, 0, &v))
            return; // no prefix yet; keep the map sparse
    } else if (!cptAtLocked(g, it->second.count, &v)) {
        return;
    }
    GroupSummary &s = summaries_[g];
    do
        s.fold(v);
    while (cptAtLocked(g, s.count, &v));
}

void
ResultStore::rebuildSummariesLocked()
{
    // A single segment's footer is the canonical fold of its prefix
    // (bit-identical to refolding, by the one-fold-order rule), so
    // adopt it and fold only the journal tail — this is what keeps
    // the open cost of a compacted store proportional to the tail.
    if (segments_.size() == 1)
        summaries_ = segments_[0]->summaries();
    else
        summaries_.clear();
    for (std::size_t g = 0; g < header_.numGroups; ++g)
        advanceSummaryLocked(g);
}

bool
ResultStore::hasRun(std::size_t group, std::size_t runIdx) const
{
    std::lock_guard<std::mutex> lock(mu);
    return hasRunLocked(group, runIdx);
}

std::size_t
ResultStore::runsInGroup(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto lo = runs.lower_bound({group, 0});
    const auto hi = runs.lower_bound({group + 1, 0});
    std::size_t n =
        static_cast<std::size_t>(std::distance(lo, hi));
    for (const auto &seg : segments_)
        n += seg->runsInGroup(group);
    return n;
}

std::size_t
ResultStore::totalRuns() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::size_t n = runs.size();
    for (const auto &seg : segments_)
        n += seg->runCount();
    return n;
}

std::size_t
ResultStore::segmentCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return segments_.size();
}

std::size_t
ResultStore::segmentRunCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const auto &seg : segments_)
        n += seg->runCount();
    return n;
}

std::size_t
ResultStore::tailRunCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return runs.size();
}

GroupSummary
ResultStore::groupSummary(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = summaries_.find(group);
    return it == summaries_.end() ? GroupSummary{} : it->second;
}

std::size_t
ResultStore::prefixLength(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = summaries_.find(group);
    return it == summaries_.end()
               ? 0
               : static_cast<std::size_t>(it->second.count);
}

std::vector<double>
ResultStore::groupMetric(std::size_t group,
                         std::size_t maxRuns) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<double> xs;
    double v;
    for (std::size_t i = 0;
         i < maxRuns && cptAtLocked(group, i, &v); ++i)
        xs.push_back(v);
    return xs;
}

std::vector<RunRecord>
ResultStore::groupRuns(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<RunRecord> out;
    for (std::size_t i = 0;; ++i) {
        const auto it = runs.find({group, i});
        if (it != runs.end()) {
            out.push_back(it->second);
            continue;
        }
        bool located = false;
        for (const auto &seg : segments_) {
            const SegmentView::Ref r = seg->find(group, i);
            if (r.valid()) {
                out.push_back(seg->materialize(r));
                located = true;
                break;
            }
        }
        if (!located)
            break;
    }
    return out;
}

void
ResultStore::appendRun(const RunRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu);
    if (hasRunLocked(rec.group, rec.runIdx)) {
        sim::warn("duplicate run record (group %zu, run %zu) "
                  "dropped — two shards with the same index?",
                  rec.group, rec.runIdx);
        return;
    }
    runs.emplace(std::make_pair(rec.group, rec.runIdx), rec);
    appendLine(runLineFor(rec));

    // The registry dump travels as a companion record so the "run"
    // line's schema — what pre-existing stores hold — is untouched.
    if (!rec.metrics.empty())
        appendLine(metricsLineFor(rec));

    advanceSummaryLocked(rec.group);
    maybeAutoCompactLocked();
}

std::vector<double>
ResultStore::groupMetricNamed(std::size_t group,
                              const std::string &name,
                              std::size_t maxRuns) const
{
    std::lock_guard<std::mutex> lock(mu);

    const int builtin = name == "cycles_per_txn"   ? 0
                        : name == "runtime_ticks" ? 1
                        : name == "txns"          ? 2
                                                  : -1;
    // Resolve the per-segment dictionary index once, not per run.
    std::vector<int> dictIdx;
    for (const auto &seg : segments_)
        dictIdx.push_back(seg->dictIndex(name));

    std::vector<double> xs;
    for (std::size_t i = 0; i < maxRuns; ++i) {
        const auto it = runs.find({group, i});
        if (it != runs.end()) {
            const RunRecord &r = it->second;
            if (builtin == 0) {
                xs.push_back(r.cyclesPerTxn);
            } else if (builtin == 1) {
                xs.push_back(static_cast<double>(r.runtimeTicks));
            } else if (builtin == 2) {
                xs.push_back(static_cast<double>(r.txns));
            } else {
                bool found = false;
                for (const auto &kv : r.metrics) {
                    if (kv.first == name) {
                        xs.push_back(kv.second);
                        found = true;
                        break;
                    }
                }
                // A run without the metric (recorded by an older
                // binary) ends the prefix: everything returned is
                // comparable.
                if (!found)
                    return xs;
            }
            continue;
        }
        bool located = false;
        for (std::size_t s = 0; s < segments_.size(); ++s) {
            const SegmentView::Ref r = segments_[s]->find(group, i);
            if (!r.valid())
                continue;
            located = true;
            if (builtin == 0) {
                xs.push_back(segments_[s]->cyclesPerTxn(r));
            } else if (builtin == 1) {
                xs.push_back(static_cast<double>(
                    segments_[s]->runtimeTicks(r)));
            } else if (builtin == 2) {
                xs.push_back(
                    static_cast<double>(segments_[s]->txns(r)));
            } else {
                double v;
                if (dictIdx[s] < 0 ||
                    !segments_[s]->metricValue(
                        r, static_cast<std::uint32_t>(dictIdx[s]),
                        &v))
                    return xs;
                xs.push_back(v);
            }
            break;
        }
        if (!located)
            break;
    }
    return xs;
}

std::vector<std::string>
ResultStore::metricNames() const
{
    std::vector<std::string> out = {"cycles_per_txn",
                                    "runtime_ticks", "txns"};
    std::set<std::string> extra;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &entry : runs)
            for (const auto &kv : entry.second.metrics)
                extra.insert(kv.first);
        for (const auto &seg : segments_)
            for (const std::string &name : seg->dictionary())
                extra.insert(name);
    }
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
}

void
ResultStore::appendPlan(const PlanRecord &plan)
{
    std::lock_guard<std::mutex> lock(mu);
    VARSIM_ASSERT(!plan_.valid,
                  "budget plan recorded twice in one store");
    plan_ = plan;
    plan_.valid = true;
    appendLine(planLineFor(plan_));
}

void
ResultStore::appendCkptStats(const CkptStatsRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu);
    ckpt_ = rec;
    ckpt_.valid = true;
    appendLine(ckptStatsLineFor(ckpt_));
}

std::vector<RunRecord>
ResultStore::allRunsSortedLocked() const
{
    std::vector<RunRecord> out;
    for (const auto &seg : segments_)
        for (std::size_t i = 0; i < seg->runCount(); ++i)
            out.push_back(seg->materialize({i}));
    for (const auto &entry : runs)
        out.push_back(entry.second);
    std::stable_sort(out.begin(), out.end(),
                     [](const RunRecord &a, const RunRecord &b) {
                         return a.group < b.group ||
                                (a.group == b.group &&
                                 a.runIdx < b.runIdx);
                     });
    // Keys are disjoint by construction (replay and append both
    // drop duplicates); keep the first of any pair regardless so a
    // hand-merged manifest cannot produce an unparseable segment.
    out.erase(std::unique(out.begin(), out.end(),
                          [](const RunRecord &a,
                             const RunRecord &b) {
                              return a.group == b.group &&
                                     a.runIdx == b.runIdx;
                          }),
              out.end());
    return out;
}

void
ResultStore::maybeAutoCompactLocked()
{
    if (autoCompactTail == 0 || fd < 0 ||
        runs.size() < autoCompactTail)
        return;
    const CompactResult r = compactLocked();
    if (r.performed)
        sim::inform("campaign store %s: journal tail reached %zu "
                    "run(s); compacted into %s", dir_.c_str(),
                    r.runs, r.segmentFile.c_str());
}

ResultStore::CompactResult
ResultStore::compactLocked()
{
    CompactResult res;
    if (fd < 0)
        sim::fatal("cannot compact campaign store %s: opened "
                   "read-only", dir_.c_str());
    if (runs.empty() && segments_.size() <= 1)
        return res; // already one segment (or nothing recorded)

    const std::vector<RunRecord> all = allRunsSortedLocked();
    const std::vector<std::uint8_t> bytes =
        buildSegment(all, summaries_);

    const std::string segDir = dir_ + "/segments";
    std::error_code ec;
    std::filesystem::create_directories(segDir, ec);
    if (ec)
        sim::fatal("cannot create %s: %s", segDir.c_str(),
                   ec.message().c_str());
    const std::string name =
        sim::format("seg-%06zu.vseg", nextSegmentSeq);
    std::string err;
    if (!ckpt::writeFileAtomic(segDir, name, bytes, &err))
        sim::fatal("compaction of %s failed: %s", dir_.c_str(),
                   err.c_str());

    // Crash-injection hook for the kill-9 recovery tests: die after
    // the segment exists but before the manifest references it. The
    // old manifest stays authoritative; the orphan segment is
    // atomically overwritten by the next compaction.
    if (const char *e =
            std::getenv("VARSIM_STORE_CRASH_COMPACT");
        e && *e && std::strcmp(e, "0") != 0)
        ::_exit(137);

    // Re-read what was just written: a compaction that cannot
    // validate its own segment must not rewrite the manifest.
    SegmentLoad l = loadSegmentFile(segDir + "/" + name);
    if (!l.ok)
        sim::fatal("compaction of %s produced an unreadable "
                   "segment: %s", dir_.c_str(), l.error.c_str());

    StoreHeader h = header_;
    h.version = 2;
    std::string manifest = headerLineFor(h) + "\n";
    if (plan_.valid)
        manifest += planLineFor(plan_) + "\n";
    if (ckpt_.valid)
        manifest += ckptStatsLineFor(ckpt_) + "\n";
    JsonWriter w;
    w.field("type", std::string("segment"));
    w.field("file", "segments/" + name);
    w.field("runs", static_cast<std::uint64_t>(all.size()));
    w.field("fnv",
            sim::format("%016llx", static_cast<unsigned long long>(
                                       l.view->checksum())));
    manifest += w.str() + "\n";

    const std::vector<std::uint8_t> mbytes(manifest.begin(),
                                           manifest.end());
    if (!ckpt::writeFileAtomic(dir_, "manifest.jsonl", mbytes,
                               &err))
        sim::fatal("cannot rewrite manifest of %s: %s",
                   dir_.c_str(), err.c_str());

    // The append fd still points at the replaced manifest's inode;
    // reopen so future appends land in the new journal tail.
    ::close(fd);
    fd = ::open(manifestPath(dir_).c_str(), O_WRONLY | O_APPEND);
    if (fd < 0)
        sim::fatal("cannot reopen %s after compaction: %s",
                   manifestPath(dir_).c_str(),
                   std::strerror(errno));

    header_.version = 2;
    segments_.clear();
    segments_.push_back(std::move(l.view));
    runs.clear();
    ++nextSegmentSeq;

    res.performed = true;
    res.runs = all.size();
    res.segmentFile = "segments/" + name;
    return res;
}

ResultStore::CompactResult
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mu);
    return compactLocked();
}

void
ResultStore::exportJsonl(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);
    StoreHeader h = header_;
    h.version = 1;
    os << headerLineFor(h) << '\n';
    if (plan_.valid)
        os << planLineFor(plan_) << '\n';
    if (ckpt_.valid)
        os << ckptStatsLineFor(ckpt_) << '\n';
    // Canonical key order: freshly appended records carry metrics in
    // registration order while compacted ones come back name-sorted,
    // so sorting here makes the exported bytes independent of when
    // (or whether) the store was compacted.
    for (RunRecord r : allRunsSortedLocked()) {
        os << runLineFor(r) << '\n';
        if (!r.metrics.empty()) {
            std::sort(r.metrics.begin(), r.metrics.end());
            os << metricsLineFor(r) << '\n';
        }
    }
}

ResultStore::~ResultStore()
{
    if (fd >= 0)
        ::close(fd);
    if (lockFd >= 0)
        ::close(lockFd);
}

} // namespace campaign
} // namespace varsim
