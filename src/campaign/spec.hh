/**
 * @file
 * Declarative description of a simulation campaign: the closed-loop
 * version of the paper's methodology. A campaign is a grid of
 * (configuration, checkpoint) cell groups, each of which accumulates
 * perturbed runs until a stopping rule says the conclusion is safe —
 * the paper's Section 5.1 workflow (pilot runs, sample-size
 * estimation, more runs) made durable and restartable.
 *
 * A CampaignSpec is pure data. Its fingerprint() identifies the
 * experiment: a result store created for one spec refuses to resume
 * under a different one.
 */

#ifndef VARSIM_CAMPAIGN_SPEC_HH
#define VARSIM_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/planner.hh"
#include "core/runner.hh"
#include "workload/workload.hh"

namespace varsim
{
namespace campaign
{

/** One named configuration point of the campaign grid. */
struct ConfigVariant
{
    /** Stable human-readable name ("base", "l2-assoc=1", ...). */
    std::string name;
    core::SystemConfig sys;
};

/**
 * When a cell group (one configuration at one starting point) has
 * enough runs. With fixedRuns set the rule is the classic open-loop
 * K; otherwise the controller runs pilotRuns first and then applies
 * the paper's estimators to the pilot:
 *
 *  - mean precision (Section 5.1.1): n = (t * CoV / relativeError)^2
 *    if relativeError > 0;
 *  - comparison significance (Section 5.1.2 / Table 5): the smallest
 *    n whose pooled t statistic clears the one-sided critical value
 *    at @ref alpha, maximized over all partner configurations at the
 *    same starting point, if alpha > 0.
 *
 * The target is the largest demand, clamped to [pilotRuns, maxRuns].
 * Decisions are functions of the pilot prefix only (runs
 * 0..pilotRuns-1), never of later arrivals, so a resumed campaign
 * recomputes exactly the targets the uninterrupted one chose.
 */
struct StoppingRule
{
    /** Nonzero: run exactly this many per group, no adaptation. */
    std::size_t fixedRuns = 0;

    /** Runs per group before the first adaptive decision. */
    std::size_t pilotRuns = 6;

    /** Hard per-group cap on adaptively scheduled runs. */
    std::size_t maxRuns = 32;

    /**
     * Target CI half-width as a fraction of the mean (the paper's
     * worked example uses 0.04). Zero disables the criterion.
     */
    double relativeError = 0.0;

    /**
     * Wrong-conclusion bound for pairwise configuration comparisons
     * (Table 5 uses 0.10 .. 0.005). Zero disables the criterion.
     */
    double alpha = 0.0;

    /** Confidence level behind the mean-precision criterion. */
    double confidence = 0.95;
};

/** The full declarative description of a campaign. */
struct CampaignSpec
{
    /** Configurations under comparison (>= 1). */
    std::vector<ConfigVariant> configs;

    /** The (single) workload all cells run. */
    workload::WorkloadParams wl;

    /** Per-run measurement parameters (perturbSeed is overwritten). */
    core::RunConfig run;

    /**
     * Starting-point sampling (Section 5.2). Zero checkpoints means
     * every run starts fresh (warmupTxns does the warming); nonzero
     * plans numCheckpoints positions over checkpointStep *
     * numCheckpoints warmup transactions and every configuration
     * runs from each.
     */
    std::size_t numCheckpoints = 0;
    std::uint64_t checkpointStep = 0;
    core::SamplingStrategy strategy =
        core::SamplingStrategy::Systematic;

    /** Root of the campaign's seed space. */
    std::uint64_t baseSeed = 1000;

    /**
     * Seed distance between cell groups: run i of group g uses seed
     * baseSeed + g * seedStride + i (overflow-checked), so seeds are
     * unique across the whole campaign as long as every group's run
     * count stays below the stride.
     */
    std::uint64_t seedStride = 1u << 20;

    StoppingRule stop;

    /**
     * Nonzero: a fixed budget of measured transactions. Before the
     * grid runs, the engine measures CoV pilots at a few run lengths
     * and lets core::planBudget pick the (run length, run count)
     * split; the chosen plan is recorded in the store and reused
     * verbatim on resume.
     */
    std::uint64_t budgetTxns = 0;

    // ---- derived geometry ----

    /** Starting points per configuration (1 when not checkpointing). */
    std::size_t
    numCheckpointSlots() const
    {
        return numCheckpoints ? numCheckpoints : 1;
    }

    /** Cell groups: configurations x starting points. */
    std::size_t
    numGroups() const
    {
        return configs.size() * numCheckpointSlots();
    }

    std::size_t
    groupIndex(std::size_t config, std::size_t ckpt) const
    {
        return config * numCheckpointSlots() + ckpt;
    }

    std::size_t
    configOf(std::size_t group) const
    {
        return group / numCheckpointSlots();
    }

    std::size_t
    ckptOf(std::size_t group) const
    {
        return group % numCheckpointSlots();
    }

    /** "l2-assoc=4 @ckpt2" style display name of a group. */
    std::string groupName(std::size_t group) const;

    /** Perturbation seed of run @p runIdx of group @p group. */
    std::uint64_t groupSeed(std::size_t group,
                            std::size_t runIdx) const;

    /**
     * Identity of the experiment: a hash over every knob that
     * changes what a run record means. Two specs with equal
     * fingerprints produce interchangeable result stores.
     */
    std::uint64_t fingerprint() const;

    /** fatal() on a nonsensical spec (empty grid, bad rule, ...). */
    void validate() const;

    /**
     * Non-fatal validate(): true when the spec is runnable, false
     * with @p why set otherwise. The daemon rejects submissions with
     * this; the CLI's validate() wraps it in fatal().
     */
    bool check(std::string *why) const;
};

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_SPEC_HH
