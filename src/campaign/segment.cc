#include "campaign/segment.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>

#include "ckpt/archive.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace campaign
{

using ckpt::fnvBytes;
using ckpt::getLe;
using ckpt::putLe;

namespace
{

constexpr char kMagic[8] = {'V', 'S', 'I', 'M', 'S', 'E', 'G', '1'};

/** Fixed bytes of one record before its metric pairs. */
constexpr std::size_t kRecordFixed = 8 * 8 + 4;

/** Bytes of one (dict index, value bits) metric pair. */
constexpr std::size_t kMetricPair = 4 + 8;

/** Bytes of one group-summary footer entry. */
constexpr std::size_t kSummaryEntry = 6 * 8;

void
putDouble(std::vector<std::uint8_t> &out, double v)
{
    putLe<std::uint64_t>(out, std::bit_cast<std::uint64_t>(v));
}

double
getDouble(const std::uint8_t *p)
{
    return std::bit_cast<double>(getLe<std::uint64_t>(p));
}

SegmentLoad
failure(const std::string &why)
{
    SegmentLoad r;
    r.error = why;
    return r;
}

} // anonymous namespace

std::vector<std::uint8_t>
buildSegment(const std::vector<RunRecord> &records,
             const std::map<std::size_t, GroupSummary> &summaries)
{
    // Dictionary: sorted unique metric names across all records.
    std::vector<std::string> dict;
    for (const RunRecord &r : records)
        for (const auto &kv : r.metrics)
            dict.push_back(kv.first);
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

    auto dictIdx = [&](const std::string &name) {
        const auto it =
            std::lower_bound(dict.begin(), dict.end(), name);
        return static_cast<std::uint32_t>(it - dict.begin());
    };

    std::size_t metricPairs = 0;
    std::size_t dictBytes = 0;
    for (const RunRecord &r : records)
        metricPairs += r.metrics.size();
    for (const std::string &name : dict)
        dictBytes += 4 + name.size();

    std::vector<std::uint8_t> out;
    out.reserve(32 + dictBytes + records.size() * kRecordFixed +
                metricPairs * kMetricPair +
                summaries.size() * (8 + kSummaryEntry - 8) + 16);

    for (char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    putLe<std::uint32_t>(out, kSegmentVersion);
    putLe<std::uint32_t>(out,
                         static_cast<std::uint32_t>(dict.size()));
    putLe<std::uint64_t>(out, records.size());
    putLe<std::uint64_t>(out, summaries.size());

    for (const std::string &name : dict) {
        putLe<std::uint32_t>(out,
                             static_cast<std::uint32_t>(
                                 name.size()));
        out.insert(out.end(), name.begin(), name.end());
    }

    for (const RunRecord &r : records) {
        putLe<std::uint64_t>(out, r.group);
        putLe<std::uint64_t>(out, r.runIdx);
        putLe<std::uint64_t>(out, r.configIdx);
        putLe<std::uint64_t>(out, r.ckptIdx);
        putLe<std::uint64_t>(out, r.seed);
        putDouble(out, r.cyclesPerTxn);
        putLe<std::uint64_t>(out, r.runtimeTicks);
        putLe<std::uint64_t>(out, r.txns);
        // Metric pairs sorted by dictionary index (= name order):
        // the canonical on-disk order, binary-searchable per record.
        std::vector<std::pair<std::uint32_t, double>> pairs;
        pairs.reserve(r.metrics.size());
        for (const auto &kv : r.metrics)
            pairs.emplace_back(dictIdx(kv.first), kv.second);
        std::sort(pairs.begin(), pairs.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        putLe<std::uint32_t>(out,
                             static_cast<std::uint32_t>(
                                 pairs.size()));
        for (const auto &p : pairs) {
            putLe<std::uint32_t>(out, p.first);
            putDouble(out, p.second);
        }
    }

    for (const auto &[g, s] : summaries) {
        putLe<std::uint64_t>(out, g);
        putLe<std::uint64_t>(out, s.count);
        putDouble(out, s.mean);
        putDouble(out, s.m2);
        putDouble(out, s.minValue);
        putDouble(out, s.maxValue);
    }

    putLe<std::uint64_t>(out, fnvBytes(out.data(), out.size()));
    return out;
}

/** Shared parse over a byte span; fills @p view's index on success. */
struct SegmentParser
{
    /** A view over an owned byte buffer (the direct-parse form). */
    static std::shared_ptr<SegmentView>
    fromOwned(std::vector<std::uint8_t> bytes)
    {
        std::shared_ptr<SegmentView> view(new SegmentView);
        view->owned = std::move(bytes);
        view->base = view->owned.data();
        view->size_ = view->owned.size();
        return view;
    }

    /** A view over an established mapping. */
    static std::shared_ptr<SegmentView>
    fromMapping(void *map, std::size_t len)
    {
        std::shared_ptr<SegmentView> view(new SegmentView);
        view->mapping = map;
        view->mappingLen = len;
        view->base = static_cast<const std::uint8_t *>(map);
        view->size_ = len;
        return view;
    }

    static SegmentLoad
    parse(std::shared_ptr<SegmentView> view)
    {
        const std::uint8_t *base = view->base;
        const std::size_t size = view->size_;

        if (size < 32 + 8)
            return failure(sim::format(
                "file too small (%zu bytes)", size));
        if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0)
            return failure(
                "bad magic (not a varsim result segment)");
        const auto version = getLe<std::uint32_t>(base + 8);
        if (version != kSegmentVersion)
            return failure(sim::format(
                "unsupported segment version %u (this build "
                "reads %u)", version, kSegmentVersion));
        const auto dictCount = getLe<std::uint32_t>(base + 12);
        const auto runCount = getLe<std::uint64_t>(base + 16);
        const auto sumCount = getLe<std::uint64_t>(base + 24);

        // The trailing checksum first: it catches any bit flip or
        // truncation, so the structural walk below only ever sees
        // bytes the writer produced.
        const std::uint64_t want =
            getLe<std::uint64_t>(base + size - 8);
        const std::uint64_t got = fnvBytes(base, size - 8);
        if (want != got)
            return failure(sim::format(
                "checksum mismatch (stored %016llx, computed "
                "%016llx)",
                static_cast<unsigned long long>(want),
                static_cast<unsigned long long>(got)));
        view->fnv = want;

        const std::size_t end = size - 8; // body end
        std::size_t pos = 32;

        view->dict.reserve(dictCount);
        for (std::uint32_t d = 0; d < dictCount; ++d) {
            if (pos + 4 > end)
                return failure(
                    "truncated inside the metric dictionary");
            const auto len = getLe<std::uint32_t>(base + pos);
            pos += 4;
            if (len > end - pos)
                return failure(sim::format(
                    "dictionary entry %u declares %u bytes but "
                    "only %zu remain", d, len, end - pos));
            view->dict.emplace_back(
                reinterpret_cast<const char *>(base) + pos, len);
            pos += len;
            if (d > 0 && view->dict[d] <= view->dict[d - 1])
                return failure(
                    "dictionary names not sorted and unique");
        }

        view->index.reserve(runCount);
        std::uint64_t lastG = 0, lastR = 0;
        for (std::uint64_t i = 0; i < runCount; ++i) {
            if (pos + kRecordFixed > end)
                return failure(sim::format(
                    "truncated inside record %llu of %llu",
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(runCount)));
            const auto g = getLe<std::uint64_t>(base + pos);
            const auto r = getLe<std::uint64_t>(base + pos + 8);
            if (i > 0 &&
                (g < lastG || (g == lastG && r <= lastR)))
                return failure(sim::format(
                    "record keys not strictly increasing at "
                    "(%llu, %llu)",
                    static_cast<unsigned long long>(g),
                    static_cast<unsigned long long>(r)));
            lastG = g;
            lastR = r;
            const auto m = getLe<std::uint32_t>(
                base + pos + kRecordFixed - 4);
            view->index.push_back(
                {g, r, pos});
            pos += kRecordFixed;
            if (static_cast<std::size_t>(m) * kMetricPair >
                end - pos)
                return failure(sim::format(
                    "record (%llu, %llu) declares %u metrics but "
                    "only %zu bytes remain",
                    static_cast<unsigned long long>(g),
                    static_cast<unsigned long long>(r), m,
                    end - pos));
            std::uint32_t lastIdx = 0;
            for (std::uint32_t k = 0; k < m; ++k) {
                const auto idx = getLe<std::uint32_t>(base + pos);
                if (idx >= dictCount)
                    return failure(sim::format(
                        "record (%llu, %llu) references "
                        "dictionary entry %u of %u",
                        static_cast<unsigned long long>(g),
                        static_cast<unsigned long long>(r), idx,
                        dictCount));
                if (k > 0 && idx <= lastIdx)
                    return failure(
                        "record metric indices not sorted");
                lastIdx = idx;
                pos += kMetricPair;
            }
        }

        for (std::uint64_t s = 0; s < sumCount; ++s) {
            if (pos + kSummaryEntry > end)
                return failure(
                    "truncated inside the summary footer");
            const auto g = getLe<std::uint64_t>(base + pos);
            GroupSummary sum;
            sum.count = getLe<std::uint64_t>(base + pos + 8);
            sum.mean = getDouble(base + pos + 16);
            sum.m2 = getDouble(base + pos + 24);
            sum.minValue = getDouble(base + pos + 32);
            sum.maxValue = getDouble(base + pos + 40);
            if (!view->sums.emplace(g, sum).second)
                return failure(sim::format(
                    "duplicate summary for group %llu",
                    static_cast<unsigned long long>(g)));
            pos += kSummaryEntry;
        }

        if (pos != end)
            return failure(sim::format(
                "%zu byte(s) not covered by any frame",
                end - pos));

        SegmentLoad r;
        r.ok = true;
        r.view = std::move(view);
        return r;
    }
};

SegmentLoad
parseSegment(std::vector<std::uint8_t> bytes)
{
    return SegmentParser::parse(
        SegmentParser::fromOwned(std::move(bytes)));
}

SegmentLoad
loadSegmentFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return failure(sim::format("cannot open %s: %s",
                                   path.c_str(),
                                   std::strerror(errno)));
    struct stat sb;
    if (::fstat(fd, &sb) != 0 || sb.st_size <= 0) {
        ::close(fd);
        return failure(sim::format("cannot stat %s", path.c_str()));
    }
    const std::size_t len = static_cast<std::size_t>(sb.st_size);

    std::shared_ptr<SegmentView> view;
    void *map =
        ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        view = SegmentParser::fromMapping(map, len);
        ::close(fd); // the mapping outlives the descriptor
    } else {
        // mmap can fail on exotic filesystems; fall back to a read.
        ::close(fd);
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return failure(sim::format("cannot read %s",
                                       path.c_str()));
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        view = SegmentParser::fromOwned(std::move(bytes));
    }

    SegmentLoad r = SegmentParser::parse(std::move(view));
    if (!r.ok)
        r.error = path + ": " + r.error;
    return r;
}

SegmentView::~SegmentView()
{
    if (mapping)
        ::munmap(mapping, mappingLen);
}

std::size_t
SegmentView::runsInGroup(std::size_t group) const
{
    const auto cmp = [](const Entry &e,
                        std::pair<std::uint64_t, std::uint64_t> k) {
        return e.group < k.first ||
               (e.group == k.first && e.run < k.second);
    };
    const auto lo = std::lower_bound(
        index.begin(), index.end(),
        std::pair<std::uint64_t, std::uint64_t>{group, 0}, cmp);
    const auto hi = std::lower_bound(
        index.begin(), index.end(),
        std::pair<std::uint64_t, std::uint64_t>{group + 1, 0},
        cmp);
    return static_cast<std::size_t>(hi - lo);
}

SegmentView::Ref
SegmentView::find(std::size_t group, std::size_t run) const
{
    const auto cmp = [](const Entry &e,
                        std::pair<std::uint64_t, std::uint64_t> k) {
        return e.group < k.first ||
               (e.group == k.first && e.run < k.second);
    };
    const auto it = std::lower_bound(
        index.begin(), index.end(),
        std::pair<std::uint64_t, std::uint64_t>{group, run}, cmp);
    if (it == index.end() || it->group != group || it->run != run)
        return {};
    return {static_cast<std::size_t>(it - index.begin())};
}

double
SegmentView::cyclesPerTxn(Ref r) const
{
    return getDouble(base + index[r.idx].offset + 40);
}

std::uint64_t
SegmentView::runtimeTicks(Ref r) const
{
    return getLe<std::uint64_t>(base + index[r.idx].offset + 48);
}

std::uint64_t
SegmentView::txns(Ref r) const
{
    return getLe<std::uint64_t>(base + index[r.idx].offset + 56);
}

RunRecord
SegmentView::materialize(Ref r) const
{
    const std::uint8_t *p = base + index[r.idx].offset;
    RunRecord rec;
    rec.group = getLe<std::uint64_t>(p);
    rec.runIdx = getLe<std::uint64_t>(p + 8);
    rec.configIdx = getLe<std::uint64_t>(p + 16);
    rec.ckptIdx = getLe<std::uint64_t>(p + 24);
    rec.seed = getLe<std::uint64_t>(p + 32);
    rec.cyclesPerTxn = getDouble(p + 40);
    rec.runtimeTicks = getLe<std::uint64_t>(p + 48);
    rec.txns = getLe<std::uint64_t>(p + 56);
    const auto m = getLe<std::uint32_t>(p + 64);
    rec.metrics.reserve(m);
    const std::uint8_t *q = p + kRecordFixed;
    for (std::uint32_t k = 0; k < m; ++k) {
        rec.metrics.emplace_back(
            dict[getLe<std::uint32_t>(q)], getDouble(q + 4));
        q += kMetricPair;
    }
    return rec;
}

int
SegmentView::dictIndex(const std::string &name) const
{
    const auto it =
        std::lower_bound(dict.begin(), dict.end(), name);
    if (it == dict.end() || *it != name)
        return -1;
    return static_cast<int>(it - dict.begin());
}

bool
SegmentView::metricValue(Ref r, std::uint32_t dictIdx,
                         double *out) const
{
    const std::uint8_t *p = base + index[r.idx].offset;
    const auto m = getLe<std::uint32_t>(p + 64);
    const std::uint8_t *q = p + kRecordFixed;
    // Pairs are sorted by dict index; binary search over the span.
    std::size_t lo = 0, hi = m;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        const auto idx =
            getLe<std::uint32_t>(q + mid * kMetricPair);
        if (idx == dictIdx) {
            *out = getDouble(q + mid * kMetricPair + 4);
            return true;
        }
        if (idx < dictIdx)
            lo = mid + 1;
        else
            hi = mid;
    }
    return false;
}

} // namespace campaign
} // namespace varsim
