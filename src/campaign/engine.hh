/**
 * @file
 * The campaign engine: turns a CampaignSpec into recorded runs.
 *
 * runCampaign() is idempotent and restartable: it opens (or creates)
 * the durable result store, asks the store which (group, run) cells
 * already exist, and schedules only the missing cells below the
 * stopping controller's targets onto the persistent host thread
 * pool. Killing the process at any point loses at most the runs in
 * flight; invoking runCampaign() again with the same spec finishes
 * the remainder without repeating completed work, and the final
 * statistics are bit-identical to an uninterrupted campaign's.
 *
 * Multi-host operation: cells are striped across shards by cell
 * index; shard i of N (CampaignOptions::shardIndex/shardCount) only
 * executes its own stripe, so N processes pointed at N stores (or,
 * on one filesystem, run sequentially against one store) partition
 * the campaign. Adaptive extension beyond the pilot happens once
 * every group's pilot prefix is present in the store an invocation
 * can see.
 */

#ifndef VARSIM_CAMPAIGN_ENGINE_HH
#define VARSIM_CAMPAIGN_ENGINE_HH

#include <string>
#include <vector>

#include "campaign/controller.hh"
#include "campaign/spec.hh"
#include "campaign/store.hh"

namespace varsim
{

namespace ckpt
{
class CheckpointLibrary;
}

namespace campaign
{

/** Per-invocation knobs (nothing here changes results). */
struct CampaignOptions
{
    /** Host threads for the run pool (0 = hardware concurrency). */
    std::size_t hostThreads = 0;

    /** This process's stripe: executes cells with id % count == index. */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;

    /**
     * Testing/demo hook: behave as if the process were killed after
     * this many newly recorded runs (0 = never). In-flight runs
     * still complete and record, exactly like a real SIGKILL whose
     * victims had already fsync'd.
     */
    std::size_t interruptAfter = 0;

    /**
     * Persistent checkpoint-library directory. Empty: warm-up
     * checkpoints are rebuilt in memory per invocation (classic
     * behavior). Set: the library is consulted before any warm-up
     * re-simulation and misses are published for the next process;
     * safe to share between concurrent shards. Never changes run
     * results — a restored snapshot is bit-identical to a re-warmed
     * one.
     */
    std::string ckptDir;

    /**
     * Borrowed, already-open checkpoint library (overrides ckptDir
     * for access; ckptDir is still what gets recorded in the
     * store's stats). The serve daemon hands every tenant's
     * campaign the same instance so they share one on-disk cache,
     * one advisory lock, and one pin table. Must outlive the
     * campaign. nullptr: open ckptDir privately (CLI behavior).
     */
    ckpt::CheckpointLibrary *sharedLibrary = nullptr;

    /** Print per-round progress to stdout. */
    bool verbose = false;
};

/** What one runCampaign() invocation did. */
struct CampaignOutcome
{
    /** Runs newly executed and recorded by this invocation. */
    std::size_t runsExecuted = 0;

    /** Total runs in the store afterwards. */
    std::size_t runsRecorded = 0;

    /** True if every group meets its target (all shards' cells). */
    bool complete = false;

    /** True if the interruptAfter hook fired. */
    bool interrupted = false;

    /** The controller's final per-group targets. */
    std::vector<std::size_t> targetRuns;

    /** Recorded runs per group afterwards. */
    std::vector<std::size_t> recordedRuns;

    /** Warm-up checkpoints restored from the library (hits). */
    std::size_t checkpointsRestored = 0;

    /** Warm-up checkpoints built by re-simulation this invocation. */
    std::size_t checkpointsWarmed = 0;
};

/**
 * Execute (or resume) the campaign described by @p spec against the
 * store at @p dir. Creates the store on first use; on reuse the
 * spec's fingerprint must match the store's.
 */
CampaignOutcome runCampaign(const CampaignSpec &spec,
                            const std::string &dir,
                            const CampaignOptions &opt = {});

/**
 * Pre-populate the checkpoint library for @p spec: warm every
 * (configuration, position) cell the campaign would need and publish
 * each snapshot, restoring whatever the library already holds. This
 * is `varsim ckpt create` — run it once (or per shard; publication
 * races are benign) and every later `campaign run` skips straight to
 * measurement. Requires spec.numCheckpoints > 0 and a nonempty
 * opt.ckptDir.
 */
struct WarmupResult
{
    /** Checkpoints served from the library. */
    std::size_t restored = 0;

    /** Checkpoints built by re-simulation. */
    std::size_t warmed = 0;

    /** Library entry count / byte size afterwards. */
    std::size_t libraryEntries = 0;
    std::uint64_t libraryBytes = 0;
};

WarmupResult warmCampaignCheckpoints(const CampaignSpec &spec,
                                     const CampaignOptions &opt);

/** Store-only progress view (no spec needed). */
struct CampaignStatus
{
    StoreHeader header;
    PlanRecord plan;
    CkptStatsRecord ckpt;
    std::size_t totalRuns = 0;
    std::vector<std::size_t> runsPerGroup;
    std::vector<std::string> groupNames;

    /** Compacted-segment split (all zero for a pure-JSONL store). */
    std::size_t segmentCount = 0;
    std::size_t segmentRuns = 0;
    std::size_t tailRuns = 0;

    std::string toString() const;
};

CampaignStatus campaignStatus(const std::string &dir);

/**
 * Store-only statistical report: per-group variability summaries
 * plus the full Section 5 comparison for every configuration pair
 * at every starting point with enough runs.
 */
struct CampaignReport
{
    std::string text;
};

CampaignReport campaignReport(const std::string &dir,
                              double confidence = 0.95);

/**
 * Per-group variability of one named metric: a built-in run metric
 * ("cycles_per_txn", "runtime_ticks", "txns") or any registry
 * metric recorded with the runs (e.g. "system.mem.bus.l2_misses").
 * @p metric == "list" enumerates the recorded names instead.
 */
CampaignReport campaignMetricReport(const std::string &dir,
                                    const std::string &metric,
                                    double confidence = 0.95);

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_ENGINE_HH
