/**
 * @file
 * The campaign engine: turns a CampaignSpec into recorded runs.
 *
 * runCampaign() is idempotent and restartable: it opens (or creates)
 * the durable result store, asks the store which (group, run) cells
 * already exist, and schedules only the missing cells below the
 * stopping controller's targets onto the persistent host thread
 * pool. Killing the process at any point loses at most the runs in
 * flight; invoking runCampaign() again with the same spec finishes
 * the remainder without repeating completed work, and the final
 * statistics are bit-identical to an uninterrupted campaign's.
 *
 * Multi-host operation: cells are striped across shards by cell
 * index; shard i of N (CampaignOptions::shardIndex/shardCount) only
 * executes its own stripe, so N processes pointed at N stores (or,
 * on one filesystem, run sequentially against one store) partition
 * the campaign. Adaptive extension beyond the pilot happens once
 * every group's pilot prefix is present in the store an invocation
 * can see.
 */

#ifndef VARSIM_CAMPAIGN_ENGINE_HH
#define VARSIM_CAMPAIGN_ENGINE_HH

#include <string>
#include <vector>

#include "campaign/controller.hh"
#include "campaign/spec.hh"
#include "campaign/store.hh"

namespace varsim
{
namespace campaign
{

/** Per-invocation knobs (nothing here changes results). */
struct CampaignOptions
{
    /** Host threads for the run pool (0 = hardware concurrency). */
    std::size_t hostThreads = 0;

    /** This process's stripe: executes cells with id % count == index. */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;

    /**
     * Testing/demo hook: behave as if the process were killed after
     * this many newly recorded runs (0 = never). In-flight runs
     * still complete and record, exactly like a real SIGKILL whose
     * victims had already fsync'd.
     */
    std::size_t interruptAfter = 0;

    /** Print per-round progress to stdout. */
    bool verbose = false;
};

/** What one runCampaign() invocation did. */
struct CampaignOutcome
{
    /** Runs newly executed and recorded by this invocation. */
    std::size_t runsExecuted = 0;

    /** Total runs in the store afterwards. */
    std::size_t runsRecorded = 0;

    /** True if every group meets its target (all shards' cells). */
    bool complete = false;

    /** True if the interruptAfter hook fired. */
    bool interrupted = false;

    /** The controller's final per-group targets. */
    std::vector<std::size_t> targetRuns;

    /** Recorded runs per group afterwards. */
    std::vector<std::size_t> recordedRuns;
};

/**
 * Execute (or resume) the campaign described by @p spec against the
 * store at @p dir. Creates the store on first use; on reuse the
 * spec's fingerprint must match the store's.
 */
CampaignOutcome runCampaign(const CampaignSpec &spec,
                            const std::string &dir,
                            const CampaignOptions &opt = {});

/** Store-only progress view (no spec needed). */
struct CampaignStatus
{
    StoreHeader header;
    PlanRecord plan;
    std::size_t totalRuns = 0;
    std::vector<std::size_t> runsPerGroup;
    std::vector<std::string> groupNames;

    std::string toString() const;
};

CampaignStatus campaignStatus(const std::string &dir);

/**
 * Store-only statistical report: per-group variability summaries
 * plus the full Section 5 comparison for every configuration pair
 * at every starting point with enough runs.
 */
struct CampaignReport
{
    std::string text;
};

CampaignReport campaignReport(const std::string &dir,
                              double confidence = 0.95);

} // namespace campaign
} // namespace varsim

#endif // VARSIM_CAMPAIGN_ENGINE_HH
