#include "campaign/controller.hh"

#include <algorithm>
#include <cmath>
#include <span>

#include "sim/logging.hh"
#include "stats/inference.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace campaign
{

namespace
{

/** The pilot prefix of a group's metrics (empty if incomplete). */
std::span<const double>
pilotOf(const std::vector<double> &metric, std::size_t pilotRuns)
{
    if (metric.size() < pilotRuns)
        return {};
    return {metric.data(), pilotRuns};
}

} // anonymous namespace

std::vector<GroupDecision>
decideTargets(const CampaignSpec &spec,
              const std::vector<std::vector<double>> &groupMetric)
{
    return decideTargets(spec, groupMetric, {});
}

std::vector<GroupDecision>
decideTargets(const CampaignSpec &spec,
              const std::vector<std::vector<double>> &groupMetric,
              const std::vector<std::vector<double>> &groupCiHalf)
{
    const StoppingRule &stop = spec.stop;
    const std::size_t groups = spec.numGroups();
    VARSIM_ASSERT(groupMetric.size() == groups,
                  "metric vector count %zu != group count %zu",
                  groupMetric.size(), groups);

    std::vector<GroupDecision> out(groups);

    if (stop.fixedRuns) {
        for (GroupDecision &d : out) {
            d.target = stop.fixedRuns;
            d.reason = sim::format("fixed K=%zu", stop.fixedRuns);
        }
        return out;
    }

    for (std::size_t g = 0; g < groups; ++g) {
        GroupDecision &d = out[g];
        const auto pilot =
            pilotOf(groupMetric[g], stop.pilotRuns);
        if (pilot.empty()) {
            d.target = stop.pilotRuns;
            d.reason = sim::format(
                "pilot (%zu/%zu runs recorded)",
                groupMetric[g].size(), stop.pilotRuns);
            continue;
        }

        const stats::Summary s = stats::summarize(pilot);
        const double cov =
            s.mean != 0.0 ? s.stddev / s.mean : 0.0;
        d.covPercent = 100.0 * cov;

        // Two-level stopping: each sampled run carries its own CI,
        // so fold the pilot-average within-run standard error
        // (~ half-width / 2) into an effective CoV. With no
        // half-width data this reduces to the plain CoV.
        double covEff = cov;
        if (g < groupCiHalf.size() &&
            groupCiHalf[g].size() >= stop.pilotRuns &&
            s.mean != 0.0) {
            double halfSum = 0.0;
            for (std::size_t i = 0; i < stop.pilotRuns; ++i)
                halfSum += groupCiHalf[g][i];
            const double seWithin =
                halfSum / static_cast<double>(stop.pilotRuns) / 2.0;
            const double covWithin = seWithin / s.mean;
            covEff = std::sqrt(cov * cov + covWithin * covWithin);
            d.covPercent = 100.0 * covEff;
        }

        std::size_t need = stop.pilotRuns;

        // Section 5.1.1: runs for the target mean precision.
        if (stop.relativeError > 0.0 && covEff > 0.0) {
            d.needPrecision = stats::meanPrecisionSampleSize(
                covEff, stop.relativeError, stop.confidence);
            need = std::max(need, d.needPrecision);
        }

        // Section 5.1.2 / Table 5: runs for every comparison this
        // group participates in (same starting point, every other
        // configuration) to clear the significance bar.
        if (stop.alpha > 0.0) {
            const std::size_t ckpt = spec.ckptOf(g);
            for (std::size_t c2 = 0; c2 < spec.configs.size();
                 ++c2) {
                if (c2 == spec.configOf(g))
                    continue;
                const std::size_t g2 = spec.groupIndex(c2, ckpt);
                const auto other =
                    pilotOf(groupMetric[g2], stop.pilotRuns);
                if (other.empty())
                    continue; // partner pilot pending: next round
                const stats::Summary so = stats::summarize(other);
                const double diff = s.mean > so.mean
                                        ? s.mean - so.mean
                                        : so.mean - s.mean;
                // Indistinguishable pilots cannot bound the
                // wrong-conclusion probability at any sample size:
                // run the cap (the conservative reading of the
                // paper's "not statistically significant").
                const std::size_t n =
                    diff > 0.0
                        ? stats::runsNeededForSignificance(
                              diff, s.stddev * s.stddev,
                              so.stddev * so.stddev, stop.alpha,
                              stop.maxRuns)
                        : stop.maxRuns;
                d.needPairwise = std::max(d.needPairwise, n);
            }
            need = std::max(need, d.needPairwise);
        }

        d.target = std::clamp(need, stop.pilotRuns, stop.maxRuns);
        d.reason = sim::format(
            "pilot CoV %.2f%%; precision wants %zu, comparisons "
            "want %zu -> target %zu",
            d.covPercent, d.needPrecision, d.needPairwise,
            d.target);
    }
    return out;
}

} // namespace campaign
} // namespace varsim
