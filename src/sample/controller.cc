#include "sample/controller.hh"

#include <algorithm>
#include <span>

#include "sim/logging.hh"
#include "stats/inference.hh"

namespace varsim
{
namespace sample
{

namespace
{

/**
 * Offset-stream seed: the stratified design mixes the run's
 * perturbation seed in (independent window placement per run); the
 * matched-pair design does not (identical placement across the seeds
 * being compared, so placement noise cancels in the pair).
 */
std::uint64_t
offsetStreamSeed(const core::SampleConfig &cfg,
                 std::uint64_t perturb_seed)
{
    using Design = core::SampleConfig::Design;
    if (cfg.design == Design::Stratified)
        return cfg.offsetSeed ^
               (perturb_seed * 0x9e3779b97f4a7c15ULL);
    return cfg.offsetSeed;
}

} // anonymous namespace

SamplingController::SamplingController(core::Simulation &simn,
                                       const core::SampleConfig &cfg,
                                       std::uint64_t perturb_seed)
    : simn_(simn), cfg_(cfg),
      offsetRng_(offsetStreamSeed(cfg, perturb_seed))
{
    VARSIM_ASSERT(cfg_.enabled(),
                  "sampling controller with design=off");
    VARSIM_ASSERT(cfg_.warmupTxns + cfg_.measureTxns <=
                      cfg_.periodTxns,
                  "sampling W+M exceeds the period U");
}

void
SamplingController::setCheckpointSink(CheckpointSink sink)
{
    sink_ = std::move(sink);
}

SamplingController::Snapshot
SamplingController::snap() const
{
    Snapshot s;
    s.ticks = simn_.now();
    s.txns = simn_.totalTxns();
    s.instructions = simn_.totalCpuStats().instructions;
    const mem::MemStats m = simn_.memSystem().totalStats();
    s.l2Hits = m.l2Hits;
    s.l2Misses = m.l2Misses;
    return s;
}

std::uint64_t
SamplingController::runTxns(std::uint64_t n)
{
    if (n == 0 || ended_)
        return 0;
    const core::Simulation::Progress p = simn_.runTransactions(n);
    if (p.workloadEnded)
        ended_ = true;
    return p.txns;
}

void
SamplingController::fastForward(std::uint64_t n)
{
    if (n == 0 || ended_)
        return;
    simn_.setFastMode(true);
    st_.fastTxns += runTxns(n);
}

void
SamplingController::detailedWarm(std::uint64_t n)
{
    if (n == 0 || ended_)
        return;
    simn_.setFastMode(false);
    st_.warmTxns += runTxns(n);
}

void
SamplingController::measureWindow(std::uint64_t n)
{
    if (n == 0 || ended_)
        return;
    simn_.setFastMode(false);
    const Snapshot a = snap();
    runTxns(n);
    const Snapshot b = snap();
    if (b.txns == a.txns)
        return; // ended before completing anything: no window
    record(a, b);
    st_.measuredTxns += b.txns - a.txns;
    ++st_.windows;
    if (sink_)
        sink_(st_.windows - 1, simn_.checkpoint());
}

void
SamplingController::record(const Snapshot &a, const Snapshot &b)
{
    const double dTxns = static_cast<double>(b.txns - a.txns);
    const double dTicks = static_cast<double>(b.ticks - a.ticks);
    const double cpus = static_cast<double>(simn_.numCpus());
    cpt_.push_back(dTicks * cpus / dTxns);
    ipc_.push_back(
        dTicks > 0.0
            ? static_cast<double>(b.instructions - a.instructions) /
                  (dTicks * cpus)
            : 0.0);
    const double accesses = static_cast<double>(
        (b.l2Hits - a.l2Hits) + (b.l2Misses - a.l2Misses));
    miss_.push_back(
        accesses > 0.0
            ? static_cast<double>(b.l2Misses - a.l2Misses) / accesses
            : 0.0);
}

std::uint64_t
SamplingController::chooseOffset(std::uint64_t slack)
{
    using Design = core::SampleConfig::Design;
    if (slack == 0 || cfg_.design == Design::Systematic)
        return slack; // window at the unit's end, fixed phase
    return offsetRng_.uniformInt(0, slack);
}

void
SamplingController::finishEstimates(const Snapshot &runStart)
{
    if (st_.windows == 0) {
        // The workload ended before any window completed (it can
        // outrun the requested transaction budget). Whatever ran is
        // the whole population: report the cumulative metrics as an
        // exact, degenerate-interval estimate and flag the fallback.
        const Snapshot end = snap();
        if (end.txns > runStart.txns) {
            record(runStart, end);
            st_.measuredTxns += end.txns - runStart.txns;
            st_.windows = 1;
        }
        st_.fullDetailFallback = true;
    }

    auto fill = [this](const std::vector<double> &xs, double &mean,
                       double &lo, double &hi) {
        if (xs.empty())
            return;
        if (xs.size() < 2) {
            mean = lo = hi = xs.front();
            return;
        }
        const stats::ConfidenceInterval ci =
            stats::meanConfidenceInterval(
                std::span<const double>(xs), cfg_.confidence);
        mean = ci.mean;
        lo = ci.lo;
        hi = ci.hi;
    };
    fill(cpt_, st_.cptMean, st_.cptLo, st_.cptHi);
    fill(ipc_, st_.ipcMean, st_.ipcLo, st_.ipcHi);
    fill(miss_, st_.l2MissMean, st_.l2MissLo, st_.l2MissHi);
}

core::SampledStats
SamplingController::run(std::uint64_t total_txns)
{
    st_ = core::SampledStats{};
    st_.enabled = true;
    st_.confidence = cfg_.confidence;
    cpt_.clear();
    ipc_.clear();
    miss_.clear();
    ended_ = false;

    const Snapshot runStart = snap();
    const std::uint64_t startTxns = runStart.txns;
    auto done = [&] { return simn_.totalTxns() - startTxns; };

    const std::uint64_t need = cfg_.warmupTxns + cfg_.measureTxns;
    while (done() < total_txns && !ended_) {
        const std::uint64_t remaining = total_txns - done();
        if (remaining < need) {
            if (st_.windows == 0) {
                // Shorter than one window and nothing measured yet:
                // degrade to full detail — a short run must yield an
                // exact answer, never an empty one.
                simn_.setFastMode(false);
                const Snapshot a = snap();
                runTxns(remaining);
                const Snapshot b = snap();
                if (b.txns > a.txns) {
                    record(a, b);
                    st_.measuredTxns += b.txns - a.txns;
                    ++st_.windows;
                }
                st_.fullDetailFallback = true;
            } else {
                fastForward(remaining);
            }
            break;
        }
        // One sampling unit, truncated to what remains. The window
        // sits chooseOffset() transactions into the unit's slack.
        const std::uint64_t unit =
            std::min(cfg_.periodTxns, remaining);
        const std::uint64_t slack = unit - need;
        const std::uint64_t before = chooseOffset(slack);
        fastForward(before);
        detailedWarm(cfg_.warmupTxns);
        measureWindow(cfg_.measureTxns);
        fastForward(slack - before);
        ++st_.periods;
    }

    simn_.setFastMode(false);
    finishEstimates(runStart);
    simn_.sampledStats() = st_;
    return st_;
}

} // namespace sample
} // namespace varsim
