#include "sample/runner.hh"

#include <chrono>

#include "core/thread_pool.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace sample
{

namespace
{

double
wallSecondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Publication hook: one library entry per measurement window. */
SamplingController::CheckpointSink
librarySink(ckpt::CheckpointLibrary *library,
            const core::SystemConfig &sys,
            const workload::WorkloadParams &wl,
            const core::RunConfig &run, core::Simulation &simn)
{
    if (library == nullptr)
        return {};
    return [library, sys, wl, seed = run.perturbSeed,
            &simn](std::uint64_t, const core::Checkpoint &cp) {
        ckpt::CheckpointKey key;
        key.sys = sys;
        key.wl = wl;
        key.warmupSeed = seed;
        key.position = simn.totalTxns();
        library->publish(key, cp);
    };
}

} // anonymous namespace

core::RunResult
measure(core::Simulation &simn, const core::RunConfig &run,
        std::size_t num_cpus, SamplingController::CheckpointSink sink)
{
    if (!run.sample.enabled())
        return core::measure(simn, run, num_cpus);

    const std::uint64_t n =
        run.measureTxns != 0
            ? run.measureTxns
            : simn.workloadInstance().defaultTxnCount();

    core::RunResult r;

    // The pre-measurement warm-up stays fully detailed: sampling
    // governs only the measure phase (matching core::measure's
    // phase structure, so sampled and full runs are comparable).
    const auto warmupT0 = std::chrono::steady_clock::now();
    if (run.warmupTxns > 0)
        simn.runTransactions(run.warmupTxns);
    r.host.warmupWallSec = wallSecondsSince(warmupT0);

    SamplingController ctl(simn, run.sample, run.perturbSeed);
    if (sink)
        ctl.setCheckpointSink(std::move(sink));

    const sim::Tick start = simn.now();
    const std::uint64_t startTxns = simn.totalTxns();
    const std::uint64_t startEvents = simn.eventsDispatched();
    const std::uint64_t startInstrs =
        simn.totalCpuStats().instructions;
    const auto measureT0 = std::chrono::steady_clock::now();
    r.sampled = ctl.run(n);
    r.host.measureWallSec = wallSecondsSince(measureT0);
    r.host.eventsDispatched = simn.eventsDispatched() - startEvents;
    if (r.host.measureWallSec > 0.0) {
        r.host.eventsPerSec =
            static_cast<double>(r.host.eventsDispatched) /
            r.host.measureWallSec;
        r.host.hostMips =
            static_cast<double>(simn.totalCpuStats().instructions -
                                startInstrs) /
            (r.host.measureWallSec * 1e6);
    }

    r.txns = simn.totalTxns() - startTxns;
    r.runtimeTicks = simn.now() - start;
    r.workloadEnded = ctl.workloadEnded();
    VARSIM_ASSERT(r.txns > 0 || r.workloadEnded,
                  "sampled run covered zero transactions");

    // The headline metric is the sampled estimate: downstream
    // consumers (stores, t tests, ANOVA) operate on it unchanged.
    r.cyclesPerTxn = r.sampled.cptMean;

    r.mem = simn.memSystem().totalStats();
    r.os = simn.kernel().stats();
    r.cpu = simn.totalCpuStats();
    // Dumped after the controller filled SampledStats, so the
    // sim.sampled.* formulas export the estimates.
    r.stats = simn.statsRegistry().dump();
    return r;
}

core::RunResult
runOnce(const core::SystemConfig &sys,
        const workload::WorkloadParams &wl,
        const core::RunConfig &run,
        ckpt::CheckpointLibrary *library)
{
    if (!run.sample.enabled())
        return core::runOnce(sys, wl, run);
    core::Simulation simn(sys, wl, run.par);
    simn.seedPerturbation(run.perturbSeed);
    return measure(simn, run, sys.numCpus(),
                   librarySink(library, sys, wl, run, simn));
}

core::RunResult
runFromCheckpoint(const core::SystemConfig &sys,
                  const workload::WorkloadParams &wl,
                  const core::Checkpoint &cp,
                  const core::RunConfig &run,
                  ckpt::CheckpointLibrary *library)
{
    if (!run.sample.enabled())
        return core::runFromCheckpoint(sys, wl, cp, run);
    auto simn = core::Simulation::restore(sys, wl, cp, run.par);
    simn->seedPerturbation(run.perturbSeed);
    return measure(*simn, run, sys.numCpus(),
                   librarySink(library, sys, wl, run, *simn));
}

std::vector<core::RunResult>
runMany(const core::SystemConfig &sys,
        const workload::WorkloadParams &wl,
        const core::RunConfig &run,
        const core::ExperimentConfig &exp)
{
    if (!run.sample.enabled())
        return core::runMany(sys, wl, run, exp);
    exp.validate();
    std::vector<core::RunResult> results(exp.numRuns);
    core::HostThreadPool::instance().parallelFor(
        exp.numRuns, exp.hostThreads, [&](std::size_t i) {
            sim::trace::RunScope scope(sim::format("r%zu", i));
            core::RunConfig r = run;
            r.perturbSeed = exp.baseSeed + i;
            results[i] = sample::runOnce(sys, wl, r);
        });
    return results;
}

std::vector<core::RunResult>
runManyFromCheckpoint(const core::SystemConfig &sys,
                      const workload::WorkloadParams &wl,
                      const core::Checkpoint &cp,
                      const core::RunConfig &run,
                      const core::ExperimentConfig &exp)
{
    if (!run.sample.enabled())
        return core::runManyFromCheckpoint(sys, wl, cp, run, exp);
    exp.validate();
    std::vector<core::RunResult> results(exp.numRuns);
    core::HostThreadPool::instance().parallelFor(
        exp.numRuns, exp.hostThreads, [&](std::size_t i) {
            sim::trace::RunScope scope(sim::format("r%zu", i));
            core::RunConfig r = run;
            r.perturbSeed = exp.baseSeed + i;
            results[i] = sample::runFromCheckpoint(sys, wl, cp, r);
        });
    return results;
}

} // namespace sample
} // namespace varsim
