/**
 * @file
 * Sampling-aware run entry points: drop-in replacements for the
 * core:: runners that route the measure phase through the
 * SamplingController when RunConfig::sample is enabled, and fall
 * straight through to core:: when it is not (so a campaign engine
 * can call these unconditionally with zero behaviour change for
 * unsampled specs).
 *
 * A sampled run fills RunResult::sampled, exports sim.sampled.* in
 * the stats dump, and reports the sampled cycles-per-transaction
 * point estimate as RunResult::cyclesPerTxn — downstream consumers
 * (campaign stores, ANOVA, wrong-conclusion ratios) keep working on
 * the estimate with no schema changes.
 */

#ifndef VARSIM_SAMPLE_RUNNER_HH
#define VARSIM_SAMPLE_RUNNER_HH

#include "ckpt/library.hh"
#include "core/experiment.hh"
#include "core/runner.hh"
#include "sample/controller.hh"

namespace varsim
{
namespace sample
{

/**
 * Measure @p simn under @p run; sampling-aware. @p sink, if set, is
 * forwarded to the controller (checkpoint publication at window
 * boundaries); ignored for unsampled runs.
 */
core::RunResult measure(core::Simulation &simn,
                        const core::RunConfig &run,
                        std::size_t num_cpus,
                        SamplingController::CheckpointSink sink = {});

/**
 * Run one fresh simulation of (sys, wl) under @p run. When
 * @p library is non-null and sampling is on, a checkpoint is
 * published at each measurement-window end boundary, keyed by
 * (sys, wl, perturbSeed, txn position) — downstream experiments can
 * restore from any measured point of the sampled trajectory.
 */
core::RunResult runOnce(const core::SystemConfig &sys,
                        const workload::WorkloadParams &wl,
                        const core::RunConfig &run,
                        ckpt::CheckpointLibrary *library = nullptr);

/** As runOnce, but restoring from @p cp first. */
core::RunResult
runFromCheckpoint(const core::SystemConfig &sys,
                  const workload::WorkloadParams &wl,
                  const core::Checkpoint &cp,
                  const core::RunConfig &run,
                  ckpt::CheckpointLibrary *library = nullptr);

/**
 * Sampling-aware core::runMany: numRuns independent runs with seeds
 * baseSeed+i, concurrent on host threads, results in run order.
 */
std::vector<core::RunResult>
runMany(const core::SystemConfig &sys,
        const workload::WorkloadParams &wl,
        const core::RunConfig &run,
        const core::ExperimentConfig &exp);

/** As runMany, restoring every run from @p cp first. */
std::vector<core::RunResult>
runManyFromCheckpoint(const core::SystemConfig &sys,
                      const workload::WorkloadParams &wl,
                      const core::Checkpoint &cp,
                      const core::RunConfig &run,
                      const core::ExperimentConfig &exp);

} // namespace sample
} // namespace varsim

#endif // VARSIM_SAMPLE_RUNNER_HH
