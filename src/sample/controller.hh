/**
 * @file
 * The intra-run sampling controller: drives one Simulation through
 * alternating fast-forward (functional warming), detailed warm-up,
 * and detailed measurement intervals, and turns the measured windows
 * into confidence-bounded estimates of the full-detail metrics.
 *
 * Interval layout per sampling unit of U transactions (SMARTS-style,
 * but transaction- rather than instruction-denominated, matching the
 * paper's "simulated time to complete a fixed number of
 * transactions" methodology):
 *
 *     [ fast f1 ][ warm W ][ measure M ][ fast f2 ]   f1+f2 = U-W-M
 *
 * The placement of the window within the unit is the *design*:
 * systematic puts it at the end of every unit (fixed phase);
 * stratified draws f1 uniformly per unit from a stream mixed with
 * the run's perturbation seed (independent placement per run);
 * matched-pair draws from a seed-independent stream, so every
 * perturbation seed of a comparison measures the same windows and
 * the within-pair difference cancels placement noise.
 *
 * Edge rules (exercised by tests/sample):
 *  - a remainder too short for one full W+M window fast-forwards if
 *    at least one window was already measured;
 *  - a run that would otherwise yield *zero* windows (shorter than
 *    one period, or a workload — like the scientific benchmarks —
 *    that completes in a single transaction) degrades to full
 *    detail: the estimate is then exact with a degenerate interval,
 *    and SampledStats::fullDetailFallback says so.
 */

#ifndef VARSIM_SAMPLE_CONTROLLER_HH
#define VARSIM_SAMPLE_CONTROLLER_HH

#include <functional>
#include <vector>

#include "core/simulation.hh"
#include "sim/random.hh"

namespace varsim
{
namespace sample
{

class SamplingController
{
  public:
    /**
     * @param perturb_seed the run's perturbation seed; mixed into
     *        the stratified design's offset stream (and ignored by
     *        the matched-pair design, by construction).
     */
    SamplingController(core::Simulation &simn,
                       const core::SampleConfig &cfg,
                       std::uint64_t perturb_seed);

    /**
     * Publish hook called after each measurement window with the
     * 0-based window index and a full checkpoint taken at the
     * window's end boundary (the system is quiescent there anyway —
     * the mode switch drained it — so snapshots are nearly free).
     */
    using CheckpointSink =
        std::function<void(std::uint64_t window,
                           const core::Checkpoint &cp)>;

    void setCheckpointSink(CheckpointSink sink);

    /**
     * Drive the simulation until @p total_txns more transactions
     * complete (or the workload ends), sampling per the config.
     * Fills the simulation's SampledStats (so the sim.sampled.*
     * metrics export the estimates) and returns them. The
     * simulation is left in detailed mode.
     */
    core::SampledStats run(std::uint64_t total_txns);

    /** True if the workload ended during run(). */
    bool workloadEnded() const { return ended_; }

    /** Per-window series (tests and diagnostics). */
    const std::vector<double> &windowCpt() const { return cpt_; }
    const std::vector<double> &windowIpc() const { return ipc_; }
    const std::vector<double> &windowL2Miss() const { return miss_; }

  private:
    /** Cumulative counters a window is a difference of. */
    struct Snapshot
    {
        sim::Tick ticks = 0;
        std::uint64_t instructions = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t txns = 0;
    };

    Snapshot snap() const;

    /** runTransactions with end tracking; returns txns completed. */
    std::uint64_t runTxns(std::uint64_t n);

    void fastForward(std::uint64_t n);
    void detailedWarm(std::uint64_t n);
    void measureWindow(std::uint64_t n);

    /** Record one window's metrics from its boundary snapshots. */
    void record(const Snapshot &a, const Snapshot &b);

    /** Fast-forward txns before the window, given U-W-M slack. */
    std::uint64_t chooseOffset(std::uint64_t slack);

    /** Reduce the window series to the reported estimates. */
    void finishEstimates(const Snapshot &runStart);

    core::Simulation &simn_;
    core::SampleConfig cfg_;
    sim::Random offsetRng_;
    CheckpointSink sink_;
    bool ended_ = false;
    std::vector<double> cpt_, ipc_, miss_;
    core::SampledStats st_;
};

} // namespace sample
} // namespace varsim

#endif // VARSIM_SAMPLE_CONTROLLER_HH
