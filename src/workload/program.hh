/**
 * @file
 * The synthetic-workload program engine.
 *
 * A SyntheticProgram is a thread's op stream: it lazily materializes
 * one transaction's worth of ops at a time from a workload-specific
 * TxnGenerator. Generation is a pure function of (thread id,
 * transaction index, the thread's private RNG stream) — never of
 * simulated time — so every run of a given workload seed executes
 * identical per-thread instruction streams, and only the
 * *interleaving* differs between runs. This is what lets the
 * memory-latency perturbation of Section 3.3 remain the sole random
 * input while still producing the paper's emergent space variability.
 */

#ifndef VARSIM_WORKLOAD_PROGRAM_HH
#define VARSIM_WORKLOAD_PROGRAM_HH

#include <memory>
#include <vector>

#include "cpu/op.hh"
#include "sim/random.hh"
#include "sim/serialize.hh"

namespace varsim
{
namespace workload
{

/**
 * Strategy that materializes one transaction for one thread.
 * Implementations must be deterministic given the arguments and must
 * keep no mutable per-call state of their own (all evolving state
 * lives in the per-thread RNG and the transaction index).
 */
class TxnGenerator
{
  public:
    virtual ~TxnGenerator() = default;

    /**
     * Append the ops of thread @p tid's transaction number
     * @p txn_index to @p out. The final op of a thread's last
     * transaction must be OpKind::End; every other transaction ends
     * with OpKind::TxnEnd (or a Sleep/Yield tail after it).
     */
    virtual void generate(int tid, std::uint64_t txn_index,
                          sim::Random &rng,
                          std::vector<cpu::Op> &out) = 0;
};

/**
 * The op stream fed to CPUs: buffers one generated transaction and
 * refills on demand.
 */
class SyntheticProgram : public cpu::OpStream
{
  public:
    SyntheticProgram(std::shared_ptr<TxnGenerator> generator, int tid,
                     std::uint64_t seed);

    const cpu::Op &current() override;
    void advance() override;

    /** Transactions generated so far for this thread. */
    std::uint64_t txnIndex() const { return txnIndex_; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  private:
    void refill();

    std::shared_ptr<TxnGenerator> gen;
    int tid_;
    sim::Random rng;
    std::uint64_t txnIndex_ = 0;
    std::vector<cpu::Op> buf;
    std::size_t pos = 0;
};

/** Simple bump allocator for the simulated physical address space. */
class AddressSpace
{
  public:
    explicit AddressSpace(sim::Addr base = 0x1000'0000,
                          std::size_t alignment = 64)
        : next(base), align(alignment)
    {}

    /** Reserve @p bytes; returns the region base. */
    sim::Addr
    alloc(std::uint64_t bytes)
    {
        const sim::Addr r = next;
        next += (bytes + align - 1) / align * align;
        return r;
    }

    /** Total reserved so far (end of allocated space). */
    sim::Addr end() const { return next; }

  private:
    sim::Addr next;
    std::size_t align;
};

/**
 * Op-emission helpers shared by the workload generators.
 */
namespace emit
{

inline void
compute(std::vector<cpu::Op> &o, std::uint64_t n)
{
    if (n > 0)
        o.push_back({cpu::OpKind::Compute, n, 0, 0});
}

inline void
load(std::vector<cpu::Op> &o, sim::Addr addr)
{
    o.push_back({cpu::OpKind::Load, 0, addr, 0});
}

/** A load whose address depends on the previous load (chase). */
inline void
dependentLoad(std::vector<cpu::Op> &o, sim::Addr addr)
{
    o.push_back({cpu::OpKind::Load, 0, addr, 1});
}

inline void
store(std::vector<cpu::Op> &o, sim::Addr addr)
{
    o.push_back({cpu::OpKind::Store, 0, addr, 0});
}

inline void
branch(std::vector<cpu::Op> &o, sim::Addr pc, bool taken)
{
    o.push_back({cpu::OpKind::Branch, 0, pc, taken ? 1 : 0});
}

inline void
call(std::vector<cpu::Op> &o, sim::Addr return_addr)
{
    o.push_back({cpu::OpKind::Call, return_addr, 0, 0});
}

inline void
ret(std::vector<cpu::Op> &o, sim::Addr return_addr)
{
    o.push_back({cpu::OpKind::Return, return_addr, 0, 0});
}

inline void
indirectBranch(std::vector<cpu::Op> &o, sim::Addr pc,
               sim::Addr target)
{
    o.push_back({cpu::OpKind::IndirectBranch, target, pc, 0});
}

inline void
lock(std::vector<cpu::Op> &o, int id, sim::Addr word)
{
    o.push_back({cpu::OpKind::Lock, 0, word, id});
}

inline void
unlock(std::vector<cpu::Op> &o, int id, sim::Addr word)
{
    o.push_back({cpu::OpKind::Unlock, 0, word, id});
}

inline void
barrier(std::vector<cpu::Op> &o, int id)
{
    o.push_back({cpu::OpKind::Barrier, 0, 0, id});
}

inline void
txnEnd(std::vector<cpu::Op> &o, int type)
{
    o.push_back({cpu::OpKind::TxnEnd, 0, 0, type});
}

inline void
sleep(std::vector<cpu::Op> &o, std::uint64_t ticks)
{
    if (ticks > 0)
        o.push_back({cpu::OpKind::Sleep, ticks, 0, 0});
}

inline void
end(std::vector<cpu::Op> &o)
{
    o.push_back({cpu::OpKind::End, 0, 0, 0});
}

/**
 * A pointer-chase index walk (B-tree style): @p depth dependent loads
 * at pseudo-random nodes of a region of @p nodes cache blocks, with a
 * loop branch and a little compute per level.
 */
void indexWalk(std::vector<cpu::Op> &o, sim::Random &rng,
               sim::Addr base, std::size_t nodes, int depth,
               std::uint64_t compute_per_level, sim::Addr branch_pc,
               std::size_t block_bytes = 64);

/**
 * A sequential scan of @p count blocks starting at @p base, reading
 * or writing one word per block with compute in between.
 */
void scanBlocks(std::vector<cpu::Op> &o, sim::Addr base,
                std::size_t count, bool write,
                std::uint64_t compute_per_block,
                std::size_t block_bytes = 64);

/**
 * Touch a row of @p row_bytes at @p row_base: read every block, then
 * optionally dirty the first block.
 */
void rowAccess(std::vector<cpu::Op> &o, sim::Addr row_base,
               std::size_t row_bytes, bool write,
               std::uint64_t compute_per_block,
               std::size_t block_bytes = 64);

/**
 * An inner loop: @p iters taken branches at @p pc followed by one
 * not-taken exit branch, with @p compute_per_iter work per
 * iteration. Exercises the direction predictor with a learnable
 * pattern.
 */
void loop(std::vector<cpu::Op> &o, sim::Addr pc, std::size_t iters,
          std::uint64_t compute_per_iter);

} // namespace emit

} // namespace workload
} // namespace varsim

#endif // VARSIM_WORKLOAD_PROGRAM_HH
