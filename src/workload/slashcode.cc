/**
 * @file
 * The Slashcode workload: dynamic web content serving in the style of
 * slashdot.org (paper Section 3.1). Few, heavyweight page-rendering
 * transactions whose cost varies wildly (a hot front page with a
 * giant comment tree vs. long-tail story pages), executed under hot
 * database and template-cache locks. The paper measures only 30
 * transactions per run and finds by far the largest space
 * variability here (Table 3: CoV 3.60%, range 14.45%).
 */

#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

namespace
{

class SlashcodeGenerator : public TxnGenerator
{
  public:
    explicit SlashcodeGenerator(BuildContext &ctx)
        : blockBytes(ctx.blockBytes), pageZipf(numPages, 1.1)
    {
        AddressSpace as;
        codeBase = as.alloc(512 * 1024);
        storyTable = as.alloc(std::uint64_t{numPages} *
                              storyRowBytes);
        commentHeap = as.alloc(std::uint64_t{numPages} *
                               maxComments * commentRowBytes);
        commentIndex = as.alloc(indexBlocks * blockBytes);
        templateCache = as.alloc(templateBlocks * blockBytes);
        outputBuffers = as.alloc(std::uint64_t{maxThreads} *
                                 outputBytes);

        dbWord = as.alloc(64);
        dbLock = ctx.kernel.createMutex(dbWord);
        templateWord = as.alloc(64);
        templateLock = ctx.kernel.createMutex(templateWord);
    }

    sim::Addr codeRegion() const { return codeBase; }

    void
    generate(int tid, std::uint64_t, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        const std::size_t page = pageZipf.sample(rng);
        // Comment count: hot pages carry bigger discussion trees,
        // with a ~3x spread between the front page and the tail.
        const std::size_t comments =
            24 + static_cast<std::size_t>(
                     (page < 8 ? 48.0 : 12.0) * rng.uniformReal());

        emit::call(out, codeBase + 0x10);
        emit::loop(out, codeBase + 0x20, 10, 60);

        // Fetch the story and its comment tree from the database —
        // all of it under the global DB handle lock, the workload's
        // defining serialization point.
        emit::lock(out, dbLock, dbWord);
        emit::rowAccess(out,
                        storyTable + static_cast<sim::Addr>(page) *
                                         storyRowBytes,
                        storyRowBytes, false, 25, blockBytes);
        for (std::size_t c = 0; c < comments; ++c) {
            emit::indexWalk(out, rng, commentIndex, indexBlocks, 3,
                            35, codeBase + 0x40, blockBytes);
            const sim::Addr row =
                commentHeap +
                (static_cast<sim::Addr>(page) * maxComments +
                 (c * 2654435761u) % maxComments) *
                    commentRowBytes;
            emit::rowAccess(out, row, commentRowBytes, false, 25,
                            blockBytes);
            emit::branch(out, codeBase + 0x50, c + 1 < comments);
        }
        emit::unlock(out, dbLock, dbWord);

        // Template expansion under the template-cache lock.
        emit::lock(out, templateLock, templateWord);
        emit::scanBlocks(out, templateCache, 24, false, 30,
                         blockBytes);
        emit::unlock(out, templateLock, templateWord);

        // Render: heavy private compute proportional to page size.
        const sim::Addr outBuf =
            outputBuffers + static_cast<sim::Addr>(
                                tid % maxThreads) * outputBytes;
        for (std::size_t c = 0; c < comments; ++c) {
            emit::compute(out, 300);
            emit::branch(out, codeBase + 0x60, rng.bernoulli(0.6));
            if (c % 4 == 0) {
                emit::store(out, outBuf + (c / 4) * blockBytes);
            }
        }
        emit::ret(out, codeBase + 0x10);
        emit::txnEnd(out, 0);
    }

  private:
    static constexpr std::size_t numPages = 512;
    static constexpr std::size_t storyRowBytes = 512;
    static constexpr std::size_t maxComments = 192;
    static constexpr std::size_t commentRowBytes = 256;
    static constexpr std::size_t indexBlocks = 8192;
    static constexpr std::size_t templateBlocks = 512;
    static constexpr std::size_t outputBytes = 1u << 16;
    static constexpr std::size_t maxThreads = 1024;

    std::size_t blockBytes;
    sim::Addr codeBase = 0;
    sim::Addr storyTable = 0;
    sim::Addr commentHeap = 0;
    sim::Addr commentIndex = 0;
    sim::Addr templateCache = 0;
    sim::Addr outputBuffers = 0;
    sim::Addr dbWord = 0;
    sim::Addr templateWord = 0;
    int dbLock = -1;
    int templateLock = -1;
    sim::ZipfSampler pageZipf;
};

} // anonymous namespace

void
buildSlashcode(BuildContext &ctx)
{
    auto gen = std::make_shared<SlashcodeGenerator>(ctx);
    const std::size_t n = threadCount(ctx, 2);
    createThreads(ctx, gen, n, gen->codeRegion(), 160);
    ctx.wl.setDefaultTxnCount(30);
}

} // namespace workload
} // namespace varsim
