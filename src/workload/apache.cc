/**
 * @file
 * The Apache workload: static web content serving (paper
 * Section 3.1). Requests are short and mostly independent — a brief
 * pass through the global accept lock, a Zipf-popular file read out
 * of the page cache, response assembly, and an access-log append —
 * so variability is moderate (Table 3: CoV 0.88%, range 3.94% at
 * 5000 transactions).
 */

#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

namespace
{

class ApacheGenerator : public TxnGenerator
{
  public:
    explicit ApacheGenerator(BuildContext &ctx)
        : blockBytes(ctx.blockBytes), fileZipf(numFiles, 0.75)
    {
        AddressSpace as;
        codeBase = as.alloc(256 * 1024);
        pageCache =
            as.alloc(std::uint64_t{numFiles} * maxFileBlocks *
                     blockBytes);
        logRegion = as.alloc(logBlocks * blockBytes);
        scoreboard = as.alloc(16 * blockBytes);

        acceptWord = as.alloc(64);
        acceptLock = ctx.kernel.createMutex(acceptWord);
        logWord = as.alloc(64);
        logLock = ctx.kernel.createMutex(logWord);
    }

    sim::Addr codeRegion() const { return codeBase; }

    void
    generate(int, std::uint64_t txn_index, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        // Accept a new connection (1 request in 8 — HTTP keep-alive
        // serves the rest on existing connections): a short global
        // critical section.
        if (txn_index % 8 == 0) {
            emit::lock(out, acceptLock, acceptWord);
            emit::compute(out, 40);
            emit::unlock(out, acceptLock, acceptWord);
        }

        // Parse the request.
        emit::call(out, codeBase + 0x20);
        emit::loop(out, codeBase + 0x30, 6, 35);

        // Serve the file from the page cache. File sizes vary
        // deterministically by file id (hash), popularity is Zipf.
        const std::size_t file = fileZipf.sample(rng);
        const std::size_t size_blocks =
            1 + (file * 2654435761u) % maxFileBlocks;
        const sim::Addr base =
            pageCache + static_cast<sim::Addr>(file) *
                            maxFileBlocks * blockBytes;
        emit::scanBlocks(out, base, size_blocks, false, 30,
                         blockBytes);

        // Response assembly with a data-dependent branch per chunk.
        for (std::size_t i = 0; i < size_blocks; i += 4) {
            emit::branch(out, codeBase + 0x40, rng.bernoulli(0.7));
            emit::compute(out, 50);
        }
        emit::ret(out, codeBase + 0x20);

        // Access log (global lock) and the shared scoreboard: two
        // write-shared hot blocks every request.
        emit::lock(out, logLock, logWord);
        const std::size_t at = static_cast<std::size_t>(
            (txn_index * 7) % (logBlocks - 2));
        emit::scanBlocks(out, logRegion + at * blockBytes, 1, true,
                         20, blockBytes);
        emit::unlock(out, logLock, logWord);
        emit::store(out, scoreboard);

        emit::txnEnd(out, 0);
    }

  private:
    static constexpr std::size_t numFiles = 8192;
    static constexpr std::size_t maxFileBlocks = 16;
    static constexpr std::size_t logBlocks = 8192;

    std::size_t blockBytes;
    sim::Addr codeBase = 0;
    sim::Addr pageCache = 0;
    sim::Addr logRegion = 0;
    sim::Addr scoreboard = 0;
    sim::Addr acceptWord = 0;
    sim::Addr logWord = 0;
    int acceptLock = -1;
    int logLock = -1;
    sim::ZipfSampler fileZipf;
};

} // anonymous namespace

void
buildApache(BuildContext &ctx)
{
    auto gen = std::make_shared<ApacheGenerator>(ctx);
    const std::size_t n = threadCount(ctx, 8);
    createThreads(ctx, gen, n, gen->codeRegion(), 96);
    ctx.wl.setDefaultTxnCount(1000);
}

} // namespace workload
} // namespace varsim
