/**
 * @file
 * The SPLASH-2 scientific workloads (paper Section 3.1): Barnes-Hut
 * (16K bodies) and Ocean (514x514 grid), modelled as barrier-phased
 * timestep loops with one thread per processor. The whole benchmark
 * counts as a single transaction (Table 3), and variability is tiny:
 * there is no OS-level oversubscription, synchronization is by
 * all-thread barriers, and sharing is structured — Barnes reads a
 * shared tree (CoV 0.16%), Ocean also writes shared boundary rows
 * each step (CoV 0.31%, a little higher).
 */

#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

namespace
{

/** Common scaffolding for the two timestep-loop benchmarks. */
class ScientificGenerator : public TxnGenerator
{
  public:
    ScientificGenerator(BuildContext &ctx, std::size_t threads,
                        std::uint64_t steps)
        : blockBytes(ctx.blockBytes), numThreads(threads),
          numSteps(steps)
    {
        phaseBarrier = ctx.kernel.createBarrier(
            static_cast<std::uint32_t>(threads));
    }

    void
    generate(int tid, std::uint64_t txn_index, sim::Random &rng,
             std::vector<cpu::Op> &out) final
    {
        if (txn_index >= numSteps) {
            // Whole benchmark = one transaction: thread 0 reports it.
            if (tid == 0)
                emit::txnEnd(out, 0);
            emit::end(out);
            return;
        }
        timestep(tid, txn_index, rng, out);
    }

  protected:
    /** One barrier-phased timestep. */
    virtual void timestep(int tid, std::uint64_t step,
                          sim::Random &rng,
                          std::vector<cpu::Op> &out) = 0;

    std::size_t blockBytes;
    std::size_t numThreads;
    std::uint64_t numSteps;
    int phaseBarrier = -1;
};

class BarnesGenerator : public ScientificGenerator
{
  public:
    BarnesGenerator(BuildContext &ctx, std::size_t threads)
        : ScientificGenerator(ctx, threads, 24)
    {
        AddressSpace as;
        codeBase = as.alloc(256 * 1024);
        tree = as.alloc(treeBlocks * blockBytes);
        bodies = as.alloc(std::uint64_t{threads} * bodiesPerThread *
                          bodyBytes);
    }

    sim::Addr codeRegion() const { return codeBase; }

  protected:
    void
    timestep(int tid, std::uint64_t, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        const sim::Addr myBodies =
            bodies + static_cast<sim::Addr>(tid) * bodiesPerThread *
                         bodyBytes;

        // Force computation: a read-only shared-tree walk per body.
        emit::call(out, codeBase + 0x10);
        for (std::size_t b = 0; b < bodiesPerThread; ++b) {
            emit::load(out, myBodies + b * bodyBytes);
            emit::indexWalk(out, rng, tree, treeBlocks, 6, 30,
                            codeBase + 0x20, blockBytes);
            emit::compute(out, 80);
            emit::branch(out, codeBase + 0x30,
                         b + 1 < bodiesPerThread);
        }
        emit::ret(out, codeBase + 0x10);
        emit::barrier(out, phaseBarrier);

        // Position update: private writes.
        emit::scanBlocks(out, myBodies, bodiesPerThread * bodyBytes /
                                            blockBytes,
                         true, 20, blockBytes);

        // Tree rebuild: each thread rewrites its slice of the
        // shared tree (read-mostly the rest of the step).
        const std::size_t slice = treeBlocks / numThreads;
        emit::scanBlocks(out,
                         tree + static_cast<sim::Addr>(tid) * slice *
                                    blockBytes,
                         slice / 4, true, 15, blockBytes);
        emit::barrier(out, phaseBarrier);
    }

  private:
    static constexpr std::size_t treeBlocks = 32768; // 2 MB shared
    static constexpr std::size_t bodiesPerThread = 192;
    static constexpr std::size_t bodyBytes = 128;

    sim::Addr codeBase = 0;
    sim::Addr tree = 0;
    sim::Addr bodies = 0;
};

class OceanGenerator : public ScientificGenerator
{
  public:
    OceanGenerator(BuildContext &ctx, std::size_t threads)
        : ScientificGenerator(ctx, threads, 32)
    {
        AddressSpace as;
        codeBase = as.alloc(256 * 1024);
        grid = as.alloc(std::uint64_t{rows} * rowBlocks *
                        blockBytes);
        rowsPerThread = rows / threads;
    }

    sim::Addr codeRegion() const { return codeBase; }

  protected:
    void
    timestep(int tid, std::uint64_t step, sim::Random &,
             std::vector<cpu::Op> &out) override
    {
        const std::size_t first =
            static_cast<std::size_t>(tid) * rowsPerThread;
        const std::size_t last = first + rowsPerThread - 1;

        // Red-black relaxation: two half-sweeps per step. Boundary
        // rows are written by this thread and read by neighbours the
        // following half-step — true communication through the
        // coherence protocol.
        for (int half = 0; half < 2; ++half) {
            for (std::size_t r = first; r <= last; ++r) {
                if ((r + step + static_cast<std::size_t>(half)) % 2)
                    continue;
                // Read the row above and below (may be a
                // neighbour's boundary), write our own.
                if (r > 0) {
                    emit::scanBlocks(out, rowAddr(r - 1), rowBlocks,
                                     false, 6, blockBytes);
                }
                if (r + 1 < rows) {
                    emit::scanBlocks(out, rowAddr(r + 1), rowBlocks,
                                     false, 6, blockBytes);
                }
                emit::scanBlocks(out, rowAddr(r), rowBlocks, true, 10,
                                 blockBytes);
                emit::branch(out, codeBase + 0x20, r < last);
            }
            emit::barrier(out, phaseBarrier);
        }
    }

  private:
    sim::Addr
    rowAddr(std::size_t r) const
    {
        return grid + static_cast<sim::Addr>(r) * rowBlocks *
                          blockBytes;
    }

    static constexpr std::size_t rows = 256;
    static constexpr std::size_t rowBlocks = 8; // 512 B of state/row

    sim::Addr codeBase = 0;
    sim::Addr grid = 0;
    std::size_t rowsPerThread = 1;
};

} // anonymous namespace

void
buildBarnes(BuildContext &ctx)
{
    const std::size_t n = threadCount(ctx, 1);
    auto gen = std::make_shared<BarnesGenerator>(ctx, n);
    createThreads(ctx, gen, n, gen->codeRegion(), 64);
    ctx.wl.setDefaultTxnCount(1);
}

void
buildOcean(BuildContext &ctx)
{
    const std::size_t n = threadCount(ctx, 1);
    auto gen = std::make_shared<OceanGenerator>(ctx, n);
    createThreads(ctx, gen, n, gen->codeRegion(), 48);
    ctx.wl.setDefaultTxnCount(1);
}

} // namespace workload
} // namespace varsim
