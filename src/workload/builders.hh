/**
 * @file
 * Internal interface between the Workload::build() dispatcher and the
 * per-benchmark builders.
 */

#ifndef VARSIM_WORKLOAD_BUILDERS_HH
#define VARSIM_WORKLOAD_BUILDERS_HH

#include "workload/workload.hh"

namespace varsim
{
namespace workload
{

/** Everything a per-kind builder needs. */
struct BuildContext
{
    Workload &wl;
    os::Kernel &kernel;
    const WorkloadParams &params;
    std::size_t numCpus;
    std::size_t blockBytes;
};

void buildOltp(BuildContext &ctx);
void buildApache(BuildContext &ctx);
void buildSpecJbb(BuildContext &ctx);
void buildSlashcode(BuildContext &ctx);
void buildEcPerf(BuildContext &ctx);
void buildBarnes(BuildContext &ctx);
void buildOcean(BuildContext &ctx);

/**
 * Create @p n threads running @p gen, with per-thread RNG streams
 * derived from the workload seed and a shared code footprint of
 * @p code_blocks blocks at @p code_base.
 */
void createThreads(BuildContext &ctx,
                   std::shared_ptr<TxnGenerator> gen, std::size_t n,
                   sim::Addr code_base, std::uint32_t code_blocks);

/** Threads for this workload given params (kind default if 0). */
std::size_t threadCount(const BuildContext &ctx,
                        std::size_t default_per_cpu);

} // namespace workload
} // namespace varsim

#endif // VARSIM_WORKLOAD_BUILDERS_HH
