#include "workload/workload.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>

#include "sim/logging.hh"
#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

const char *
kindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Oltp:      return "OLTP";
      case WorkloadKind::Apache:    return "Apache";
      case WorkloadKind::SpecJbb:   return "SPECjbb";
      case WorkloadKind::Slashcode: return "Slashcode";
      case WorkloadKind::EcPerf:    return "ECPerf";
      case WorkloadKind::Barnes:    return "Barnes";
      case WorkloadKind::Ocean:     return "Ocean";
    }
    return "unknown";
}

WorkloadKind
kindFromName(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "oltp")
        return WorkloadKind::Oltp;
    if (lower == "apache")
        return WorkloadKind::Apache;
    if (lower == "specjbb" || lower == "jbb")
        return WorkloadKind::SpecJbb;
    if (lower == "slashcode")
        return WorkloadKind::Slashcode;
    if (lower == "ecperf")
        return WorkloadKind::EcPerf;
    if (lower == "barnes")
        return WorkloadKind::Barnes;
    if (lower == "ocean")
        return WorkloadKind::Ocean;
    sim::fatal("unknown workload '%s'", name.c_str());
}

SyntheticProgram &
Workload::addProgram(std::unique_ptr<SyntheticProgram> p)
{
    programs.push_back(std::move(p));
    return *programs.back();
}

void
Workload::serialize(sim::CheckpointOut &cp) const
{
    for (const auto &p : programs)
        p->serialize(cp);
}

void
Workload::unserialize(sim::CheckpointIn &cp)
{
    for (const auto &p : programs)
        p->unserialize(cp);
}

std::unique_ptr<Workload>
Workload::build(const WorkloadParams &params, os::Kernel &kernel,
                std::size_t num_cpus, std::size_t block_bytes)
{
    if (!(params.scale > 0.0))
        throw std::invalid_argument(
            "workload scale must be positive, got " +
            std::to_string(params.scale));
    auto wl = std::make_unique<Workload>(kindName(params.kind));
    BuildContext ctx{*wl, kernel, params, num_cpus, block_bytes};
    switch (params.kind) {
      case WorkloadKind::Oltp:      buildOltp(ctx); break;
      case WorkloadKind::Apache:    buildApache(ctx); break;
      case WorkloadKind::SpecJbb:   buildSpecJbb(ctx); break;
      case WorkloadKind::Slashcode: buildSlashcode(ctx); break;
      case WorkloadKind::EcPerf:    buildEcPerf(ctx); break;
      case WorkloadKind::Barnes:    buildBarnes(ctx); break;
      case WorkloadKind::Ocean:     buildOcean(ctx); break;
    }
    return wl;
}

void
createThreads(BuildContext &ctx, std::shared_ptr<TxnGenerator> gen,
              std::size_t n, sim::Addr code_base,
              std::uint32_t code_blocks)
{
    sim::SplitMix64 seeder(ctx.params.seed ^ 0xabcdef12345ULL);
    for (std::size_t i = 0; i < n; ++i) {
        const auto tid =
            static_cast<sim::ThreadId>(ctx.kernel.numThreads());
        auto &prog = ctx.wl.addProgram(
            std::make_unique<SyntheticProgram>(
                gen, static_cast<int>(tid), seeder.next()));
        auto thread = std::make_unique<os::Thread>(tid, &prog);
        thread->fetch.codeBase = code_base;
        thread->fetch.codeBlocks = code_blocks;
        ctx.kernel.addThread(std::move(thread));
    }
}

std::size_t
threadCount(const BuildContext &ctx, std::size_t default_per_cpu)
{
    const std::size_t per_cpu = ctx.params.threadsPerCpu != 0
                                    ? ctx.params.threadsPerCpu
                                    : default_per_cpu;
    return per_cpu * ctx.numCpus;
}

} // namespace workload
} // namespace varsim
