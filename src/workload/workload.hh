/**
 * @file
 * The workload library: synthetic models of the paper's seven
 * benchmarks (Section 3.1 and Table 3).
 *
 * | Paper workload | Model here                                     |
 * |----------------|------------------------------------------------|
 * | OLTP (DB2 +    | 5 TPC-C-like transaction types over warehouse/ |
 * | TPC-C)         | district/stock tables, B-tree index walks, row |
 * |                | locks, a serializing log, periodic log flushes |
 * |                | and a drifting buffer-pool working set         |
 * | Apache         | many short static-content requests: accept    |
 * |                | lock, Zipf-popular file reads, access log      |
 * | SPECjbb        | per-warehouse (per-thread) object churn with   |
 * |                | almost no sharing, plus sawtooth GC phases —   |
 * |                | time variability with negligible space         |
 * |                | variability (Figure 9b)                        |
 * | Slashcode      | few heavyweight dynamic-page builds under hot  |
 * |                | DB/template locks — the largest variability    |
 * | ECPerf         | 3-tier request chains through bean-pool locks  |
 * | Barnes-Hut     | barrier-phased tree walks, read-shared tree    |
 * | Ocean          | barrier-phased stencil with boundary sharing   |
 *
 * The per-thread op streams are pure functions of the workload seed;
 * all cross-run variation comes from timing (see program.hh).
 */

#ifndef VARSIM_WORKLOAD_WORKLOAD_HH
#define VARSIM_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "os/kernel.hh"
#include "workload/program.hh"

namespace varsim
{
namespace workload
{

/** The seven benchmarks of the paper. */
enum class WorkloadKind
{
    Oltp,
    Apache,
    SpecJbb,
    Slashcode,
    EcPerf,
    Barnes,
    Ocean,
};

/** Name of a workload kind ("OLTP", "Apache", ...). */
const char *kindName(WorkloadKind kind);

/** Parse a workload name (case-insensitive); fatal on failure. */
WorkloadKind kindFromName(const std::string &name);

/** Workload construction parameters. */
struct WorkloadParams
{
    WorkloadKind kind = WorkloadKind::Oltp;

    /**
     * Seed of the workload's op streams. Fixed across the runs of an
     * experiment: the *same* workload is simulated every time; only
     * the timing perturbation seed varies per run.
     */
    std::uint64_t seed = 12345;

    /**
     * Software threads per processor. 0 selects the kind's default
     * (8 for the commercial workloads, matching the paper's 8 users
     * per processor; 1 for the scientific ones).
     */
    std::size_t threadsPerCpu = 0;

    /** Footprint / transaction-size scale factor. */
    double scale = 1.0;
};

/**
 * A built workload instance: owns the generators and per-thread
 * programs; the threads themselves are registered with (and owned
 * by) the kernel.
 */
class Workload : public sim::Serializable
{
  public:
    /**
     * Build workload @p params into @p kernel: creates regions,
     * locks, barriers, programs and threads.
     *
     * @param num_cpus    processors in the target system
     * @param block_bytes cache block size (for layout alignment)
     * @throws std::invalid_argument for invalid parameters
     *         (scale <= 0 or NaN)
     */
    static std::unique_ptr<Workload>
    build(const WorkloadParams &params, os::Kernel &kernel,
          std::size_t num_cpus, std::size_t block_bytes);

    const std::string &name() const { return name_; }
    std::size_t numThreads() const { return programs.size(); }

    /** Default measured-transaction count (paper Table 3, scaled). */
    std::uint64_t defaultTxnCount() const { return defaultTxns; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

    // -- used by the per-kind builders --

    explicit Workload(std::string name) : name_(std::move(name)) {}

    /** Register a per-thread program (order = thread id order). */
    SyntheticProgram &addProgram(std::unique_ptr<SyntheticProgram> p);

    /** Set the default measured-transaction count. */
    void setDefaultTxnCount(std::uint64_t n) { defaultTxns = n; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<SyntheticProgram>> programs;
    std::uint64_t defaultTxns = 200;
};

} // namespace workload
} // namespace varsim

#endif // VARSIM_WORKLOAD_WORKLOAD_HH
