/**
 * @file
 * The ECPerf workload: a 3-tier Java enterprise benchmark (paper
 * Section 3.1; memory behaviour characterized by Karlsson et al.).
 * Each business transaction flows through a web tier (private
 * compute), an application tier (EJB container with contended bean
 * pools), and a database tier (shared tables plus a log). The paper
 * runs only 5 transactions per run, giving sizable variability
 * (Table 3: CoV 1.40%, range 5.30%).
 */

#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

namespace
{

class EcPerfGenerator : public TxnGenerator
{
  public:
    EcPerfGenerator(BuildContext &ctx, std::size_t threads)
        : blockBytes(ctx.blockBytes), numThreads(threads),
          beanZipf(beanPools, 0.7), orderZipf(numOrders, 0.85)
    {
        AddressSpace as;
        codeBase = as.alloc(512 * 1024);
        beanHeap = as.alloc(std::uint64_t{beanPools} * beansPerPool *
                            beanRowBytes);
        orderTable = as.alloc(std::uint64_t{numOrders} *
                              orderRowBytes);
        partsTable = as.alloc(std::uint64_t{numParts} *
                              partRowBytes);
        logRegion = as.alloc(logBlocks * blockBytes);
        sessionHeap = as.alloc(std::uint64_t{maxThreads} *
                               sessionBytes);

        for (std::size_t p = 0; p < beanPools; ++p) {
            poolWords[p] = as.alloc(64);
            poolLocks[p] = ctx.kernel.createMutex(poolWords[p]);
        }
        logWord = as.alloc(64);
        logLock = ctx.kernel.createMutex(logWord);
        cycleBarrier = ctx.kernel.createBarrier(
            static_cast<std::uint32_t>(numThreads));
    }

    sim::Addr codeRegion() const { return codeBase; }

    void
    generate(int tid, std::uint64_t txn_index, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        // --- Web tier: request parsing and session state ---
        emit::call(out, codeBase + 0x10);
        const sim::Addr session =
            sessionHeap + static_cast<sim::Addr>(tid % maxThreads) *
                              sessionBytes;
        emit::scanBlocks(out, session, 6, true, 45, blockBytes);
        emit::loop(out, codeBase + 0x20, 24, 60);

        // --- App tier: a fixed 4-bean invocation chain. ECPerf
        // business transactions are highly regular; with only 5
        // measured transactions per run (Table 3), regularity is
        // what keeps the paper's CoV at 1.4%. ---
        const int beans = 4;
        for (int b = 0; b < beans; ++b) {
            const std::size_t pool = beanZipf.sample(rng);
            // Virtual dispatch into the bean implementation.
            emit::indirectBranch(out, codeBase + 0x80,
                                 codeBase + 0x2000 +
                                     static_cast<sim::Addr>(pool) *
                                         64);
            emit::lock(out, poolLocks[pool], poolWords[pool]);
            const std::size_t bean = static_cast<std::size_t>(
                rng.uniformInt(0, beansPerPool - 1));
            emit::rowAccess(out,
                            beanHeap +
                                (static_cast<sim::Addr>(pool) *
                                     beansPerPool +
                                 bean) *
                                    beanRowBytes,
                            beanRowBytes, true, 30, blockBytes);
            emit::unlock(out, poolLocks[pool], poolWords[pool]);
            emit::compute(out, 1500);
            emit::branch(out, codeBase + 0x90, b + 1 < beans);
        }

        // --- DB tier: order/parts access plus the commit log ---
        const std::size_t order = orderZipf.sample(rng);
        emit::rowAccess(out,
                        orderTable + static_cast<sim::Addr>(order) *
                                         orderRowBytes,
                        orderRowBytes, true, 25, blockBytes);
        const int parts = 6;
        for (int p = 0; p < parts; ++p) {
            const std::size_t part = static_cast<std::size_t>(
                rng.uniformInt(0, numParts - 1));
            emit::rowAccess(out,
                            partsTable +
                                static_cast<sim::Addr>(part) *
                                    partRowBytes,
                            partRowBytes, false, 25, blockBytes);
            emit::branch(out, codeBase + 0xa0, p + 1 < parts);
        }
        emit::lock(out, logLock, logWord);
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(0, logBlocks - 4));
        emit::scanBlocks(out, logRegion + at * blockBytes, 2, true,
                         20, blockBytes);
        emit::unlock(out, logLock, logWord);

        emit::ret(out, codeBase + 0x10);
        // An ECPerf "transaction" (Table 3 counts only 5 per run) is
        // one globally paced driver cycle: every agent completes
        // opsPerCycle EJB operations, the driver's injection barrier
        // closes the cycle, and agent 0 reports it. This coordinated
        // structure is what makes the paper's 5-transaction runs
        // statistically meaningful (CoV 1.4%).
        if ((txn_index + 1) % opsPerCycle == 0) {
            emit::barrier(out, cycleBarrier);
            if (tid % static_cast<int>(numThreads) == 0)
                emit::txnEnd(out, 0);
        } else {
            emit::branch(out, codeBase + 0xb0, true);
        }
    }

  private:
    static constexpr std::uint64_t opsPerCycle = 12;
    static constexpr std::size_t beanPools = 16;
    static constexpr std::size_t beansPerPool = 512;
    static constexpr std::size_t beanRowBytes = 384;
    static constexpr std::size_t numOrders = 32768;
    static constexpr std::size_t orderRowBytes = 512;
    static constexpr std::size_t numParts = 65536;
    static constexpr std::size_t partRowBytes = 256;
    static constexpr std::size_t logBlocks = 16384;
    static constexpr std::size_t sessionBytes = 4096;
    static constexpr std::size_t maxThreads = 1024;

    std::size_t blockBytes;
    std::size_t numThreads;
    int cycleBarrier = -1;
    sim::Addr codeBase = 0;
    sim::Addr beanHeap = 0;
    sim::Addr orderTable = 0;
    sim::Addr partsTable = 0;
    sim::Addr logRegion = 0;
    sim::Addr sessionHeap = 0;
    std::array<sim::Addr, beanPools> poolWords{};
    std::array<int, beanPools> poolLocks{};
    sim::Addr logWord = 0;
    int logLock = -1;
    sim::ZipfSampler beanZipf;
    sim::ZipfSampler orderZipf;
};

} // anonymous namespace

void
buildEcPerf(BuildContext &ctx)
{
    const std::size_t n = threadCount(ctx, 4);
    auto gen = std::make_shared<EcPerfGenerator>(ctx, n);
    createThreads(ctx, gen, n, gen->codeRegion(), 144);
    ctx.wl.setDefaultTxnCount(5);
}

} // namespace workload
} // namespace varsim
