/**
 * @file
 * The OLTP workload: a TPC-C-like transaction mix against a
 * warehouse-company database, modelled on the paper's DB2 setup
 * (Section 3.1): five transaction types, many concurrent users with
 * no think time, B-tree-style index walks, row and district locks, a
 * serializing database log, and a buffer pool whose hot set drifts
 * over the workload's lifetime (the source of the pronounced time
 * variability in Figures 8 and 9a).
 */

#include <array>

#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

namespace
{

class OltpGenerator : public TxnGenerator
{
  public:
    OltpGenerator(BuildContext &ctx)
        : blockBytes(ctx.blockBytes),
          custZipf(numCustomers, 1.05),
          stockZipf(numStock, 1.05),
          itemZipf(numItems, 1.1),
          districtZipf(numDistricts, 0.0)
    {
        AddressSpace as;
        codeBase = as.alloc(512 * 1024);
        warehouseTable = as.alloc(numWarehouses * warehouseRowBytes);
        districtTable = as.alloc(numDistricts * districtRowBytes);
        customerTable = as.alloc(std::uint64_t{numCustomers} *
                                 customerRowBytes);
        stockTable = as.alloc(std::uint64_t{numStock} * stockRowBytes);
        itemTable = as.alloc(std::uint64_t{numItems} * itemRowBytes);
        itemIndex = as.alloc(indexBlocks * blockBytes);
        custIndex = as.alloc(indexBlocks * blockBytes);
        stockIndex = as.alloc(indexBlocks * blockBytes);
        logRegion = as.alloc(logBlocks * blockBytes);
        bufferPool = as.alloc(bufferPoolBlocks * blockBytes);
        orderRegions = as.alloc(std::uint64_t{maxThreads} *
                                orderRegionBytes);

        // Locks: per-district locks (hot), a row-lock pool hashed by
        // row, and the global log lock — the database's
        // serialization point.
        for (std::size_t d = 0; d < numDistricts; ++d) {
            districtLockWords[d] = as.alloc(64);
            districtLocks[d] =
                ctx.kernel.createMutex(districtLockWords[d]);
        }
        for (std::size_t r = 0; r < rowLockCount; ++r) {
            rowLockWords[r] = as.alloc(64);
            rowLocks[r] = ctx.kernel.createMutex(rowLockWords[r]);
        }
        logLockWord = as.alloc(64);
        logLock = ctx.kernel.createMutex(logLockWord);
    }

    sim::Addr codeRegion() const { return codeBase; }

    void
    generate(int tid, std::uint64_t txn_index, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        const int type = pickType(txn_index, rng);

        // Transaction dispatch: an indirect branch through the
        // command table (predictable to the extent types repeat).
        emit::indirectBranch(out, codeBase + 0x40,
                             codeBase + 0x1000 +
                                 static_cast<sim::Addr>(type) * 256);
        emit::call(out, codeBase + 0x44);

        switch (type) {
          case 0: newOrder(tid, txn_index, rng, out); break;
          case 1: payment(tid, txn_index, rng, out); break;
          case 2: orderStatus(tid, rng, out); break;
          case 3: delivery(tid, rng, out); break;
          default: stockLevel(rng, out); break;
        }

        // Buffer-pool drift: the hot window slides over the pool as
        // the workload ages, so runs started from different
        // checkpoints see different locality (time variability).
        bufferPoolTouch(txn_index, rng, out);

        emit::ret(out, codeBase + 0x44);
        emit::txnEnd(out, type);
    }

  private:
    /**
     * Transaction mix with a slow deterministic drift (the paper:
     * "the exact mix of transactions may vary over time",
     * Section 2.1). Weights rotate with a period of ~4000
     * transactions per thread.
     */
    int
    pickType(std::uint64_t txn_index, sim::Random &rng) const
    {
        const double phase =
            static_cast<double>(txn_index % mixPeriod) / mixPeriod;
        // Piecewise drift: the write-heavy fraction falls while the
        // read-heavy analytics fraction rises, then wraps.
        const double shift = 0.12 * phase;
        const std::array<double, 5> w = {
            0.45 - shift,        // NewOrder
            0.43 - shift,        // Payment
            0.04 + shift / 2.0,  // OrderStatus
            0.04 + shift / 2.0,  // Delivery
            0.04 + shift,        // StockLevel
        };
        double u = rng.uniformReal();
        for (int i = 0; i < 4; ++i) {
            if (u < w[static_cast<std::size_t>(i)])
                return i;
            u -= w[static_cast<std::size_t>(i)];
        }
        return 4;
    }

    sim::Addr
    rowAddr(sim::Addr table, std::size_t row,
            std::size_t row_bytes) const
    {
        return table + static_cast<sim::Addr>(row) * row_bytes;
    }

    /**
     * A three-level B-tree descent: a hot root region, a warm
     * middle level, and a cold leaf level. The hot upper levels are
     * the reused working set whose set-conflict behaviour makes L2
     * associativity matter (Experiment 1).
     */
    void
    treeWalk(std::vector<cpu::Op> &out, sim::Random &rng,
             sim::Addr index, sim::Addr branch_pc) const
    {
        const std::size_t root = static_cast<std::size_t>(
            rng.uniformInt(0, rootBlocks - 1));
        emit::load(out, index + root * blockBytes);
        // (root address is known statically; lower levels chase)
        emit::compute(out, 35);
        emit::branch(out, branch_pc, true);
        const std::size_t mid = static_cast<std::size_t>(
            rng.uniformInt(0, midBlocks - 1));
        emit::dependentLoad(
            out, index + (rootBlocks + mid) * blockBytes);
        emit::compute(out, 35);
        emit::branch(out, branch_pc, true);
        const std::size_t leaf = static_cast<std::size_t>(
            rng.uniformInt(0, leafBlocks - 1));
        emit::dependentLoad(out,
                            index + (rootBlocks + midBlocks + leaf) *
                                        blockBytes);
        emit::compute(out, 35);
        emit::branch(out, branch_pc, false);
    }

    void
    dbLog(std::vector<cpu::Op> &out, sim::Random &rng,
          std::size_t blocks) const
    {
        // Log-space reservation is an atomic fetch-add on the tail
        // pointer (group-commit style): a single store whose
        // cross-node serialization falls out of the coherence
        // protocol's per-block ordering. The log mutex is reserved
        // for the periodic forced flush (see logFlush()).
        emit::store(out, logRegion); // atomic tail bump
        emit::compute(out, 12);
        const std::size_t at = 1 + static_cast<std::size_t>(
            rng.uniformInt(0, logRingBlocks - blocks - 2));
        emit::scanBlocks(out, logRegion + at * blockBytes, blocks,
                         true, 24, blockBytes);
    }

    void
    bufferPoolTouch(std::uint64_t txn_index, sim::Random &rng,
                    std::vector<cpu::Op> &out) const
    {
        const std::size_t window = 2048; // blocks in the hot window
        const std::size_t base =
            static_cast<std::size_t>((txn_index / 400) * 256) %
            (bufferPoolBlocks - window);
        for (int i = 0; i < 6; ++i) {
            const std::size_t b = base + static_cast<std::size_t>(
                rng.uniformInt(0, window - 1));
            emit::load(out, bufferPool + b * blockBytes);
            emit::compute(out, 30);
        }
    }

    void
    districtSection(sim::Random &rng, std::vector<cpu::Op> &out,
                    std::uint64_t held_compute) const
    {
        const std::size_t d = districtZipf.sample(rng);
        emit::lock(out, districtLocks[d],
                   districtLockWords[d]);
        emit::rowAccess(out,
                        rowAddr(districtTable, d, districtRowBytes),
                        districtRowBytes, true, 20, blockBytes);
        emit::compute(out, held_compute);
        emit::unlock(out, districtLocks[d],
                     districtLockWords[d]);
    }

    void
    newOrder(int tid, std::uint64_t, sim::Random &rng,
             std::vector<cpu::Op> &out) const
    {
        districtSection(rng, out, 150);
        const int items = static_cast<int>(rng.uniformInt(5, 15));
        for (int i = 0; i < items; ++i) {
            treeWalk(out, rng, itemIndex, codeBase + 0x80);
            const std::size_t item = itemZipf.sample(rng);
            emit::rowAccess(out,
                            rowAddr(itemTable, item, itemRowBytes),
                            itemRowBytes, false, 25, blockBytes);
            const std::size_t stock = stockZipf.sample(rng);
            const std::size_t rl = stock % rowLockCount;
            emit::lock(out, rowLocks[rl],
                       rowLockWords[rl]);
            emit::rowAccess(out,
                            rowAddr(stockTable, stock, stockRowBytes),
                            stockRowBytes, true, 25, blockBytes);
            emit::unlock(out, rowLocks[rl],
                         rowLockWords[rl]);
            emit::branch(out, codeBase + 0x90, i + 1 < items);
        }
        // Insert the order into the thread's own order buffer: a
        // small reused region (the DB2 agent's private work area).
        emit::scanBlocks(out, orderBuf(tid, rng), 4, true, 25,
                         blockBytes);
        emit::loop(out, codeBase + 0xa0, 8, 60);
        dbLog(out, rng, 3);
    }

    void
    payment(int, std::uint64_t, sim::Random &rng,
            std::vector<cpu::Op> &out) const
    {
        districtSection(rng, out, 80);
        treeWalk(out, rng, custIndex, codeBase + 0xb0);
        const std::size_t cust = custZipf.sample(rng);
        emit::rowAccess(out,
                        rowAddr(customerTable, cust,
                                customerRowBytes),
                        customerRowBytes, true, 25, blockBytes);
        emit::loop(out, codeBase + 0xc0, 6, 50);
        dbLog(out, rng, 2);
    }

    void
    orderStatus(int tid, sim::Random &rng,
                std::vector<cpu::Op> &out) const
    {
        treeWalk(out, rng, custIndex, codeBase + 0xd0);
        const std::size_t cust = custZipf.sample(rng);
        emit::rowAccess(out,
                        rowAddr(customerTable, cust,
                                customerRowBytes),
                        customerRowBytes, false, 25, blockBytes);
        // Scan the most recent orders (read only).
        emit::scanBlocks(out, orderBuf(tid, rng), 10, false, 35,
                         blockBytes);
        emit::loop(out, codeBase + 0xe0, 12, 45);
    }

    void
    delivery(int tid, sim::Random &rng,
             std::vector<cpu::Op> &out) const
    {
        // Delivery processes a batch: several district sections and
        // order updates; the heavyweight writer.
        for (int d = 0; d < 4; ++d) {
            districtSection(rng, out, 120);
            emit::scanBlocks(out, orderBuf(tid, rng), 6, true, 30,
                             blockBytes);
            emit::branch(out, codeBase + 0xf0, d + 1 < 4);
        }
        const std::size_t cust = custZipf.sample(rng);
        emit::rowAccess(out,
                        rowAddr(customerTable, cust,
                                customerRowBytes),
                        customerRowBytes, true, 25, blockBytes);
        dbLog(out, rng, 5);
    }

    void
    stockLevel(sim::Random &rng, std::vector<cpu::Op> &out) const
    {
        // Read-only analytics: long stock scans and index walks.
        for (int i = 0; i < 12; ++i) {
            treeWalk(out, rng, stockIndex, codeBase + 0x100);
            const std::size_t stock = stockZipf.sample(rng);
            emit::rowAccess(out,
                            rowAddr(stockTable, stock,
                                    stockRowBytes),
                            stockRowBytes, false, 30, blockBytes);
            emit::branch(out, codeBase + 0x110, i + 1 < 12);
        }
        emit::loop(out, codeBase + 0x120, 20, 50);
    }

    /** The thread's private order work area (reused, 64 blocks). */
    sim::Addr
    orderBuf(int tid, sim::Random &rng) const
    {
        const sim::Addr base =
            orderRegions + static_cast<sim::Addr>(
                               tid % maxThreads) * orderRegionBytes;
        return base + rng.uniformInt(0, 2) * 16 * blockBytes;
    }

    // Geometry (block-aligned rows; addresses only, no host memory).
    static constexpr std::size_t numWarehouses = 64;
    static constexpr std::size_t warehouseRowBytes = 256;
    static constexpr std::size_t numDistricts = 64;
    static constexpr std::size_t districtRowBytes = 256;
    static constexpr std::size_t numCustomers = 65536;
    static constexpr std::size_t customerRowBytes = 640;
    static constexpr std::size_t numStock = 131072;
    static constexpr std::size_t stockRowBytes = 320;
    static constexpr std::size_t numItems = 65536;
    static constexpr std::size_t itemRowBytes = 128;
    static constexpr std::size_t rootBlocks = 64;
    static constexpr std::size_t midBlocks = 3072;
    static constexpr std::size_t leafBlocks = 12288;
    static constexpr std::size_t indexBlocks =
        rootBlocks + midBlocks + leafBlocks;
    static constexpr std::size_t logBlocks = 65536;
    static constexpr std::size_t logRingBlocks = 512;
    static constexpr std::size_t bufferPoolBlocks = 1u << 22; // 256MB
    static constexpr std::size_t orderRegionBytes = 1u << 20;
    static constexpr std::size_t maxThreads = 1024;
    static constexpr std::size_t rowLockCount = 256;
    static constexpr std::uint64_t mixPeriod = 4000;

    std::size_t blockBytes;

    sim::Addr codeBase = 0;
    sim::Addr warehouseTable = 0;
    sim::Addr districtTable = 0;
    sim::Addr customerTable = 0;
    sim::Addr stockTable = 0;
    sim::Addr itemTable = 0;
    sim::Addr itemIndex = 0;
    sim::Addr custIndex = 0;
    sim::Addr stockIndex = 0;
    sim::Addr logRegion = 0;
    sim::Addr bufferPool = 0;
    sim::Addr orderRegions = 0;

    std::array<int, numDistricts> districtLocks{};
    std::array<sim::Addr, numDistricts> districtLockWords{};
    std::array<int, rowLockCount> rowLocks{};
    std::array<sim::Addr, rowLockCount> rowLockWords{};
    int logLock = -1;
    sim::Addr logLockWord = 0;

    sim::ZipfSampler custZipf;
    sim::ZipfSampler stockZipf;
    sim::ZipfSampler itemZipf;
    sim::ZipfSampler districtZipf;
};

} // anonymous namespace

void
buildOltp(BuildContext &ctx)
{
    auto gen = std::make_shared<OltpGenerator>(ctx);
    const std::size_t n = threadCount(ctx, 8);
    // Shared database server binary: a 128-block (8 KB) hot loop.
    const sim::Addr code = gen->codeRegion();
    createThreads(ctx, gen, n, code, 128);
    ctx.wl.setDefaultTxnCount(200);
}

} // namespace workload
} // namespace varsim
