#include "workload/program.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace varsim
{
namespace workload
{

SyntheticProgram::SyntheticProgram(
    std::shared_ptr<TxnGenerator> generator, int tid,
    std::uint64_t seed)
    : gen(std::move(generator)), tid_(tid), rng(seed)
{
    VARSIM_ASSERT(gen != nullptr, "program needs a generator");
}

void
SyntheticProgram::refill()
{
    buf.clear();
    pos = 0;
    gen->generate(tid_, txnIndex_, rng, buf);
    ++txnIndex_;
    VARSIM_ASSERT(!buf.empty(),
                  "generator produced an empty transaction "
                  "(tid %d, txn %llu)",
                  tid_,
                  static_cast<unsigned long long>(txnIndex_ - 1));
    for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
        VARSIM_ASSERT(buf[i].kind != cpu::OpKind::End,
                      "End op must be the last op of a transaction");
    }
}

const cpu::Op &
SyntheticProgram::current()
{
    if (pos >= buf.size())
        refill();
    return buf[pos];
}

void
SyntheticProgram::advance()
{
    VARSIM_ASSERT(pos < buf.size(), "advance past the buffer");
    VARSIM_ASSERT(buf[pos].kind != cpu::OpKind::End,
                  "advance past End");
    ++pos;
}

void
SyntheticProgram::serialize(sim::CheckpointOut &cp) const
{
    rng.serialize(cp);
    cp.put(txnIndex_);
    // Field-wise, not a raw vector dump: Op has interior padding,
    // and snapshot bytes must be a pure function of simulated state
    // (the persistent library content-addresses them; two shards
    // warming the same key must publish byte-identical archives).
    cp.put<std::uint64_t>(buf.size());
    for (const cpu::Op &op : buf) {
        cp.put(op.kind);
        cp.put(op.count);
        cp.put(op.addr);
        cp.put(op.id);
    }
    cp.put<std::uint64_t>(pos);
}

void
SyntheticProgram::unserialize(sim::CheckpointIn &cp)
{
    rng.unserialize(cp);
    cp.get(txnIndex_);
    std::uint64_t n = 0;
    cp.get(n);
    buf.clear();
    // Clamp the reservation: a corrupt length must hit the reader's
    // underrun check, not a giant allocation.
    buf.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n, 4096)));
    for (std::uint64_t i = 0; i < n; ++i) {
        cpu::Op op;
        cp.get(op.kind);
        cp.get(op.count);
        cp.get(op.addr);
        cp.get(op.id);
        buf.push_back(op);
    }
    std::uint64_t p = 0;
    cp.get(p);
    pos = static_cast<std::size_t>(p);
}

namespace emit
{

void
indexWalk(std::vector<cpu::Op> &o, sim::Random &rng, sim::Addr base,
          std::size_t nodes, int depth,
          std::uint64_t compute_per_level, sim::Addr branch_pc,
          std::size_t block_bytes)
{
    for (int level = 0; level < depth; ++level) {
        const std::size_t node = static_cast<std::size_t>(
            rng.uniformInt(0, nodes > 0 ? nodes - 1 : 0));
        dependentLoad(
            o, base + static_cast<sim::Addr>(node) * block_bytes);
        compute(o, compute_per_level);
        branch(o, branch_pc, level + 1 < depth);
    }
}

void
scanBlocks(std::vector<cpu::Op> &o, sim::Addr base, std::size_t count,
           bool write, std::uint64_t compute_per_block,
           std::size_t block_bytes)
{
    for (std::size_t i = 0; i < count; ++i) {
        const sim::Addr a =
            base + static_cast<sim::Addr>(i) * block_bytes;
        if (write)
            store(o, a);
        else
            load(o, a);
        compute(o, compute_per_block);
    }
}

void
rowAccess(std::vector<cpu::Op> &o, sim::Addr row_base,
          std::size_t row_bytes, bool write,
          std::uint64_t compute_per_block, std::size_t block_bytes)
{
    const std::size_t blocks =
        (row_bytes + block_bytes - 1) / block_bytes;
    for (std::size_t i = 0; i < blocks; ++i) {
        load(o, row_base + static_cast<sim::Addr>(i) * block_bytes);
        compute(o, compute_per_block);
    }
    if (write)
        store(o, row_base);
}

void
loop(std::vector<cpu::Op> &o, sim::Addr pc, std::size_t iters,
     std::uint64_t compute_per_iter)
{
    for (std::size_t i = 0; i < iters; ++i) {
        compute(o, compute_per_iter);
        branch(o, pc, i + 1 < iters);
    }
}

} // namespace emit

} // namespace workload
} // namespace varsim
