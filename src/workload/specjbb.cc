/**
 * @file
 * The SPECjbb workload: a Java server benchmark in which each thread
 * operates on its own warehouse (paper Section 3.1). Sharing is
 * minimal, so space variability is nearly zero; but the JVM heap
 * fills and is periodically garbage-collected, producing a sawtooth
 * whose position depends on workload age — exactly the profile the
 * paper observes: negligible within-checkpoint spread yet >36%
 * differences between runs started from different checkpoints
 * (Figure 9b, Section 4.3).
 */

#include "workload/builders.hh"

namespace varsim
{
namespace workload
{

namespace
{

class SpecJbbGenerator : public TxnGenerator
{
  public:
    explicit SpecJbbGenerator(BuildContext &ctx)
        : blockBytes(ctx.blockBytes)
    {
        AddressSpace as;
        codeBase = as.alloc(256 * 1024);
        // One private warehouse heap per possible thread.
        heaps = as.alloc(std::uint64_t{maxThreads} * heapBlocks *
                         blockBytes);
        companyStats = as.alloc(4 * blockBytes);
        statsWord = as.alloc(64);
        statsLock = ctx.kernel.createMutex(statsWord);
    }

    sim::Addr codeRegion() const { return codeBase; }

    void
    generate(int tid, std::uint64_t txn_index, sim::Random &rng,
             std::vector<cpu::Op> &out) override
    {
        const sim::Addr heap =
            heaps + static_cast<sim::Addr>(tid % maxThreads) *
                        heapBlocks * blockBytes;

        // The live-heap sawtooth: occupancy grows with every
        // transaction since the last collection; a full GC runs every
        // gcPeriod transactions. Long-term heap growth makes both the
        // period position and the GC cost a function of workload age.
        const std::uint64_t phase = txn_index % gcPeriod;
        const std::size_t liveBlocks = static_cast<std::size_t>(
            baseLive + phase * allocPerTxn +
            std::min<std::uint64_t>(txn_index * growthPerTxn,
                                    heapBlocks / 2));

        if (phase == gcPeriod - 1) {
            // Stop-the-world collection: walk the whole live heap.
            emit::call(out, codeBase + 0x200);
            const std::size_t scan =
                std::min(liveBlocks, heapBlocks - 1);
            emit::scanBlocks(out, heap, scan, false, 8, blockBytes);
            // Compaction: rewrite the surviving half.
            emit::scanBlocks(out, heap, scan / 2, true, 8,
                             blockBytes);
            emit::ret(out, codeBase + 0x200);
            emit::txnEnd(out, 1);
            return;
        }

        // A regular warehouse transaction: object allocation and
        // churn within this thread's own heap.
        emit::call(out, codeBase + 0x20);
        emit::loop(out, codeBase + 0x30, 5, 40);
        const std::size_t window =
            std::min(liveBlocks, heapBlocks - 1);
        for (int i = 0; i < 24; ++i) {
            const std::size_t b = static_cast<std::size_t>(
                rng.uniformInt(0, window));
            const bool write = rng.bernoulli(0.4);
            if (write)
                emit::store(out, heap + b * blockBytes);
            else
                emit::load(out, heap + b * blockBytes);
            emit::compute(out, 25);
        }
        emit::ret(out, codeBase + 0x20);

        // Rarely, update shared company-wide statistics — the only
        // cross-thread communication in the benchmark.
        if (rng.bernoulli(0.01)) {
            emit::lock(out, statsLock, statsWord);
            emit::store(out, companyStats);
            emit::unlock(out, statsLock, statsWord);
        }
        emit::txnEnd(out, 0);
    }

  private:
    static constexpr std::size_t maxThreads = 1024;
    static constexpr std::size_t heapBlocks = 1u << 16; // 4 MB/thread
    static constexpr std::uint64_t gcPeriod = 400;
    static constexpr std::uint64_t baseLive = 2048;
    static constexpr std::uint64_t allocPerTxn = 24;
    static constexpr std::uint64_t growthPerTxn = 8;

    std::size_t blockBytes;
    sim::Addr codeBase = 0;
    sim::Addr heaps = 0;
    sim::Addr companyStats = 0;
    sim::Addr statsWord = 0;
    int statsLock = -1;
};

} // anonymous namespace

void
buildSpecJbb(BuildContext &ctx)
{
    auto gen = std::make_shared<SpecJbbGenerator>(ctx);
    const std::size_t n = threadCount(ctx, 8);
    createThreads(ctx, gen, n, gen->codeRegion(), 112);
    ctx.wl.setDefaultTxnCount(3000);
}

} // namespace workload
} // namespace varsim
