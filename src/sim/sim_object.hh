/**
 * @file
 * Base class for simulated components.
 *
 * A SimObject knows its name and the event queue of the simulation it
 * belongs to. There is deliberately no global state: several
 * simulations run concurrently on host threads during a
 * multiple-simulation experiment (Section 5 of the paper), so every
 * component references its own simulation's queue.
 */

#ifndef VARSIM_SIM_SIM_OBJECT_HH
#define VARSIM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/eventq.hh"
#include "sim/serialize.hh"
#include "sim/types.hh"

namespace varsim
{
namespace sim
{

namespace statistics
{
class Registry;
}

/**
 * Common base for every simulated hardware or software component.
 */
class SimObject : public Serializable
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eventq_(&eq)
    {}

    ~SimObject() override = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name, e.g. "system.cpu3.l2". */
    const std::string &name() const { return name_; }

    /** The simulation's event queue. */
    EventQueue &eventq() { return *eventq_; }

    /** Current simulated time. */
    Tick curTick() const { return eventq_->curTick(); }

    /** Schedule @p ev at absolute tick @p when. */
    void schedule(Event &ev, Tick when) { eventq_->schedule(&ev, when); }

    /** Schedule @p ev @p delta ticks from now. */
    void
    scheduleIn(Event &ev, Tick delta)
    {
        eventq_->schedule(&ev, curTick() + delta);
    }

    /** Deschedule a pending event. */
    void deschedule(Event &ev) { eventq_->deschedule(&ev); }

    /**
     * Schedule a one-shot callable @p delta ticks from now. The event
     * object comes from the queue's recycled pool (allocation-free in
     * steady state); use member Event objects instead for recurring
     * or cancellable work.
     */
    template <typename F>
    void
    callIn(Tick delta, F &&fn,
           Event::Priority pri = Event::defaultPri)
    {
        eventq_->callAt(curTick() + delta, std::forward<F>(fn), pri);
    }

    /**
     * As callIn, declaring the one-shot's conservative cross-domain
     * reach (see SendReach) so the domain scheduler can widen other
     * domains' round horizons while it is pending. Inert when the
     * simulation runs on the legacy single-queue engine.
     */
    template <typename F>
    void
    callIn(Tick delta, F &&fn, Event::Priority pri,
           const SendReach &reach)
    {
        eventq_->callAt(curTick() + delta, std::forward<F>(fn), pri,
                        reach);
    }

    /**
     * Called after construction (or after unserialize) to arm
     * recurring events. Default: nothing.
     */
    virtual void startup() {}

    /**
     * Cancel recurring events so the system can reach a quiescent,
     * checkpointable state. Default: nothing.
     */
    virtual void drain() {}

    /**
     * Register this component's statistics (counters, formulas,
     * distributions) under its hierarchical name. Called once after
     * construction; the registry samples nothing until dumped, so
     * registering never perturbs simulated timing. Default: no
     * statistics.
     */
    virtual void regStats(statistics::Registry &) {}

    /** Default serialization: stateless component. */
    void serialize(CheckpointOut &) const override {}

    /** Default unserialization: stateless component. */
    void unserialize(CheckpointIn &) override {}

  private:
    std::string name_;
    EventQueue *eventq_;
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_SIM_OBJECT_HH
