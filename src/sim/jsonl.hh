/**
 * @file
 * Minimal flat-JSON line codec shared by the durable manifests in
 * this tree (campaign result store, checkpoint library index).
 *
 * A manifest is JSON Lines: one object per line, values limited to
 * numbers, strings, and arrays of strings — exactly what the writers
 * emit. This is deliberately not a general JSON parser; it accepts
 * the writers' own output (and reasonable hand edits) and reports
 * anything else as malformed so replay logic can stop at a torn
 * tail instead of guessing.
 */

#ifndef VARSIM_SIM_JSONL_HH
#define VARSIM_SIM_JSONL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace varsim
{
namespace sim
{

/** Escape a string for embedding in a JSON value. */
std::string jsonEscape(const std::string &s);

/** One parsed flat JSON object. */
class JsonLine
{
  public:
    /** Parse one line; returns false (object unusable) on damage. */
    bool parse(const std::string &line);

    bool has(const std::string &key) const;

    /** String value of @p key; @p dflt when absent. */
    std::string str(const std::string &key,
                    const std::string &dflt = "") const;

    /** Unsigned value of @p key; @p dflt when absent/non-numeric. */
    std::uint64_t num(const std::string &key,
                      std::uint64_t dflt = 0) const;

    /** Double value of @p key (round-trips %.17g exactly). */
    double real(const std::string &key, double dflt = 0.0) const;

    /** Array-of-strings value of @p key (empty when absent). */
    std::vector<std::string>
    list(const std::string &key) const;

    /**
     * Every numeric field whose key starts with @p prefix, prefix
     * stripped, in key (lexicographic) order. Non-numeric values
     * under the prefix are skipped. Used to re-inflate open-schema
     * records (e.g. per-run metric dumps) whose key set the reader
     * cannot know in advance.
     */
    std::vector<std::pair<std::string, double>>
    realsWithPrefix(const std::string &prefix) const;

  private:
    /** Scalar values by key; raw (unescaped) text. */
    std::map<std::string, std::string> scalars;
    std::map<std::string, std::vector<std::string>> arrays;
};

/**
 * Incremental builder for one JSON line. Keys are emitted in call
 * order; the caller terminates with str().
 */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key,
                      const std::string &value);
    JsonWriter &field(const std::string &key, std::uint64_t value);
    JsonWriter &field(const std::string &key, double value);
    JsonWriter &field(const std::string &key,
                      const std::vector<std::string> &values);

    /** The finished object, no trailing newline. */
    std::string str() const { return body + "}"; }

  private:
    void sep();
    std::string body = "{";
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_JSONL_HH
