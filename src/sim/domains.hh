/**
 * @file
 * Deterministic intra-run parallelism: per-CPU event-queue domains
 * synchronized by a conservative adaptive-horizon round scheme.
 *
 * The simulation is partitioned into domains, each owning one
 * EventQueue: domain 0 (the *shared* domain) holds the snoop
 * bus / directory fabric, the L2 controllers, DRAM, and the simulated
 * OS kernel; domain 1+i holds CPU i and its private L1 pair. Every
 * cross-domain interaction is a *message*: a closure posted through
 * the DomainRouter that executes in the target domain at least one
 * lane lookahead in the future.
 *
 * The round protocol (DomainScheduler::run) generalizes the classic
 * CMB quantum B = nextT + Λ in three ways:
 *
 *  1. **Per-lane lookahead.** Each (src, dst) lane carries its own
 *     lookahead la(src, dst) — the minimum scheduling distance
 *     checkSend enforces on that edge — and lanes the topology never
 *     uses (CPU↔CPU: all cross-CPU traffic flows through the shared
 *     domain) are declared unused, so they impose no bound at all.
 *
 *  2. **Adaptive horizons from reach declarations.** Every pending
 *     event and undelivered message is an *item* with a conservative
 *     SendReach (see eventq.hh): an item at tick w cannot cause a
 *     send toward domain d delivering before
 *     w + delay_d + la(j, d). Per source domain j the scheduler
 *     reduces items to
 *
 *         A_j    = min over items of (w + otherDelay)
 *         S_j[d] = min over items with reach.dom == d
 *                  of (w + selfDelay)
 *
 *     and closes them transitively: an item of j can also wake a
 *     *third* domain k, whose own (conservatively immediate)
 *     response re-enters the graph one more lookahead later. The
 *     earliest tick any future message could be delivered into d is
 *     therefore the least fixpoint of
 *
 *         P_d = min over used lanes (j, d), j != d
 *               of la(j, d) + min(A_j, S_j[d], P_j)
 *
 *     (a positive-weight shortest path over the lane graph), and
 *     each destination gets the *inclusive* horizon B_d = P_d - 1.
 *     Without the P_j term an idle CPU would impose no bound while a
 *     pending fill was about to wake it — the shared domain could
 *     run past the reply that fill provokes two hops later.
 *
 *     With every reach at the default {none, 0, 0} this collapses to
 *     the old global quantum; with the memory system's annotations
 *     (a request in flight cannot echo back to *other* CPUs before
 *     the fabric's modeled latency) rounds grow from Λ ticks to the
 *     fabric latency scale — an order of magnitude fewer barriers.
 *
 *  3. **Round fusion.** A domain whose earliest item lies beyond its
 *     horizon skips the round. When at most one domain is runnable
 *     (or rounds are forced serial), the closure runs it inline and
 *     recomputes the next plan without waking or re-barriering the
 *     pool — ping-pong phases degrade to plain serial dispatch
 *     instead of barrier storms.
 *
 * One round is: flip the mailbox epoch (messages sent last round
 * become this round's deliveries), compute {B_d, runnable_d}, then
 * each destination domain *itself* drains its incoming lanes
 * (source-ascending, FIFO per lane — the same per-destination order
 * the old serial coordinator used, so delivered seq numbers are
 * unchanged) and dispatches its events with tick <= B_d. A domain
 * never touches another domain's state: all it can do is append
 * messages to its own single-writer lane side.
 *
 * Conservative correctness: an item of j executing at w >= its
 * scanned tick sends toward d only with when >= w + delay_d +
 * la(j, d) > B_d — beyond the horizon. No domain can receive
 * anything during a round that should have influenced that same
 * round, so no rollback is ever needed (checkSend asserts the bound
 * per message in debug builds, so an unsound reach annotation fails
 * loudly and deterministically).
 *
 * Determinism: the plan sequence (epoch flips, horizons, runnable
 * sets) is a pure function of simulation state — no host clocks, no
 * thread IDs, no pointer values — and each queue's
 * (tick, priority, seq) dispatch order is fixed. The worker count
 * only changes which host thread drains and dispatches a domain,
 * never what any domain observes, so results are bitwise identical
 * for any --threads value (pinned by
 * tests/core/test_parallel_golden.cc).
 *
 * Memory model: workers synchronize exclusively through one flat
 * cache-aligned rendezvous. Arrivals fetch_add an aligned counter
 * (acq_rel: the last arriver observes every round write); the last
 * arriver runs the serial closure and publishes the next plan with a
 * release store to the generation counter, which waiters
 * acquire-load (bounded spin, then park on a condvar). Every write a
 * domain made in round R is therefore ordered before every read of
 * it in round R+1 — message payloads, queue internals, and the plan
 * itself cross threads only over that edge, so the scheme is clean
 * under ThreadSanitizer. All per-domain mutable state (lanes, plan
 * slots, profiles) is padded to cache lines to kill false sharing.
 */

#ifndef VARSIM_SIM_DOMAINS_HH
#define VARSIM_SIM_DOMAINS_HH

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/eventq.hh"
#include "sim/statistics.hh"
#include "sim/types.hh"

namespace varsim
{
namespace sim
{

/** Index of an event-queue domain within one simulation. */
using DomainId = std::uint32_t;

/** The domain holding the bus/L2/DRAM fabric and the OS kernel. */
constexpr DomainId sharedDomain = 0;

/**
 * A move-only closure with inline storage for small trivially
 * copyable captures (the cross-domain hot path captures only
 * pointers and scalars). Oversized or non-trivial callables fall
 * back to the heap (cold path: syscalls, not memory traffic).
 */
class InlineFn
{
  public:
    /** Covers every capture list on the memory-system edges. */
    static constexpr std::size_t inlineBytes = 32;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&fn) // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(::max_align_t) &&
                      std::is_trivially_copyable_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = nullptr; // trivially copyable => trivial dtor
        } else {
            ::new (static_cast<void *>(storage_))
                Fn *(new Fn(std::forward<F>(fn)));
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            destroy_ = [](void *p) {
                delete *static_cast<Fn **>(p);
            };
        }
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    void operator()() { invoke_(storage_); }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** True if the callable spilled to the heap (for tests). */
    bool onHeap() const { return destroy_ != nullptr; }

  private:
    void
    moveFrom(InlineFn &other) noexcept
    {
        // Inline payloads are trivially copyable and heap payloads
        // are a single raw pointer, so a byte copy moves either.
        std::memcpy(storage_, other.storage_, inlineBytes);
        invoke_ = other.invoke_;
        destroy_ = other.destroy_;
        other.invoke_ = nullptr;
        other.destroy_ = nullptr;
    }

    void
    reset()
    {
        if (destroy_ != nullptr)
            destroy_(storage_);
        invoke_ = nullptr;
        destroy_ = nullptr;
    }

    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    alignas(::max_align_t) unsigned char storage_[inlineBytes];
};

/**
 * Per-(source, destination) mailbox lanes between domains.
 *
 * Each lane is double-buffered: during a round every domain appends
 * only to its own lanes' *write side* (single writer, no locks),
 * while the destination domain drains the *read side* — messages
 * sent one round earlier — into its queue. The scheduler's serial
 * closure flips the epoch between rounds, so the two sides never
 * alias and parallel drain needs no synchronization beyond the round
 * barrier. Buffers keep their capacity across rounds, so
 * steady-state messaging is allocation-free for inline closures.
 */
class DomainRouter
{
  public:
    /**
     * Lane-lookahead sentinel: the topology never sends on this
     * lane. Unused lanes impose no horizon bound on their
     * destination (and sending on one asserts).
     */
    static constexpr Tick laneUnused = maxTick;

    /**
     * @param queues one EventQueue per domain, index == DomainId
     *               (index 0 is the shared domain).
     * @param lookahead the default per-lane lookahead Λ, in ticks
     *                  (> 0); see setLaneLookahead.
     */
    DomainRouter(std::vector<EventQueue *> queues, Tick lookahead);

    /** The default lane lookahead Λ. */
    Tick lookahead() const { return lookahead_; }

    std::size_t numDomains() const { return queues_.size(); }

    /** Lookahead of one lane (laneUnused if declared unused). */
    Tick
    laneLookahead(DomainId src, DomainId dst) const
    {
        return laneLa_[src * queues_.size() + dst];
    }

    /**
     * Declare a per-lane lookahead: the minimum scheduling distance
     * for messages src -> dst. Must be > 0 (or laneUnused). Raising
     * a lane's lookahead above Λ changes what checkSend accepts, so
     * it is only sound for edges whose senders already schedule that
     * far out; the usual way to widen horizons without touching send
     * timing is a SendReach annotation on the pending work instead.
     */
    void setLaneLookahead(DomainId src, DomainId dst, Tick la);

    /**
     * Declare that the topology never sends src -> dst. The lane
     * then imposes no bound on dst's horizon — declaring the unused
     * CPU↔CPU lanes is what frees every CPU domain from its
     * siblings' positions (they are coupled only through the shared
     * fabric).
     */
    void
    markLaneUnused(DomainId src, DomainId dst)
    {
        setLaneLookahead(src, dst, laneUnused);
    }

    /**
     * Monotone counter bumped by every lane-lookahead change. The
     * scheduler caches the used-lane edge list keyed on this, so the
     * per-round horizon fixpoint walks only lanes the topology
     * actually wired (E edges) instead of the full N² matrix.
     */
    std::uint64_t laneVersion() const { return laneVersion_; }

    /**
     * Post a closure to execute in domain @p dst at tick @p when.
     * Must be called from the context executing domain @p src (its
     * worker during a round, or the coordinator between rounds).
     * @p when must lie at least one lane lookahead past @p src's
     * current tick — that bound is what makes rounds conservative.
     */
    template <typename F>
    void
    send(DomainId src, DomainId dst, Tick when, Event::Priority pri,
         F &&fn)
    {
        send(src, dst, when, pri, SendReach{}, std::forward<F>(fn));
    }

    /**
     * As send, declaring the delivered message's conservative reach:
     * the scheduler treats the undelivered message exactly like a
     * pending event of @p dst when computing horizons.
     */
    template <typename F>
    void
    send(DomainId src, DomainId dst, Tick when, Event::Priority pri,
         const SendReach &reach, F &&fn)
    {
        checkSend(src, dst, when);
        auto &buf = lanes_[src * queues_.size() + dst].buf[epoch_];
        // First message on this lane since the last flip: record it
        // in the source's touched list, so the flip and the drains
        // cost O(messages), never O(N²) lanes.
        if (buf.empty())
            touched_[src].dsts.push_back(dst);
        buf.push_back(
            {when, pri, reach, InlineFn(std::forward<F>(fn))});
    }

    /**
     * Swap every lane's read and write side. Serial (scheduler
     * closure, between rounds). The read side must already be
     * drained — flipping turns last round's sends into this round's
     * deliveries and recycles the emptied buffers for new sends.
     */
    void flipEpoch();

    /**
     * Deliver domain @p dst's read-side messages into its queue
     * (EventQueue::callAt), source-ascending, FIFO within a lane —
     * the same per-destination total order the serial drain used, so
     * the seq numbers ties resolve by are a pure function of what
     * was sent. Runs on whichever thread executes @p dst this round;
     * touches only @p dst's queue and read-side buffers.
     */
    void drainTo(DomainId dst);

    /**
     * Deliver every pending message (both sides, read side first)
     * into its destination queue, destination-major. Serial; between
     * rounds only — the scheduler itself always delivers via
     * flipEpoch/drainTo, but unit tests and quiesce paths want a
     * one-call "flush everything".
     */
    void drainAll();

    /**
     * Visit every undelivered read-side message as
     * (src, dst, when, reach). Serial (scheduler closure, after the
     * epoch flip): these are the messages the imminent round will
     * deliver, so they count as items of their destination when
     * computing horizons. Walks the per-destination incoming lists
     * the flip built, so the cost is proportional to traffic.
     */
    template <typename F>
    void
    forEachUndelivered(F &&fn) const
    {
        const std::size_t n = queues_.size();
        for (std::size_t dst = 0; dst < n; ++dst) {
            for (std::uint32_t src : incoming_[dst].srcs) {
                const auto &buf =
                    lanes_[src * n + dst].buf[1 - epoch_];
                for (const Message &m : buf)
                    fn(static_cast<DomainId>(src),
                       static_cast<DomainId>(dst), m.when, m.reach);
            }
        }
    }

    /** Any undelivered messages (either side)? Serial. */
    bool anyPending() const;

    /** Messages delivered since construction. */
    std::uint64_t delivered() const;

    /**
     * Debug hook: while a round is active the scheduler registers
     * each destination's horizon here, and checkSend asserts every
     * message lands strictly beyond it — an unsound SendReach
     * annotation dies at the send that violates it instead of
     * corrupting determinism silently. No-ops in release builds
     * (inline so the per-round registration costs nothing there).
     */
    void
    setDebugBound(DomainId dst, Tick bound)
    {
#ifndef NDEBUG
        debugBound_[dst] = bound;
#endif
        (void)dst;
        (void)bound;
    }

    void
    setDebugBoundsActive(bool on)
    {
#ifndef NDEBUG
        debugBoundsActive_ = on;
#endif
        (void)on;
    }

  private:
    struct Message
    {
        Tick when;
        Event::Priority pri;
        SendReach reach;
        InlineFn fn;
    };

    /**
     * One mailbox lane, cache-line aligned so the single writer
     * never false-shares its append side with neighbouring lanes'
     * writers or the reader of another lane.
     */
    struct alignas(64) Lane
    {
        std::vector<Message> buf[2];
    };

    /** Per-destination delivery counter, padded: drains run on
     *  different threads concurrently. */
    struct alignas(64) DstCounter
    {
        std::uint64_t delivered = 0;
    };

    /** Write-side lanes this source touched since the last flip.
     *  Single writer (the thread executing the source domain),
     *  padded against its neighbours. */
    struct alignas(64) SrcTouched
    {
        std::vector<std::uint32_t> dsts;
    };

    /** Sources with undelivered read-side messages for one
     *  destination, ascending. Built serially at the epoch flip;
     *  consumed (and cleared) by the destination's drain, which runs
     *  on whichever thread executes the destination. */
    struct alignas(64) DstIncoming
    {
        std::vector<std::uint32_t> srcs;
    };

    void checkSend(DomainId src, DomainId dst, Tick when) const;
    void deliver(DomainId dst, std::vector<Message> &buf);

    std::vector<EventQueue *> queues_;
    Tick lookahead_;
    /** lanes_[src * N + dst]; write side written only by src, read
     *  side drained only by dst. */
    std::vector<Lane> lanes_;
    /** laneLa_[src * N + dst]; fixed before the first round. */
    std::vector<Tick> laneLa_;
    /** Senders append to buf[epoch_]; drains read buf[1 - epoch_].
     *  Flipped only by the scheduler's serial closure. */
    unsigned epoch_ = 0;
    std::vector<DstCounter> deliveredByDst_;
    std::vector<SrcTouched> touched_;   ///< per source
    std::vector<DstIncoming> incoming_; ///< per destination
    std::uint64_t laneVersion_ = 0;
#ifndef NDEBUG
    std::vector<Tick> debugBound_;
    bool debugBoundsActive_ = false;
#endif
};

/**
 * Runs the adaptive-horizon round protocol over a set of domain
 * queues, optionally on a private worker pool.
 *
 * The pool is deliberately NOT the process-wide HostThreadPool:
 * campaign engines run whole simulations inside pool jobs, and pool
 * jobs must not re-enter parallelFor. Domain workers are plain
 * std::threads owned by (and bounded to the lifetime of) one
 * simulation.
 *
 * With workers == 1 every domain runs inline on the calling thread —
 * zero synchronization, used both for the `--threads 1` serial pin
 * and as the degenerate case the determinism argument reduces to.
 */
class DomainScheduler
{
  public:
    DomainScheduler(std::vector<EventQueue *> queues,
                    DomainRouter &router, std::size_t workers);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    /**
     * Run rounds until a stop is requested (between rounds) or the
     * whole system is quiescent: every queue empty, every mailbox
     * drained.
     */
    void run();

    /**
     * Ask run() to return at the next round boundary. Unlike
     * EventQueue::requestStop this never halts a domain mid-round:
     * the round completes, keeping every queue at its granted
     * horizon, so a later run() resumes exactly where an
     * uninterrupted one would be. Call from event context inside a
     * round or between rounds.
     */
    void requestStop() { stop_ = true; }

    void clearStop() { stop_ = false; }

    /**
     * Force rounds to run inline on the closure thread (fused)
     * regardless of the worker count. Used by sampling fast-forward
     * intervals, whose warm memory path makes direct cross-domain
     * calls: serial rounds make those calls race-free without
     * tearing down the pool — idle workers merely stay parked on the
     * rendezvous. Fused rounds dispatch identically to parallel ones
     * (the determinism pin), so flipping this mid-run never changes
     * results. Flip only between rounds (e.g. while the system is
     * drained).
     */
    void setSerialRounds(bool on) { serial_ = on; }

    /** True while rounds are forced inline. */
    bool serialRounds() const { return serial_; }

    /** All queues and mailboxes empty (valid between rounds). */
    bool idle();

    /** Rounds executed since construction. */
    std::uint64_t rounds() const { return rounds_; }

    /**
     * Rounds whose runnable set had at most one domain — rounds
     * with no exploitable parallelism (fused inline when a pool
     * exists). A pure function of simulated state, so identical for
     * every --threads value.
     */
    std::uint64_t serialRoundCount() const { return serialRounds_; }

    /** Events dispatched per round (deterministic; sampled in the
     *  closure from the queues' dispatch counters). */
    const statistics::Distribution &
    eventsPerRound() const
    {
        return eventsPerRound_;
    }

    /** Host wall-ns domain @p d spent draining + dispatching. */
    std::uint64_t domainWallNs(DomainId d) const;

    /** Host wall-ns all parties spent waiting at the rendezvous. */
    std::uint64_t barrierWaitNs() const;

    /** Host threads participating (1 = fully inline). */
    std::size_t parties() const { return parties_; }

  private:
    /** What the serial closure tells the pool to do next. */
    enum class Phase : std::uint8_t
    {
        RunRound, ///< execute your stripe of the published plan
        Done,     ///< run() returns; workers re-arrive and wait
        Exit      ///< destructor: workers return
    };

    /** Per-domain round plan. Written only by the serial closure and
     *  read-only while a round runs, so it needs no cache-line
     *  padding — concurrent readers of a clean line don't contend. */
    struct DomainPlan
    {
        Tick runTo = 0;
        bool runnable = false;
    };

    /** Per-domain host profile, written by whichever thread
     *  executes the domain (padded: different threads, same round). */
    struct alignas(64) DomainProf
    {
        std::uint64_t wallNs = 0;
    };

    /** Per-party host profile (padded for the same reason). */
    struct alignas(64) PartyProf
    {
        std::uint64_t barrierNs = 0;
    };

    void startPool();
    void workerLoop(std::size_t party);
    Phase arrive(std::size_t party);
    void await(std::uint64_t gen, std::size_t party);
    void closure(std::uint64_t gen);
    void publish(Phase phase, std::uint64_t gen);
    void computePlan();
    void executeDomain(DomainId d);
    void executeStripe(std::size_t party);
    void sampleRound();

    std::vector<EventQueue *> queues_;
    DomainRouter &router_;
    std::size_t parties_;
    bool stop_ = false;
    bool serial_ = false;
    bool exit_ = false; ///< read/written only under the rendezvous
    std::uint64_t rounds_ = 0;
    std::uint64_t serialRounds_ = 0;
    bool roundOpen_ = false; ///< a round ran since the last sample
    statistics::Distribution eventsPerRound_;

    // ---- closure scratch (serial) ----
    // Queue-only reductions, cached across rounds. A queue's pending
    // set only changes when its domain executes (or an external
    // caller schedules into it), and every change bumps the queue's
    // mutation counter, so rows whose stamp is unchanged keep their
    // cached nextEvt_/aMin_/sMin_ values. Per-round recompute cost
    // then tracks the few domains that actually ran, not N.
    std::vector<Tick> nextEvt_;   ///< per domain: next live event
    std::vector<Tick> aMin_;      ///< queue part of A_j (file comment)
    std::vector<Tick> sMin_;      ///< queue part of S_j[d], j * N + d
    std::vector<std::uint64_t> lastMut_; ///< mutation stamp per queue
    std::vector<std::uint8_t> rowAnn_;   ///< sMin_ row has live slots
    // Message-side scratch, rebuilt every round from the undelivered
    // read-side messages (cost proportional to traffic). Kept apart
    // from the cached queue rows so stale message contributions can
    // never survive a delivery.
    std::vector<Tick> laneMinIn_; ///< per dst: min incoming when
    std::vector<Tick> aMsg_;      ///< message part of A (per dst)
    std::vector<Tick> sMsg_;      ///< message part of S, dst * N + src
    std::vector<std::uint32_t> sMsgDirty_; ///< sMsg_ slots written
    std::vector<Tick> pIn_;       ///< P_d fixpoint (file comment)
    /** Used incoming lanes per destination as (src, la) pairs;
     *  cached from the router's lane table so the fixpoint sweeps
     *  E edges, not N² — rebuilt when laneVersion() moves. */
    std::vector<std::vector<std::pair<std::uint32_t, Tick>>> usedIn_;
    std::uint64_t usedInVersion_ = ~0ull;
    /** Domains with work this round (runnable or undelivered
     *  messages), ascending. Built by computePlan; the execute paths
     *  iterate it instead of the full domain set, so idle topology
     *  costs nothing per round. Read-only while a round runs. */
    std::vector<DomainId> active_;
    bool quiescent_ = true;      ///< set by computePlan
    std::size_t nRunnable_ = 0;  ///< set by computePlan
    /** Per-domain dispatched count at the last sample; lets the
     *  events-per-round sample read only last round's active
     *  domains. */
    std::vector<std::uint64_t> dispSeen_;
    std::vector<DomainPlan> plan_;
    std::vector<DomainProf> prof_;
    std::vector<PartyProf> partyProf_;
    Phase phase_ = Phase::Done; ///< published before generation_

    // ---- worker pool (created on the first parallel run) ----
    std::vector<std::thread> pool_;
    alignas(64) std::atomic<std::uint32_t> arrived_{0};
    alignas(64) std::atomic<std::uint64_t> generation_{0};
    std::mutex parkMu_;
    std::condition_variable parkCv_;
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_DOMAINS_HH
