/**
 * @file
 * Deterministic intra-run parallelism: per-CPU event-queue domains
 * synchronized by a conservative quantum/barrier scheme.
 *
 * The simulation is partitioned into domains, each owning one
 * EventQueue: domain 0 (the *shared* domain) holds the snoop
 * bus / directory fabric, the L2 controllers, DRAM, and the simulated
 * OS kernel; domain 1+i holds CPU i and its private L1 pair. Every
 * cross-domain interaction is a *message*: a closure posted through
 * the DomainRouter that executes in the target domain at least one
 * lookahead (Λ) in the future.
 *
 * The round protocol (DomainScheduler::run) is:
 *
 *   1. Drain every mailbox lane into the target queues, in a fixed
 *      order (destination-major, then source, then lane FIFO). This
 *      is serial, on the coordinating thread.
 *   2. Compute nextT = min over all queues of the next live event
 *      tick; the round horizon is B = nextT + Λ.
 *   3. Every domain dispatches its events with tick < B, in
 *      parallel. A domain never touches another domain's state: all
 *      it can do is append messages to its own single-writer lanes.
 *   4. Barrier; goto 1.
 *
 * Conservative correctness: every event dispatched in step 3 has
 * tick >= nextT, so every message it sends carries
 * when >= nextT + Λ = B — beyond the horizon. No domain can receive
 * anything during a round that should have influenced that same
 * round, so no rollback is ever needed.
 *
 * Determinism: the round sequence, the mailbox drain order, and each
 * queue's (tick, priority, seq) dispatch order are all pure
 * functions of simulation state — no host clocks, no thread IDs, no
 * pointer values. The worker count only changes which host thread
 * dispatches a domain's events, never their order, so results are
 * bitwise identical for any --threads value (pinned by
 * tests/core/test_parallel_golden.cc).
 *
 * Memory model: workers synchronize exclusively through the round
 * barrier (acquire/release on the generation counter), which orders
 * every write a domain made in round R before every read of it in
 * round R+1 — message payloads and queue internals cross threads
 * only over that edge, so the scheme is clean under ThreadSanitizer.
 */

#ifndef VARSIM_SIM_DOMAINS_HH
#define VARSIM_SIM_DOMAINS_HH

#include <atomic>
#include <cstring>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/eventq.hh"
#include "sim/types.hh"

namespace varsim
{
namespace sim
{

/** Index of an event-queue domain within one simulation. */
using DomainId = std::uint32_t;

/** The domain holding the bus/L2/DRAM fabric and the OS kernel. */
constexpr DomainId sharedDomain = 0;

/**
 * A move-only closure with inline storage for small trivially
 * copyable captures (the cross-domain hot path captures only
 * pointers and scalars). Oversized or non-trivial callables fall
 * back to the heap (cold path: syscalls, not memory traffic).
 */
class InlineFn
{
  public:
    /** Covers every capture list on the memory-system edges. */
    static constexpr std::size_t inlineBytes = 32;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&fn) // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(::max_align_t) &&
                      std::is_trivially_copyable_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = nullptr; // trivially copyable => trivial dtor
        } else {
            ::new (static_cast<void *>(storage_))
                Fn *(new Fn(std::forward<F>(fn)));
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            destroy_ = [](void *p) {
                delete *static_cast<Fn **>(p);
            };
        }
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    void operator()() { invoke_(storage_); }

    explicit operator bool() const { return invoke_ != nullptr; }

    /** True if the callable spilled to the heap (for tests). */
    bool onHeap() const { return destroy_ != nullptr; }

  private:
    void
    moveFrom(InlineFn &other) noexcept
    {
        // Inline payloads are trivially copyable and heap payloads
        // are a single raw pointer, so a byte copy moves either.
        std::memcpy(storage_, other.storage_, inlineBytes);
        invoke_ = other.invoke_;
        destroy_ = other.destroy_;
        other.invoke_ = nullptr;
        other.destroy_ = nullptr;
    }

    void
    reset()
    {
        if (destroy_ != nullptr)
            destroy_(storage_);
        invoke_ = nullptr;
        destroy_ = nullptr;
    }

    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    alignas(::max_align_t) unsigned char storage_[inlineBytes];
};

/**
 * Per-(source, destination) mailbox lanes between domains.
 *
 * During a round each domain appends messages only to its own lanes
 * (single writer, no locks); between rounds the coordinator drains
 * every lane into the destination queues in a fixed total order.
 * Lane vectors keep their capacity across rounds, so steady-state
 * messaging is allocation-free for inline closures.
 */
class DomainRouter
{
  public:
    /**
     * @param queues one EventQueue per domain, index == DomainId
     *               (index 0 is the shared domain).
     * @param lookahead the conservative horizon Λ, in ticks (> 0).
     */
    DomainRouter(std::vector<EventQueue *> queues, Tick lookahead);

    Tick lookahead() const { return lookahead_; }
    std::size_t numDomains() const { return queues_.size(); }

    /**
     * Post a closure to execute in domain @p dst at tick @p when.
     * Must be called from the context executing domain @p src (its
     * worker during a round, or the coordinator between rounds).
     * @p when must lie at least one lookahead past @p src's current
     * tick — that bound is what makes rounds conservative.
     */
    template <typename F>
    void
    send(DomainId src, DomainId dst, Tick when, Event::Priority pri,
         F &&fn)
    {
        checkSend(src, dst, when);
        lanes_[src * queues_.size() + dst].push_back(
            {when, pri, InlineFn(std::forward<F>(fn))});
    }

    /**
     * Deliver every pending message into its destination queue
     * (EventQueue::callAt). Serial; call only between rounds. The
     * order — destination-major, source-minor, FIFO within a lane —
     * fixes the seq numbers ties resolve by, so delivery order is a
     * pure function of what was sent.
     */
    void drainAll();

    /** Any undelivered messages? Serial; between rounds only. */
    bool anyPending() const;

    /** Messages delivered since construction. */
    std::uint64_t delivered() const { return delivered_; }

  private:
    struct Message
    {
        Tick when;
        Event::Priority pri;
        InlineFn fn;
    };

    void checkSend(DomainId src, DomainId dst, Tick when) const;

    std::vector<EventQueue *> queues_;
    Tick lookahead_;
    /** lanes_[src * N + dst]; each written only by domain src. */
    std::vector<std::vector<Message>> lanes_;
    std::uint64_t delivered_ = 0;
};

/**
 * Runs the round protocol over a set of domain queues, optionally on
 * a private worker pool.
 *
 * The pool is deliberately NOT the process-wide HostThreadPool:
 * campaign engines run whole simulations inside pool jobs, and pool
 * jobs must not re-enter parallelFor. Domain workers are plain
 * std::threads owned by (and bounded to the lifetime of) one
 * simulation.
 *
 * With workers == 1 every domain runs inline on the calling thread —
 * zero synchronization, used both for the `--threads 1` serial pin
 * and as the degenerate case the determinism argument reduces to.
 */
class DomainScheduler
{
  public:
    DomainScheduler(std::vector<EventQueue *> queues,
                    DomainRouter &router, std::size_t workers);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    /**
     * Run rounds until a stop is requested (between rounds) or the
     * whole system is quiescent: every queue empty, every mailbox
     * drained.
     */
    void run();

    /**
     * Ask run() to return at the next round boundary. Unlike
     * EventQueue::requestStop this never halts a domain mid-round:
     * the round completes, keeping every queue at the common
     * horizon, so a later run() resumes exactly where an
     * uninterrupted one would be. Call from shared-domain event
     * context (the coordinator's thread) or between rounds.
     */
    void requestStop() { stop_ = true; }

    void clearStop() { stop_ = false; }

    /**
     * Force rounds to run inline on the calling thread (the
     * degenerate `parties == 1` path) regardless of the worker
     * count. Used by sampling fast-forward intervals, whose warm
     * memory path makes direct cross-domain calls: serial rounds
     * make those calls race-free without tearing down the pool —
     * idle workers merely park on the round barrier. Inline rounds
     * dispatch identically to parallel ones (the determinism pin),
     * so flipping this mid-run never changes results. Flip only
     * between rounds (e.g. while the system is drained).
     */
    void setSerialRounds(bool on) { serial_ = on; }

    /** True while rounds are forced inline. */
    bool serialRounds() const { return serial_; }

    /** All queues and mailboxes empty (valid between rounds). */
    bool idle();

    /** Rounds executed since construction. */
    std::uint64_t rounds() const { return rounds_; }

    /** Host threads participating (1 = fully inline). */
    std::size_t parties() const { return parties_; }

  private:
    void startPool();
    void workerLoop(std::size_t worker);
    void barrier();
    void runStripe(std::size_t worker, Tick bound);

    std::vector<EventQueue *> queues_;
    DomainRouter &router_;
    std::size_t parties_;
    bool stop_ = false;
    bool serial_ = false;
    std::uint64_t rounds_ = 0;

    // ---- worker pool (created on the first parallel round) ----
    std::vector<std::thread> pool_;
    Tick bound_ = 0;                ///< written by the coordinator
    std::atomic<bool> exit_{false};
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_DOMAINS_HH
