#include "sim/eventq.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace varsim
{
namespace sim
{

Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(this);
}

void
CallbackEvent::process()
{
    invoke_(storage_);
    // The callable may have scheduled further one-shots (pulling from
    // the free list); this event only becomes reusable now.
    reset();
    owner_.releaseCallback(this);
}

EventQueue::EventQueue()
{
    // One simulated coherence transaction schedules a handful of
    // events; keep the steady-state heap free of regrowth.
    heap.reserve(1024);
}

EventQueue::~EventQueue() = default;

CallbackEvent *
EventQueue::acquireCallback()
{
    if (freeCallbacks != nullptr) {
        CallbackEvent *ev = freeCallbacks;
        freeCallbacks = ev->nextFree_;
        ev->nextFree_ = nullptr;
        return ev;
    }
    callbackPool.emplace_back(new CallbackEvent(*this));
    return callbackPool.back().get();
}

void
EventQueue::releaseCallback(CallbackEvent *ev)
{
    ev->nextFree_ = freeCallbacks;
    freeCallbacks = ev;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    VARSIM_ASSERT(ev != nullptr, "scheduling null event");
    VARSIM_ASSERT(!ev->scheduled_, "event '%s' already scheduled",
                  ev->name().c_str());
    VARSIM_ASSERT(when >= curTick_,
                  "event '%s' scheduled in the past (%llu < %llu)",
                  ev->name().c_str(),
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(curTick_));

    ev->when_ = when;
    ev->seq_ = nextSeq++;
    ev->scheduled_ = true;
    ev->queue_ = this;
    pushEntry({when, ev->priority(), ev->seq_, ev});
    ++numPending;
    ++mutations_;
    if (ev->reach_.annotated()) {
        ev->annPos_ = static_cast<std::uint32_t>(annIdx_.size());
        annIdx_.push_back(ev);
    }
}

void
EventQueue::unindexAnnotated(Event *ev)
{
    Event *last = annIdx_.back();
    annIdx_[ev->annPos_] = last;
    last->annPos_ = ev->annPos_;
    annIdx_.pop_back();
}

void
EventQueue::deschedule(Event *ev)
{
    VARSIM_ASSERT(ev != nullptr, "descheduling null event");
    VARSIM_ASSERT(ev->scheduled_, "event '%s' not scheduled",
                  ev->name().c_str());
    // Lazy removal: the heap entry stays behind and is discarded when
    // popped (its seq no longer matches a live scheduled event).
    ev->scheduled_ = false;
    ev->queue_ = nullptr;
    --numPending;
    ++mutations_;
    if (ev->reach_.annotated())
        unindexAnnotated(ev);
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::restoreTick(Tick t)
{
    VARSIM_ASSERT(empty(), "restoreTick with %zu pending events",
                  numPending);
    VARSIM_ASSERT(t >= curTick_, "restoreTick into the past");
    curTick_ = t;
}

bool
EventQueue::skimStale()
{
    // Discard tombstones left behind by deschedule()/reschedule().
    while (!heap.empty()) {
        const HeapEntry &top = heap.front();
        if (top.ev->scheduled_ && top.ev->seq_ == top.seq)
            return true;
        popEntry();
    }
    return false;
}

Tick
EventQueue::run(Tick stop_tick)
{
    while (!stopRequested) {
        if (!skimStale() || heap.front().when > stop_tick)
            break;

        // Dispatch inline: the top entry is known live, so the
        // peek-then-step double walk of the heap is unnecessary.
        const HeapEntry entry = popEntry();
        Event *ev = entry.ev;
        VARSIM_ASSERT(entry.when >= curTick_,
                      "time went backwards dispatching '%s'",
                      ev->name().c_str());
        curTick_ = entry.when;
        ev->scheduled_ = false;
        ev->queue_ = nullptr;
        --numPending;
        ++mutations_;
        if (ev->reach_.annotated())
            unindexAnnotated(ev);
        ++dispatched;
        ev->process();
    }
    return curTick_;
}

void
EventQueue::step()
{
    VARSIM_ASSERT(skimStale(), "step() on empty event queue");
    const HeapEntry entry = popEntry();
    Event *ev = entry.ev;
    VARSIM_ASSERT(entry.when >= curTick_,
                  "time went backwards dispatching '%s'",
                  ev->name().c_str());
    curTick_ = entry.when;
    ev->scheduled_ = false;
    ev->queue_ = nullptr;
    --numPending;
    ++mutations_;
    if (ev->reach_.annotated())
        unindexAnnotated(ev);
    ++dispatched;
    ev->process();
}

Tick
EventQueue::minUnannotatedTick() const
{
    Tick best = maxTick;
    minUnannotatedFrom(0, best);
    return best;
}

void
EventQueue::minUnannotatedFrom(std::size_t i, Tick &best) const
{
    if (i >= heap.size())
        return;
    const HeapEntry &e = heap[i];
    // Structural heap order: every entry in this subtree has
    // when >= e.when, so nothing below can beat the current best.
    if (e.when >= best)
        return;
    if (e.ev->scheduled_ && e.ev->seq_ == e.seq &&
        !e.ev->reach_.annotated()) {
        // Live and unannotated: take it, and prune the subtree (the
        // children are no earlier than this entry).
        best = e.when;
        return;
    }
    // Annotated or stale: the entry itself does not count, but live
    // unannotated descendants might still beat best.
    const std::size_t first = 4 * i + 1;
    for (std::size_t c = first; c < first + 4; ++c)
        minUnannotatedFrom(c, best);
}

void
EventQueue::pushEntry(const HeapEntry &e)
{
    heap.push_back(e);
    siftUp(heap.size() - 1);
}

EventQueue::HeapEntry
EventQueue::popEntry()
{
    HeapEntry top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0);
    return top;
}

// A 4-ary heap: half the depth of a binary heap and the four
// children share cache lines, which matters because schedule/pop is
// on the critical path of both engines (and dominates fast-mode
// sampling runs). The comparator is a strict total order over
// (when, priority, seq), so the dispatch sequence is identical to
// any other correct heap — event order, and with it every golden,
// is unaffected by the arity.

void
EventQueue::siftUp(std::size_t i)
{
    const HeapEntry e = heap[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (heap[parent] > e) {
            heap[i] = heap[parent];
            i = parent;
        } else {
            break;
        }
    }
    heap[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap.size();
    const HeapEntry e = heap[i];
    while (true) {
        const std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + 4, n);
        std::size_t smallest = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (heap[smallest] > heap[c])
                smallest = c;
        }
        if (!(e > heap[smallest]))
            break;
        heap[i] = heap[smallest];
        i = smallest;
    }
    heap[i] = e;
}

} // namespace sim
} // namespace varsim
