/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Determinism is the load-bearing property of this queue. The paper's
 * central observation (Section 3.3) is that architectural simulators
 * are deterministic — "they produce the same timing result every time
 * for the same workload and system configuration" — and that a
 * methodology must therefore *inject* perturbations to expose workload
 * variability. For the injected perturbation to be the only source of
 * divergence, event ordering must be a pure function of the schedule:
 * events firing at the same tick are ordered by (priority, insertion
 * sequence number), never by pointer value or container whim.
 */

#ifndef VARSIM_SIM_EVENTQ_HH
#define VARSIM_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <cstddef>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace varsim
{
namespace sim
{

class EventQueue;

/**
 * Conservative "reach" declaration for an event (or an undelivered
 * cross-domain message): a bound on how soon the work it triggers can
 * call DomainRouter::send toward other domains.
 *
 * An item with timestamp w and reach {dom, selfDelay, otherDelay}
 * promises that executing it — including everything it calls
 * synchronously and every local event it schedules — produces no
 * cross-domain message toward destination d with delivery tick
 * earlier than
 *
 *     w + (d == dom ? selfDelay : otherDelay) + lookahead(src, d).
 *
 * The default ({noDomain, 0, 0}) is the conservative floor every
 * event satisfies trivially (sends always lie one lookahead past the
 * sender's current tick, and descendants only run later). Annotating
 * an event with a larger delay widens the round horizon the domain
 * scheduler may grant *other* domains while this item is pending —
 * which is exactly what makes adaptive horizons beat the global
 * worst-case Λ. An annotation must hold for the item's entire causal
 * future inside its own domain, so only use delays backed by a
 * modeled latency every downstream send provably crosses.
 */
struct SendReach
{
    /** Sentinel: no single favoured destination domain. */
    static constexpr std::uint32_t noDomain = 0xffffffffu;

    /** Domain the item may message sooner than the rest (if any). */
    std::uint32_t dom = noDomain;
    /** Minimum delay before a send toward @c dom, in ticks. */
    Tick selfDelay = 0;
    /** Minimum delay before a send toward any other domain. */
    Tick otherDelay = 0;

    /** True if this is anything beyond the conservative default. */
    bool
    annotated() const
    {
        return dom != noDomain || otherDelay != 0;
    }
};

/**
 * An occurrence scheduled to happen at a particular tick.
 *
 * Events are owned by the components that schedule them; the queue
 * never deletes an Event. An event object can be rescheduled after it
 * has fired (but not while it is pending).
 */
class Event
{
  public:
    /**
     * Tie-break priorities for events at the same tick. Lower values
     * fire first.
     */
    enum Priority : std::int32_t
    {
        /** Memory responses settle before dependents react. */
        memoryResponsePri = -20,
        /** CPU pipeline activity. */
        cpuTickPri = -10,
        /** Default for everything else. */
        defaultPri = 0,
        /** OS scheduling decisions observe everything else first. */
        schedulerPri = 10,
        /** Measurement bookkeeping sees the final state of a tick. */
        statsPri = 20,
    };

    explicit Event(Priority p = defaultPri) : priority_(p) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event fires. */
    virtual void process() = 0;

    /** Human-readable description, for tracing and error messages. */
    virtual std::string name() const { return "anon-event"; }

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will fire (valid while scheduled). */
    Tick when() const { return when_; }

    /** Priority used to order same-tick events. */
    Priority priority() const { return priority_; }

    /** Conservative cross-domain reach (see SendReach). */
    const SendReach &reach() const { return reach_; }

    /**
     * Declare this event's cross-domain reach. Only meaningful while
     * not scheduled (the queue samples the reach at schedule time to
     * keep its annotated-event count exact).
     */
    void setReach(const SendReach &r) { reach_ = r; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    Priority priority_;
    bool scheduled_ = false;
    EventQueue *queue_ = nullptr;
    SendReach reach_{};
    /** Slot in the queue's annotated-event index (valid only while
     *  scheduled with an annotated reach). */
    std::uint32_t annPos_ = 0;
};

/**
 * Convenience event wrapping a callable; gem5's EventFunctionWrapper.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name,
                         Priority p = defaultPri)
        : Event(p), callback_(std::move(callback)),
          name_(std::move(name))
    {}

    void process() override { callback_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * A recyclable one-shot event with inline callable storage.
 *
 * Owned by an EventQueue and handed out by EventQueue::callAt(); after
 * firing, the event returns to the queue's free list instead of the
 * heap allocator. Together with the inline storage for the callable
 * (no std::function, no captured-state allocation for callables up to
 * inlineBytes) this makes the memory-system miss path — which
 * schedules a handful of one-shot callbacks per coherence
 * transaction — allocation-free in steady state.
 */
class CallbackEvent : public Event
{
  public:
    ~CallbackEvent() override { reset(); }

    void process() override;
    std::string name() const override { return "callback"; }

  private:
    friend class EventQueue;

    /** Covers every capture list in the simulator's hot paths. */
    static constexpr std::size_t inlineBytes = 56;

    explicit CallbackEvent(EventQueue &owner) : owner_(owner) {}

    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(::max_align_t)) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        } else {
            // Oversized callable: fall back to the heap (cold path).
            ::new (static_cast<void *>(storage_))
                Fn *(new Fn(std::forward<F>(fn)));
            invoke_ = [](void *p) { (**static_cast<Fn **>(p))(); };
            destroy_ = [](void *p) { delete *static_cast<Fn **>(p); };
        }
    }

    void
    reset()
    {
        if (destroy_ != nullptr) {
            destroy_(storage_);
            destroy_ = nullptr;
            invoke_ = nullptr;
        }
    }

    EventQueue &owner_;
    CallbackEvent *nextFree_ = nullptr;
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    alignas(::max_align_t) unsigned char storage_[inlineBytes];
};

/**
 * The event queue: a binary heap ordered by (tick, priority, seq).
 *
 * Each Simulation owns exactly one queue; there are no global queues,
 * so independent simulations can run concurrently on host threads
 * (the paper's "coarse-grain parallelism" across simulation hosts,
 * Section 1).
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p ev to fire at absolute tick @p when. */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event from the queue. */
    void deschedule(Event *ev);

    /** Deschedule (if pending) and schedule at a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callable at absolute tick @p when. The
     * event object comes from an internal free list and is recycled
     * after firing: allocation-free in steady state, unlike
     * heap-allocating a self-deleting Event per callback.
     */
    template <typename F>
    void
    callAt(Tick when, F &&fn,
           Event::Priority pri = Event::defaultPri)
    {
        CallbackEvent *ev = acquireCallback();
        ev->priority_ = pri;
        ev->reach_ = SendReach{}; // recycled events may carry one
        ev->emplace(std::forward<F>(fn));
        schedule(ev, when);
    }

    /**
     * As callAt, with a conservative cross-domain reach declaration
     * the domain scheduler uses to widen other domains' horizons
     * while this callback is pending (see SendReach).
     */
    template <typename F>
    void
    callAt(Tick when, F &&fn, Event::Priority pri,
           const SendReach &reach)
    {
        CallbackEvent *ev = acquireCallback();
        ev->priority_ = pri;
        ev->reach_ = reach;
        ev->emplace(std::forward<F>(fn));
        schedule(ev, when);
    }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** True if no events are pending. */
    bool empty() const { return numPending == 0; }

    /** Number of pending events. */
    std::size_t size() const { return numPending; }

    /** Total events dispatched since construction. */
    std::uint64_t numDispatched() const { return dispatched; }

    /**
     * Counter bumped by every pending-set change (schedule,
     * deschedule, dispatch). Equal counters between two observations
     * mean the pending set — and any reduction over it — is
     * unchanged; the domain scheduler uses this to skip recomputing
     * horizons for queues that sat out the last round.
     */
    std::uint64_t mutations() const { return mutations_; }

    /**
     * Dispatch events until the queue is empty, the stop flag is
     * raised (requestStop()), or the next event lies beyond
     * @p stop_tick.
     *
     * @return the tick of the last dispatched event, or curTick() if
     *         nothing ran.
     */
    Tick run(Tick stop_tick = maxTick);

    /** Dispatch exactly one event. Queue must not be empty. */
    void step();

    /**
     * Ask a run() in progress to return after the current event
     * completes. Used by measurement logic when the target
     * transaction count is reached.
     */
    void requestStop() { stopRequested = true; }

    /** Clear a previously raised stop request. */
    void clearStop() { stopRequested = false; }

    /**
     * Restore simulated time when loading a checkpoint. Only valid
     * while the queue is empty (checkpoints are taken drained) and
     * time moves forward.
     */
    void restoreTick(Tick t);

    /** True if a stop has been requested but not yet cleared. */
    bool stopPending() const { return stopRequested; }

    /**
     * Tick of the earliest live (non-tombstoned) pending event, or
     * maxTick if the queue is empty. Used by the domain scheduler to
     * compute the global round horizon. Not const: skims stale
     * tombstones off the heap top as a side effect.
     */
    Tick
    nextEventTick()
    {
        return skimStale() ? heap.front().when : maxTick;
    }

    /**
     * Number of pending events with a non-default SendReach. When
     * zero, the earliest possible cross-domain send from this queue
     * is simply nextEventTick() + lookahead — the domain scheduler's
     * O(1) fast path (true for every CPU domain; only the shared
     * domain carries annotated memory-system events).
     */
    std::size_t annotatedPending() const { return annIdx_.size(); }

    /**
     * Visit every live annotated pending event as (when, reach), in
     * no particular order — callers reduce with min, never depend on
     * sequence. Backed by an exactly-maintained side index (swap-
     * removed on dispatch/deschedule), so the cost is the number of
     * annotated items, independent of the heap size.
     */
    template <typename F>
    void
    forEachAnnotated(F &&fn) const
    {
        for (const Event *ev : annIdx_)
            fn(ev->when_, ev->reach_);
    }

    /**
     * Tick of the earliest live *unannotated* pending event, or
     * maxTick if none. Together with forEachAnnotated this gives the
     * domain scheduler the exact per-item reduction
     * min over items of (w + otherDelay) without scanning the whole
     * heap: unannotated items contribute w (their otherDelay is 0),
     * and the heap's structural order lets the search prune every
     * subtree that cannot beat the best tick found so far — it
     * visits only the annotated/stale "crown" of the heap plus its
     * live frontier.
     */
    Tick minUnannotatedTick() const;

  private:
    struct HeapEntry
    {
        Tick when;
        std::int32_t priority;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    friend class CallbackEvent;

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    void pushEntry(const HeapEntry &e);
    HeapEntry popEntry();

    /** Pop tombstoned entries off the top; true if a live one waits. */
    bool skimStale();

    /** Swap-remove @p ev from the annotated index (O(1)). */
    void unindexAnnotated(Event *ev);

    /** Pruned subtree search behind minUnannotatedTick(). */
    void minUnannotatedFrom(std::size_t i, Tick &best) const;

    CallbackEvent *acquireCallback();
    void releaseCallback(CallbackEvent *ev);

    std::vector<HeapEntry> heap;
    Tick curTick_ = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t mutations_ = 0;
    std::size_t numPending = 0;
    bool stopRequested = false;
    /** Live annotated events, unordered; Event::annPos_ is the
     *  back-pointer that makes removal O(1). */
    std::vector<Event *> annIdx_;

    /** All pooled one-shot events this queue ever created. */
    std::vector<std::unique_ptr<CallbackEvent>> callbackPool;
    /** Intrusive free list threaded through CallbackEvent::nextFree_. */
    CallbackEvent *freeCallbacks = nullptr;
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_EVENTQ_HH
