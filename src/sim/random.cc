#include "sim/random.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace varsim
{
namespace sim
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Random::Random(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(std::uint64_t seed_value)
{
    SplitMix64 sm(seed_value);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Random::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    VARSIM_ASSERT(lo <= hi, "uniformInt: lo=%llu > hi=%llu",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return lo + x % span;
}

double
Random::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Random::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Random::bernoulli(double p)
{
    return uniformReal() < p;
}

double
Random::exponential(double mean)
{
    double u;
    do {
        u = uniformReal();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Random::normal(double mean, double sigma)
{
    double u1;
    do {
        u1 = uniformReal();
    } while (u1 <= 0.0);
    const double u2 = uniformReal();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + sigma * mag * std::cos(2.0 * M_PI * u2);
}

void
Random::serialize(CheckpointOut &cp) const
{
    for (auto word : s)
        cp.put(word);
}

void
Random::unserialize(CheckpointIn &cp)
{
    for (auto &word : s)
        cp.get(word);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
{
    VARSIM_ASSERT(n > 0, "ZipfSampler needs n > 0");
    cdf.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf[i] = sum;
    }
    for (auto &c : cdf)
        c /= sum;
    cdf.back() = 1.0;

    hint.resize(kHintBuckets + 1);
    for (std::size_t b = 0; b <= kHintBuckets; ++b) {
        const double lo =
            static_cast<double>(b) / static_cast<double>(kHintBuckets);
        hint[b] = static_cast<std::uint32_t>(
            std::lower_bound(cdf.begin(), cdf.end(), lo) - cdf.begin());
    }
}

std::size_t
ZipfSampler::sample(Random &rng) const
{
    const double u = rng.uniformReal();
    // lower_bound(u) lies in [hint[b], hint[b+1]] for u's bucket b,
    // because u < (b + 1) / kHintBuckets and lower_bound is monotone.
    const auto b = std::min<std::size_t>(
        kHintBuckets - 1,
        static_cast<std::size_t>(u * static_cast<double>(kHintBuckets)));
    const auto first = cdf.begin() + hint[b];
    const auto last =
        cdf.begin() +
        std::min<std::size_t>(cdf.size(), hint[b + 1] + std::size_t{1});
    auto it = std::lower_bound(first, last, u);
    if (it == cdf.end())
        return cdf.size() - 1;
    return static_cast<std::size_t>(it - cdf.begin());
}

} // namespace sim
} // namespace varsim
