/**
 * @file
 * Hierarchical metrics registry, in the spirit of gem5's Stats.
 *
 * Every SimObject registers its counters at construction time under
 * its hierarchical instance name ("system.mem.bus.transactions"),
 * either as pointers to the counters it already maintains, as derived
 * formulas evaluated lazily, or as host-side sample distributions.
 * Nothing is computed until dump() is called, so registration and
 * collection are timing-neutral by construction: the simulated
 * schedule of a run with stats dumped is bit-identical to one
 * without.
 *
 * A dump is an ordered list of (name, value) pairs — the order is the
 * registration order, which is fixed by the deterministic
 * construction order of the simulation, so the emitted JSONL schema
 * is stable across runs, hosts, and resumes.
 *
 * One registry per simulation, owned by core::Simulation; there is
 * deliberately no global registry (concurrent simulations share
 * nothing).
 */

#ifndef VARSIM_SIM_STATISTICS_HH
#define VARSIM_SIM_STATISTICS_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace varsim
{
namespace sim
{
namespace statistics
{

/**
 * Host-side accumulator for per-event samples (e.g. bus queueing
 * delay). Welford-style so mean/stddev are numerically stable; not
 * serialized — a restored simulation starts a fresh distribution,
 * exactly like its plain counters-since-restore siblings.
 */
class Distribution
{
  public:
    /** Record one observation. */
    void sample(double x);

    /** Forget everything. */
    void reset() { *this = Distribution{}; }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double m2 = 0.0;
    double mu = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** One dumped statistic. */
struct StatValue
{
    std::string name;
    double value = 0.0;
};

/** A full per-run dump, in registration order. */
using StatDump = std::vector<StatValue>;

/**
 * The registry itself: named entries, duplicate names are fatal
 * (they would silently shadow each other in the JSONL object).
 */
class Registry
{
  public:
    /**
     * Register a counter by pointer; sampled at dump() time. The
     * pointee must outlive the registry (SimObjects do: the
     * simulation owns both).
     */
    void regScalar(const std::string &name, const std::uint64_t *v,
                   std::string desc = "");

    /** Register a derived value, evaluated lazily at dump() time. */
    void regFormula(const std::string &name,
                    std::function<double()> fn,
                    std::string desc = "");

    /**
     * Register a sample distribution; dumps expand it into
     * <name>.count/.mean/.stddev/.min/.max scalars.
     */
    void regDistribution(const std::string &name,
                         const Distribution *d,
                         std::string desc = "");

    /**
     * Register a *host* metric: a formula whose value depends on the
     * host machine (wall-clock timings, thread counts), not on
     * simulated state. Host metrics are excluded from the default
     * dump() so recorded per-run stats stay bit-identical across
     * hosts and --threads values; pass includeHost = true to see
     * them (diagnostic reports, `sim.par.host.*`).
     */
    void regHostFormula(const std::string &name,
                        std::function<double()> fn,
                        std::string desc = "");

    /** True if @p name (or an expansion of it) is registered. */
    bool has(const std::string &name) const
    {
        return names.count(name) > 0;
    }

    /** Registered entries (distributions count once). */
    std::size_t size() const { return entries.size(); }

    /** Registered names in dump order (distributions expanded). */
    std::vector<std::string> statNames() const;

    /** Description of @p name ("" when absent or none given). */
    std::string description(const std::string &name) const;

    /**
     * Sample every entry. Pure: never advances simulated state.
     * Host metrics (regHostFormula) are skipped unless
     * @p includeHost — the default dump is a pure function of
     * simulated state.
     */
    StatDump dump(bool includeHost = false) const;

  private:
    enum class Kind
    {
        Scalar,
        Formula,
        Dist
    };

    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind;
        bool host = false;
        const std::uint64_t *scalar = nullptr;
        std::function<double()> fn;
        const Distribution *dist = nullptr;
    };

    void claimName(const std::string &name);

    std::vector<Entry> entries;  ///< registration order
    std::set<std::string> names; ///< collision detection
};

/**
 * Serialize a dump as one flat JSON object, values printed %.17g so
 * doubles round-trip bit-exactly. Key order is dump order: the line
 * is byte-stable for identical runs.
 */
std::string toJsonl(const StatDump &dump);

} // namespace statistics
} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_STATISTICS_HH
