/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Flags are enabled through the VARSIM_DEBUG environment variable,
 * e.g. `VARSIM_DEBUG=Cache,Sched ./quickstart`. Tracing is off by
 * default and compiled in (the check is one branch on a cached bool),
 * so it can be used to debug emergent-divergence issues without a
 * rebuild.
 */

#ifndef VARSIM_SIM_TRACE_HH
#define VARSIM_SIM_TRACE_HH

#include <string>

#include "sim/types.hh"

namespace varsim
{
namespace sim
{
namespace trace
{

/** Debug flag identifiers. Extend as subsystems grow. */
enum class Flag
{
    Cache,
    Coherence,
    Bus,
    Dram,
    Cpu,
    Fetch,
    Rob,
    Sched,
    Mutex,
    Workload,
    Txn,
    Checkpoint,
    Experiment,
    NumFlags
};

/** True if @p flag was listed in VARSIM_DEBUG. */
bool enabled(Flag flag);

/** Emit one trace line: "<tick>: <who>: <message>". */
void print(Tick tick, const std::string &who, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace trace
} // namespace sim
} // namespace varsim

/**
 * Trace macro for SimObject members: uses this->curTick() and
 * this->name().
 */
#define DPRINTF(flag, ...)                                              \
    do {                                                                \
        if (::varsim::sim::trace::enabled(                              \
                ::varsim::sim::trace::Flag::flag)) {                    \
            ::varsim::sim::trace::print(this->curTick(),                \
                                        this->name(), __VA_ARGS__);     \
        }                                                               \
    } while (0)

#endif // VARSIM_SIM_TRACE_HH
