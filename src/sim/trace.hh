/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Flags are enabled through the VARSIM_DEBUG environment variable,
 * e.g. `VARSIM_DEBUG=Cache,Sched ./quickstart`. Tracing is off by
 * default and compiled in (the check is one branch on a cached bool),
 * so it can be used to debug emergent-divergence issues without a
 * rebuild.
 */

#ifndef VARSIM_SIM_TRACE_HH
#define VARSIM_SIM_TRACE_HH

#include <cstdio>
#include <string>

#include "sim/types.hh"

namespace varsim
{
namespace sim
{
namespace trace
{

/** Debug flag identifiers. Extend as subsystems grow. */
enum class Flag
{
    Cache,
    Coherence,
    Bus,
    Dram,
    Cpu,
    Fetch,
    Rob,
    Sched,
    Mutex,
    Workload,
    Txn,
    Checkpoint,
    Experiment,
    NumFlags
};

/** True if @p flag was listed in VARSIM_DEBUG. */
bool enabled(Flag flag);

/**
 * Emit one trace line: "<tick>: <who>: <message>", prefixed with
 * "[<run-id>] " when a RunScope is active on this thread. The whole
 * line is a single fprintf so concurrent runs on the persistent host
 * pool never interleave mid-line.
 */
void print(Tick tick, const std::string &who, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * RAII run identity for trace output (thread-local).
 *
 * Experiment and campaign workers wrap each run in a RunScope so
 * every DPRINTF line it produces carries the run's identity (e.g.
 * "[g2.r7]") — without it, VARSIM_DEBUG output from concurrent runs
 * under runManyBatch / runCampaign is an unattributable shuffle.
 * An optional sink redirects the scope's lines away from the shared
 * stderr entirely (one stream per run). Scopes nest; destruction
 * restores the enclosing scope.
 */
class RunScope
{
  public:
    explicit RunScope(std::string id, std::FILE *sink = nullptr);
    ~RunScope();

    RunScope(const RunScope &) = delete;
    RunScope &operator=(const RunScope &) = delete;

    /** This thread's active run id ("" outside any scope). */
    static const std::string &currentId();

    /** This thread's active sink (stderr outside any scope). */
    static std::FILE *currentSink();

  private:
    std::string prevId;
    std::FILE *prevSink;
};

} // namespace trace
} // namespace sim
} // namespace varsim

/**
 * Trace macro for SimObject members: uses this->curTick() and
 * this->name().
 */
#define DPRINTF(flag, ...)                                              \
    do {                                                                \
        if (::varsim::sim::trace::enabled(                              \
                ::varsim::sim::trace::Flag::flag)) {                    \
            ::varsim::sim::trace::print(this->curTick(),                \
                                        this->name(), __VA_ARGS__);     \
        }                                                               \
    } while (0)

#endif // VARSIM_SIM_TRACE_HH
