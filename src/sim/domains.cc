#include "sim/domains.hh"

#include <cassert>
#include <utility>

namespace varsim
{
namespace sim
{

DomainRouter::DomainRouter(std::vector<EventQueue *> queues,
                           Tick lookahead)
    : queues_(std::move(queues)), lookahead_(lookahead),
      lanes_(queues_.size() * queues_.size())
{
    assert(!queues_.empty());
    assert(lookahead_ > 0 && "zero lookahead cannot make progress");
}

void
DomainRouter::checkSend(DomainId src, DomainId dst, Tick when) const
{
    assert(src < queues_.size() && dst < queues_.size());
    assert(when >= queues_[src]->curTick() + lookahead_ &&
           "cross-domain message inside the conservative horizon");
    (void)src;
    (void)dst;
    (void)when;
}

void
DomainRouter::drainAll()
{
    const std::size_t n = queues_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
        for (std::size_t src = 0; src < n; ++src) {
            auto &lane = lanes_[src * n + dst];
            for (auto &msg : lane) {
                queues_[dst]->callAt(
                    msg.when,
                    [fn = std::move(msg.fn)]() mutable { fn(); },
                    msg.pri);
                ++delivered_;
            }
            lane.clear();
        }
    }
}

bool
DomainRouter::anyPending() const
{
    for (const auto &lane : lanes_) {
        if (!lane.empty())
            return true;
    }
    return false;
}

DomainScheduler::DomainScheduler(std::vector<EventQueue *> queues,
                                 DomainRouter &router,
                                 std::size_t workers)
    : queues_(std::move(queues)), router_(router),
      parties_(std::min(workers == 0 ? 1 : workers, queues_.size()))
{
    assert(!queues_.empty());
}

DomainScheduler::~DomainScheduler()
{
    if (pool_.empty())
        return;
    exit_.store(true, std::memory_order_relaxed);
    // Release the start barrier so blocked workers observe exit_.
    barrier();
    for (auto &t : pool_)
        t.join();
}

void
DomainScheduler::startPool()
{
    pool_.reserve(parties_ - 1);
    for (std::size_t w = 1; w < parties_; ++w)
        pool_.emplace_back([this, w] { workerLoop(w); });
}

void
DomainScheduler::barrier()
{
    const std::uint64_t gen =
        generation_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        arrived_.store(0, std::memory_order_relaxed);
        generation_.store(gen + 1, std::memory_order_release);
    } else {
        std::uint32_t spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            if (++spins > 1000) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }
}

void
DomainScheduler::runStripe(std::size_t worker, Tick bound)
{
    for (std::size_t i = worker; i < queues_.size(); i += parties_)
        queues_[i]->run(bound);
}

void
DomainScheduler::workerLoop(std::size_t worker)
{
    for (;;) {
        barrier(); // wait for the coordinator to publish bound_
        if (exit_.load(std::memory_order_relaxed))
            return;
        runStripe(worker, bound_);
        barrier(); // round complete
    }
}

void
DomainScheduler::run()
{
    for (;;) {
        // Serial phase: deliver mailboxes, find the global horizon.
        router_.drainAll();
        Tick nextT = maxTick;
        for (EventQueue *q : queues_) {
            const Tick t = q->nextEventTick();
            if (t < nextT)
                nextT = t;
        }
        if (nextT == maxTick)
            return; // quiescent: nothing anywhere, nothing in flight

        // Parallel phase: every domain runs up to (not through) the
        // horizon B = nextT + Λ. run()'s bound is inclusive.
        const Tick bound = nextT + router_.lookahead() - 1;
        if (parties_ == 1 || serial_) {
            // Degenerate case: inline, in domain order, no workers.
            for (EventQueue *q : queues_)
                q->run(bound);
        } else {
            if (pool_.empty())
                startPool();
            bound_ = bound;
            barrier(); // start: workers read bound_ after this
            runStripe(0, bound);
            barrier(); // finish: worker writes visible after this
        }
        ++rounds_;

        if (stop_)
            return; // round-granularity stop (see requestStop)
    }
}

bool
DomainScheduler::idle()
{
    if (router_.anyPending())
        return false;
    for (EventQueue *q : queues_) {
        if (q->nextEventTick() != maxTick)
            return false;
    }
    return true;
}

} // namespace sim
} // namespace varsim
