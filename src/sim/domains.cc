#include "sim/domains.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

namespace varsim
{
namespace sim
{

namespace
{

/** Tick addition that saturates at maxTick instead of wrapping. */
inline Tick
satAdd(Tick a, Tick b)
{
    return a > maxTick - b ? maxTick : a + b;
}

inline std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // anonymous namespace

DomainRouter::DomainRouter(std::vector<EventQueue *> queues,
                           Tick lookahead)
    : queues_(std::move(queues)), lookahead_(lookahead),
      lanes_(queues_.size() * queues_.size()),
      laneLa_(queues_.size() * queues_.size(), lookahead),
      deliveredByDst_(queues_.size()), touched_(queues_.size()),
      incoming_(queues_.size())
#ifndef NDEBUG
      ,
      debugBound_(queues_.size(), maxTick)
#endif
{
    assert(!queues_.empty());
    assert(lookahead_ > 0 && "zero lookahead cannot make progress");
}

void
DomainRouter::setLaneLookahead(DomainId src, DomainId dst, Tick la)
{
    assert(src < queues_.size() && dst < queues_.size());
    assert(la > 0 && "zero lane lookahead cannot make progress");
    laneLa_[src * queues_.size() + dst] = la;
    ++laneVersion_;
}

void
DomainRouter::checkSend(DomainId src, DomainId dst, Tick when) const
{
    assert(src < queues_.size() && dst < queues_.size());
    const Tick la = laneLa_[src * queues_.size() + dst];
    assert(la != laneUnused &&
           "send on a lane the topology declared unused");
    assert(when >= queues_[src]->curTick() + la &&
           "cross-domain message inside the lane's lookahead");
#ifndef NDEBUG
    // The receiver may already have dispatched past its horizon this
    // round; a message at or before it means some SendReach
    // annotation promised more delay than the model provides.
    if (debugBoundsActive_) {
        assert(when > debugBound_[dst] &&
               "message violates the receiver's round horizon — "
               "unsound SendReach annotation upstream");
    }
#endif
    (void)src;
    (void)dst;
    (void)when;
    (void)la;
}

void
DomainRouter::deliver(DomainId dst, std::vector<Message> &buf)
{
    EventQueue *q = queues_[dst];
    for (Message &msg : buf) {
        // The reach rides along: once delivered, the message is a
        // pending event and must keep widening horizons exactly as
        // it did while in flight.
        q->callAt(
            msg.when, [fn = std::move(msg.fn)]() mutable { fn(); },
            msg.pri, msg.reach);
    }
    deliveredByDst_[dst].delivered += buf.size();
    buf.clear();
}

void
DomainRouter::flipEpoch()
{
#ifndef NDEBUG
    for (const Lane &lane : lanes_)
        assert(lane.buf[1 - epoch_].empty() &&
               "epoch flip with undrained read side");
    for (const DstIncoming &in : incoming_)
        assert(in.srcs.empty() &&
               "epoch flip with undrained incoming lists");
#endif
    // Turn the per-source touched lists into per-destination
    // incoming lists. Ascending source order here is what keeps the
    // drain's per-destination delivery order (source-ascending, FIFO
    // per lane) identical to the full-matrix sweep it replaces —
    // cost is O(lanes with traffic), not O(N²).
    const std::size_t n = queues_.size();
    for (std::size_t src = 0; src < n; ++src) {
        auto &t = touched_[src].dsts;
        for (std::uint32_t dst : t)
            incoming_[dst].srcs.push_back(
                static_cast<std::uint32_t>(src));
        t.clear();
    }
    epoch_ = 1 - epoch_;
}

void
DomainRouter::drainTo(DomainId dst)
{
    const std::size_t n = queues_.size();
    const unsigned read = 1 - epoch_;
    auto &srcs = incoming_[dst].srcs;
    for (std::uint32_t src : srcs)
        deliver(dst, lanes_[src * n + dst].buf[read]);
    srcs.clear();
}

void
DomainRouter::drainAll()
{
    const std::size_t n = queues_.size();
    const unsigned read = 1 - epoch_;
    for (std::size_t dst = 0; dst < n; ++dst) {
        // Read side first: those messages were sent a round earlier
        // than anything on the write side, so FIFO order per lane is
        // preserved across the two sides.
        for (std::size_t src = 0; src < n; ++src)
            deliver(static_cast<DomainId>(dst),
                    lanes_[src * n + dst].buf[read]);
        for (std::size_t src = 0; src < n; ++src)
            deliver(static_cast<DomainId>(dst),
                    lanes_[src * n + dst].buf[epoch_]);
    }
    // Everything is delivered; reset the traffic bookkeeping so the
    // next flip starts from a clean slate (cold path: tests and
    // quiesce points, never the round loop).
    for (SrcTouched &t : touched_)
        t.dsts.clear();
    for (DstIncoming &in : incoming_)
        in.srcs.clear();
}

bool
DomainRouter::anyPending() const
{
    for (const Lane &lane : lanes_) {
        if (!lane.buf[0].empty() || !lane.buf[1].empty())
            return true;
    }
    return false;
}

std::uint64_t
DomainRouter::delivered() const
{
    std::uint64_t total = 0;
    for (const DstCounter &c : deliveredByDst_)
        total += c.delivered;
    return total;
}

DomainScheduler::DomainScheduler(std::vector<EventQueue *> queues,
                                 DomainRouter &router,
                                 std::size_t workers)
    : queues_(std::move(queues)), router_(router),
      parties_(std::min(workers == 0 ? 1 : workers, queues_.size())),
      nextEvt_(queues_.size(), maxTick),
      aMin_(queues_.size(), maxTick),
      sMin_(queues_.size() * queues_.size(), maxTick),
      lastMut_(queues_.size(), ~0ull),
      rowAnn_(queues_.size(), 0),
      laneMinIn_(queues_.size(), maxTick),
      aMsg_(queues_.size(), maxTick),
      sMsg_(queues_.size() * queues_.size(), maxTick),
      pIn_(queues_.size(), maxTick),
      dispSeen_(queues_.size(), 0), plan_(queues_.size()),
      prof_(queues_.size()), partyProf_(parties_)
{
    assert(!queues_.empty());
}

DomainScheduler::~DomainScheduler()
{
    if (pool_.empty())
        return;
    // Workers are parked at the rendezvous (each re-arrived after
    // the last Done). This final arrival completes it; whoever is
    // last observes exit_ and publishes Exit.
    exit_ = true;
    const Phase p = arrive(0);
    assert(p == Phase::Exit);
    (void)p;
    for (auto &t : pool_)
        t.join();
}

void
DomainScheduler::startPool()
{
    pool_.reserve(parties_ - 1);
    for (std::size_t w = 1; w < parties_; ++w)
        pool_.emplace_back([this, w] { workerLoop(w); });
}

void
DomainScheduler::workerLoop(std::size_t party)
{
    // On RunRound the stripe executes inside arrive(); on Done the
    // loop simply re-arrives and parks until run() is called again.
    while (arrive(party) != Phase::Exit) {
    }
}

DomainScheduler::Phase
DomainScheduler::arrive(std::size_t party)
{
    // generation_ only advances once all parties arrive, and each
    // party arrives exactly once per cycle, so this load is stable
    // until our own fetch_add below.
    const std::uint64_t gen =
        generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        closure(gen);
    } else {
        await(gen, party);
    }
    const Phase p = phase_;
    if (p == Phase::RunRound)
        executeStripe(party);
    return p;
}

void
DomainScheduler::await(std::uint64_t gen, std::size_t party)
{
    const auto t0 = std::chrono::steady_clock::now();
    // Bounded spin: rounds are usually back to back, so the next
    // plan tends to land within the spin window. Park only when it
    // does not (idle phases, serial-round stretches).
    for (int spins = 0; spins < 4096; ++spins) {
        if (generation_.load(std::memory_order_acquire) != gen) {
            partyProf_[party].barrierNs += nsSince(t0);
            return;
        }
    }
    {
        std::unique_lock<std::mutex> lock(parkMu_);
        parkCv_.wait(lock, [&] {
            return generation_.load(std::memory_order_acquire) !=
                   gen;
        });
    }
    partyProf_[party].barrierNs += nsSince(t0);
}

void
DomainScheduler::publish(Phase phase, std::uint64_t gen)
{
    if (phase != Phase::RunRound)
        router_.setDebugBoundsActive(false);
    phase_ = phase;
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    {
        // Empty critical section: orders the store against the
        // predicate check inside parkCv_.wait, closing the missed-
        // wakeup window.
        std::lock_guard<std::mutex> lock(parkMu_);
    }
    parkCv_.notify_all();
}

void
DomainScheduler::sampleRound()
{
    if (!roundOpen_)
        return;
    // Every dispatch happens inside executeDomain, and executeDomain
    // only runs for domains in active_, so last round's delta lives
    // entirely in last round's active set (still untouched here —
    // computePlan rebuilds it after this sample).
    std::uint64_t delta = 0;
    for (DomainId d : active_) {
        const std::uint64_t now = queues_[d]->numDispatched();
        delta += now - dispSeen_[d];
        dispSeen_[d] = now;
    }
    eventsPerRound_.sample(static_cast<double>(delta));
    roundOpen_ = false;
}

void
DomainScheduler::computePlan()
{
    const std::size_t n = queues_.size();

    // Cache the used-lane edge list (per destination: the sources
    // that can reach it, with their lookaheads). The lane table is
    // fixed after wiring, so this rebuilds approximately once.
    if (usedInVersion_ != router_.laneVersion()) {
        usedIn_.assign(n, {});
        for (std::size_t d = 0; d < n; ++d) {
            for (std::size_t j = 0; j < n; ++j) {
                if (j == d)
                    continue;
                const Tick la = router_.laneLookahead(
                    static_cast<DomainId>(j),
                    static_cast<DomainId>(d));
                if (la != DomainRouter::laneUnused)
                    usedIn_[d].push_back(
                        {static_cast<std::uint32_t>(j), la});
            }
        }
        usedInVersion_ = router_.laneVersion();
    }

    std::fill(laneMinIn_.begin(), laneMinIn_.end(), maxTick);
    std::fill(aMsg_.begin(), aMsg_.end(), maxTick);
    // sMsg_ is N² but sparse (few lanes carry annotated messages per
    // round); clear exactly the slots the last round wrote.
    for (std::uint32_t idx : sMsgDirty_)
        sMsg_[idx] = maxTick;
    sMsgDirty_.clear();

    for (std::size_t j = 0; j < n; ++j) {
        // nextEvt_/aMin_/sMin_ are pure functions of the queue's
        // pending set; if the mutation stamp is unchanged since the
        // row was computed, the cached values still hold. In steady
        // state only last round's few active domains pay a rescan.
        const std::uint64_t mut = queues_[j]->mutations();
        if (mut == lastMut_[j])
            continue;
        lastMut_[j] = mut;
        nextEvt_[j] = queues_[j]->nextEventTick();
        Tick *sRow = sMin_.data() + j * n;
        if (rowAnn_[j]) {
            std::fill(sRow, sRow + n, maxTick);
            rowAnn_[j] = 0;
        }
        if (queues_[j]->annotatedPending() == 0) {
            // Every pending event is conservative (otherDelay 0), so
            // the reduction collapses to the earliest event tick —
            // the O(1) fast path all CPU domains take.
            aMin_[j] = nextEvt_[j];
            continue;
        }
        // Exact split of the per-item reduction: unannotated items
        // contribute w (otherDelay 0) via a pruned heap search, and
        // the annotated few come from the queue's side index — cost
        // is the annotated count, not the heap size.
        rowAnn_[j] = 1;
        Tick a = queues_[j]->minUnannotatedTick();
        queues_[j]->forEachAnnotated(
            [&](Tick w, const SendReach &r) {
                a = std::min(a, satAdd(w, r.otherDelay));
                if (r.dom != SendReach::noDomain && r.dom < n)
                    sRow[r.dom] = std::min(sRow[r.dom],
                                           satAdd(w, r.selfDelay));
            });
        aMin_[j] = a;
    }

    // Undelivered read-side messages will be delivered this round:
    // they are items of their destination. They accumulate into the
    // per-round scratch, never the cached queue rows.
    router_.forEachUndelivered(
        [&](DomainId, DomainId dst, Tick w, const SendReach &r) {
            laneMinIn_[dst] = std::min(laneMinIn_[dst], w);
            aMsg_[dst] = std::min(aMsg_[dst],
                                  satAdd(w, r.otherDelay));
            if (r.dom != SendReach::noDomain && r.dom < n) {
                Tick &slot = sMsg_[dst * n + r.dom];
                if (slot == maxTick)
                    sMsgDirty_.push_back(static_cast<std::uint32_t>(
                        dst * n + r.dom));
                slot = std::min(slot, satAdd(w, r.selfDelay));
            }
        });

    // Earliest-future-delivery fixpoint. An item of j bounds not
    // only j's direct sends but also *reflected* chains: a message
    // it causes wakes domain k, whose own response (conservative:
    // immediate) re-enters the graph one more lookahead later. So
    // the earliest tick a message could ever be delivered into d is
    //
    //   P_d = min over used lanes (j, d) of
    //             la(j, d) + min(C_{j,d}, P_j)
    //
    // with C_{j,d} = min(A_j, S_j[d]) the concrete-item term.
    // Relaxing to the fixpoint is a positive-weight shortest path
    // (every hop adds la >= 1), so the sweep below terminates; on
    // the star topology the engine wires (CPU↔CPU lanes unused) it
    // stabilizes in a few iterations.
    std::fill(pIn_.begin(), pIn_.end(), maxTick);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t d = 0; d < n; ++d) {
            Tick best = maxTick;
            for (const auto &[j, la] : usedIn_[d]) {
                // Concrete-item term: queue-resident items (cached
                // rows) and in-flight messages (round scratch).
                const Tick cj =
                    std::min(std::min(aMin_[j], aMsg_[j]),
                             std::min(sMin_[j * n + d],
                                      sMsg_[j * n + d]));
                const Tick e = std::min(cj, pIn_[j]);
                if (e == maxTick)
                    continue;
                best = std::min(best, satAdd(e, la));
            }
            if (best < pIn_[d]) {
                pIn_[d] = best;
                changed = true;
            }
        }
    }

    // One pass: the plan, the quiescence verdict, the runnable
    // count, and the active list (who executes this round).
    quiescent_ = true;
    nRunnable_ = 0;
    active_.clear();
    for (std::size_t d = 0; d < n; ++d) {
        const Tick bound =
            pIn_[d] == maxTick ? maxTick : pIn_[d] - 1;
        plan_[d].runTo = bound;
        const Tick ready = std::min(nextEvt_[d], laneMinIn_[d]);
        const bool runnable = ready != maxTick && ready <= bound;
        plan_[d].runnable = runnable;
        if (ready != maxTick)
            quiescent_ = false;
        nRunnable_ += runnable ? 1 : 0;
        const DomainId id = static_cast<DomainId>(d);
        // laneMinIn_[d] != maxTick iff d has undelivered read-side
        // messages (every one of them fed the min above), so this is
        // the has-incoming test without touching the router's lanes.
        if (runnable || laneMinIn_[d] != maxTick)
            active_.push_back(id);
        router_.setDebugBound(id, bound);
    }
    router_.setDebugBoundsActive(true);
}

void
DomainScheduler::executeDomain(DomainId d)
{
    const auto t0 = std::chrono::steady_clock::now();
    router_.drainTo(d);
    if (plan_[d].runnable)
        queues_[d]->run(plan_[d].runTo);
    prof_[d].wallNs += nsSince(t0);
}

void
DomainScheduler::executeStripe(std::size_t party)
{
    // Stripe over the active list, not the full domain set: idle
    // domains cost nothing, and the stripes stay balanced however
    // the active domains are distributed across ids. Which party
    // runs a domain never affects what the domain does, so this is
    // invisible to simulated state.
    for (std::size_t i = party; i < active_.size(); i += parties_)
        executeDomain(active_[i]);
}

void
DomainScheduler::closure(std::uint64_t gen)
{
    for (;;) {
        if (exit_) {
            publish(Phase::Exit, gen);
            return;
        }
        sampleRound(); // previous round's dispatch delta
        if (stop_) {
            // Round-granularity stop: messages sent during the last
            // round stay on the write side; the next run()'s first
            // flip delivers them, so a resumed run continues exactly
            // where an uninterrupted one would be.
            publish(Phase::Done, gen);
            return;
        }
        router_.flipEpoch();
        computePlan();

        if (quiescent_) {
            publish(Phase::Done, gen);
            return;
        }

        ++rounds_;
        if (nRunnable_ <= 1)
            ++serialRounds_;
        roundOpen_ = true;

        // Round fusion: with no exploitable parallelism (or rounds
        // forced serial), run inline and recompute the next plan
        // without waking the pool — ping-pong phases cost a plan
        // computation, not a barrier crossing.
        if (parties_ == 1 || serial_ || nRunnable_ <= 1) {
            for (DomainId d : active_)
                executeDomain(d);
            continue;
        }
        publish(Phase::RunRound, gen);
        return;
    }
}

void
DomainScheduler::run()
{
    if (parties_ > 1 && pool_.empty())
        startPool();
    for (;;) {
        const Phase p = arrive(0);
        if (p == Phase::Done)
            return;
        assert(p == Phase::RunRound && "Exit published during run()");
    }
}

bool
DomainScheduler::idle()
{
    if (router_.anyPending())
        return false;
    for (EventQueue *q : queues_) {
        if (q->nextEventTick() != maxTick)
            return false;
    }
    return true;
}

std::uint64_t
DomainScheduler::domainWallNs(DomainId d) const
{
    assert(d < prof_.size());
    return prof_[d].wallNs;
}

std::uint64_t
DomainScheduler::barrierWaitNs() const
{
    std::uint64_t total = 0;
    for (const PartyProf &p : partyProf_)
        total += p.barrierNs;
    return total;
}

} // namespace sim
} // namespace varsim
