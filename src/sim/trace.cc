#include "sim/trace.hh"

#include <array>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace varsim
{
namespace sim
{
namespace trace
{

namespace
{

constexpr std::size_t numFlags =
    static_cast<std::size_t>(Flag::NumFlags);

const char *const flagNames[numFlags] = {
    "Cache", "Coherence", "Bus", "Dram", "Cpu", "Fetch", "Rob",
    "Sched", "Mutex", "Workload", "Txn", "Checkpoint", "Experiment",
};

struct FlagTable
{
    std::array<bool, numFlags> on{};

    FlagTable()
    {
        const char *env = std::getenv("VARSIM_DEBUG");
        if (env == nullptr)
            return;
        std::stringstream ss(env);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (item.empty())
                continue;
            bool found = false;
            for (std::size_t i = 0; i < numFlags; ++i) {
                if (item == flagNames[i] || item == "All") {
                    on[i] = true;
                    found = item != "All";
                    if (item == "All") {
                        for (auto &f : on)
                            f = true;
                        found = true;
                        break;
                    }
                }
            }
            if (!found)
                warn("unknown VARSIM_DEBUG flag '%s'", item.c_str());
        }
    }
};

const FlagTable &
table()
{
    static FlagTable t;
    return t;
}

/**
 * Per-host-thread run attribution. Thread-local (not per simulation)
 * because trace lines are emitted from whichever host thread is
 * driving the simulation, and one host thread drives exactly one run
 * at a time.
 */
thread_local std::string tlsRunId;
thread_local std::FILE *tlsSink = nullptr;

} // anonymous namespace

RunScope::RunScope(std::string id, std::FILE *sink)
    : prevId(std::move(tlsRunId)), prevSink(tlsSink)
{
    tlsRunId = std::move(id);
    if (sink != nullptr)
        tlsSink = sink;
}

RunScope::~RunScope()
{
    tlsRunId = std::move(prevId);
    tlsSink = prevSink;
}

const std::string &
RunScope::currentId()
{
    return tlsRunId;
}

std::FILE *
RunScope::currentSink()
{
    return tlsSink != nullptr ? tlsSink : stderr;
}

bool
enabled(Flag flag)
{
    return table().on[static_cast<std::size_t>(flag)];
}

void
print(Tick tick, const std::string &who, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::FILE *out = RunScope::currentSink();
    if (tlsRunId.empty()) {
        std::fprintf(out, "%12llu: %s: %s\n",
                     static_cast<unsigned long long>(tick),
                     who.c_str(), msg.c_str());
    } else {
        std::fprintf(out, "[%s] %12llu: %s: %s\n",
                     tlsRunId.c_str(),
                     static_cast<unsigned long long>(tick),
                     who.c_str(), msg.c_str());
    }
}

} // namespace trace
} // namespace sim
} // namespace varsim
