/**
 * @file
 * Status and error reporting, following the gem5 conventions:
 *
 *  - panic():  something happened that can never happen unless the
 *              simulator itself is broken. Aborts (may dump core).
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, invalid arguments). Exits with
 *              status 1.
 *  - warn():   functionality may not be modelled exactly; a good place
 *              to start looking if strange behaviour follows.
 *  - inform(): normal operational status for the user.
 *
 * All functions accept printf-style format strings.
 */

#ifndef VARSIM_SIM_LOGGING_HH
#define VARSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace varsim
{
namespace sim
{

/** Render a printf-style format into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** Render a printf-style format into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a condition that is modelled imprecisely. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal operational status. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort with a message if @p cond is false.  Unlike assert(), active in
 * all build types; use for invariants whose violation means a simulator
 * bug regardless of configuration.
 */
#define VARSIM_ASSERT(cond, ...)                                        \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::varsim::sim::panic("assertion '%s' failed at %s:%d: %s",  \
                                 #cond, __FILE__, __LINE__,             \
                                 ::varsim::sim::format(__VA_ARGS__)     \
                                     .c_str());                         \
        }                                                               \
    } while (0)

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_LOGGING_HH
