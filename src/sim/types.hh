/**
 * @file
 * Fundamental simulation types and time conversion helpers.
 *
 * The simulated target runs at a 1 GHz system clock (Section 3.2.1 of
 * Alameldeen & Wood, HPCA 2003), so one simulation tick equals one
 * nanosecond equals one system cycle. All latencies in the paper are
 * quoted in nanoseconds and map 1:1 onto ticks.
 */

#ifndef VARSIM_SIM_TYPES_HH
#define VARSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace varsim
{
namespace sim
{

/** Simulated time, in ticks. One tick == 1 ns == 1 cycle at 1 GHz. */
using Tick = std::uint64_t;

/** Signed tick difference. */
using TickDelta = std::int64_t;

/** A cycle count. Identical magnitude to Tick at a 1 GHz clock. */
using Cycle = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per nanosecond (the target clock is 1 GHz). */
constexpr Tick ticksPerNs = 1;

/** Convert a nanosecond count into ticks. */
constexpr Tick
nsToTicks(std::uint64_t ns)
{
    return ns * ticksPerNs;
}

/** Convert microseconds into ticks. */
constexpr Tick
usToTicks(std::uint64_t us)
{
    return nsToTicks(us * 1000);
}

/** Convert milliseconds into ticks. */
constexpr Tick
msToTicks(std::uint64_t ms)
{
    return usToTicks(ms * 1000);
}

/** Convert ticks back to (whole) nanoseconds. */
constexpr std::uint64_t
ticksToNs(Tick t)
{
    return t / ticksPerNs;
}

/** A physical memory address in the simulated target. */
using Addr = std::uint64_t;

/** Sentinel invalid address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Identifier of a processor/node in the target system. */
using CpuId = std::int32_t;

/** Sentinel for "no cpu". */
constexpr CpuId invalidCpuId = -1;

/** Identifier of a software thread managed by the simulated OS. */
using ThreadId = std::int32_t;

/** Sentinel for "no thread". */
constexpr ThreadId invalidThreadId = -1;

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_TYPES_HH
