/**
 * @file
 * Deterministic, serializable pseudo-random number generation.
 *
 * Two generators are provided:
 *
 *  - SplitMix64: used to expand a single user seed into independent
 *    stream seeds (per-thread workload streams, the perturbation
 *    stream, ...).
 *  - Xoshiro256StarStar: the work-horse generator. 256 bits of state,
 *    serializable, fully deterministic across platforms.
 *
 * Determinism matters here more than statistical extremity: the paper's
 * methodology (Section 3.3) relies on the simulator being bit-exactly
 * repeatable for a given seed, with the *only* randomness being the
 * memory-latency perturbation stream.
 */

#ifndef VARSIM_SIM_RANDOM_HH
#define VARSIM_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

namespace varsim
{
namespace sim
{

class CheckpointIn;
class CheckpointOut;

/**
 * SplitMix64 sequence generator; primarily used for seeding other
 * generators from a single root seed.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** generator. Deterministic across platforms and
 * serializable into checkpoints.
 */
class Random
{
  public:
    /** Construct from a root seed (expanded through SplitMix64). */
    explicit Random(std::uint64_t seed = 0);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Uniform integer in the inclusive range [lo, hi].
     * Uses rejection sampling, so it is exactly uniform.
     */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Uniform real in [0, 1). 53-bit resolution. */
    double uniformReal();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (no cached spare: stateless). */
    double normal(double mean, double sigma);

    /** Re-seed, discarding current state. */
    void seed(std::uint64_t seed);

    /** Serialize generator state into a checkpoint. */
    void serialize(CheckpointOut &cp) const;

    /** Restore generator state from a checkpoint. */
    void unserialize(CheckpointIn &cp);

    /** Equality: same internal state (useful in tests). */
    bool operator==(const Random &other) const = default;

  private:
    std::uint64_t s[4];
};

/**
 * Zipf-distributed sampler over {0, ..., n-1} with skew parameter
 * alpha, using a precomputed CDF and binary search. The CDF is derived
 * from (n, alpha) at construction, so only the underlying generator's
 * state needs checkpointing.
 *
 * Commercial-workload record popularity is famously Zipfian; the
 * resulting hot records create the lock and coherence contention that
 * drives space variability.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double alpha);

    /** Draw one sample in [0, n) using @p rng. */
    std::size_t sample(Random &rng) const;

    /** Number of categories. */
    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;

    /**
     * Bucketized first-probe index: hint[b] is the lower_bound of
     * b / kHintBuckets in @ref cdf, so a draw only searches the
     * (usually tiny) subrange between two adjacent hints instead of
     * the whole CDF. Pure lookup acceleration — the mapping from a
     * uniform draw to a rank is identical to a full binary search,
     * so op streams (and every golden pinned to them) are unchanged.
     */
    static constexpr std::size_t kHintBuckets = 4096;
    std::vector<std::uint32_t> hint;
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_RANDOM_HH
