/**
 * @file
 * Binary checkpoint serialization.
 *
 * The paper relies on the Simics checkpointing facility to start
 * multiple simulation runs from identical initial conditions
 * (Section 3.2.2): space-variability experiments restore one
 * checkpoint many times with different perturbation seeds, and
 * time-variability experiments record checkpoints at several points in
 * a workload's lifetime (Figure 9). This module provides the
 * equivalent facility: a simple, deterministic, tagged binary archive.
 *
 * Every value written is prefixed (in debug builds of the archive
 * itself, always) with a one-byte type tag, so mismatched
 * serialize/unserialize code fails loudly instead of silently
 * misinterpreting bytes.
 */

#ifndef VARSIM_SIM_SERIALIZE_HH
#define VARSIM_SIM_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace varsim
{
namespace sim
{

/** Output archive: values are appended to an in-memory byte buffer. */
class CheckpointOut
{
  public:
    CheckpointOut() = default;

    /** Write a trivially copyable scalar value. */
    template <typename T>
    void
    put(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "CheckpointOut::put requires a trivially "
                      "copyable type");
        putTag(sizeof(T));
        const auto *p = reinterpret_cast<const std::uint8_t *>(&value);
        buffer.insert(buffer.end(), p, p + sizeof(T));
    }

    /** Write a string (length-prefixed). */
    void
    put(const std::string &value)
    {
        putTag(0xff);
        put<std::uint64_t>(value.size());
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(value.data());
        buffer.insert(buffer.end(), p, p + value.size());
    }

    /** Write a vector of trivially copyable elements. */
    template <typename T>
    void
    put(const std::vector<T> &values)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "vector element must be trivially copyable");
        putTag(0xfe);
        put<std::uint64_t>(values.size());
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(values.data());
        buffer.insert(buffer.end(), p, p + values.size() * sizeof(T));
    }

    /** Write a deque of trivially copyable elements. */
    template <typename T>
    void
    put(const std::deque<T> &values)
    {
        std::vector<T> tmp(values.begin(), values.end());
        put(tmp);
    }

    /** Access the raw serialized bytes. */
    const std::vector<std::uint8_t> &bytes() const { return buffer; }

    /** Current size in bytes. */
    std::size_t size() const { return buffer.size(); }

  private:
    void put(const char *) = delete; // force std::string

    void
    putTag(std::uint8_t tag)
    {
        buffer.push_back(tag);
    }

    std::vector<std::uint8_t> buffer;
};

/** Input archive reading back what a CheckpointOut produced. */
class CheckpointIn
{
  public:
    explicit CheckpointIn(std::vector<std::uint8_t> data)
        : buffer(std::move(data))
    {}

    /** Read a trivially copyable scalar value. */
    template <typename T>
    void
    get(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "CheckpointIn::get requires a trivially "
                      "copyable type");
        checkTag(sizeof(T));
        need(sizeof(T));
        std::memcpy(&value, buffer.data() + pos, sizeof(T));
        pos += sizeof(T);
    }

    /** Read a string. */
    void
    get(std::string &value)
    {
        checkTag(0xff);
        std::uint64_t n = 0;
        get(n);
        need(n);
        value.assign(reinterpret_cast<const char *>(buffer.data() + pos),
                     n);
        pos += n;
    }

    /** Read a vector of trivially copyable elements. */
    template <typename T>
    void
    get(std::vector<T> &values)
    {
        checkTag(0xfe);
        std::uint64_t n = 0;
        get(n);
        // Divide rather than multiply: a corrupted length prefix must
        // not overflow n * sizeof(T) into a small in-bounds value.
        if (n > (buffer.size() - pos) / sizeof(T)) {
            panic("checkpoint underrun: need %llu elements of %zu "
                  "bytes at offset %zu, have %zu bytes total",
                  static_cast<unsigned long long>(n), sizeof(T), pos,
                  buffer.size());
        }
        values.resize(n);
        // n == 0 leaves values.data() null; memcpy's arguments are
        // declared nonnull even for zero lengths.
        if (n > 0) {
            std::memcpy(values.data(), buffer.data() + pos,
                        n * sizeof(T));
        }
        pos += n * sizeof(T);
    }

    /** Read a deque of trivially copyable elements. */
    template <typename T>
    void
    get(std::deque<T> &values)
    {
        std::vector<T> tmp;
        get(tmp);
        values.assign(tmp.begin(), tmp.end());
    }

    /** True once all bytes have been consumed. */
    bool exhausted() const { return pos == buffer.size(); }

  private:
    void
    checkTag(std::uint8_t expected)
    {
        need(1);
        std::uint8_t tag = buffer[pos++];
        if (tag != expected) {
            panic("checkpoint type mismatch at offset %zu: "
                  "expected tag %u, found %u",
                  pos - 1, unsigned(expected), unsigned(tag));
        }
    }

    void
    need(std::uint64_t n)
    {
        // pos <= buffer.size() always; compare against the remainder
        // so a huge corrupted n cannot wrap pos + n around zero.
        if (n > buffer.size() - pos) {
            panic("checkpoint underrun: need %llu bytes at offset "
                  "%zu, have %zu total",
                  static_cast<unsigned long long>(n), pos,
                  buffer.size());
        }
    }

    std::vector<std::uint8_t> buffer;
    std::size_t pos = 0;
};

/**
 * Interface for objects that participate in checkpointing.
 *
 * Checkpoints are only taken with the system *drained* (no in-flight
 * memory transactions, no pending events other than re-armable
 * housekeeping timers), so implementations serialize architectural
 * state only.
 */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Write this object's state into @p cp. */
    virtual void serialize(CheckpointOut &cp) const = 0;

    /** Restore this object's state from @p cp. */
    virtual void unserialize(CheckpointIn &cp) = 0;
};

} // namespace sim
} // namespace varsim

#endif // VARSIM_SIM_SERIALIZE_HH
