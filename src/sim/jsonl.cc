#include "sim/jsonl.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace varsim
{
namespace sim
{

namespace
{

/** Skip spaces/tabs; newlines never occur inside a line. */
void
skipWs(const std::string &s, std::size_t &i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
        ++i;
}

/**
 * Parse a quoted string starting at s[i] == '"'; leaves i one past
 * the closing quote. Returns false on damage.
 */
bool
parseString(const std::string &s, std::size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < s.size()) {
        const char c = s[i++];
        if (c == '"')
            return true;
        if (c == '\\') {
            if (i >= s.size())
                return false;
            const char e = s[i++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              default: return false; // \uXXXX etc.: never emitted
            }
        } else {
            out += c;
        }
    }
    return false; // unterminated: torn line
}

/** Parse a bare number token (anything strtod accepts). */
bool
parseNumber(const std::string &s, std::size_t &i, std::string &out)
{
    const std::size_t start = i;
    // Accept digit/sign/exponent characters plus inf/nan letters;
    // strtod below re-validates the whole token.
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == 'i' ||
            s[i] == 'n' || s[i] == 'f' || s[i] == 'a'))
        ++i;
    out = s.substr(start, i - start);
    if (out.empty())
        return false;
    char *end = nullptr;
    std::strtod(out.c_str(), &end);
    return end == out.c_str() + out.size();
}

} // anonymous namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

bool
JsonLine::parse(const std::string &line)
{
    scalars.clear();
    arrays.clear();
    std::size_t i = 0;
    skipWs(line, i);
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skipWs(line, i);
    if (i < line.size() && line[i] == '}')
        return true; // empty object
    while (true) {
        skipWs(line, i);
        std::string key;
        if (!parseString(line, i, key))
            return false;
        skipWs(line, i);
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipWs(line, i);
        if (i >= line.size())
            return false;
        if (line[i] == '"') {
            std::string value;
            if (!parseString(line, i, value))
                return false;
            scalars[key] = value;
        } else if (line[i] == '[') {
            ++i;
            std::vector<std::string> items;
            skipWs(line, i);
            if (i < line.size() && line[i] == ']') {
                ++i;
            } else {
                while (true) {
                    skipWs(line, i);
                    std::string item;
                    if (i < line.size() && line[i] == '"') {
                        if (!parseString(line, i, item))
                            return false;
                    } else if (!parseNumber(line, i, item)) {
                        return false;
                    }
                    items.push_back(item);
                    skipWs(line, i);
                    if (i >= line.size())
                        return false;
                    if (line[i] == ',') {
                        ++i;
                        continue;
                    }
                    if (line[i] == ']') {
                        ++i;
                        break;
                    }
                    return false;
                }
            }
            arrays[key] = items;
        } else {
            std::string value;
            if (!parseNumber(line, i, value))
                return false;
            scalars[key] = value;
        }
        skipWs(line, i);
        if (i >= line.size())
            return false;
        if (line[i] == ',') {
            ++i;
            continue;
        }
        if (line[i] == '}')
            return true;
        return false;
    }
}

bool
JsonLine::has(const std::string &key) const
{
    return scalars.count(key) > 0 || arrays.count(key) > 0;
}

std::string
JsonLine::str(const std::string &key, const std::string &dflt) const
{
    auto it = scalars.find(key);
    return it != scalars.end() ? it->second : dflt;
}

std::uint64_t
JsonLine::num(const std::string &key, std::uint64_t dflt) const
{
    auto it = scalars.find(key);
    if (it == scalars.end())
        return dflt;
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

double
JsonLine::real(const std::string &key, double dflt) const
{
    auto it = scalars.find(key);
    if (it == scalars.end())
        return dflt;
    return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string>
JsonLine::list(const std::string &key) const
{
    auto it = arrays.find(key);
    return it != arrays.end() ? it->second
                              : std::vector<std::string>{};
}

std::vector<std::pair<std::string, double>>
JsonLine::realsWithPrefix(const std::string &prefix) const
{
    std::vector<std::pair<std::string, double>> out;
    for (auto it = scalars.lower_bound(prefix);
         it != scalars.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        char *end = nullptr;
        const double v = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0')
            continue; // quoted string under the prefix: not a metric
        out.emplace_back(it->first.substr(prefix.size()), v);
    }
    return out;
}

void
JsonWriter::sep()
{
    if (body.size() > 1)
        body += ',';
}

JsonWriter &
JsonWriter::field(const std::string &key, const std::string &value)
{
    sep();
    body += '"' + jsonEscape(key) + "\":\"" + jsonEscape(value) +
            '"';
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, std::uint64_t value)
{
    sep();
    body += '"' + jsonEscape(key) +
            "\":" + std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key, double value)
{
    // %.17g round-trips IEEE754 doubles exactly: replayed metrics
    // are bit-identical to the ones the simulator produced.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    sep();
    body += '"' + jsonEscape(key) + "\":" + buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &key,
                  const std::vector<std::string> &values)
{
    sep();
    body += '"' + jsonEscape(key) + "\":[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            body += ',';
        body += '"' + jsonEscape(values[i]) + '"';
    }
    body += ']';
    return *this;
}

} // namespace sim
} // namespace varsim
