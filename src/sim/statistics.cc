#include "sim/statistics.hh"

#include <algorithm>
#include <cmath>

#include "sim/jsonl.hh"
#include "sim/logging.hh"

namespace varsim
{
namespace sim
{
namespace statistics
{

void
Distribution::sample(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
Distribution::stddev() const
{
    if (n < 2)
        return 0.0;
    return std::sqrt(m2 / static_cast<double>(n - 1));
}

namespace
{

const char *const distSuffixes[] = {".count", ".mean", ".stddev",
                                    ".min", ".max"};

} // anonymous namespace

void
Registry::claimName(const std::string &name)
{
    VARSIM_ASSERT(!name.empty(), "statistic with an empty name");
    VARSIM_ASSERT(names.insert(name).second,
                  "duplicate statistic name '%s'", name.c_str());
}

void
Registry::regScalar(const std::string &name, const std::uint64_t *v,
                    std::string desc)
{
    VARSIM_ASSERT(v != nullptr, "null counter for statistic '%s'",
                  name.c_str());
    claimName(name);
    Entry e;
    e.name = name;
    e.desc = std::move(desc);
    e.kind = Kind::Scalar;
    e.scalar = v;
    entries.push_back(std::move(e));
}

void
Registry::regFormula(const std::string &name,
                     std::function<double()> fn, std::string desc)
{
    VARSIM_ASSERT(fn != nullptr, "null formula for statistic '%s'",
                  name.c_str());
    claimName(name);
    Entry e;
    e.name = name;
    e.desc = std::move(desc);
    e.kind = Kind::Formula;
    e.fn = std::move(fn);
    entries.push_back(std::move(e));
}

void
Registry::regHostFormula(const std::string &name,
                         std::function<double()> fn, std::string desc)
{
    VARSIM_ASSERT(fn != nullptr, "null formula for statistic '%s'",
                  name.c_str());
    claimName(name);
    Entry e;
    e.name = name;
    e.desc = std::move(desc);
    e.kind = Kind::Formula;
    e.host = true;
    e.fn = std::move(fn);
    entries.push_back(std::move(e));
}

void
Registry::regDistribution(const std::string &name,
                          const Distribution *d, std::string desc)
{
    VARSIM_ASSERT(d != nullptr,
                  "null distribution for statistic '%s'",
                  name.c_str());
    // Claim the expanded names too: a later scalar "<name>.mean"
    // would silently shadow this distribution's in the dump.
    claimName(name);
    for (const char *suffix : distSuffixes)
        claimName(name + suffix);
    Entry e;
    e.name = name;
    e.desc = std::move(desc);
    e.kind = Kind::Dist;
    e.dist = d;
    entries.push_back(std::move(e));
}

std::vector<std::string>
Registry::statNames() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries) {
        if (e.kind == Kind::Dist) {
            for (const char *suffix : distSuffixes)
                out.push_back(e.name + suffix);
        } else {
            out.push_back(e.name);
        }
    }
    return out;
}

std::string
Registry::description(const std::string &name) const
{
    for (const Entry &e : entries)
        if (e.name == name)
            return e.desc;
    return "";
}

StatDump
Registry::dump(bool includeHost) const
{
    StatDump out;
    out.reserve(entries.size());
    for (const Entry &e : entries) {
        if (e.host && !includeHost)
            continue;
        switch (e.kind) {
          case Kind::Scalar:
            out.push_back({e.name,
                           static_cast<double>(*e.scalar)});
            break;
          case Kind::Formula:
            out.push_back({e.name, e.fn()});
            break;
          case Kind::Dist:
            out.push_back({e.name + ".count",
                           static_cast<double>(e.dist->count())});
            out.push_back({e.name + ".mean", e.dist->mean()});
            out.push_back({e.name + ".stddev", e.dist->stddev()});
            out.push_back({e.name + ".min", e.dist->min()});
            out.push_back({e.name + ".max", e.dist->max()});
            break;
        }
    }
    return out;
}

std::string
toJsonl(const StatDump &dump)
{
    JsonWriter w;
    for (const StatValue &sv : dump)
        w.field(sv.name, sv.value);
    return w.str();
}

} // namespace statistics
} // namespace sim
} // namespace varsim
