#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace varsim
{
namespace sim
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

namespace
{

void
emit(const char *tag, const char *fmt, std::va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

} // namespace sim
} // namespace varsim
