#include "mem/dram.hh"

#include <algorithm>

namespace varsim
{
namespace mem
{

DramModel::DramModel(const MemConfig &config)
    : cfg(config), nextFree(config.numNodes, 0)
{}

int
DramModel::homeNode(sim::Addr block_addr) const
{
    return static_cast<int>((block_addr / cfg.blockBytes) %
                            cfg.numNodes);
}

sim::Tick
DramModel::schedule(sim::Addr block_addr, sim::Tick now)
{
    auto home = static_cast<std::size_t>(homeNode(block_addr));
    const sim::Tick start = std::max(now, nextFree[home]);
    nextFree[home] = start + cfg.dramOccupancy;
    ++numAccesses;
    return start + cfg.dramLatency;
}

void
DramModel::serialize(sim::CheckpointOut &cp) const
{
    cp.put(nextFree);
    cp.put(numAccesses);
}

void
DramModel::unserialize(sim::CheckpointIn &cp)
{
    cp.get(nextFree);
    cp.get(numAccesses);
}

} // namespace mem
} // namespace varsim
