#include "mem/l1_cache.hh"

#include "mem/l2_controller.hh"
#include "sim/statistics.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace mem
{

L1Cache::L1Cache(std::string name, sim::EventQueue &eq,
                 const MemConfig &config, L2Controller &l2_ref,
                 bool is_icache)
    : SimObject(std::move(name), eq), cfg(config), l2(l2_ref),
      isICache(is_icache),
      array(config.l1Size, config.l1Assoc, config.blockBytes)
{}

L1Cache::MshrEntry *
L1Cache::findMshr(sim::Addr block_addr)
{
    for (MshrEntry &entry : mshr)
        if (entry.addr == block_addr)
            return &entry;
    return nullptr;
}

void
L1Cache::eraseMshr(std::size_t index)
{
    std::vector<MemRequest> reqs = std::move(mshr[index].reqs);
    if (reqs.capacity() != 0) {
        reqs.clear();
        reqPool.push_back(std::move(reqs));
    }
    if (index != mshr.size() - 1)
        mshr[index] = std::move(mshr.back());
    mshr.pop_back();
}

bool
L1Cache::tryAccess(sim::Addr addr, bool write)
{
    VARSIM_ASSERT(!(isICache && write), "store to the icache");
    CacheLine *line = array.findAndTouch(array.blockAlign(addr));
    if (line == nullptr)
        return false;
    if (write && line->state != LineState::Modified)
        return false;
    ++numHits;
    return true;
}

void
L1Cache::access(const MemRequest &req)
{
    ++numMisses;
    const sim::Addr block = array.blockAlign(req.addr);
    MshrEntry *entry = findMshr(block);
    if (entry == nullptr) {
        mshr.emplace_back();
        MshrEntry &fresh = mshr.back();
        fresh.addr = block;
        if (!reqPool.empty()) {
            fresh.reqs = std::move(reqPool.back());
            reqPool.pop_back();
        }
        fresh.reqs.push_back(req);
        DPRINTF(Cache, "miss blk=%#llx w=%d",
                static_cast<unsigned long long>(block),
                int(req.write));
        // An L2 hit responds synchronously, re-entering l2Response
        // and mutating mshr — `fresh` is dead past this call.
        forwardToL2(block, req.write);
        return;
    }
    // Merge into the outstanding miss. If this request needs write
    // permission and only a read was requested so far, escalate.
    bool hadWrite = false;
    for (const MemRequest &r : entry->reqs)
        hadWrite |= r.write;
    entry->reqs.push_back(req);
    if (req.write && !hadWrite)
        forwardToL2(block, true);
}

void
L1Cache::forwardToL2(sim::Addr block, bool write)
{
    if (router_ == nullptr) {
        l2.request(block, write, this);
        return;
    }
    // One conservative hop to the shared domain; the L2 runs the
    // request (and any synchronous hit response back through our
    // respond() mailbox path) from its own queue.
    //
    // Reach: executing this request can message *this* node
    // immediately (an L2 hit responds synchronously), but anything
    // it triggers toward other nodes first crosses the fabric — a
    // bus request waits the full network traversal before its snoop
    // broadcasts, a directory request waits the directory latency
    // before its home tile probes anyone. Declaring that delay lets
    // every other CPU domain run that far past this request while
    // it is in flight.
    const sim::Tick crossDelay =
        cfg.protocol == CoherenceProtocol::Snooping
            ? cfg.netTraversal
            : cfg.dirLatency;
    L2Controller *l2p = &l2;
    L1Cache *self = this;
    router_->send(dom_, sim::sharedDomain,
                  curTick() + router_->lookahead(),
                  sim::Event::defaultPri,
                  sim::SendReach{dom_, 0, crossDelay},
                  [l2p, block, write, self] {
                      l2p->request(block, write, self);
                  });
}

void
L1Cache::l2Response(sim::Addr block_addr, bool writable,
                    sim::Tick delay)
{
    CacheLine *line = array.find(block_addr);
    if (line == nullptr) {
        CacheLine victim;
        auto [fresh, hadVictim] = array.allocate(block_addr, victim);
        (void)hadVictim; // L1 evictions are silent: L2 is inclusive.
        line = fresh;
        line->state =
            writable ? LineState::Modified : LineState::Shared;
    } else {
        if (writable)
            line->state = LineState::Modified;
        array.touch(*line);
    }

    MshrEntry *entry = findMshr(block_addr);
    if (entry == nullptr)
        return; // back-to-back grants can outrun the waiters

    // Respond to every satisfied request and compact the rest in
    // place (stable, preserving arrival order) — no scratch vector.
    std::vector<MemRequest> &reqs = entry->reqs;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const MemRequest &r = reqs[i];
        if (!r.write || writable) {
            const std::uint64_t tag = r.tag;
            MemClient *client = client_;
            VARSIM_ASSERT(client != nullptr,
                          "%s has no client", name().c_str());
            callIn(
                delay, [client, tag] { client->memResponse(tag); },
                sim::Event::memoryResponsePri);
        } else {
            reqs[keep++] = reqs[i];
        }
    }
    if (keep == 0)
        eraseMshr(static_cast<std::size_t>(entry - mshr.data()));
    else
        reqs.resize(keep);
}

sim::Tick
L1Cache::warmAccess(sim::Addr addr, bool write)
{
    VARSIM_ASSERT(mshr.empty(),
                  "warm access on %s with %zu pending misses",
                  name().c_str(), mshr.size());
    if (tryAccess(addr, write))
        return 0;
    ++numMisses;
    const sim::Addr block = array.blockAlign(addr);
    const sim::Tick lat = l2.warmRequest(block, write, this);

    // Functional fill, mirroring l2Response(). The L2's warm path
    // may have victimized (and back-probed away) other L1 lines, but
    // never the block it just filled for us.
    CacheLine *line = array.find(block);
    if (line == nullptr) {
        CacheLine victim;
        auto [fresh, hadVictim] = array.allocate(block, victim);
        (void)hadVictim; // L1 evictions are silent: L2 is inclusive.
        line = fresh;
        line->state =
            write ? LineState::Modified : LineState::Shared;
    } else {
        if (write)
            line->state = LineState::Modified;
        array.touch(*line);
    }
    return lat;
}

void
L1Cache::backProbe(sim::Addr block_addr, bool invalidate)
{
    CacheLine *line = array.find(block_addr);
    if (line == nullptr)
        return;
    if (invalidate)
        array.invalidate(*line);
    else
        line->state = LineState::Shared;
}

void
L1Cache::drain()
{
    VARSIM_ASSERT(mshr.empty(),
                  "draining %s with %zu pending misses",
                  name().c_str(), mshr.size());
}

void
L1Cache::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(mshr.empty(), "checkpoint with pending L1 misses");
    array.serialize(cp);
    cp.put(numHits);
    cp.put(numMisses);
}

void
L1Cache::unserialize(sim::CheckpointIn &cp)
{
    array.unserialize(cp);
    cp.get(numHits);
    cp.get(numMisses);
}

void
L1Cache::regStats(sim::statistics::Registry &r)
{
    const std::string &n = name();
    r.regScalar(n + ".hits", &numHits);
    r.regScalar(n + ".misses", &numMisses);
    r.regFormula(n + ".miss_ratio", [this] {
        const double total =
            static_cast<double>(numHits + numMisses);
        return total > 0.0
                   ? static_cast<double>(numMisses) / total
                   : 0.0;
    });
}

} // namespace mem
} // namespace varsim
