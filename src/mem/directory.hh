/**
 * @file
 * Directory-based MOSI coherence (SGI-Origin style): an alternative
 * CoherenceFabric to the broadcast snooping bus.
 *
 * Each block has a home node (block-address interleaved, as for
 * DRAM). The home's directory entry tracks the owner cache (if any)
 * and a sharer bitmask. Requests travel point-to-point to the home
 * (50 ns), are serialized there (the per-home order point), and data
 * comes either from memory (80 ns + 50 ns) or is forwarded to the
 * owner (3-hop: 50 + 25 + 50 ns). GetM additionally sends
 * invalidations to sharers; completion waits for data *and* the
 * invalidation acknowledgements.
 *
 * Conflicting in-flight transactions to the same block are NACKed
 * and retried (blocking-directory discipline), and the per-request
 * latency perturbation of the paper's Section 3.3 applies
 * identically, so the variability methodology is protocol-agnostic —
 * which `bench_ablation_protocol` demonstrates.
 *
 * The directory content is *derived* state (who caches what); it is
 * never checkpointed but rebuilt from the restored cache tags
 * (postRestore), which keeps it consistent even across cache-geometry
 * changes.
 */

#ifndef VARSIM_MEM_DIRECTORY_HH
#define VARSIM_MEM_DIRECTORY_HH

#include <vector>

#include "mem/addr_map.hh"
#include "mem/addr_set.hh"
#include "mem/dram.hh"
#include "mem/fabric.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/statistics.hh"

namespace varsim
{
namespace mem
{

class DirectoryFabric : public sim::SimObject,
                        public CoherenceFabric
{
  public:
    DirectoryFabric(std::string name, sim::EventQueue &eq,
                    const MemConfig &cfg,
                    sim::Random &perturb_rng);

    void addNode(L2Controller *l2) override;
    void sendRequest(const BusMsg &msg) override;

    MemStats &stats() override { return stats_; }
    const MemStats &stats() const override { return stats_; }

    bool
    blockBusy(sim::Addr block_addr) const override
    {
        return busy.contains(block_addr);
    }

    /** Directory entry introspection (tests). */
    int ownerOf(sim::Addr block_addr) const;
    std::uint64_t sharersOf(sim::Addr block_addr) const;

    bool warmTransition(int src, sim::Addr block,
                        bool writable) override;
    void warmEvict(int src, sim::Addr block) override;

    void drain() override;
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;
    void postRestore() override;
    void regStats(sim::statistics::Registry &r) override;

  private:
    struct Entry
    {
        int owner = -1;           ///< caching owner, -1 = memory
        std::uint64_t sharers = 0;///< bitmask of nodes with copies
    };

    void process(BusMsg msg);
    Entry &entry(sim::Addr block_addr);

    const MemConfig &cfg;
    sim::Random &pertRng;
    DramModel dram_;
    std::vector<L2Controller *> nodes;
    AddrMap<Entry> dir;
    AddrSet busy;
    std::vector<sim::Tick> homeNextFree;
    MemStats stats_;
    sim::statistics::Distribution queueDelayDist;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_DIRECTORY_HH
