/**
 * @file
 * The coherence-fabric interface: what an L2 controller needs from
 * the interconnect + protocol engine, independent of whether
 * coherence is kept by broadcast snooping (the paper's E10000-like
 * target) or by a home-node directory (SGI-Origin style).
 *
 * The Multifacet simulator the paper builds on "supports a broad
 * range of coherence protocols, specified using a table-driven
 * specification methodology" (Section 3.2.3); varsim mirrors that by
 * making the protocol a pluggable fabric (MemConfig::protocol) with
 * identical controller-side semantics:
 *
 *  - sendRequest() enqueues a GetS/GetM/PutM;
 *  - the source controller later receives exactly one of
 *    handleNack() (conflicting in-flight transaction; retry) or
 *    fillArrived() (data/permission granted);
 *  - protocol state transitions on other nodes happen atomically at
 *    the fabric's per-block order point via handleRemoteSnoop().
 */

#ifndef VARSIM_MEM_FABRIC_HH
#define VARSIM_MEM_FABRIC_HH

#include "mem/config.hh"
#include "sim/serialize.hh"

namespace varsim
{
namespace mem
{

class L2Controller;

/** Coherence request types carried by any fabric. */
enum class BusCmd : std::uint8_t
{
    GetS, ///< request a readable copy
    GetM, ///< request an exclusive writable copy
    PutM, ///< writeback of a dirty (M/O) block to memory
};

/** One coherence message. */
struct BusMsg
{
    BusCmd cmd = BusCmd::GetS;
    sim::Addr blockAddr = 0;
    int srcNode = -1;
};

/**
 * Abstract protocol engine + interconnect.
 */
class CoherenceFabric
{
  public:
    virtual ~CoherenceFabric() = default;

    /** Register a node's L2 controller. Order defines node ids. */
    virtual void addNode(L2Controller *l2) = 0;

    /** Enqueue a coherence request (see class comment). */
    virtual void sendRequest(const BusMsg &msg) = 0;

    /** Statistics counters owned by the fabric. */
    virtual MemStats &stats() = 0;
    virtual const MemStats &stats() const = 0;

    /** True if a transaction is in flight for @p block_addr. */
    virtual bool blockBusy(sim::Addr block_addr) const = 0;

    /** Assert quiescence before a checkpoint. */
    virtual void drain() = 0;

    /** Checkpoint the fabric's own state. */
    virtual void serialize(sim::CheckpointOut &cp) const = 0;
    virtual void unserialize(sim::CheckpointIn &cp) = 0;

    /**
     * Re-derive any cache-dependent fabric state after the caches
     * have been restored (e.g. the directory's sharer sets).
     * Called by MemSystem at the end of unserialize().
     */
    virtual void postRestore() {}

    // ---- functional warming (sampling fast mode) ----

    /**
     * Apply the MOSI state transitions of a GetS/GetM from @p src for
     * @p block synchronously, with no timing, no events, no NACKs and
     * no perturbation draw: remote copies are invalidated (GetM) or
     * the remote owner downgraded (GetS) immediately, and any
     * protocol-level bookkeeping (the directory's owner/sharer entry)
     * is updated to stay consistent with the cache tags.
     *
     * Only legal while the fabric is quiescent (no in-flight
     * transactions): the sampling controller guarantees this by
     * draining before it switches the CPUs into fast mode.
     *
     * @return true if a remote owner cache supplied the data
     *         (cache-to-cache transfer), false if memory did (or the
     *         requestor already owned it).
     */
    virtual bool warmTransition(int src, sim::Addr block,
                                bool writable) = 0;

    /**
     * Functional counterpart of a PutM: @p src evicted an owned
     * (M/O) copy of @p block during fast mode. Keeps the writeback
     * counter and any owner bookkeeping consistent.
     */
    virtual void warmEvict(int src, sim::Addr block) = 0;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_FABRIC_HH
