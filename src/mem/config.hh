/**
 * @file
 * Memory-system configuration, defaulted to the paper's target
 * (Section 3.2.1): a 16-node Sun E10000-like SMP. Each node has split
 * 128 KB 4-way L1s and a unified 4 MB 4-way L2 with 64-byte blocks;
 * nodes are connected by a two-level crossbar hierarchy with a 50 ns
 * traversal; DRAM access time is 80 ns; a processor supplies snooped
 * data after 25 ns. Resulting latencies: 180 ns memory fetch, 125 ns
 * cache-to-cache transfer, at a 1 GHz system clock.
 */

#ifndef VARSIM_MEM_CONFIG_HH
#define VARSIM_MEM_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace varsim
{
namespace mem
{

/** Which coherence protocol/fabric keeps the caches coherent. */
enum class CoherenceProtocol : std::uint8_t
{
    /** MOSI broadcast snooping on an ordered bus (the paper's
     *  E10000-like target, Section 3.2.1). */
    Snooping,
    /** MOSI home-node directory with point-to-point forwarding
     *  (SGI-Origin style; the Multifacet infrastructure supported
     *  multiple protocols, Section 3.2.3). */
    Directory,
};

struct MemConfig
{
    /** Coherence protocol (see CoherenceProtocol). */
    CoherenceProtocol protocol = CoherenceProtocol::Snooping;

    /** Number of processor/cache/memory nodes. */
    std::size_t numNodes = 16;

    /** Cache line size in bytes (all levels). */
    std::size_t blockBytes = 64;

    /** Per-L1 (instruction or data) capacity in bytes. */
    std::size_t l1Size = 128 * 1024;

    /** L1 associativity. */
    std::size_t l1Assoc = 4;

    /** Unified per-node L2 capacity in bytes. */
    std::size_t l2Size = 4 * 1024 * 1024;

    /** L2 associativity (Experiment 1 varies this: 1, 2, 4). */
    std::size_t l2Assoc = 4;

    /** L1 hit latency (part of the 1-cycle instruction at IPC 1). */
    sim::Tick l1HitLatency = 1;

    /** L1-miss/L2-hit round-trip latency. */
    sim::Tick l2HitLatency = 12;

    /** One interconnect traversal (wire + sync + routing). */
    sim::Tick netTraversal = 50;

    /** Snoop-to-data delay when a processor supplies the block. */
    sim::Tick ownerLatency = 25;

    /** DRAM access time. */
    sim::Tick dramLatency = 80;

    /** Minimum spacing between requests serviced by one controller. */
    sim::Tick dramOccupancy = 16;

    /** Address-network ordering bandwidth: one request per this. */
    sim::Tick busOccupancy = 4;

    /** Delay before a NACKed request is reissued. */
    sim::Tick retryDelay = 24;

    /** Latency to complete an upgrade when the data is already local. */
    sim::Tick upgradeLatency = 8;

    /** Directory-fabric: per-home request processing spacing. */
    sim::Tick dirOccupancy = 8;

    /** Directory-fabric: directory lookup/processing latency. */
    sim::Tick dirLatency = 12;

    /**
     * Next-line L2 prefetcher: on a demand fill of block N, fetch
     * block N+1 in Shared state if absent. Off by default (the
     * paper's target has no prefetcher); an ablation knob.
     */
    bool l2NextLinePrefetch = false;

    /**
     * Maximum injected perturbation, inclusive (Section 3.3): each
     * ordered coherence request's completion is delayed by a uniform
     * pseudo-random integer number of ns in [0, perturbMaxNs]. Zero
     * disables the perturbation entirely (fully deterministic run).
     */
    sim::Tick perturbMaxNs = 4;
};

/** Aggregate memory-system statistics for one run. */
struct MemStats
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;       ///< ordered GetS/GetM requests
    std::uint64_t cacheToCache = 0;   ///< fills supplied by a peer L2
    std::uint64_t memoryFetches = 0;  ///< fills supplied by DRAM
    std::uint64_t upgrades = 0;       ///< GetM with data already local
    std::uint64_t nacks = 0;          ///< requests retried (busy block)
    std::uint64_t writebacks = 0;     ///< dirty evictions
    std::uint64_t prefetches = 0;  ///< prefetch requests issued
    std::uint64_t busTransactions = 0;
    sim::Tick busQueueDelay = 0;      ///< cumulative ordering delay
    sim::Tick perturbationTotal = 0;  ///< cumulative injected delay

    /** L1 miss ratio over all L1 accesses. */
    double
    l1MissRatio() const
    {
        const double total =
            static_cast<double>(l1Hits + l1Misses);
        return total > 0.0 ? static_cast<double>(l1Misses) / total
                           : 0.0;
    }

    /** L2 miss ratio over all L2 lookups. */
    double
    l2MissRatio() const
    {
        const double total =
            static_cast<double>(l2Hits + l2Misses);
        return total > 0.0 ? static_cast<double>(l2Misses) / total
                           : 0.0;
    }
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_CONFIG_HH
