#include "mem/mem_system.hh"

#include "sim/logging.hh"
#include "sim/statistics.hh"

namespace varsim
{
namespace mem
{

MemSystem::MemSystem(std::string name, sim::EventQueue &eq,
                     MemConfig config,
                     const std::vector<sim::EventQueue *> *l1_queues)
    : SimObject(std::move(name), eq), cfg(config), pertRng(0)
{
    VARSIM_ASSERT(cfg.numNodes >= 1, "need at least one node");
    VARSIM_ASSERT(l1_queues == nullptr ||
                      l1_queues->size() == cfg.numNodes,
                  "need one L1 domain queue per node");
    if (cfg.protocol == CoherenceProtocol::Snooping) {
        bus_ = std::make_unique<SnoopBus>(this->name() + ".bus", eq,
                                          cfg, pertRng);
        fabric_ = bus_.get();
    } else {
        VARSIM_ASSERT(cfg.numNodes <= 64,
                      "directory sharer bitmask holds 64 nodes");
        dir_ = std::make_unique<DirectoryFabric>(
            this->name() + ".dir", eq, cfg, pertRng);
        fabric_ = dir_.get();
    }
    for (std::size_t n = 0; n < cfg.numNodes; ++n) {
        auto nodeName = this->name() + sim::format(".node%zu", n);
        l2s.push_back(std::make_unique<L2Controller>(
            nodeName + ".l2", eq, cfg, *fabric_,
            static_cast<int>(n)));
        sim::EventQueue &l1q =
            l1_queues != nullptr ? *(*l1_queues)[n] : eq;
        icaches.push_back(std::make_unique<L1Cache>(
            nodeName + ".l1i", l1q, cfg, *l2s.back(), true));
        dcaches.push_back(std::make_unique<L1Cache>(
            nodeName + ".l1d", l1q, cfg, *l2s.back(), false));
        l2s.back()->setL1s(icaches.back().get(), dcaches.back().get());
        fabric_->addNode(l2s.back().get());
    }
}

void
MemSystem::bindDomains(sim::DomainRouter &router)
{
    for (std::size_t n = 0; n < cfg.numNodes; ++n) {
        const auto dom = static_cast<sim::DomainId>(1 + n);
        l2s[n]->setRouter(&router);
        icaches[n]->setDomain(&router, dom);
        dcaches[n]->setDomain(&router, dom);
    }
}

SnoopBus &
MemSystem::bus()
{
    VARSIM_ASSERT(bus_ != nullptr,
                  "bus() on a directory-protocol system");
    return *bus_;
}

DirectoryFabric &
MemSystem::directory()
{
    VARSIM_ASSERT(dir_ != nullptr,
                  "directory() on a snooping-protocol system");
    return *dir_;
}

std::size_t
MemSystem::pendingTransactions() const
{
    std::size_t pending = 0;
    for (const auto &l2 : l2s)
        pending += l2->pendingTransactions();
    for (const auto &c : icaches)
        pending += c->pendingMisses();
    for (const auto &c : dcaches)
        pending += c->pendingMisses();
    return pending;
}

MemStats
MemSystem::totalStats() const
{
    MemStats s = fabric_->stats();
    for (const auto &c : icaches) {
        s.l1Hits += c->hits();
        s.l1Misses += c->misses();
    }
    for (const auto &c : dcaches) {
        s.l1Hits += c->hits();
        s.l1Misses += c->misses();
    }
    for (const auto &l2 : l2s) {
        s.l2Hits += l2->hits();
        s.prefetches += l2->prefetches();
    }
    return s;
}

void
MemSystem::drain()
{
    fabric_->drain();
    for (const auto &l2 : l2s)
        l2->drain();
    for (const auto &c : icaches)
        c->drain();
    for (const auto &c : dcaches)
        c->drain();
}

void
MemSystem::serialize(sim::CheckpointOut &cp) const
{
    pertRng.serialize(cp);
    fabric_->serialize(cp);
    for (const auto &l2 : l2s)
        l2->serialize(cp);
    for (const auto &c : icaches)
        c->serialize(cp);
    for (const auto &c : dcaches)
        c->serialize(cp);
}

void
MemSystem::regStats(sim::statistics::Registry &r)
{
    if (bus_)
        bus_->regStats(r);
    else
        dir_->regStats(r);
    for (const auto &l2 : l2s)
        l2->regStats(r);
    for (const auto &c : icaches)
        c->regStats(r);
    for (const auto &c : dcaches)
        c->regStats(r);
    // System-wide ratios over the same aggregation the harness
    // reports (totalStats), evaluated only at dump time.
    r.regFormula(name() + ".l1_miss_ratio",
                 [this] { return totalStats().l1MissRatio(); },
                 "misses over all L1 accesses, all nodes");
    r.regFormula(name() + ".l2_miss_ratio",
                 [this] { return totalStats().l2MissRatio(); },
                 "misses over all L2 lookups, all nodes");
}

void
MemSystem::unserialize(sim::CheckpointIn &cp)
{
    pertRng.unserialize(cp);
    fabric_->unserialize(cp);
    for (const auto &l2 : l2s)
        l2->unserialize(cp);
    for (const auto &c : icaches)
        c->unserialize(cp);
    for (const auto &c : dcaches)
        c->unserialize(cp);
    fabric_->postRestore();
}

} // namespace mem
} // namespace varsim
