/**
 * @file
 * Wiring for the complete memory hierarchy of the target system: one
 * snooping bus/crossbar, and per node a split L1 pair plus a unified
 * L2 controller, with interleaved home-memory controllers.
 */

#ifndef VARSIM_MEM_MEM_SYSTEM_HH
#define VARSIM_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/config.hh"
#include "mem/directory.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_controller.hh"
#include "mem/snoop_bus.hh"
#include "sim/domains.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace varsim
{
namespace mem
{

class MemSystem : public sim::SimObject
{
  public:
    /**
     * @p eq hosts the coherence fabric, the L2s, and (by default)
     * the L1s. When @p l1_queues is non-null it supplies one queue
     * per node and each node's L1 pair lives on its CPU's domain
     * queue instead (the intra-run parallel engine); pair with
     * bindDomains() to route the L1↔L2 edges through mailboxes.
     */
    MemSystem(std::string name, sim::EventQueue &eq, MemConfig cfg,
              const std::vector<sim::EventQueue *> *l1_queues =
                  nullptr);

    /**
     * Route every L1↔L2 interaction through the domain router:
     * node n's L1 pair talks from domain 1+n, the L2s respond from
     * the shared domain. Call once, after construction.
     */
    void bindDomains(sim::DomainRouter &router);

    /** Configuration in effect (immutable after construction). */
    const MemConfig &config() const { return cfg; }

    L1Cache &icache(std::size_t node) { return *icaches.at(node); }
    L1Cache &dcache(std::size_t node) { return *dcaches.at(node); }
    L2Controller &l2(std::size_t node) { return *l2s.at(node); }

    /** The protocol engine (whichever protocol is configured). */
    CoherenceFabric &fabric() { return *fabric_; }

    /** The snooping bus (only valid when protocol == Snooping). */
    SnoopBus &bus();

    /** The directory (only valid when protocol == Directory). */
    DirectoryFabric &directory();

    /**
     * Seed the latency-perturbation stream for this run. Must be
     * called before simulation starts; each run of a
     * multiple-simulation experiment uses a unique seed
     * (Section 3.3).
     */
    void seedPerturbation(std::uint64_t seed) { pertRng.seed(seed); }

    /** Total in-flight transactions (0 when quiescent). */
    std::size_t pendingTransactions() const;

    /** Aggregate statistics across the bus and every cache. */
    MemStats totalStats() const;

    void drain() override;
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

    /** Registers the fabric, every cache, and aggregate ratios. */
    void regStats(sim::statistics::Registry &r) override;

  private:
    MemConfig cfg;
    sim::Random pertRng;
    std::unique_ptr<SnoopBus> bus_;
    std::unique_ptr<DirectoryFabric> dir_;
    CoherenceFabric *fabric_ = nullptr;
    std::vector<std::unique_ptr<L2Controller>> l2s;
    std::vector<std::unique_ptr<L1Cache>> icaches;
    std::vector<std::unique_ptr<L1Cache>> dcaches;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_MEM_SYSTEM_HH
