/**
 * @file
 * Wiring for the complete memory hierarchy of the target system: one
 * snooping bus/crossbar, and per node a split L1 pair plus a unified
 * L2 controller, with interleaved home-memory controllers.
 */

#ifndef VARSIM_MEM_MEM_SYSTEM_HH
#define VARSIM_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/config.hh"
#include "mem/directory.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_controller.hh"
#include "mem/snoop_bus.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace varsim
{
namespace mem
{

class MemSystem : public sim::SimObject
{
  public:
    MemSystem(std::string name, sim::EventQueue &eq, MemConfig cfg);

    /** Configuration in effect (immutable after construction). */
    const MemConfig &config() const { return cfg; }

    L1Cache &icache(std::size_t node) { return *icaches.at(node); }
    L1Cache &dcache(std::size_t node) { return *dcaches.at(node); }
    L2Controller &l2(std::size_t node) { return *l2s.at(node); }

    /** The protocol engine (whichever protocol is configured). */
    CoherenceFabric &fabric() { return *fabric_; }

    /** The snooping bus (only valid when protocol == Snooping). */
    SnoopBus &bus();

    /** The directory (only valid when protocol == Directory). */
    DirectoryFabric &directory();

    /**
     * Seed the latency-perturbation stream for this run. Must be
     * called before simulation starts; each run of a
     * multiple-simulation experiment uses a unique seed
     * (Section 3.3).
     */
    void seedPerturbation(std::uint64_t seed) { pertRng.seed(seed); }

    /** Total in-flight transactions (0 when quiescent). */
    std::size_t pendingTransactions() const;

    /** Aggregate statistics across the bus and every cache. */
    MemStats totalStats() const;

    void drain() override;
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

    /** Registers the fabric, every cache, and aggregate ratios. */
    void regStats(sim::statistics::Registry &r) override;

  private:
    MemConfig cfg;
    sim::Random pertRng;
    std::unique_ptr<SnoopBus> bus_;
    std::unique_ptr<DirectoryFabric> dir_;
    CoherenceFabric *fabric_ = nullptr;
    std::vector<std::unique_ptr<L2Controller>> l2s;
    std::vector<std::unique_ptr<L1Cache>> icaches;
    std::vector<std::unique_ptr<L1Cache>> dcaches;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_MEM_SYSTEM_HH
