/**
 * @file
 * Private split L1 cache (instruction or data side).
 *
 * The hot path is tryAccess(): a pure tag probe with no event-queue
 * traffic, so L1 hits cost the CPU model nothing beyond its own
 * cycle accounting. Misses take the slow path through an MSHR and
 * the node's L2 controller; responses come back through the owning
 * CPU's MemClient interface.
 *
 * L1 lines are either Shared (read-only) or Modified (writable); the
 * L2 keeps the node inclusive and back-probes the L1s when a remote
 * snoop or an L2 eviction removes or downgrades a block.
 */

#ifndef VARSIM_MEM_L1_CACHE_HH
#define VARSIM_MEM_L1_CACHE_HH

#include <vector>

#include "mem/cache_array.hh"
#include "mem/config.hh"
#include "mem/iface.hh"
#include "sim/domains.hh"
#include "sim/sim_object.hh"

namespace varsim
{
namespace mem
{

class L2Controller;

class L1Cache : public sim::SimObject
{
  public:
    L1Cache(std::string name, sim::EventQueue &eq,
            const MemConfig &cfg, L2Controller &l2, bool is_icache);

    /** The CPU that receives miss responses. */
    void setClient(MemClient *client) { client_ = client; }

    /**
     * Domained engine: this L1 lives in domain @p dom and reaches
     * the L2 (shared domain) through @p router rather than by
     * direct call. Unset (the default) keeps the legacy synchronous
     * path, bit-exact with the historical goldens.
     */
    void
    setDomain(sim::DomainRouter *router, sim::DomainId dom)
    {
        router_ = router;
        dom_ = dom;
    }

    /** This cache's domain (sharedDomain when not bound). */
    sim::DomainId domainId() const { return dom_; }

    /**
     * Fast path: probe for @p addr with the needed permission.
     * On a hit the LRU state updates and true returns; the access is
     * complete (hit latency is folded into the CPU's cycle
     * accounting). On a miss nothing changes and false returns; the
     * caller must follow up with access().
     */
    bool tryAccess(sim::Addr addr, bool write);

    /**
     * Slow path: start a miss for @p req. The response arrives via
     * MemClient::memResponse(req.tag) at data-available time.
     * Requests to the same block merge into one outstanding miss.
     */
    void access(const MemRequest &req);

    /**
     * L2: a previously requested block is now available. The L1 tag
     * array fills immediately (keeping back-probes coherent with the
     * L2's order-point decisions); CPU notifications are delivered
     * @p delay ticks later, modelling the L2-to-core transfer.
     */
    void l2Response(sim::Addr block_addr, bool writable,
                    sim::Tick delay);

    /**
     * L2: remove (@p invalidate=true) or downgrade to read-only
     * (@p invalidate=false) our copy of @p block_addr.
     */
    void backProbe(sim::Addr block_addr, bool invalidate);

    /**
     * Functional warming (sampling fast mode): complete the access
     * synchronously — tag probe, miss handling through
     * L2Controller::warmRequest(), functional L1 fill — with the
     * exact state updates of the timed path but no MSHR, no events
     * and no CPU notification. Only legal while this node is
     * quiescent (no outstanding misses).
     *
     * @return the fixed latency the CPU model should charge
     *         (0 for an L1 hit).
     */
    sim::Tick warmAccess(sim::Addr addr, bool write);

    /** Block-align an address using this cache's geometry. */
    sim::Addr blockAlign(sim::Addr a) const { return array.blockAlign(a); }

    /** Line size in bytes. */
    std::size_t blockSize() const { return array.blockSize(); }

    /** Outstanding misses (0 when quiescent). */
    std::size_t pendingMisses() const { return mshr.size(); }

    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }

    void drain() override;
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;
    void regStats(sim::statistics::Registry &r) override;

  private:
    /**
     * One outstanding miss: the block and the requests merged into
     * it. Entries live in a flat, unordered vector (an L1 has at
     * most a few misses in flight); erased entries return their
     * request-vector capacity to a pool so the miss path stops
     * allocating once warm.
     */
    struct MshrEntry
    {
        sim::Addr addr = sim::invalidAddr;
        std::vector<MemRequest> reqs;
    };

    MshrEntry *findMshr(sim::Addr block_addr);
    /** Swap-remove the entry at @p index, recycling its requests. */
    void eraseMshr(std::size_t index);
    /** L2 request: direct call (legacy) or mailbox hop (domained). */
    void forwardToL2(sim::Addr block, bool write);

    const MemConfig &cfg;
    L2Controller &l2;
    MemClient *client_ = nullptr;
    sim::DomainRouter *router_ = nullptr;
    sim::DomainId dom_ = sim::sharedDomain;
    bool isICache;
    CacheArray array;
    std::vector<MshrEntry> mshr;
    std::vector<std::vector<MemRequest>> reqPool;

    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_L1_CACHE_HH
