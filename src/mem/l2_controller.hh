/**
 * @file
 * Per-node unified L2 cache and coherence controller.
 *
 * Implements the node-side half of the MOSI invalidation snooping
 * protocol. Stable states live in the tag array; in-flight requests
 * live in transaction buffer entries (TBEs) that record which L1s
 * wait on the fill and whether write permission is needed. State
 * transitions driven by remote requests happen at the bus's global
 * order point (handleRemoteSnoop), which keeps every race
 * timing-dependent yet well defined — the paper's "timing-dependent
 * race conditions and lock contention events that cannot be captured
 * using a trace-driven methodology" (Section 3.2.3).
 */

#ifndef VARSIM_MEM_L2_CONTROLLER_HH
#define VARSIM_MEM_L2_CONTROLLER_HH

#include <utility>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/fabric.hh"
#include "sim/domains.hh"
#include "sim/sim_object.hh"

namespace varsim
{
namespace mem
{

class L1Cache;

/** L2 line aux bits: which local L1s hold a copy. */
enum L2AuxBits : std::uint8_t
{
    l2AuxL1ICopy = 1 << 0,
    l2AuxL1DCopy = 1 << 1,
};

class L2Controller : public sim::SimObject
{
  public:
    L2Controller(std::string name, sim::EventQueue &eq,
                 const MemConfig &cfg, CoherenceFabric &fabric,
                 int node_id);

    /** Wire up this node's L1s (for fills and back-probes). */
    void setL1s(L1Cache *icache, L1Cache *dcache);

    /**
     * Domained engine: deliver responses and back-probes to the L1s
     * through @p router (one conservative hop into each L1's CPU
     * domain) instead of by direct call.
     */
    void setRouter(sim::DomainRouter *router) { router_ = router; }

    /** This node's id on the bus. */
    int nodeId() const { return node; }

    /**
     * Request from a local L1: obtain @p block_addr with read
     * (needWritable=false) or write permission. The L1 receives
     * l2Response() when satisfied.
     */
    void request(sim::Addr block_addr, bool need_writable,
                 L1Cache *who);

    /** Bus: a remote node's request was ordered; apply transitions. */
    void handleRemoteSnoop(const BusMsg &msg);

    /**
     * Bus fast path: report this node's pre-transition stable state
     * for @p msg's block and, when @p remote, apply the snoop
     * transitions of handleRemoteSnoop() — all in a single tag walk
     * (the broadcast bus otherwise probes every node's tags twice
     * per ordered request: once to locate the owner, once to apply).
     */
    LineState snoopAndHandle(const BusMsg &msg, bool remote);

    /** Bus: our request collided with a busy block; retry later. */
    void handleNack(sim::Addr block_addr);

    /**
     * Bus: data (or upgrade permission) for our request arrives.
     * @param writable true for GetM completions.
     */
    void fillArrived(sim::Addr block_addr, bool writable);

    /** Stable coherence state of a block (Invalid if absent). */
    LineState snoopState(sim::Addr block_addr) const;

    // ---- functional warming (sampling fast mode) ----

    /**
     * Fast-mode request from a local L1: satisfy @p block_addr with
     * the needed permission synchronously — no TBE, no events, no
     * NACK/retry — while applying the exact MOSI transitions a timed
     * request would (via CoherenceFabric::warmTransition on a miss).
     * Only legal while this controller is quiescent (no TBEs).
     *
     * @return the fixed latency the CPU model should charge for the
     *         access (L2 hit, upgrade, cache-to-cache or memory).
     */
    sim::Tick warmRequest(sim::Addr block_addr, bool need_writable,
                          L1Cache *who);

    /**
     * Fabric: snoopAndHandle() for a warm transition — identical
     * state semantics, but back-probes of the local L1s are direct
     * synchronous calls (never router hops), which is race-free
     * because fast-mode intervals run domain rounds serially.
     */
    LineState warmSnoop(const BusMsg &msg, bool remote);

    /** Visit every valid L2 line (directory rebuild on restore). */
    template <typename Fn>
    void
    forEachValidLine(Fn &&fn) const
    {
        array.forEachValid(std::forward<Fn>(fn));
    }

    /** Number of in-flight TBEs (0 when quiescent). */
    std::size_t pendingTransactions() const { return tbes.size(); }

    /** Local hit counter (reads satisfied without the bus). */
    std::uint64_t hits() const { return numHits; }

    /** Requests that went to the bus. */
    std::uint64_t misses() const { return numMisses; }

    /** Dirty evictions. */
    std::uint64_t writebacks() const { return numWritebacks; }

    /** Retries after NACK. */
    std::uint64_t retries() const { return numRetries; }

    /** Next-line prefetches issued. */
    std::uint64_t prefetches() const { return numPrefetches; }

    void drain() override;
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;
    void regStats(sim::statistics::Registry &r) override;

  private:
    struct Waiter
    {
        L1Cache *l1;
        bool needWritable;
    };

    /**
     * In-flight transactions live in a flat, unordered vector: only
     * a handful are ever outstanding, lookups are by address (never
     * iterated in a semantically meaningful order), and swap-remove
     * erasure plus waiter-vector recycling keep the miss path free
     * of per-transaction allocation.
     */
    struct Tbe
    {
        sim::Addr addr = sim::invalidAddr;
        BusCmd issued;
        bool prefetch = false; ///< no waiters; dropped on NACK
        std::vector<Waiter> waiters;
    };

    Tbe *findTbe(sim::Addr block_addr);
    Tbe &newTbe(sim::Addr block_addr, BusCmd cmd);
    /** Swap-remove the slot at @p index, recycling its waiters. */
    void eraseTbe(std::size_t index);
    /** Return a waiter vector's capacity to the recycling pool. */
    void releaseWaiters(std::vector<Waiter> &&waiters);

    void maybePrefetch(sim::Addr filled_block);

    void issue(sim::Addr block_addr, BusCmd cmd);
    void backProbeL1s(const CacheLine &line, bool invalidate_l1);
    /** backProbeL1s by direct call, bypassing the router. */
    void warmBackProbeL1s(const CacheLine &line, bool invalidate_l1);
    std::uint8_t l1Bit(const L1Cache *l1) const;
    /** l2Response to @p who: direct (legacy) or one hop (domained). */
    void respond(L1Cache *who, sim::Addr block, bool writable);
    /** backProbe on @p l1: direct (legacy) or one hop (domained). */
    void probeL1(L1Cache *l1, sim::Addr block, bool invalidate);

    const MemConfig &cfg;
    CoherenceFabric &bus;
    sim::DomainRouter *router_ = nullptr;
    int node;
    CacheArray array;
    std::vector<Tbe> tbes;
    std::vector<std::vector<Waiter>> waiterPool;
    L1Cache *icache = nullptr;
    L1Cache *dcache = nullptr;

    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
    std::uint64_t numWritebacks = 0;
    std::uint64_t numRetries = 0;
    std::uint64_t numPrefetches = 0;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_L2_CONTROLLER_HH
