#include "mem/snoop_bus.hh"

#include <algorithm>

#include "mem/l2_controller.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace mem
{

SnoopBus::SnoopBus(std::string name, sim::EventQueue &eq,
                   const MemConfig &config, sim::Random &perturb_rng)
    : SimObject(std::move(name), eq), cfg(config),
      pertRng(perturb_rng), dram_(config)
{}

void
SnoopBus::addNode(L2Controller *l2)
{
    nodes.push_back(l2);
}

void
SnoopBus::sendRequest(const BusMsg &msg)
{
    const sim::Tick now = curTick();
    const sim::Tick order = std::max(now, nextOrderTick);
    nextOrderTick = order + cfg.busOccupancy;
    ++stats_.busTransactions;
    stats_.busQueueDelay += order - now;
    queueDelayDist.sample(static_cast<double>(order - now));

    DPRINTF(Bus, "order %s blk=%#llx src=%d at %llu",
            msg.cmd == BusCmd::GetS   ? "GetS"
            : msg.cmd == BusCmd::GetM ? "GetM"
                                      : "PutM",
            static_cast<unsigned long long>(msg.blockAddr),
            msg.srcNode, static_cast<unsigned long long>(order));

    // Snooped by every node one network traversal after ordering.
    callIn(order - now + cfg.netTraversal,
           [this, msg] { snoop(msg); });
}

void
SnoopBus::snoop(BusMsg msg)
{
    if (msg.cmd == BusCmd::PutM) {
        // Writebacks are fire-and-forget for timing purposes: the
        // evicting controller already relinquished ownership, making
        // memory the owner (ownership is defined by cache states).
        ++stats_.writebacks;
        return;
    }

    auto src = static_cast<std::size_t>(msg.srcNode);
    VARSIM_ASSERT(src < nodes.size(), "snoop from unknown node %d",
                  msg.srcNode);

    if (busy.contains(msg.blockAddr)) {
        ++stats_.nacks;
        nodes[src]->handleNack(msg.blockAddr);
        return;
    }

    // One tag walk per node: record the pre-transition owner (at
    // most one node holds the block in M or O — a protocol
    // invariant) and apply the order-point transitions on every
    // non-source node. Transitions only mutate the snooped node's
    // own state, so read-then-transition per node is equivalent to
    // the read-all-then-transition-all sequence.
    int ownerNode = -1;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const LineState s =
            nodes[n]->snoopAndHandle(msg, n != src);
        if (isOwnerState(s)) {
            VARSIM_ASSERT(ownerNode == -1,
                          "two owners for block %#llx",
                          static_cast<unsigned long long>(
                              msg.blockAddr));
            ownerNode = static_cast<int>(n);
        }
    }

    ++stats_.l2Misses;
    const bool writable = msg.cmd == BusCmd::GetM;
    const sim::Tick pert =
        cfg.perturbMaxNs > 0 ? pertRng.uniformInt(0, cfg.perturbMaxNs)
                             : 0;
    stats_.perturbationTotal += pert;

    sim::Tick dataDelay;
    if (ownerNode == static_cast<int>(src)) {
        // Upgrade: requestor already owns the data (O -> M).
        VARSIM_ASSERT(writable, "GetS from the owning node");
        ++stats_.upgrades;
        dataDelay = cfg.upgradeLatency + pert;
    } else if (ownerNode >= 0) {
        ++stats_.cacheToCache;
        dataDelay = cfg.ownerLatency + cfg.netTraversal + pert;
    } else {
        ++stats_.memoryFetches;
        const sim::Tick dataReady =
            dram_.schedule(msg.blockAddr, curTick());
        dataDelay = (dataReady - curTick()) + cfg.netTraversal + pert;
    }

    busy.insert(msg.blockAddr);
    L2Controller *requestor = nodes[src];
    const sim::Addr block = msg.blockAddr;
    // Reach: the fill completes node `src`'s miss — responses and
    // victim back-probes go to that node's own domain immediately,
    // while anything it triggers toward other nodes (a writeback or
    // prefetch it issues) first waits the bus's network traversal
    // before the resulting snoop broadcasts.
    callIn(
        dataDelay,
        [this, requestor, block, writable] {
            busy.erase(block);
            requestor->fillArrived(block, writable);
        },
        sim::Event::memoryResponsePri,
        sim::SendReach{static_cast<sim::DomainId>(1 + src), 0,
                       cfg.netTraversal});
}

bool
SnoopBus::warmTransition(int src, sim::Addr block, bool writable)
{
    VARSIM_ASSERT(busy.empty(),
                  "warm transition with transactions in flight");
    const BusMsg msg{writable ? BusCmd::GetM : BusCmd::GetS, block,
                     src};
    const auto srcIdx = static_cast<std::size_t>(src);
    VARSIM_ASSERT(srcIdx < nodes.size(),
                  "warm transition from unknown node %d", src);

    // Same single tag walk as snoop(), minus ordering, occupancy,
    // NACKs and the perturbation draw: fast-mode misses keep the
    // MOSI states exact while charging only a fixed latency (the
    // CPU side does that), so the stable coherence state a later
    // detailed interval sees is the state a real execution would
    // have produced.
    int ownerNode = -1;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const LineState s =
            nodes[n]->warmSnoop(msg, n != srcIdx);
        if (isOwnerState(s)) {
            VARSIM_ASSERT(ownerNode == -1,
                          "two owners for block %#llx",
                          static_cast<unsigned long long>(block));
            ownerNode = static_cast<int>(n);
        }
    }

    ++stats_.busTransactions;
    ++stats_.l2Misses;
    if (ownerNode == src) {
        ++stats_.upgrades;
        return false;
    }
    if (ownerNode >= 0) {
        ++stats_.cacheToCache;
        return true;
    }
    ++stats_.memoryFetches;
    return false;
}

void
SnoopBus::warmEvict(int src, sim::Addr block)
{
    // On the bus a PutM is fire-and-forget (ownership is defined by
    // the cache states); only the counter needs to move.
    (void)src;
    (void)block;
    ++stats_.writebacks;
}

void
SnoopBus::drain()
{
    VARSIM_ASSERT(busy.empty(),
                  "draining bus with %zu busy blocks", busy.size());
}

void
SnoopBus::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(busy.empty(), "checkpoint with busy bus blocks");
    cp.put(nextOrderTick);
    cp.put(stats_);
    dram_.serialize(cp);
}

void
SnoopBus::unserialize(sim::CheckpointIn &cp)
{
    cp.get(nextOrderTick);
    cp.get(stats_);
    dram_.unserialize(cp);
}

void
SnoopBus::regStats(sim::statistics::Registry &r)
{
    const std::string &n = name();
    r.regScalar(n + ".transactions", &stats_.busTransactions,
                "ordered address-network transactions");
    r.regScalar(n + ".l2_misses", &stats_.l2Misses,
                "ordered GetS/GetM requests");
    r.regScalar(n + ".cache_to_cache", &stats_.cacheToCache,
                "fills supplied by a peer L2");
    r.regScalar(n + ".memory_fetches", &stats_.memoryFetches,
                "fills supplied by DRAM");
    r.regScalar(n + ".upgrades", &stats_.upgrades,
                "GetM with data already local");
    r.regScalar(n + ".nacks", &stats_.nacks,
                "requests retried against a busy block");
    r.regScalar(n + ".writebacks", &stats_.writebacks,
                "dirty evictions");
    r.regScalar(n + ".queue_delay_ticks", &stats_.busQueueDelay,
                "cumulative ordering delay");
    r.regScalar(n + ".perturbation_ticks",
                &stats_.perturbationTotal,
                "cumulative injected latency perturbation");
    r.regFormula(n + ".dram_accesses",
                 [this] {
                     return static_cast<double>(dram_.accesses());
                 },
                 "home-memory DRAM accesses");
    r.regFormula(n + ".utilization",
                 [this] {
                     const double elapsed =
                         static_cast<double>(curTick());
                     if (elapsed == 0.0)
                         return 0.0;
                     return static_cast<double>(
                                stats_.busTransactions *
                                cfg.busOccupancy) /
                            elapsed;
                 },
                 "fraction of ticks the address bus was occupied");
    r.regDistribution(n + ".queue_delay", &queueDelayDist,
                      "per-request ordering delay distribution");
}

} // namespace mem
} // namespace varsim
