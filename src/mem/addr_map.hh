/**
 * @file
 * Open-addressing hash map keyed by block address.
 *
 * The directory consults its sharer/owner table once per coherence
 * transition — detailed and functional-warming alike — so lookup cost
 * is on the critical path of both engines. std::unordered_map pays a
 * heap-allocated node and a pointer chase per probe; this flat table
 * with linear probing resolves the common hit in a single cache line.
 *
 * Deliberately minimal: insert-or-default, const find, clear. No
 * erase — directory entries persist until the table is rebuilt from
 * cache tags (checkpoint restore), which uses clear().
 */

#ifndef VARSIM_MEM_ADDR_MAP_HH
#define VARSIM_MEM_ADDR_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace varsim
{
namespace mem
{

template <typename V>
class AddrMap
{
  public:
    AddrMap() : slots(kInitialCap) {}

    /** Find @p key, default-constructing its value if absent. */
    V &
    operator[](sim::Addr key)
    {
        if ((count + 1) * 4 >= slots.size() * 3)
            grow();
        Slot &s = probe(slots, key);
        if (s.key == kEmpty) {
            s.key = key;
            s.value = V{};
            ++count;
        }
        return s.value;
    }

    /** Find @p key; nullptr if absent. */
    const V *
    find(sim::Addr key) const
    {
        const Slot &s =
            probe(const_cast<std::vector<Slot> &>(slots), key);
        return s.key == kEmpty ? nullptr : &s.value;
    }

    /** Drop every entry, keeping the current capacity. */
    void
    clear()
    {
        for (Slot &s : slots)
            s.key = kEmpty;
        count = 0;
    }

    std::size_t size() const { return count; }

  private:
    // Block addresses are block-aligned, so the all-ones pattern can
    // never be a real key and serves as the empty sentinel.
    static constexpr sim::Addr kEmpty = ~sim::Addr{0};
    static constexpr std::size_t kInitialCap = 1024;

    struct Slot
    {
        sim::Addr key = kEmpty;
        V value{};
    };

    static Slot &
    probe(std::vector<Slot> &table, sim::Addr key)
    {
        const std::size_t mask = table.size() - 1;
        // Fibonacci hashing spreads the low-entropy aligned keys.
        std::size_t i =
            (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
        while (table[i].key != kEmpty && table[i].key != key)
            i = (i + 1) & mask;
        return table[i];
    }

    void
    grow()
    {
        std::vector<Slot> next(slots.size() * 2);
        for (const Slot &s : slots) {
            if (s.key == kEmpty)
                continue;
            Slot &d = probe(next, s.key);
            d.key = s.key;
            d.value = s.value;
        }
        slots.swap(next);
    }

    std::vector<Slot> slots;
    std::size_t count = 0;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_ADDR_MAP_HH
