/**
 * @file
 * Flat set of block addresses for tiny, high-churn membership sets.
 *
 * The coherence fabrics track which blocks have an in-flight
 * transaction. That set is bounded by the number of outstanding
 * misses (a handful), but it is probed on every ordered request and
 * mutated twice per miss — a hash map spends more time allocating
 * buckets than a linear scan spends comparing. This vector-backed
 * set never shrinks its capacity, so steady-state operation does not
 * touch the allocator at all.
 */

#ifndef VARSIM_MEM_ADDR_SET_HH
#define VARSIM_MEM_ADDR_SET_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace varsim
{
namespace mem
{

class AddrSet
{
  public:
    bool
    contains(sim::Addr addr) const
    {
        for (sim::Addr a : addrs)
            if (a == addr)
                return true;
        return false;
    }

    /** Insert @p addr; the caller guarantees it is not present. */
    void insert(sim::Addr addr) { addrs.push_back(addr); }

    /** Remove @p addr if present (order is not preserved). */
    void
    erase(sim::Addr addr)
    {
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            if (addrs[i] == addr) {
                addrs[i] = addrs.back();
                addrs.pop_back();
                return;
            }
        }
    }

    bool empty() const { return addrs.empty(); }
    std::size_t size() const { return addrs.size(); }
    void clear() { addrs.clear(); }

  private:
    std::vector<sim::Addr> addrs;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_ADDR_SET_HH
