#include "mem/l2_controller.hh"

#include "mem/l1_cache.hh"
#include "sim/statistics.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace mem
{

L2Controller::L2Controller(std::string name, sim::EventQueue &eq,
                           const MemConfig &config,
                           CoherenceFabric &bus_ref, int node_id)
    : SimObject(std::move(name), eq), cfg(config), bus(bus_ref),
      node(node_id),
      array(config.l2Size, config.l2Assoc, config.blockBytes)
{}

void
L2Controller::setL1s(L1Cache *ic, L1Cache *dc)
{
    icache = ic;
    dcache = dc;
}

std::uint8_t
L2Controller::l1Bit(const L1Cache *l1) const
{
    return l1 == icache ? l2AuxL1ICopy : l2AuxL1DCopy;
}

L2Controller::Tbe *
L2Controller::findTbe(sim::Addr block_addr)
{
    for (Tbe &tbe : tbes)
        if (tbe.addr == block_addr)
            return &tbe;
    return nullptr;
}

L2Controller::Tbe &
L2Controller::newTbe(sim::Addr block_addr, BusCmd cmd)
{
    tbes.emplace_back();
    Tbe &tbe = tbes.back();
    tbe.addr = block_addr;
    tbe.issued = cmd;
    if (!waiterPool.empty()) {
        tbe.waiters = std::move(waiterPool.back());
        waiterPool.pop_back();
    }
    return tbe;
}

void
L2Controller::eraseTbe(std::size_t index)
{
    releaseWaiters(std::move(tbes[index].waiters));
    if (index != tbes.size() - 1)
        tbes[index] = std::move(tbes.back());
    tbes.pop_back();
}

void
L2Controller::releaseWaiters(std::vector<Waiter> &&waiters)
{
    if (waiters.capacity() == 0)
        return;
    waiters.clear();
    waiterPool.push_back(std::move(waiters));
}

void
L2Controller::request(sim::Addr block_addr, bool need_writable,
                      L1Cache *who)
{
    CacheLine *line = array.findAndTouch(block_addr);
    const bool hit =
        line != nullptr &&
        (need_writable ? line->state == LineState::Modified
                       : isValidState(line->state));
    if (hit) {
        ++numHits;
        line->aux |= l1Bit(who);
        DPRINTF(Cache, "L2 hit blk=%#llx w=%d",
                static_cast<unsigned long long>(block_addr),
                int(need_writable));
        respond(who, block_addr, need_writable);
        return;
    }

    Tbe *tbe = findTbe(block_addr);
    if (tbe == nullptr) {
        ++numMisses;
        const BusCmd cmd =
            need_writable ? BusCmd::GetM : BusCmd::GetS;
        newTbe(block_addr, cmd).waiters.push_back(
            {who, need_writable});
        issue(block_addr, cmd);
    } else {
        tbe->waiters.push_back({who, need_writable});
        // A demand request joining an in-flight prefetch makes it
        // a demand transaction (NACKs now retry).
        tbe->prefetch = false;
    }
}

void
L2Controller::issue(sim::Addr block_addr, BusCmd cmd)
{
    bus.sendRequest({cmd, block_addr, node});
}

void
L2Controller::maybePrefetch(sim::Addr filled_block)
{
    if (!cfg.l2NextLinePrefetch)
        return;
    const sim::Addr next = filled_block + cfg.blockBytes;
    if (array.find(next) != nullptr || findTbe(next) != nullptr)
        return;
    newTbe(next, BusCmd::GetS).prefetch = true;
    ++numPrefetches;
    issue(next, BusCmd::GetS);
}

void
L2Controller::handleNack(sim::Addr block_addr)
{
    Tbe *tbe = findTbe(block_addr);
    VARSIM_ASSERT(tbe != nullptr,
                  "NACK for block %#llx with no TBE",
                  static_cast<unsigned long long>(block_addr));
    if (tbe->prefetch && tbe->waiters.empty()) {
        // Prefetches are best-effort: drop on conflict.
        eraseTbe(static_cast<std::size_t>(tbe - tbes.data()));
        return;
    }
    ++numRetries;
    const BusCmd cmd = tbe->issued;
    DPRINTF(Coherence, "NACK blk=%#llx, retrying",
            static_cast<unsigned long long>(block_addr));
    // Reach: the retry re-issues into the fabric, so nothing it
    // causes — toward any node, including our own — happens before
    // the fabric's entry latency (bus traversal before the snoop
    // broadcasts, directory latency before the home tile acts).
    const sim::Tick crossDelay =
        cfg.protocol == CoherenceProtocol::Snooping
            ? cfg.netTraversal
            : cfg.dirLatency;
    callIn(
        cfg.retryDelay,
        [this, block_addr, cmd] { issue(block_addr, cmd); },
        sim::Event::defaultPri,
        sim::SendReach{sim::SendReach::noDomain, 0, crossDelay});
}

void
L2Controller::fillArrived(sim::Addr block_addr, bool writable)
{
    CacheLine *line = array.find(block_addr);
    if (line == nullptr) {
        CacheLine victim;
        auto [fresh, hadVictim] = array.allocate(block_addr, victim);
        if (hadVictim) {
            backProbeL1s(victim, true);
            if (isOwnerState(victim.state)) {
                ++numWritebacks;
                issue(victim.blockAddr, BusCmd::PutM);
            }
        }
        line = fresh;
        line->state =
            writable ? LineState::Modified : LineState::Shared;
    } else {
        // Upgrade completion: data was already local.
        VARSIM_ASSERT(writable, "GetS fill for a resident block");
        line->state = LineState::Modified;
        array.touch(*line);
    }

    DPRINTF(Coherence, "fill blk=%#llx w=%d",
            static_cast<unsigned long long>(block_addr),
            int(writable));

    Tbe *tbe = findTbe(block_addr);
    VARSIM_ASSERT(tbe != nullptr,
                  "fill for block %#llx with no TBE",
                  static_cast<unsigned long long>(block_addr));
    std::vector<Waiter> waiters = std::move(tbe->waiters);
    const bool wasPrefetch = tbe->prefetch;
    // Erase before re-running the waiters: request() may create new
    // TBEs, reallocating the vector under any live slot pointer.
    eraseTbe(static_cast<std::size_t>(tbe - tbes.data()));

    // Re-run every waiter: reads (and writes, if the fill granted M)
    // hit and respond after the L2 access latency; writes that got
    // only a Shared fill start a GetM round.
    for (const Waiter &w : waiters)
        request(block_addr, w.needWritable, w.l1);
    releaseWaiters(std::move(waiters));

    // Demand fills trigger the next-line prefetcher (prefetch fills
    // do not, to avoid runaway chains).
    if (!wasPrefetch)
        maybePrefetch(block_addr);
}

void
L2Controller::handleRemoteSnoop(const BusMsg &msg)
{
    snoopAndHandle(msg, true);
}

LineState
L2Controller::snoopAndHandle(const BusMsg &msg, bool remote)
{
    CacheLine *line = array.find(msg.blockAddr);
    if (line == nullptr)
        return LineState::Invalid;
    const LineState before = line->state;
    if (remote) {
        if (msg.cmd == BusCmd::GetM) {
            backProbeL1s(*line, true);
            array.invalidate(*line);
        } else if (msg.cmd == BusCmd::GetS) {
            if (before == LineState::Modified) {
                line->state = LineState::Owned;
                backProbeL1s(*line, false);
            }
            // Shared/Owned copies are unaffected by a remote GetS.
        }
    }
    return before;
}

sim::Tick
L2Controller::warmRequest(sim::Addr block_addr, bool need_writable,
                          L1Cache *who)
{
    VARSIM_ASSERT(tbes.empty(),
                  "warm request on %s with %zu pending TBEs",
                  name().c_str(), tbes.size());
    CacheLine *line = array.findAndTouch(block_addr);
    const bool hit =
        line != nullptr &&
        (need_writable ? line->state == LineState::Modified
                       : isValidState(line->state));
    if (hit) {
        ++numHits;
        line->aux |= l1Bit(who);
        return cfg.l2HitLatency;
    }

    ++numMisses;
    const bool hadCopy = line != nullptr; // S/O -> M upgrade path
    const bool remote =
        bus.warmTransition(node, block_addr, need_writable);

    // Fill, mirroring fillArrived(): the fabric transition never
    // touches this node's copy of the requested block (snoops exclude
    // the source node), so the lookup above is still authoritative —
    // a resident line means an upgrade completion.
    if (line == nullptr) {
        CacheLine victim;
        auto [fresh, hadVictim] = array.allocate(block_addr, victim);
        if (hadVictim) {
            warmBackProbeL1s(victim, true);
            if (isOwnerState(victim.state)) {
                ++numWritebacks;
                bus.warmEvict(node, victim.blockAddr);
            }
        }
        line = fresh;
        line->state =
            need_writable ? LineState::Modified : LineState::Shared;
    } else {
        VARSIM_ASSERT(need_writable,
                      "warm GetS fill for a resident block");
        line->state = LineState::Modified;
        array.touch(*line);
    }
    line->aux |= l1Bit(who);

    // Fixed-latency charge classified like the timed protocol would
    // have: upgrade, 3-hop owner forward, or memory fetch — without
    // ordering, occupancy, NACK or perturbation terms.
    if (hadCopy)
        return cfg.l2HitLatency + cfg.upgradeLatency;
    if (remote)
        return cfg.l2HitLatency + cfg.netTraversal +
               cfg.ownerLatency + cfg.netTraversal;
    return cfg.l2HitLatency + cfg.netTraversal + cfg.dramLatency +
           cfg.netTraversal;
}

LineState
L2Controller::warmSnoop(const BusMsg &msg, bool remote)
{
    CacheLine *line = array.find(msg.blockAddr);
    if (line == nullptr)
        return LineState::Invalid;
    const LineState before = line->state;
    if (remote) {
        if (msg.cmd == BusCmd::GetM) {
            warmBackProbeL1s(*line, true);
            array.invalidate(*line);
        } else if (msg.cmd == BusCmd::GetS) {
            if (before == LineState::Modified) {
                line->state = LineState::Owned;
                warmBackProbeL1s(*line, false);
            }
        }
    }
    return before;
}

LineState
L2Controller::snoopState(sim::Addr block_addr) const
{
    const CacheLine *line = array.find(block_addr);
    return line != nullptr ? line->state : LineState::Invalid;
}

void
L2Controller::backProbeL1s(const CacheLine &line, bool invalidate_l1)
{
    if ((line.aux & l2AuxL1ICopy) && icache != nullptr)
        probeL1(icache, line.blockAddr, invalidate_l1);
    if ((line.aux & l2AuxL1DCopy) && dcache != nullptr)
        probeL1(dcache, line.blockAddr, invalidate_l1);
}

void
L2Controller::warmBackProbeL1s(const CacheLine &line,
                               bool invalidate_l1)
{
    // Direct synchronous probes: during a fast-mode interval the
    // domain rounds run serially, so cross-domain calls are safe and
    // router hops would only defer state the very next warm access
    // may depend on.
    if ((line.aux & l2AuxL1ICopy) && icache != nullptr)
        icache->backProbe(line.blockAddr, invalidate_l1);
    if ((line.aux & l2AuxL1DCopy) && dcache != nullptr)
        dcache->backProbe(line.blockAddr, invalidate_l1);
}

void
L2Controller::respond(L1Cache *who, sim::Addr block, bool writable)
{
    if (router_ == nullptr) {
        who->l2Response(block, writable, cfg.l2HitLatency);
        return;
    }
    // One conservative hop back into the L1's CPU domain. The
    // request already spent one hop getting here, so the CPU-notify
    // remainder is the hit latency minus both hops: end-to-end
    // timing of the request→hit→response path is preserved exactly
    // when 2Λ <= l2HitLatency (which the auto-derived Λ guarantees).
    const sim::Tick hop = router_->lookahead();
    const sim::Tick rem =
        cfg.l2HitLatency > 2 * hop ? cfg.l2HitLatency - 2 * hop : 0;
    router_->send(sim::sharedDomain, who->domainId(),
                  curTick() + hop, sim::Event::memoryResponsePri,
                  [who, block, writable, rem] {
                      who->l2Response(block, writable, rem);
                  });
}

void
L2Controller::probeL1(L1Cache *l1, sim::Addr block, bool invalidate)
{
    if (router_ == nullptr) {
        l1->backProbe(block, invalidate);
        return;
    }
    // Same edge and priority as fills: a probe and a fill for the
    // same L1 arrive in the order the L2 (the coherence order
    // point) generated them — lane FIFO keeps races well defined.
    router_->send(sim::sharedDomain, l1->domainId(),
                  curTick() + router_->lookahead(),
                  sim::Event::memoryResponsePri,
                  [l1, block, invalidate] {
                      l1->backProbe(block, invalidate);
                  });
}

void
L2Controller::drain()
{
    VARSIM_ASSERT(tbes.empty(),
                  "draining L2 %s with %zu pending TBEs",
                  name().c_str(), tbes.size());
}

void
L2Controller::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(tbes.empty(), "checkpoint with pending L2 TBEs");
    array.serialize(cp);
    cp.put(numHits);
    cp.put(numMisses);
    cp.put(numWritebacks);
    cp.put(numRetries);
    cp.put(numPrefetches);
}

void
L2Controller::unserialize(sim::CheckpointIn &cp)
{
    array.unserialize(cp);
    cp.get(numHits);
    cp.get(numMisses);
    cp.get(numWritebacks);
    cp.get(numRetries);
    cp.get(numPrefetches);
}

void
L2Controller::regStats(sim::statistics::Registry &r)
{
    const std::string &n = name();
    r.regScalar(n + ".hits", &numHits);
    r.regScalar(n + ".misses", &numMisses);
    r.regScalar(n + ".writebacks", &numWritebacks);
    r.regScalar(n + ".retries", &numRetries,
                "requests re-issued after a NACK");
    r.regScalar(n + ".prefetches", &numPrefetches,
                "next-line prefetches issued");
    r.regFormula(n + ".miss_ratio", [this] {
        const double total =
            static_cast<double>(numHits + numMisses);
        return total > 0.0
                   ? static_cast<double>(numMisses) / total
                   : 0.0;
    });
}

} // namespace mem
} // namespace varsim
