#include "mem/l2_controller.hh"

#include "mem/l1_cache.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace mem
{

L2Controller::L2Controller(std::string name, sim::EventQueue &eq,
                           const MemConfig &config,
                           CoherenceFabric &bus_ref, int node_id)
    : SimObject(std::move(name), eq), cfg(config), bus(bus_ref),
      node(node_id),
      array(config.l2Size, config.l2Assoc, config.blockBytes)
{}

void
L2Controller::setL1s(L1Cache *ic, L1Cache *dc)
{
    icache = ic;
    dcache = dc;
}

std::uint8_t
L2Controller::l1Bit(const L1Cache *l1) const
{
    return l1 == icache ? l2AuxL1ICopy : l2AuxL1DCopy;
}

void
L2Controller::request(sim::Addr block_addr, bool need_writable,
                      L1Cache *who)
{
    CacheLine *line = array.findAndTouch(block_addr);
    const bool hit =
        line != nullptr &&
        (need_writable ? line->state == LineState::Modified
                       : isValidState(line->state));
    if (hit) {
        ++numHits;
        line->aux |= l1Bit(who);
        DPRINTF(Cache, "L2 hit blk=%#llx w=%d",
                static_cast<unsigned long long>(block_addr),
                int(need_writable));
        who->l2Response(block_addr, need_writable, cfg.l2HitLatency);
        return;
    }

    auto it = tbes.find(block_addr);
    if (it == tbes.end()) {
        ++numMisses;
        Tbe tbe;
        tbe.issued = need_writable ? BusCmd::GetM : BusCmd::GetS;
        tbe.waiters.push_back({who, need_writable});
        tbes.emplace(block_addr, std::move(tbe));
        issue(block_addr, need_writable ? BusCmd::GetM : BusCmd::GetS);
    } else {
        it->second.waiters.push_back({who, need_writable});
        // A demand request joining an in-flight prefetch makes it
        // a demand transaction (NACKs now retry).
        it->second.prefetch = false;
    }
}

void
L2Controller::issue(sim::Addr block_addr, BusCmd cmd)
{
    bus.sendRequest({cmd, block_addr, node});
}

void
L2Controller::maybePrefetch(sim::Addr filled_block)
{
    if (!cfg.l2NextLinePrefetch)
        return;
    const sim::Addr next = filled_block + cfg.blockBytes;
    if (array.find(next) != nullptr || tbes.count(next) != 0)
        return;
    Tbe tbe;
    tbe.issued = BusCmd::GetS;
    tbe.prefetch = true;
    tbes.emplace(next, std::move(tbe));
    ++numPrefetches;
    issue(next, BusCmd::GetS);
}

void
L2Controller::handleNack(sim::Addr block_addr)
{
    auto it = tbes.find(block_addr);
    VARSIM_ASSERT(it != tbes.end(),
                  "NACK for block %#llx with no TBE",
                  static_cast<unsigned long long>(block_addr));
    if (it->second.prefetch && it->second.waiters.empty()) {
        // Prefetches are best-effort: drop on conflict.
        tbes.erase(it);
        return;
    }
    ++numRetries;
    const BusCmd cmd = it->second.issued;
    DPRINTF(Coherence, "NACK blk=%#llx, retrying",
            static_cast<unsigned long long>(block_addr));
    callIn(cfg.retryDelay,
           [this, block_addr, cmd] { issue(block_addr, cmd); });
}

void
L2Controller::fillArrived(sim::Addr block_addr, bool writable)
{
    CacheLine *line = array.find(block_addr);
    if (line == nullptr) {
        CacheLine victim;
        auto [fresh, hadVictim] = array.allocate(block_addr, victim);
        if (hadVictim) {
            backProbeL1s(victim, true);
            if (isOwnerState(victim.state)) {
                ++numWritebacks;
                issue(victim.blockAddr, BusCmd::PutM);
            }
        }
        line = fresh;
        line->state =
            writable ? LineState::Modified : LineState::Shared;
    } else {
        // Upgrade completion: data was already local.
        VARSIM_ASSERT(writable, "GetS fill for a resident block");
        line->state = LineState::Modified;
        array.touch(*line);
    }

    DPRINTF(Coherence, "fill blk=%#llx w=%d",
            static_cast<unsigned long long>(block_addr),
            int(writable));

    auto it = tbes.find(block_addr);
    VARSIM_ASSERT(it != tbes.end(),
                  "fill for block %#llx with no TBE",
                  static_cast<unsigned long long>(block_addr));
    std::vector<Waiter> waiters = std::move(it->second.waiters);
    const bool wasPrefetch = it->second.prefetch;
    tbes.erase(it);

    // Re-run every waiter: reads (and writes, if the fill granted M)
    // hit and respond after the L2 access latency; writes that got
    // only a Shared fill start a GetM round.
    for (const Waiter &w : waiters)
        request(block_addr, w.needWritable, w.l1);

    // Demand fills trigger the next-line prefetcher (prefetch fills
    // do not, to avoid runaway chains).
    if (!wasPrefetch)
        maybePrefetch(block_addr);
}

void
L2Controller::handleRemoteSnoop(const BusMsg &msg)
{
    CacheLine *line = array.find(msg.blockAddr);
    if (line == nullptr)
        return;
    if (msg.cmd == BusCmd::GetM) {
        backProbeL1s(*line, true);
        array.invalidate(*line);
    } else if (msg.cmd == BusCmd::GetS) {
        if (line->state == LineState::Modified) {
            line->state = LineState::Owned;
            backProbeL1s(*line, false);
        }
        // Shared/Owned copies are unaffected by a remote GetS.
    }
}

LineState
L2Controller::snoopState(sim::Addr block_addr) const
{
    const CacheLine *line = array.find(block_addr);
    return line != nullptr ? line->state : LineState::Invalid;
}

void
L2Controller::backProbeL1s(const CacheLine &line, bool invalidate_l1)
{
    if ((line.aux & l2AuxL1ICopy) && icache != nullptr)
        icache->backProbe(line.blockAddr, invalidate_l1);
    if ((line.aux & l2AuxL1DCopy) && dcache != nullptr)
        dcache->backProbe(line.blockAddr, invalidate_l1);
}

void
L2Controller::drain()
{
    VARSIM_ASSERT(tbes.empty(),
                  "draining L2 %s with %zu pending TBEs",
                  name().c_str(), tbes.size());
}

void
L2Controller::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(tbes.empty(), "checkpoint with pending L2 TBEs");
    array.serialize(cp);
    cp.put(numHits);
    cp.put(numMisses);
    cp.put(numWritebacks);
    cp.put(numRetries);
    cp.put(numPrefetches);
}

void
L2Controller::unserialize(sim::CheckpointIn &cp)
{
    array.unserialize(cp);
    cp.get(numHits);
    cp.get(numMisses);
    cp.get(numWritebacks);
    cp.get(numRetries);
    cp.get(numPrefetches);
}

} // namespace mem
} // namespace varsim
