/**
 * @file
 * The address network: a totally ordered broadcast "bus" abstracting
 * the paper's two-level crossbar hierarchy, plus the home-memory DRAM
 * model.
 *
 * All coherence requests are serialized here — the order point is the
 * single source of truth for MOSI state transitions, which happen
 * atomically when a request is snooped. Data movement is modelled as
 * latency (owner 25 ns or DRAM 80 ns, plus a 50 ns network traversal
 * and the per-miss pseudo-random perturbation of Section 3.3).
 *
 * Requests that hit a block with an in-flight transaction are NACKed
 * and retried by the requesting controller, as in real snooping
 * systems; the retry timing is itself a (deterministic) function of
 * the schedule, which further amplifies injected perturbations into
 * divergent executions — the mechanism at the heart of the paper's
 * space-variability results.
 */

#ifndef VARSIM_MEM_SNOOP_BUS_HH
#define VARSIM_MEM_SNOOP_BUS_HH

#include <vector>

#include "mem/addr_set.hh"
#include "mem/dram.hh"
#include "mem/fabric.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/statistics.hh"

namespace varsim
{
namespace mem
{

class L2Controller;

/**
 * The ordered broadcast address network plus protocol engine.
 */
class SnoopBus : public sim::SimObject, public CoherenceFabric
{
  public:
    SnoopBus(std::string name, sim::EventQueue &eq,
             const MemConfig &cfg, sim::Random &perturb_rng);

    /** Register a node's L2 controller. Order defines node ids. */
    void addNode(L2Controller *l2) override;

    /**
     * Enqueue a request for global ordering. The source controller
     * will later receive exactly one of handleNack() or
     * fillArrived() (except PutM, which is fire-and-forget).
     */
    void sendRequest(const BusMsg &msg) override;

    /** Statistics counters owned by the bus. */
    MemStats &stats() override { return stats_; }
    const MemStats &stats() const override { return stats_; }

    /** The DRAM model (exposed for tests). */
    DramModel &dram() { return dram_; }

    /** True if a transaction is in flight for @p block_addr. */
    bool
    blockBusy(sim::Addr block_addr) const override
    {
        return busy.contains(block_addr);
    }

    bool warmTransition(int src, sim::Addr block,
                        bool writable) override;
    void warmEvict(int src, sim::Addr block) override;

    void drain() override;
    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;
    void regStats(sim::statistics::Registry &r) override;

  private:
    void snoop(BusMsg msg);

    const MemConfig &cfg;
    sim::Random &pertRng;
    DramModel dram_;
    std::vector<L2Controller *> nodes;
    AddrSet busy;
    sim::Tick nextOrderTick = 0;
    MemStats stats_;
    sim::statistics::Distribution queueDelayDist;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_SNOOP_BUS_HH
