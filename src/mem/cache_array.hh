/**
 * @file
 * Generic set-associative tag array with true-LRU replacement.
 *
 * Used for both L1 and L2 caches. Only tags and metadata are stored;
 * varsim never simulates data values. Replacement decisions are
 * deterministic (LRU by a monotone use counter, ties impossible), so
 * the array contributes no nondeterminism of its own — a requirement
 * of the paper's methodology, where the injected latency perturbation
 * must be the sole random input (Section 3.3).
 */

#ifndef VARSIM_MEM_CACHE_ARRAY_HH
#define VARSIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace varsim
{
namespace mem
{

/** MOSI stable coherence states (plus Invalid). */
enum class LineState : std::uint8_t
{
    Invalid = 0,
    Shared,    ///< clean, possibly multiple copies
    Owned,     ///< dirty, responsible for data, sharers may exist
    Modified,  ///< dirty, exclusive
};

/** True if the state confers ownership (must supply data on snoop). */
constexpr bool
isOwnerState(LineState s)
{
    return s == LineState::Owned || s == LineState::Modified;
}

/** True if the state permits reads. */
constexpr bool
isValidState(LineState s)
{
    return s != LineState::Invalid;
}

/**
 * One cache line's metadata.
 *
 * Invariant: blockAddr == sim::invalidAddr iff the way is free. The
 * tag lookup fast path compares blockAddr alone, so invalidate()
 * must (and does) reset the tag along with the state.
 */
struct CacheLine
{
    sim::Addr blockAddr = sim::invalidAddr;
    LineState state = LineState::Invalid;
    /** Implementation-defined per-cache bits (e.g. L1 copy flags). */
    std::uint8_t aux = 0;
    /** Monotone use stamp for LRU. */
    std::uint64_t lastUse = 0;

    bool valid() const { return state != LineState::Invalid; }
};

/**
 * Set-associative tag array.
 */
class CacheArray : public sim::Serializable
{
  public:
    /**
     * @param size_bytes  total capacity
     * @param assoc       ways per set (1 = direct mapped)
     * @param block_bytes line size (power of two)
     */
    CacheArray(std::size_t size_bytes, std::size_t assoc,
               std::size_t block_bytes);

    /** Block-align an address. */
    sim::Addr
    blockAlign(sim::Addr addr) const
    {
        return addr & ~static_cast<sim::Addr>(blockBytes - 1);
    }

    /**
     * Look up @p block_addr (must be block-aligned).
     * @return the line, or nullptr if not present (Invalid lines are
     *         "not present").
     *
     * This is the hottest function in the simulator (every L1 probe,
     * every L2 request and every bus snoop lands here), so the set
     * index is shift/mask (no division) and the way walk compares
     * tags only — free ways hold sim::invalidAddr, which no aligned
     * block address can equal. The state is checked once on a tag
     * match (tags are unique within a set) so a freshly allocated
     * line stays "not present" until the caller sets its state.
     */
    CacheLine *
    find(sim::Addr block_addr)
    {
        CacheLine *line = &lines[setIndex(block_addr) * ways];
        for (std::size_t w = 0; w < ways; ++w, ++line) {
            if (line->blockAddr == block_addr)
                return line->state != LineState::Invalid ? line
                                                         : nullptr;
        }
        return nullptr;
    }

    const CacheLine *
    find(sim::Addr block_addr) const
    {
        return const_cast<CacheArray *>(this)->find(block_addr);
    }

    /** find() + LRU update on hit. */
    CacheLine *
    findAndTouch(sim::Addr block_addr)
    {
        CacheLine *line = find(block_addr);
        if (line != nullptr)
            touch(*line);
        return line;
    }

    /** Mark @p line most recently used. */
    void touch(CacheLine &line);

    /**
     * Allocate a line for @p block_addr, evicting the LRU valid line
     * of the set if no way is free.
     *
     * @param victim  out-parameter: a copy of the evicted line, valid
     *                only when the return's second member is true.
     * @return pair (line pointer, hadVictim)
     */
    std::pair<CacheLine *, bool> allocate(sim::Addr block_addr,
                                          CacheLine &victim);

    /** Invalidate a line (leaves LRU stamp untouched). */
    void invalidate(CacheLine &line);

    /** Geometry accessors. */
    std::size_t numSets() const { return sets; }
    std::size_t numWays() const { return ways; }
    std::size_t blockSize() const { return blockBytes; }

    /** Count of currently valid lines (O(capacity); for tests). */
    std::size_t countValid() const;

    /** Visit every valid line (O(capacity)); used to rebuild
     *  derived structures (e.g. directory sharer sets) on restore. */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const CacheLine &line : lines)
            if (line.valid())
                fn(line);
    }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  private:
    /** Shift/mask index: blockBytes and sets are powers of two. */
    std::size_t
    setIndex(sim::Addr block_addr) const
    {
        return static_cast<std::size_t>(block_addr >> blockShift) &
               setMask;
    }

    std::size_t sets;
    std::size_t ways;
    std::size_t blockBytes;
    std::size_t blockShift = 0; ///< log2(blockBytes)
    std::size_t setMask = 0;    ///< sets - 1
    std::uint64_t useCounter = 0;
    std::vector<CacheLine> lines; // sets * ways, row-major by set
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_CACHE_ARRAY_HH
