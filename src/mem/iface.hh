/**
 * @file
 * CPU-to-memory-system interface types.
 */

#ifndef VARSIM_MEM_IFACE_HH
#define VARSIM_MEM_IFACE_HH

#include <cstdint>

#include "sim/types.hh"

namespace varsim
{
namespace mem
{

/**
 * One memory access from a processor. Only addresses are simulated —
 * the target's data values never matter for timing, so none are
 * carried.
 */
struct MemRequest
{
    sim::Addr addr = 0;
    bool write = false;
    bool ifetch = false;
    /** Client-chosen identifier echoed back in the response. */
    std::uint64_t tag = 0;
};

/**
 * Receiver of memory responses. CPUs implement this; the L1 caches
 * call back into it when a miss completes.
 */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /**
     * The access identified by @p tag has completed. Called at the
     * tick the data becomes available to the core.
     */
    virtual void memResponse(std::uint64_t tag) = 0;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_IFACE_HH
