#include "mem/directory.hh"

#include <algorithm>

#include "mem/l2_controller.hh"
#include "sim/trace.hh"

namespace varsim
{
namespace mem
{

DirectoryFabric::DirectoryFabric(std::string name,
                                 sim::EventQueue &eq,
                                 const MemConfig &config,
                                 sim::Random &perturb_rng)
    : SimObject(std::move(name), eq), cfg(config),
      pertRng(perturb_rng), dram_(config),
      homeNextFree(config.numNodes, 0)
{}

void
DirectoryFabric::addNode(L2Controller *l2)
{
    nodes.push_back(l2);
}

DirectoryFabric::Entry &
DirectoryFabric::entry(sim::Addr block_addr)
{
    return dir[block_addr];
}

int
DirectoryFabric::ownerOf(sim::Addr block_addr) const
{
    const Entry *e = dir.find(block_addr);
    return e != nullptr ? e->owner : -1;
}

std::uint64_t
DirectoryFabric::sharersOf(sim::Addr block_addr) const
{
    const Entry *e = dir.find(block_addr);
    return e != nullptr ? e->sharers : 0;
}

void
DirectoryFabric::sendRequest(const BusMsg &msg)
{
    // One network traversal to the home node, then per-home
    // serialized processing (the directory is the order point).
    const auto home = static_cast<std::size_t>(
        dram_.homeNode(msg.blockAddr));
    const sim::Tick arrive = curTick() + cfg.netTraversal;
    const sim::Tick start =
        std::max(arrive, homeNextFree[home]);
    homeNextFree[home] = start + cfg.dirOccupancy;
    ++stats_.busTransactions;
    stats_.busQueueDelay += start - arrive;
    queueDelayDist.sample(static_cast<double>(start - arrive));

    callIn(start + cfg.dirLatency - curTick(),
           [this, msg] { process(msg); });
}

void
DirectoryFabric::process(BusMsg msg)
{
    const sim::Tick now = curTick();
    Entry &e = entry(msg.blockAddr);
    const auto srcBit = std::uint64_t{1}
                        << static_cast<unsigned>(msg.srcNode);

    if (msg.cmd == BusCmd::PutM) {
        // Writeback: ownership returns to memory; remaining sharers
        // (MOSI allows sharers under an O owner) keep their copies.
        ++stats_.writebacks;
        if (e.owner == msg.srcNode)
            e.owner = -1;
        e.sharers &= ~srcBit;
        return;
    }

    auto src = static_cast<std::size_t>(msg.srcNode);
    VARSIM_ASSERT(src < nodes.size(),
                  "directory request from unknown node %d",
                  msg.srcNode);

    if (busy.contains(msg.blockAddr)) {
        ++stats_.nacks;
        nodes[src]->handleNack(msg.blockAddr);
        return;
    }

    ++stats_.l2Misses;
    const bool writable = msg.cmd == BusCmd::GetM;
    const sim::Tick pert =
        cfg.perturbMaxNs > 0
            ? pertRng.uniformInt(0, cfg.perturbMaxNs)
            : 0;
    stats_.perturbationTotal += pert;

    // The directory's view can lag silent L1/L2 interactions only
    // for *owner* state via in-flight PutM; validate against the
    // actual cache to avoid forwarding to a stale owner.
    int owner = e.owner;
    if (owner >= 0 &&
        !isOwnerState(nodes[static_cast<std::size_t>(owner)]
                          ->snoopState(msg.blockAddr))) {
        owner = -1; // PutM in flight: memory owns the data
        e.owner = -1;
    }

    sim::Tick dataDelay;
    if (writable) {
        // Invalidate every other copy the directory knows about.
        sim::Tick ackDelay = 0;
        std::uint64_t toInvalidate =
            (e.sharers | (owner >= 0 ? (std::uint64_t{1}
                                        << unsigned(owner))
                                     : 0)) &
            ~srcBit;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (toInvalidate & (std::uint64_t{1} << n)) {
                nodes[n]->handleRemoteSnoop(msg);
                // INV hop + ack hop, overlapped across sharers.
                ackDelay = 2 * cfg.netTraversal;
            }
        }
        if (owner == msg.srcNode) {
            // Upgrade: data already local.
            ++stats_.upgrades;
            dataDelay = std::max(cfg.upgradeLatency, ackDelay);
        } else if (owner >= 0) {
            // 3-hop forward: home->owner, owner provides, ->src.
            ++stats_.cacheToCache;
            dataDelay = std::max(cfg.netTraversal +
                                     cfg.ownerLatency +
                                     cfg.netTraversal,
                                 ackDelay);
        } else {
            ++stats_.memoryFetches;
            const sim::Tick ready =
                dram_.schedule(msg.blockAddr, now);
            dataDelay = std::max((ready - now) + cfg.netTraversal,
                                 ackDelay);
        }
        e.owner = msg.srcNode;
        e.sharers = srcBit;
    } else {
        if (owner >= 0) {
            // Forward to the owner; it downgrades M->O and supplies
            // data directly to the requestor.
            nodes[static_cast<std::size_t>(owner)]
                ->handleRemoteSnoop(msg);
            ++stats_.cacheToCache;
            dataDelay = cfg.netTraversal + cfg.ownerLatency +
                        cfg.netTraversal;
        } else {
            ++stats_.memoryFetches;
            const sim::Tick ready =
                dram_.schedule(msg.blockAddr, now);
            dataDelay = (ready - now) + cfg.netTraversal;
        }
        e.sharers |= srcBit;
    }
    dataDelay += pert;

    busy.insert(msg.blockAddr);
    L2Controller *requestor = nodes[src];
    const sim::Addr block = msg.blockAddr;
    // Reach: the fill completes node `src`'s miss — responses and
    // victim back-probes go to that node's own domain immediately,
    // while anything it triggers toward other nodes (a writeback or
    // prefetch it issues) first serializes at a home tile for the
    // directory latency before any remote probe happens.
    callIn(
        dataDelay,
        [this, requestor, block, writable] {
            busy.erase(block);
            requestor->fillArrived(block, writable);
        },
        sim::Event::memoryResponsePri,
        sim::SendReach{static_cast<sim::DomainId>(1 + src), 0,
                       cfg.dirLatency});
}

bool
DirectoryFabric::warmTransition(int src, sim::Addr block,
                                bool writable)
{
    VARSIM_ASSERT(busy.empty(),
                  "warm transition with transactions in flight");
    const BusMsg msg{writable ? BusCmd::GetM : BusCmd::GetS, block,
                     src};
    const auto srcIdx = static_cast<std::size_t>(src);
    VARSIM_ASSERT(srcIdx < nodes.size(),
                  "warm transition from unknown node %d", src);
    Entry &e = entry(block);
    const auto srcBit = std::uint64_t{1} << unsigned(src);

    // Same stale-owner validation as process(): silent clean L2
    // evictions can leave the directory pointing at a node that no
    // longer owns the block.
    int owner = e.owner;
    if (owner >= 0 &&
        !isOwnerState(nodes[static_cast<std::size_t>(owner)]
                          ->snoopState(block))) {
        owner = -1;
        e.owner = -1;
    }

    ++stats_.busTransactions;
    ++stats_.l2Misses;

    bool remoteSupply = false;
    if (writable) {
        const std::uint64_t toInvalidate =
            (e.sharers |
             (owner >= 0 ? (std::uint64_t{1} << unsigned(owner))
                         : 0)) &
            ~srcBit;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (toInvalidate & (std::uint64_t{1} << n))
                nodes[n]->warmSnoop(msg, true);
        }
        if (owner == src) {
            ++stats_.upgrades;
        } else if (owner >= 0) {
            ++stats_.cacheToCache;
            remoteSupply = true;
        } else {
            ++stats_.memoryFetches;
        }
        e.owner = src;
        e.sharers = srcBit;
    } else {
        if (owner >= 0) {
            nodes[static_cast<std::size_t>(owner)]->warmSnoop(msg,
                                                             true);
            ++stats_.cacheToCache;
            remoteSupply = true;
        } else {
            ++stats_.memoryFetches;
        }
        e.sharers |= srcBit;
    }
    return remoteSupply;
}

void
DirectoryFabric::warmEvict(int src, sim::Addr block)
{
    // Functional PutM: ownership returns to memory and the evicting
    // node drops out of the sharer set, exactly as process() does
    // for a timed writeback.
    ++stats_.writebacks;
    Entry &e = entry(block);
    if (e.owner == src)
        e.owner = -1;
    e.sharers &= ~(std::uint64_t{1} << unsigned(src));
}

void
DirectoryFabric::drain()
{
    VARSIM_ASSERT(busy.empty(),
                  "draining directory with %zu busy blocks",
                  busy.size());
}

void
DirectoryFabric::serialize(sim::CheckpointOut &cp) const
{
    VARSIM_ASSERT(busy.empty(),
                  "checkpoint with busy directory blocks");
    cp.put(homeNextFree);
    cp.put(stats_);
    dram_.serialize(cp);
    // `dir` is intentionally not serialized: it is derived from the
    // cache tags and rebuilt in postRestore().
}

void
DirectoryFabric::unserialize(sim::CheckpointIn &cp)
{
    cp.get(homeNextFree);
    cp.get(stats_);
    dram_.unserialize(cp);
    dir.clear();
}

void
DirectoryFabric::postRestore()
{
    dir.clear();
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        nodes[n]->forEachValidLine([&](const CacheLine &line) {
            Entry &e = entry(line.blockAddr);
            e.sharers |= std::uint64_t{1} << n;
            if (isOwnerState(line.state)) {
                VARSIM_ASSERT(e.owner == -1,
                              "two owners for block %#llx on "
                              "restore",
                              static_cast<unsigned long long>(
                                  line.blockAddr));
                e.owner = static_cast<int>(n);
            }
        });
    }
}

void
DirectoryFabric::regStats(sim::statistics::Registry &r)
{
    const std::string &n = name();
    r.regScalar(n + ".transactions", &stats_.busTransactions,
                "requests serialized at home directories");
    r.regScalar(n + ".l2_misses", &stats_.l2Misses,
                "ordered GetS/GetM requests");
    r.regScalar(n + ".cache_to_cache", &stats_.cacheToCache,
                "fills forwarded from an owner cache");
    r.regScalar(n + ".memory_fetches", &stats_.memoryFetches,
                "fills supplied by DRAM");
    r.regScalar(n + ".upgrades", &stats_.upgrades,
                "GetM with data already local");
    r.regScalar(n + ".nacks", &stats_.nacks,
                "requests retried against a busy block");
    r.regScalar(n + ".writebacks", &stats_.writebacks,
                "dirty evictions");
    r.regScalar(n + ".queue_delay_ticks", &stats_.busQueueDelay,
                "cumulative home-serialization delay");
    r.regScalar(n + ".perturbation_ticks",
                &stats_.perturbationTotal,
                "cumulative injected latency perturbation");
    r.regFormula(n + ".dram_accesses",
                 [this] {
                     return static_cast<double>(dram_.accesses());
                 },
                 "home-memory DRAM accesses");
    r.regDistribution(n + ".queue_delay", &queueDelayDist,
                      "per-request home-serialization delay");
}

} // namespace mem
} // namespace varsim
