#include "mem/cache_array.hh"

#include <cstring>

#include "sim/logging.hh"

namespace varsim
{
namespace mem
{

namespace
{

bool
isPow2(std::size_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // anonymous namespace

CacheArray::CacheArray(std::size_t size_bytes, std::size_t assoc,
                       std::size_t block_bytes)
    : ways(assoc), blockBytes(block_bytes)
{
    VARSIM_ASSERT(isPow2(block_bytes), "block size must be a power "
                  "of two, got %zu", block_bytes);
    VARSIM_ASSERT(assoc >= 1, "associativity must be >= 1");
    VARSIM_ASSERT(size_bytes % (assoc * block_bytes) == 0,
                  "cache size %zu not divisible by way size",
                  size_bytes);
    sets = size_bytes / (assoc * block_bytes);
    VARSIM_ASSERT(isPow2(sets), "number of sets (%zu) must be a power "
                  "of two", sets);
    while ((std::size_t{1} << blockShift) < blockBytes)
        ++blockShift;
    setMask = sets - 1;
    lines.resize(sets * ways);
}

void
CacheArray::touch(CacheLine &line)
{
    line.lastUse = ++useCounter;
}

std::pair<CacheLine *, bool>
CacheArray::allocate(sim::Addr block_addr, CacheLine &victim)
{
#ifndef NDEBUG
    VARSIM_ASSERT(find(block_addr) == nullptr,
                  "allocate: block %#llx already present",
                  static_cast<unsigned long long>(block_addr));
#endif
    // Single pass: take the first free way if one exists, otherwise
    // the true-LRU valid line (strict < keeps the earliest minimum,
    // matching the historical two-scan selection exactly).
    const std::size_t base = setIndex(block_addr) * ways;
    CacheLine *target = nullptr;
    CacheLine *lru = &lines[base];
    for (std::size_t w = 0; w < ways; ++w) {
        CacheLine &line = lines[base + w];
        if (!line.valid()) {
            target = &line;
            break;
        }
        if (line.lastUse < lru->lastUse)
            lru = &line;
    }
    bool hadVictim = false;
    if (target == nullptr) {
        target = lru;
        victim = *target;
        hadVictim = true;
    }
    target->blockAddr = block_addr;
    target->state = LineState::Invalid; // caller sets the real state
    target->aux = 0;
    touch(*target);
    return {target, hadVictim};
}

void
CacheArray::invalidate(CacheLine &line)
{
    line.state = LineState::Invalid;
    line.blockAddr = sim::invalidAddr;
    line.aux = 0;
}

std::size_t
CacheArray::countValid() const
{
    std::size_t n = 0;
    for (const auto &line : lines)
        if (line.valid())
            ++n;
    return n;
}

void
CacheArray::serialize(sim::CheckpointOut &cp) const
{
    cp.put<std::uint64_t>(sets);
    cp.put<std::uint64_t>(ways);
    cp.put<std::uint64_t>(blockBytes);
    cp.put(useCounter);
    // CacheLine has internal padding and cp.put(vector) memcpys raw
    // object bytes, so serialize a member-wise copy whose padding is
    // zeroed. Otherwise the image would embed whatever the allocator
    // recycled into those bytes, and checkpoints of identical
    // simulated state would not be bitwise identical.
    std::vector<CacheLine> clean(lines.size());
    std::memset(static_cast<void *>(clean.data()), 0,
                clean.size() * sizeof(CacheLine));
    for (std::size_t i = 0; i < lines.size(); ++i) {
        clean[i].blockAddr = lines[i].blockAddr;
        clean[i].state = lines[i].state;
        clean[i].aux = lines[i].aux;
        clean[i].lastUse = lines[i].lastUse;
    }
    cp.put(clean);
}

void
CacheArray::unserialize(sim::CheckpointIn &cp)
{
    std::uint64_t ck_sets = 0, ck_ways = 0, ck_block = 0;
    cp.get(ck_sets);
    cp.get(ck_ways);
    cp.get(ck_block);
    std::uint64_t ck_use = 0;
    cp.get(ck_use);
    std::vector<CacheLine> restored;
    cp.get(restored);

    if (ck_sets != sets || ck_ways != ways ||
        ck_block != blockBytes) {
        // The checkpoint was taken under a different cache
        // geometry (e.g. restoring a warmed run into a different
        // associativity, as in the paper's Experiment 1 design).
        // Cached contents are meaningless under the new index
        // function, so start cold; memory is then the owner of
        // every block, which keeps the coherence invariants intact.
        for (auto &line : lines)
            line = CacheLine{};
        useCounter = 0;
        return;
    }
    useCounter = ck_use;
    lines = std::move(restored);
}

} // namespace mem
} // namespace varsim
