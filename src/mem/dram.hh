/**
 * @file
 * Home-memory (DRAM) timing: one logical controller per node,
 * selected by block-address interleaving, each servicing one request
 * per dramOccupancy ns FIFO with the paper's 80 ns access time.
 */

#ifndef VARSIM_MEM_DRAM_HH
#define VARSIM_MEM_DRAM_HH

#include <vector>

#include "mem/config.hh"
#include "sim/serialize.hh"

namespace varsim
{
namespace mem
{

class DramModel : public sim::Serializable
{
  public:
    explicit DramModel(const MemConfig &cfg);

    /** Home node of a block. */
    int homeNode(sim::Addr block_addr) const;

    /**
     * Reserve a service slot starting no earlier than @p now.
     * @return the tick at which the data leaves the controller
     *         (start + dramLatency).
     */
    sim::Tick schedule(sim::Addr block_addr, sim::Tick now);

    std::uint64_t accesses() const { return numAccesses; }

    void serialize(sim::CheckpointOut &cp) const override;
    void unserialize(sim::CheckpointIn &cp) override;

  private:
    const MemConfig &cfg;
    std::vector<sim::Tick> nextFree;
    std::uint64_t numAccesses = 0;
};

} // namespace mem
} // namespace varsim

#endif // VARSIM_MEM_DRAM_HH
