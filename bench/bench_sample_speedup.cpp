/**
 * @file
 * Sampling speedup benchmark: end-to-end wall time and accuracy of a
 * sampled run (functional-warming fast-forward + detailed windows)
 * against the same run in full detail.
 *
 * Two cases, deliberately different in character:
 *
 *  - apache (headline, gated): 16-node directory-protocol OoO — the
 *    miss-dominated configuration where detailed simulation is most
 *    expensive and the lock-light op mix keeps the fast engine out
 *    of the trap path. Target: >= 5x end-to-end speedup at <= 2%
 *    IPC error.
 *  - oltp (informational): 8-node snooping OoO — lock-heavy, so the
 *    fast engine is bounded by tick-accurate syscall traps and the
 *    speedup is modest (~2x) even though the estimate stays accurate.
 *    Reported to show the workload dependence; not gated.
 *
 * The full-detail IPC reference is computed through the controller
 * as a single all-detail window (U = M, W = 0), so the error column
 * compares identical phases under identical boundary conventions.
 * A fast-only row (one token measurement window) records the fast
 * engine's throughput ceiling next to the detailed engine's.
 *
 * Usage:
 *   bench_sample_speedup [--json FILE] [--repeat N]
 *
 * Environment:
 *   VARSIM_QUICK=1  scale down run lengths (~4x faster); the target
 *                   gate is skipped — too few windows survive the
 *                   scaling for the estimate to be meaningful.
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "sample/runner.hh"

namespace
{

using namespace varsim;

struct Row
{
    std::string workload;
    std::string mode; ///< "full", "fast" or "sampled"
    std::uint64_t simTicks;
    std::uint64_t txns;
    double wallSeconds;
    double ipc;

    double ticksPerSec() const { return simTicks / wallSeconds; }
    double txnsPerSec() const { return txns / wallSeconds; }
};

struct Case
{
    workload::WorkloadKind kind;
    core::SystemConfig sys;
    std::uint64_t txns;
    std::string spec; ///< sampled-run design
    bool gated;       ///< headline case: enforce the 5x/2% target
};

std::vector<Case>
benchCases()
{
    // Headline: the configuration the sampling engine exists for —
    // detailed per-miss event traffic is the dominant simulation
    // cost, and the directory's targeted warm snoops keep the warm
    // path O(sharers) instead of O(nodes).
    core::SystemConfig apache = core::SystemConfig::paperDefault();
    apache.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
    apache.mem.protocol = mem::CoherenceProtocol::Directory;

    core::SystemConfig oltp;
    oltp.mem.numNodes = 8;
    oltp.cpu.model = cpu::CpuConfig::Model::OutOfOrder;

    return {
        {workload::WorkloadKind::Apache, apache,
         bench::scaleTxns(16000), "stratified:2000:16:64", true},
        {workload::WorkloadKind::Oltp, oltp, bench::scaleTxns(8000),
         "stratified:1000:30:100", false},
    };
}

core::RunConfig
baseRun(std::uint64_t txns)
{
    core::RunConfig rc;
    // Detailed warmup before measuring starts: both sides of the
    // comparison begin from the same warmed state, so the error
    // column is sampling error, not cold-start phase mismatch.
    rc.warmupTxns = 100;
    rc.measureTxns = txns;
    rc.perturbSeed = 1;
    return rc;
}

Row
timedRun(const Case &c, const std::string &spec, const char *mode,
         int repeat)
{
    workload::WorkloadParams wl;
    wl.kind = c.kind;

    core::RunConfig rc = baseRun(c.txns);
    if (!core::SampleConfig::parse(spec, rc.sample))
        sim::panic("bad sample spec '%s'", spec.c_str());

    double wall = 0;
    core::RunResult r;
    for (int rep = 0; rep < repeat; ++rep) {
        bench::Stopwatch sw;
        r = sample::runOnce(c.sys, wl, rc);
        const double w = sw.seconds();
        if (rep == 0 || w < wall)
            wall = w;
    }
    return {workload::kindName(c.kind), mode, r.runtimeTicks, r.txns,
            wall, r.sampled.ipcMean};
}

void
emitJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n  \"bench\": \"sample_speedup\",\n"
       << "  \"quick\": " << (bench::quick() ? "true" : "false")
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"workload\": \"" << r.workload
           << "\", \"mode\": \"" << r.mode
           << "\", \"sim_ticks\": " << r.simTicks
           << ", \"txns\": " << r.txns
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"ticks_per_sec\": " << r.ticksPerSec()
           << ", \"txns_per_sec\": " << r.txnsPerSec() << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    int repeat = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--repeat") == 0 &&
                 i + 1 < argc)
            repeat = std::max(1, std::atoi(argv[++i]));
    }

    bench::banner(
        "bench_sample_speedup",
        "intra-run sampling: speedup vs full detail (OoO model)",
        "SMARTS-style result: a large cost cut at a few percent "
        "error; target >= 5x at <= 2% IPC on the headline case");

    std::vector<Row> rows;
    bool allMet = true;
    for (const Case &c : benchCases()) {
        // Full detail, measured through a single all-detail window
        // so its IPC is directly comparable to the sampled estimate.
        const std::string refSpec =
            "systematic:" + std::to_string(c.txns) + ":0:" +
            std::to_string(c.txns);
        rows.push_back(timedRun(c, refSpec, "full", repeat));
        const Row f = rows.back();

        // Fast-engine throughput ceiling: fast-forward everything
        // except one token window.
        const std::string fastSpec =
            "systematic:" + std::to_string(c.txns) + ":10:15";
        rows.push_back(timedRun(c, fastSpec, "fast", repeat));
        const Row ff = rows.back();

        rows.push_back(timedRun(c, c.spec, "sampled", repeat));
        const Row s = rows.back();

        const double speedup = f.wallSeconds / s.wallSeconds;
        const double err = std::abs(s.ipc - f.ipc) / f.ipc;
        const bool met = speedup >= 5.0 && err <= 0.02;
        if (c.gated && !bench::quick())
            allMet = allMet && met;
        std::printf("%-8s full    %8.3fs  IPC %.4f\n",
                    f.workload.c_str(), f.wallSeconds, f.ipc);
        std::printf("%-8s fast    %8.3fs  (ceiling %.1fx)\n",
                    ff.workload.c_str(), ff.wallSeconds,
                    f.wallSeconds / ff.wallSeconds);
        std::printf("%-8s sampled %8.3fs  IPC %.4f  "
                    "speedup %.1fx  err %.2f%%  [%s]\n",
                    s.workload.c_str(), s.wallSeconds, s.ipc,
                    speedup, 100.0 * err,
                    !c.gated ? "informational"
                    : met    ? "ok"
                             : "MISSED TARGET");
    }

    if (!jsonPath.empty()) {
        std::ofstream fo(jsonPath);
        emitJson(fo, rows);
        std::printf("wrote %s\n", jsonPath.c_str());
    } else {
        emitJson(std::cout, rows);
    }
    return allMet ? 0 : 1;
}
