/**
 * @file
 * Shared scaffolding for the per-table/per-figure benchmark
 * binaries. Every binary regenerates one of the paper's results and
 * prints the measured rows next to a note on what the paper reports
 * (shape comparison, not absolute numbers — the substrate is a
 * synthetic-workload simulator, not the authors' Simics/DB2 setup).
 *
 * Environment:
 *   VARSIM_QUICK=1   scale down run counts / lengths (~4x faster)
 */

#ifndef VARSIM_BENCH_COMMON_HH
#define VARSIM_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/varsim.hh"

namespace varsim
{
namespace bench
{

/** True if VARSIM_QUICK is set to a nonzero value. */
inline bool
quick()
{
    const char *env = std::getenv("VARSIM_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Scale a run count down in quick mode (min 5). */
inline std::size_t
scaleRuns(std::size_t full)
{
    if (!quick())
        return full;
    const std::size_t s = full / 4;
    return s < 5 ? (full < 5 ? full : 5) : s;
}

/** Scale a transaction count down in quick mode (min 10). */
inline std::uint64_t
scaleTxns(std::uint64_t full)
{
    if (!quick())
        return full;
    const std::uint64_t s = full / 4;
    return s < 10 ? (full < 10 ? full : 10) : s;
}

/** Print the standard experiment banner. */
inline void
banner(const char *id, const char *title, const char *paper_says)
{
    std::printf("=============================================="
                "==============================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("paper: %s\n", paper_says);
    if (quick())
        std::printf("(VARSIM_QUICK: scaled-down run)\n");
    std::printf("----------------------------------------------"
                "------------------------------\n");
}

/** The paper's 16-processor target (Section 3.2.1). */
inline core::SystemConfig
paperSystem()
{
    return core::SystemConfig::paperDefault();
}

/** The OLTP workload with the paper's 8 users per processor. */
inline workload::WorkloadParams
oltpWorkload()
{
    return {};
}

/** Wall-clock stopwatch for "simulation cost" rows (Table 4). */
class Stopwatch
{
  public:
    Stopwatch() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Simple textual min/avg/max strip for "figure" outputs. */
inline std::string
strip(double lo, double mean, double hi, double axis_lo,
      double axis_hi, std::size_t width = 56)
{
    std::string s(width, ' ');
    auto pos = [&](double v) {
        double f = (v - axis_lo) / (axis_hi - axis_lo);
        f = f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
        return static_cast<std::size_t>(f * (width - 1));
    };
    const std::size_t a = pos(lo), b = pos(hi), m = pos(mean);
    for (std::size_t i = a; i <= b && i < width; ++i)
        s[i] = '-';
    s[a] = '|';
    s[b] = '|';
    s[m] = 'o';
    return s;
}

} // namespace bench
} // namespace varsim

#endif // VARSIM_BENCH_COMMON_HH
