/**
 * @file
 * Result-path scaling: open+report cost of a campaign store before
 * and after compaction.
 *
 * Synthesizes a large pure-JSONL manifest (the store's own line
 * builders, no per-record fsync), measures `campaignReport` —
 * which replays the store from disk — against the same records
 * compacted into a binary segment, and verifies the two reports are
 * byte-identical while the compacted open is >= 10x faster at the
 * largest size (the PR's acceptance gate; informational under
 * VARSIM_QUICK).
 *
 * Output rows (perfcmp.py-compatible):
 *   - workload: "<N>_runs"
 *   - mode: "jsonl" | "compacted"
 *   - ticks_per_sec: recorded runs replayed per host second
 *
 * Usage: bench_store_open [--json FILE]
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "campaign/campaign.hh"

using namespace varsim;

namespace
{

constexpr std::size_t kGroups = 4;
constexpr double kRequiredSpeedup = 10.0;

struct Row
{
    std::size_t runs = 0;
    std::string mode; // "jsonl" | "compacted"
    double seconds = 0.0;

    double
    runsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(runs) / seconds
                             : 0.0;
    }
};

campaign::StoreHeader
benchHeader()
{
    campaign::StoreHeader h;
    h.fingerprint = 0xb57a7eull;
    h.numGroups = kGroups;
    h.workload = "OLTP";
    h.configNames = {"c0", "c1", "c2", "c3"};
    return h;
}

/** Deterministic record: everything derives from (group, run). */
campaign::RunRecord
syntheticRecord(std::size_t g, std::size_t i)
{
    campaign::RunRecord r;
    r.group = g;
    r.configIdx = g;
    r.runIdx = i;
    r.seed = 0x5eed + g * 1000003 + i;
    r.cyclesPerTxn =
        20.0 + static_cast<double>(g) +
        static_cast<double>((i * 2654435761u) % 997) / 2991.0;
    r.runtimeTicks = 500000 + i * 37 + g;
    r.txns = 2000;
    const double base = r.cyclesPerTxn;
    r.metrics = {
        {"system.cpu.commits", 2000.0 * base},
        {"system.cpu.rob_stalls", 170.0 + base / 3.0},
        {"system.kernel.dispatches", 40.0 + static_cast<double>(g)},
        {"system.kernel.lock_waits",
         7.0 + static_cast<double>((i * 13) % 11)},
        {"system.mem.bus.l2_misses", 3000.0 + base * 11.0},
        {"system.mem.bus.occupancy", base / 97.0},
        {"system.mem.reads", 9000.0 + static_cast<double>(i % 101)},
        {"system.mem.writes", 4000.0 + static_cast<double>(i % 53)},
    };
    return r;
}

/** Write an N-run pure-JSONL store without paying an fsync per row. */
void
synthesizeStore(const std::string &dir, std::size_t totalRuns)
{
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::ofstream f(dir + "/manifest.jsonl", std::ios::binary);
    f << campaign::ResultStore::headerLineFor(benchHeader())
      << "\n";
    for (std::size_t k = 0; k < totalRuns; ++k) {
        const auto r =
            syntheticRecord(k % kGroups, k / kGroups);
        f << campaign::ResultStore::runLineFor(r) << "\n"
          << campaign::ResultStore::metricsLineFor(r) << "\n";
    }
}

/** Best-of-3 open+report wall time; the text lands in @p report. */
double
timeOpenReport(const std::string &dir, std::string *report)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const bench::Stopwatch sw;
        *report = campaign::campaignReport(dir).text;
        const double s = sw.seconds();
        if (rep == 0 || s < best)
            best = s;
    }
    return best;
}

void
emitJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n  \"bench\": \"store_open\",\n"
       << "  \"quick\": " << (bench::quick() ? "true" : "false")
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"workload\": \"" << r.runs
           << "_runs\", \"mode\": \"" << r.mode
           << "\", \"runs\": " << r.runs
           << ", \"open_report_seconds\": " << r.seconds
           << ", \"ticks_per_sec\": " << r.runsPerSec() << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];

    bench::banner(
        "bench_store_open",
        "open+report cost: JSONL replay vs compacted segments",
        "n/a (implementation scaling; compaction must be "
        "observationally a no-op)");

    const std::vector<std::size_t> sizes =
        bench::quick() ? std::vector<std::size_t>{1000, 5000}
                       : std::vector<std::size_t>{10000, 100000};

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "varsim_bench_store_open.camp")
            .string();

    std::vector<Row> rows;
    double lastSpeedup = 0.0;
    bool identical = true;
    std::printf("%12s %12s %14s %14s %10s\n", "runs", "mode",
                "open+report_s", "runs/sec", "speedup");
    for (const std::size_t n : sizes) {
        synthesizeStore(dir, n);
        std::string jsonlReport;
        const double jsonlS = timeOpenReport(dir, &jsonlReport);
        rows.push_back({n, "jsonl", jsonlS});
        std::printf("%12zu %12s %14.4f %14.0f %10s\n", n, "jsonl",
                    jsonlS, rows.back().runsPerSec(), "-");

        campaign::ResultStore::open(dir)->compact();
        std::string compactReport;
        const double compactS =
            timeOpenReport(dir, &compactReport);
        rows.push_back({n, "compacted", compactS});
        lastSpeedup = compactS > 0.0 ? jsonlS / compactS : 0.0;
        std::printf("%12zu %12s %14.4f %14.0f %9.1fx\n", n,
                    "compacted", compactS,
                    rows.back().runsPerSec(), lastSpeedup);

        if (compactReport != jsonlReport) {
            identical = false;
            std::printf("FAIL: compacted report differs from the "
                        "JSONL twin at %zu runs\n", n);
        }
    }
    std::filesystem::remove_all(dir);

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        emitJson(f, rows);
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    if (!identical)
        return 1;
    std::printf("reports byte-identical across modes: yes\n");
    if (bench::quick()) {
        std::printf("largest-size speedup %.1fx (gate of %.0fx "
                    "applies to the full-size run)\n", lastSpeedup,
                    kRequiredSpeedup);
        return 0;
    }
    if (lastSpeedup < kRequiredSpeedup) {
        std::printf("FAIL: open+report speedup %.1fx < %.0fx at "
                    "%zu runs\n", lastSpeedup, kRequiredSpeedup,
                    sizes.back());
        return 1;
    }
    std::printf("PASS: open+report speedup %.1fx >= %.0fx at %zu "
                "runs\n", lastSpeedup, kRequiredSpeedup,
                sizes.back());
    return 0;
}
