/**
 * @file
 * Figure 5 + Table 1 — Experiment 1: "Cache Design."
 *
 * Twenty 200-transaction OLTP runs with the simple processor model
 * per L2 associativity (direct-mapped, 2-way, 4-way), cache size
 * fixed at 4 MB and hit/miss latencies constant. The paper finds the
 * expected mean ordering (higher associativity is faster) but with
 * overlapping ranges, and wrong-conclusion ratios of 24% (DM vs
 * 2-way), 10% (DM vs 4-way) and 31% (2-way vs 4-way).
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 5 + Table 1",
        "OLTP cycles/txn vs L2 associativity, 20 runs each",
        "means: DM > 2-way > 4-way (small gaps), ranges overlap; "
        "WCR: DM/2w=24%, DM/4w=10%, 2w/4w=31%");

    const std::size_t numRuns = bench::scaleRuns(20);
    core::RunConfig rc;
    rc.warmupTxns = 100;
    rc.measureTxns = bench::scaleTxns(200);
    core::ExperimentConfig exp;
    exp.numRuns = numRuns;

    const std::size_t assocs[] = {1, 2, 4};
    const char *names[] = {"direct-mapped", "2-way SA", "4-way SA"};
    std::vector<std::vector<double>> metric;
    std::vector<core::VariabilityReport> reports;

    for (std::size_t assoc : assocs) {
        core::SystemConfig sys = bench::paperSystem();
        sys.mem.l2Assoc = assoc;
        const auto results =
            core::runMany(sys, bench::oltpWorkload(), rc, exp);
        metric.push_back(core::metricOf(results));
        reports.push_back(core::analyze(results));
    }

    // Figure 5: avg/min/max per configuration.
    double lo = 1e300, hi = 0;
    for (const auto &r : reports) {
        lo = std::min(lo, r.summary.min);
        hi = std::max(hi, r.summary.max);
    }
    stats::Table fig({"L2 config", "min", "avg", "max", "sd",
                      "min|--o--|max"});
    for (std::size_t i = 0; i < 3; ++i) {
        const auto &s = reports[i].summary;
        fig.addRow({names[i], stats::fmtF(s.min, 0),
                    stats::fmtF(s.mean, 0), stats::fmtF(s.max, 0),
                    stats::fmtF(s.stddev, 0),
                    bench::strip(s.min, s.mean, s.max, lo, hi, 40)});
    }
    std::printf("%s", fig.render().c_str());

    // Table 1: WCR per comparison pair.
    struct Pair
    {
        std::size_t a, b;
        const char *label;
        double paperWcr;
    };
    const Pair pairs[] = {
        {0, 1, "Direct Mapped vs (2-way SA)", 24.0},
        {0, 2, "Direct Mapped vs (4-way SA)", 10.0},
        {1, 2, "2-way SA vs (4-way SA)", 31.0},
    };
    stats::Table t1({"Configurations Compared (Superior)",
                     "WCR measured", "WCR paper"});
    for (const Pair &p : pairs) {
        const double wcr = 100.0 * stats::wrongConclusionRatio(
                                       metric[p.a], metric[p.b]);
        t1.addRow({p.label, stats::fmtF(wcr, 1) + "%",
                   stats::fmtF(p.paperWcr, 0) + "%"});
    }
    std::printf("\nTable 1 (wrong conclusion ratio over all run "
                "pairs):\n%s", t1.render().c_str());

    // The paper's two "misleading extremes" observation.
    const auto &dm = reports[0].summary;
    const auto &w4 = reports[2].summary;
    std::printf("\nmean(4-way) beats mean(DM) by %.1f%%; but "
                "extremes mislead both ways:\n",
                100.0 * (dm.mean / w4.mean - 1.0));
    std::printf("  min(DM) vs max(4-way): DM looks %.1f%% faster\n",
                100.0 * (w4.max / dm.min - 1.0));
    std::printf("  min(4-way) vs max(DM): 4-way looks %.1f%% "
                "faster\n",
                100.0 * (dm.max / w4.min - 1.0));
    return 0;
}
