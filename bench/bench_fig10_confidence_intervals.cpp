/**
 * @file
 * Figure 10: "95% confidence intervals using different sample sizes
 * for 32 and 64-entry ROBs."
 *
 * The paper draws the 95% CIs for the two ROB configurations at
 * sample sizes 5, 10, 15, 20: the intervals tighten with more runs
 * and stop overlapping at 20 runs, bounding the wrong-conclusion
 * probability below 5%.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 10",
        "95% CIs for 32- vs 64-entry ROB at n = 5, 10, 15, 20",
        "intervals tighten with n; at n=20 they no longer overlap "
        "(wrong-conclusion probability < 5%)");

    const std::size_t maxRuns = bench::scaleRuns(20);
    core::RunConfig rc;
    rc.warmupTxns = 50;
    rc.measureTxns = bench::scaleTxns(50);
    core::ExperimentConfig exp;
    exp.numRuns = maxRuns;

    std::vector<std::vector<double>> metric;
    for (std::uint32_t rob : {32u, 64u}) {
        core::SystemConfig sys = bench::paperSystem();
        sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
        sys.cpu.robEntries = rob;
        exp.baseSeed = 1000 + rob;
        metric.push_back(core::metricOf(core::runMany(
            sys, bench::oltpWorkload(), rc, exp)));
    }

    double lo = 1e300, hi = 0.0;
    std::vector<std::array<stats::ConfidenceInterval, 2>> rows;
    std::vector<std::size_t> sizes;
    for (std::size_t n = 5; n <= maxRuns; n += 5) {
        std::array<stats::ConfidenceInterval, 2> cis;
        for (int k = 0; k < 2; ++k) {
            const std::span<const double> head(metric[k].data(), n);
            cis[k] = stats::meanConfidenceInterval(head, 0.95);
            lo = std::min(lo, cis[k].lo);
            hi = std::max(hi, cis[k].hi);
        }
        rows.push_back(cis);
        sizes.push_back(n);
    }

    stats::Table t({"n", "ROB", "CI lo", "mean", "CI hi",
                    "overlap?", "lo|-o-|hi"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const bool overlap = rows[i][0].overlaps(rows[i][1]);
        for (int k = 0; k < 2; ++k) {
            const auto &ci = rows[i][k];
            t.addRow({k == 0 ? std::to_string(sizes[i]) : "",
                      k == 0 ? "32" : "64",
                      stats::fmtF(ci.lo, 0),
                      stats::fmtF(ci.mean, 0),
                      stats::fmtF(ci.hi, 0),
                      k == 0 ? (overlap ? "yes" : "NO") : "",
                      bench::strip(ci.lo, ci.mean, ci.hi, lo, hi,
                                   40)});
        }
        t.addRule();
    }
    std::printf("%s", t.render().c_str());

    const auto &final = rows.back();
    if (!final[0].overlaps(final[1])) {
        std::printf("\nat n=%zu the CIs are disjoint: the "
                    "probability of a wrong conclusion is bounded "
                    "below 5%% (Section 5.1.1)\n", sizes.back());
    } else {
        std::printf("\nat n=%zu the CIs still overlap: the result "
                    "is not significant at 95%%; more runs (or a "
                    "lower confidence level) are needed\n",
                    sizes.back());
    }
    return 0;
}
