/**
 * @file
 * Host-side simulator-throughput benchmark: simulated ticks per host
 * second and transactions per host second, per workload, for one run
 * (serial engine), one run on the domained engine with 2/4/8 worker
 * threads (modes par2/par4/par8 — intra-run scaling), and a
 * multi-run experiment batch.
 *
 * This is the harness behind the perf trajectory of the repository:
 * the paper's methodology multiplies simulation cost by ~20x (runs x
 * checkpoints), so host throughput is the binding constraint on every
 * experiment. Emits machine-readable JSON (tools/perfcmp.py compares
 * two emissions) in addition to the human-readable table.
 *
 * Usage:
 *   bench_sim_throughput [--json FILE] [--workloads a,b,c]
 *                        [--repeat N]   (best-of-N timing)
 *
 * Environment:
 *   VARSIM_QUICK=1  scale down run lengths (~4x faster)
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/common.hh"

namespace
{

using namespace varsim;

struct Row
{
    std::string workload;
    std::string mode;       ///< "single" or "multiN"
    std::size_t hostThreads;
    std::uint64_t simTicks;
    std::uint64_t txns;
    double wallSeconds;

    double ticksPerSec() const { return simTicks / wallSeconds; }
    double txnsPerSec() const { return txns / wallSeconds; }
};

struct WorkloadSpec
{
    workload::WorkloadKind kind;
    std::uint64_t measureTxns; ///< full-mode measured transactions
};

core::SystemConfig
benchSystem()
{
    // A 16-processor directory target: the configuration the
    // intra-run scaling bar is set on. Sixteen CPU domains give the
    // domained engine real width, and the directory fabric is the
    // protocol whose per-hop latencies the adaptive horizons are
    // derived from.
    core::SystemConfig sys;
    sys.mem.numNodes = 16;
    sys.mem.protocol = mem::CoherenceProtocol::Directory;
    return sys;
}

Row
singleRun(const WorkloadSpec &spec, int repeat)
{
    workload::WorkloadParams wl;
    wl.kind = spec.kind;

    core::RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = bench::scaleTxns(spec.measureTxns);
    rc.perturbSeed = 1;

    const auto sys = benchSystem();

    // Best-of-N: host-side noise only ever slows a run down, so the
    // minimum wall time is the most repeatable estimate.
    double wall = 0;
    core::RunResult r;
    for (int rep = 0; rep < repeat; ++rep) {
        core::Simulation simn(sys, wl);
        simn.seedPerturbation(rc.perturbSeed);
        bench::Stopwatch sw;
        r = core::measure(simn, rc, sys.numCpus());
        const double w = sw.seconds();
        if (rep == 0 || w < wall)
            wall = w;
    }

    return {workload::kindName(spec.kind), "single", 1,
            r.runtimeTicks, r.txns, wall};
}

Row
parRun(const WorkloadSpec &spec, std::size_t threads, int repeat)
{
    workload::WorkloadParams wl;
    wl.kind = spec.kind;

    core::RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = bench::scaleTxns(spec.measureTxns);
    rc.perturbSeed = 1;
    rc.par.threads = threads;

    const auto sys = benchSystem();

    double wall = 0;
    core::RunResult r;
    for (int rep = 0; rep < repeat; ++rep) {
        core::Simulation simn(sys, wl, rc.par);
        simn.seedPerturbation(rc.perturbSeed);
        bench::Stopwatch sw;
        r = core::measure(simn, rc, sys.numCpus());
        const double w = sw.seconds();
        if (rep == 0 || w < wall)
            wall = w;
    }

    std::ostringstream mode;
    mode << "par" << threads;
    return {workload::kindName(spec.kind), mode.str(), threads,
            r.runtimeTicks, r.txns, wall};
}

Row
multiRun(const WorkloadSpec &spec, std::size_t num_runs, int repeat)
{
    workload::WorkloadParams wl;
    wl.kind = spec.kind;

    core::RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = bench::scaleTxns(spec.measureTxns);

    core::ExperimentConfig exp;
    exp.numRuns = num_runs;
    exp.baseSeed = 1000;
    exp.hostThreads = 0; // hardware concurrency

    double wall = 0;
    std::vector<core::RunResult> results;
    for (int rep = 0; rep < repeat; ++rep) {
        bench::Stopwatch sw;
        results = core::runMany(benchSystem(), wl, rc, exp);
        const double w = sw.seconds();
        if (rep == 0 || w < wall)
            wall = w;
    }

    std::uint64_t ticks = 0, txns = 0;
    for (const auto &r : results) {
        ticks += r.runtimeTicks;
        txns += r.txns;
    }
    std::ostringstream mode;
    mode << "multi" << num_runs;
    return {workload::kindName(spec.kind), mode.str(),
            exp.hostThreads, ticks, txns, wall};
}

void
emitJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n  \"bench\": \"sim_throughput\",\n"
       << "  \"quick\": " << (bench::quick() ? "true" : "false")
       << ",\n  \"host_concurrency\": "
       << std::thread::hardware_concurrency()
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"workload\": \"" << r.workload
           << "\", \"mode\": \"" << r.mode
           << "\", \"host_threads\": " << r.hostThreads
           << ", \"sim_ticks\": " << r.simTicks
           << ", \"txns\": " << r.txns
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"ticks_per_sec\": " << r.ticksPerSec()
           << ", \"txns_per_sec\": " << r.txnsPerSec() << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

/**
 * The intra-run scaling gate: geomean of par8 over single ticks/s
 * across every measured workload must reach @p floor. Only enforced
 * when the host can actually run 8 workers — on smaller hosts the
 * clamped par8 row measures engine overhead, not scaling, and the
 * gate prints the geomean without judging it.
 */
int
gatePar8(const std::vector<Row> &rows, double floor)
{
    double logSum = 0.0;
    int matched = 0;
    for (const Row &r : rows) {
        if (r.mode != "par8")
            continue;
        for (const Row &s : rows) {
            if (s.mode == "single" && s.workload == r.workload) {
                logSum += std::log(r.ticksPerSec() /
                                   s.ticksPerSec());
                ++matched;
            }
        }
    }
    if (matched == 0)
        return 0;
    const double geomean =
        std::exp(logSum / static_cast<double>(matched));
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("par8 vs single geomean: %.2fx "
                "(host concurrency %u)\n",
                geomean, hw);
    if (hw < 8) {
        std::printf("par8 gate skipped: host has %u hardware "
                    "threads, scaling not measurable\n",
                    hw);
        return 0;
    }
    if (geomean < floor) {
        std::printf("FAIL: par8 geomean %.2fx below the %.2fx "
                    "floor\n",
                    geomean, floor);
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    std::string only;
    int repeat = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--workloads") == 0 &&
                 i + 1 < argc)
            only = argv[++i];
        else if (std::strcmp(argv[i], "--repeat") == 0 &&
                 i + 1 < argc)
            repeat = std::max(1, std::atoi(argv[++i]));
    }

    const std::vector<WorkloadSpec> specs = {
        {workload::WorkloadKind::Oltp, 2000},
        {workload::WorkloadKind::Apache, 8000},
        {workload::WorkloadKind::SpecJbb, 8000},
        {workload::WorkloadKind::Slashcode, 200},
    };

    bench::banner("bench_sim_throughput",
                  "simulator throughput (host-side)",
                  "not a paper figure: simulated ticks and txns per "
                  "host second, the denominator of every experiment");

    std::vector<Row> rows;
    for (const auto &spec : specs) {
        const char *name = workload::kindName(spec.kind);
        if (!only.empty() &&
            only.find(name) == std::string::npos)
            continue;
        rows.push_back(singleRun(spec, repeat));
        const Row &s = rows.back();
        std::printf("%-10s %-8s %12.3fM ticks/s %10.0f txns/s "
                    "(%.2fs wall)\n",
                    s.workload.c_str(), s.mode.c_str(),
                    s.ticksPerSec() / 1e6, s.txnsPerSec(),
                    s.wallSeconds);
        // Intra-run scaling: one simulation on the domained engine
        // with 1/2/4/8 workers (par1 isolates the engine's own
        // overhead from the scaling). The domained engine is a
        // slightly different timing model (the lookahead becomes a
        // hop latency), so parN's sim_ticks differ from single's —
        // the honest scaling metric is ticks/s.
        for (std::size_t threads : {1u, 2u, 4u, 8u}) {
            rows.push_back(parRun(spec, threads, repeat));
            const Row &p = rows.back();
            std::printf("%-10s %-8s %12.3fM ticks/s %10.0f txns/s "
                        "(%.2fs wall)\n",
                        p.workload.c_str(), p.mode.c_str(),
                        p.ticksPerSec() / 1e6, p.txnsPerSec(),
                        p.wallSeconds);
        }
        rows.push_back(
            multiRun(spec, bench::scaleRuns(8), repeat));
        const Row &m = rows.back();
        std::printf("%-10s %-8s %12.3fM ticks/s %10.0f txns/s "
                    "(%.2fs wall)\n",
                    m.workload.c_str(), m.mode.c_str(),
                    m.ticksPerSec() / 1e6, m.txnsPerSec(),
                    m.wallSeconds);
    }

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        emitJson(f, rows);
        std::printf("wrote %s\n", jsonPath.c_str());
    } else {
        emitJson(std::cout, rows);
    }
    return gatePar8(rows, 2.0);
}
